//! Minimal offline shim for the `tempfile` crate.
//!
//! Provides [`tempdir()`] / [`TempDir`]: a uniquely named directory under
//! the system temp dir that is removed (recursively) on drop.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory on the filesystem that is recursively deleted on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh temporary directory under [`std::env::temp_dir`].
    pub fn new() -> io::Result<TempDir> {
        let base = std::env::temp_dir();
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        for _ in 0..1024 {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = base.join(format!(
                ".tmp-micronn-{}-{nanos:08x}-{n}",
                std::process::id()
            ));
            match std::fs::create_dir(&path) {
                Ok(()) => return Ok(TempDir { path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "exhausted temp dir name candidates",
        ))
    }

    /// The path of the temporary directory.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the handle without deleting the directory.
    pub fn keep(self) -> PathBuf {
        let path = self.path.clone();
        std::mem::forget(self);
        path
    }

    /// Deletes the directory, reporting any error (drop ignores them).
    pub fn close(self) -> io::Result<()> {
        let path = self.path.clone();
        std::mem::forget(self);
        std::fs::remove_dir_all(path)
    }
}

impl AsRef<Path> for TempDir {
    fn as_ref(&self) -> &Path {
        self.path()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Creates a new [`TempDir`].
pub fn tempdir() -> io::Result<TempDir> {
    TempDir::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        std::fs::write(a.path().join("f.txt"), b"x").unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "dropping TempDir must remove it");
        assert!(b.path().is_dir());
    }

    #[test]
    fn keep_preserves_the_directory() {
        let d = tempdir().unwrap();
        let path = d.keep();
        assert!(path.is_dir());
        std::fs::remove_dir_all(path).unwrap();
    }
}
