//! Minimal offline shim for `parking_lot`, built on `std::sync`.
//!
//! Exposes the parking_lot API shape the workspace uses: guards are
//! returned directly (no `Result`/poisoning — a poisoned std lock is
//! recovered with `into_inner`, matching parking_lot's "panics don't
//! poison" semantics), plus `Mutex::lock_arc` returning an owned
//! [`ArcMutexGuard`].

use std::fmt;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Marker standing in for `parking_lot::RawMutex` in guard signatures.
pub struct RawMutex {
    _private: (),
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock; `lock` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T> Mutex<T> {
    /// Owned lock: keeps the `Arc` alive inside the returned guard.
    ///
    /// Declared as an associated function taking `&Arc<Self>` (the
    /// workspace always calls it fully qualified, `Mutex::lock_arc(&arc)`,
    /// matching parking_lot's `arc_lock` API).
    pub fn lock_arc(this: &Arc<Mutex<T>>) -> ArcMutexGuard<RawMutex, T> {
        let arc = Arc::clone(this);
        let guard = arc.inner.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the transmute only erases the borrow lifetime. The
        // guarded mutex lives on the heap inside `arc`, which the
        // ArcMutexGuard holds until after the guard is dropped (see
        // `Drop`), so the referent outlives the guard.
        let guard: std::sync::MutexGuard<'static, T> = unsafe { std::mem::transmute(guard) };
        ArcMutexGuard {
            guard: ManuallyDrop::new(guard),
            _arc: arc,
            _raw: PhantomData,
        }
    }

    /// Non-blocking variant of [`Mutex::lock_arc`] (parking_lot's
    /// `try_lock_arc`): returns `None` if the lock is currently held.
    pub fn try_lock_arc(this: &Arc<Mutex<T>>) -> Option<ArcMutexGuard<RawMutex, T>> {
        let arc = Arc::clone(this);
        let guard = match arc.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        // SAFETY: same lifetime erasure as `lock_arc` — the Arc held
        // by the guard keeps the mutex alive past the borrow scope.
        let guard: std::sync::MutexGuard<'static, T> = unsafe { std::mem::transmute(guard) };
        Some(ArcMutexGuard {
            guard: ManuallyDrop::new(guard),
            _arc: arc,
            _raw: PhantomData,
        })
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Owned mutex guard holding the `Arc` alive (parking_lot `arc_lock`).
pub struct ArcMutexGuard<R, T: 'static> {
    // Field order matters only for documentation; the guard is dropped
    // explicitly in `Drop` before `_arc` is released.
    guard: ManuallyDrop<std::sync::MutexGuard<'static, T>>,
    _arc: Arc<Mutex<T>>,
    _raw: PhantomData<R>,
}

impl<R, T> Deref for ArcMutexGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<R, T> DerefMut for ArcMutexGuard<R, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<R, T> Drop for ArcMutexGuard<R, T> {
    fn drop(&mut self) {
        // Release the lock before the Arc (and thus the mutex) can go away.
        unsafe { ManuallyDrop::drop(&mut self.guard) }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Reader-writer lock; `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_arc_guard_outlives_borrow_scope() {
        let m = Arc::new(Mutex::new(7u32));
        let guard = {
            let tmp = Arc::clone(&m);
            Mutex::lock_arc(&tmp)
        };
        assert_eq!(*guard, 7);
        assert!(m.try_lock().is_none(), "arc guard must hold the lock");
        assert!(
            Mutex::try_lock_arc(&m).is_none(),
            "try_lock_arc must not block or double-lock"
        );
        drop(guard);
        assert!(m.try_lock().is_some());
        let owned = Mutex::try_lock_arc(&m).expect("uncontended try_lock_arc succeeds");
        assert_eq!(*owned, 7);
    }

    #[test]
    fn rwlock_many_readers_then_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panicked_lock_is_recovered_not_poisoned() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
