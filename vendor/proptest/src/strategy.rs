//! The [`Strategy`] trait and the built-in strategies of the shim.

use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// RNG handed to strategies (deterministic per test case).
pub type TestRng = rand::rngs::StdRng;

/// A generator of random values (shim counterpart of `proptest::strategy::Strategy`).
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// directly produces a value.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted union over same-valued strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V: Debug> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! total weight must be positive");
        Union { arms, total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of bounds")
    }
}

// ---------------------------------------------------------------------------
// Numeric ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

// ---------------------------------------------------------------------------
// Regex-literal string strategies ("[a-z0-9 ]{0,12}", "k[0-9]{3}", "ab+")
// ---------------------------------------------------------------------------

/// One parsed regex atom: the characters it can produce plus repetition
/// bounds.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling '\\' in pattern {pattern:?}");
                let c = chars[i + 1];
                i += 2;
                vec![c]
            }
            '.' => {
                i += 1;
                (0x20u32..0x7f).filter_map(char::from_u32).collect()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad {n,m} quantifier"),
                            hi.trim().parse().expect("bad {n,m} quantifier"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad {n} quantifier");
                            (n, n)
                        }
                    }
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "empty char class in pattern {pattern:?}");
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
            }
        }
        out
    }
}
