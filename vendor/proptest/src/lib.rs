//! Minimal offline shim for `proptest`.
//!
//! Supports the subset of the proptest API this workspace's tests use:
//! the [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, the [`strategy::Strategy`] trait with
//! `prop_map` and `boxed`, numeric range strategies, tuple strategies,
//! simple regex-literal string strategies (`"[a-z0-9 ]{0,12}"`),
//! `collection::{vec, btree_map}`, `option::of`, `any::<T>()`, `Just`,
//! and `ProptestConfig { cases, .. }`.
//!
//! Semantics: each test runs `cases` random cases from a deterministic
//! per-test seed. On failure the generated inputs and the case seed are
//! printed; there is **no shrinking**. `PROPTEST_CASES` in the
//! environment overrides every test's case count (to bound CI time).

pub mod strategy;

pub mod test_runner {
    /// Shim counterpart of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no rejection sampling).
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Config {
        fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    fn seed_for(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^ ((case as u64) << 32 | case as u64)
    }

    /// Drives one `proptest!`-generated test: `case` regenerates inputs
    /// from the given RNG, records their `Debug` repr, and runs the body.
    pub fn run<F>(test_name: &str, config: &Config, mut case: F)
    where
        F: FnMut(&mut crate::strategy::TestRng, &mut String),
    {
        use rand::SeedableRng;
        let cases = config.resolved_cases();
        for i in 0..cases {
            let seed = seed_for(test_name, i);
            let mut rng = crate::strategy::TestRng::seed_from_u64(seed);
            let mut repr = String::new();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                case(&mut rng, &mut repr)
            }));
            if let Err(payload) = outcome {
                eprintln!(
                    "proptest (shim): {test_name} failed at case {i}/{cases} \
                     (seed {seed:#x}); no shrinking performed\n  inputs: {repr}"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap` with size in `size` (best effort: random
    /// keys may collide, in which case the map is smaller).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `proptest::collection::btree_map`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Bounded attempts so small key universes terminate.
            for _ in 0..target.saturating_mul(4).saturating_add(16) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

pub mod option {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<S::Value>` (≈ 3/4 `Some`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use rand::{Rng, RngCore};
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    /// `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            rng.gen_range(-1.0e9f32..1.0e9)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen_range(-1.0e12f64..1.0e12)
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            rng.gen_range(0x20u32..0x7f).try_into().unwrap_or('?')
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Non-fatal-looking assertion (the shim simply asserts).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Weighted (or unweighted) union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// The proptest entry macro: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]`-attributed function running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    &__config,
                    |__rng, __repr| {
                        let __vals = ($($crate::strategy::Strategy::generate(&($strat), __rng),)+);
                        *__repr = format!("{:?}", __vals);
                        let ($($arg,)+) = __vals;
                        $body
                    },
                );
            }
        )+
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)+
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    #[test]
    fn regex_literal_strategy_obeys_class_and_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let s = Strategy::generate(&"[a-c]{1}", &mut rng);
            assert_eq!(s.len(), 1);
            assert!(matches!(s.as_bytes()[0], b'a'..=b'c'), "{s:?}");
            let t = Strategy::generate(&"[a-z0-9 ]{0,12}", &mut rng);
            assert!(t.len() <= 12);
            assert!(t
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b' '));
        }
    }

    #[test]
    fn oneof_weights_skew_sampling() {
        let strat = prop_oneof![
            9 => crate::strategy::Just(true),
            1 => crate::strategy::Just(false),
        ];
        let mut rng = TestRng::seed_from_u64(2);
        let trues = (0..5_000)
            .filter(|_| Strategy::generate(&strat, &mut rng))
            .count();
        assert!((4_000..5_000).contains(&trues), "got {trues}");
    }

    #[test]
    fn collection_sizes_respect_range() {
        let strat = crate::collection::vec(0u8..10, 3..7);
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_end_to_end(
            xs in crate::collection::vec(any::<u8>(), 0..16),
            mut n in 0usize..8,
            opt in crate::option::of(0i64..5),
        ) {
            n += xs.len();
            prop_assert!(n >= xs.len());
            if let Some(v) = opt {
                prop_assert!((0..5).contains(&v));
            }
            prop_assert_eq!(xs.len() + (n - xs.len()), n);
        }
    }
}
