//! Minimal offline shim for `criterion`.
//!
//! Provides the macro + type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`) with
//! a simple wall-clock measurement loop: warm up briefly, then time
//! enough iterations to fill a small measurement window and report
//! ns/iter (plus derived throughput when configured).
//!
//! Set `MICRONN_BENCH_FAST=1` to shrink the measurement window (for CI
//! runs that only check the benches execute).

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier of a parameterized benchmark (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { name }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

fn measurement_window() -> Duration {
    if std::env::var("MICRONN_BENCH_FAST").is_ok_and(|v| v == "1") {
        Duration::from_millis(5)
    } else {
        Duration::from_millis(100)
    }
}

/// Times closures; handed to bench functions.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    ns_per_iter: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: double the batch until it is measurable.
        let window = measurement_window();
        let mut batch: u64 = 1;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            elapsed = start.elapsed();
            if elapsed >= window || batch >= 1 << 30 {
                break;
            }
            // Grow towards the window without overshooting wildly.
            batch = if elapsed.is_zero() {
                batch * 16
            } else {
                let scale = window.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64;
                (batch as f64 * scale.clamp(1.5, 16.0)).ceil() as u64
            };
        }
        self.ns_per_iter = elapsed.as_nanos() as f64 / batch as f64;
    }

    /// `iter` variant taking a setup closure per batch (rarely used).
    pub fn iter_with_setup<S, I, O, F>(&mut self, mut setup: S, mut f: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(f(input));
                total += start.elapsed();
            }
            total
        });
    }

    /// Lets the closure do its own timing over `iters` iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let iters = 32;
        let total = f(iters);
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

fn report(group: Option<&str>, id: &str, ns: f64, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let time = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!("  {:.2} Melem/s", n as f64 / ns * 1e3)
        }
        Throughput::Bytes(n) => {
            format!("  {:.2} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
    });
    println!("{full:<48} {time:>12}{}", rate.unwrap_or_default());
}

/// Group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(Some(&self.name), &id.name, b.ns_per_iter, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(Some(&self.name), &id.name, b.ns_per_iter, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Top-level bench driver (shim: prints one line per benchmark).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(None, id, b.ns_per_iter, None);
        self
    }

    /// Accepted for `criterion_main!` compatibility; no CLI parsing.
    pub fn configure_from_args(&mut self) -> &mut Self {
        self
    }

    pub fn final_summary(&mut self) {}
}

/// Re-export matching `criterion::black_box` (old-style call sites).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            criterion.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            criterion.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        std::env::set_var("MICRONN_BENCH_FAST", "1");
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| {
            std::hint::black_box((0..100u64).sum::<u64>());
        });
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn group_api_shape_compiles_and_runs() {
        std::env::set_var("MICRONN_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("trivial", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
