//! Minimal offline shim for `rand` 0.8: [`rngs::StdRng`] seeded with
//! [`SeedableRng::seed_from_u64`], plus the [`Rng`] methods the workspace
//! uses (`gen_range`, `gen_bool`, `gen`, `fill_bytes`).
//!
//! The core generator is xoshiro256** (public domain, Blackman/Vigna)
//! seeded through SplitMix64 — deterministic across platforms, which the
//! dataset generators rely on.

use std::ops::{Range, RangeInclusive};

/// A deterministic seedable RNG (shim counterpart of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core RNG interface (shim counterpart of `rand::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing RNG helpers (shim counterpart of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        next_f64(self) < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<T: RngCore> Rng for T {}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn next_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Types producible by [`Rng::gen`].
pub trait Standard {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        next_f32(rng)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        next_f64(rng)
    }
}

/// Ranges samplable by [`Rng::gen_range`] (generic over the output type
/// so integer/float literals infer from context, as in rand 0.8).
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = $unit(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = $unit(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32 => next_f32, f64 => next_f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "got {frac}");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_500..11_500).contains(&b), "bucket skew: {buckets:?}");
        }
    }
}
