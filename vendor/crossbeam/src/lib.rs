//! Minimal offline shim for `crossbeam`: a multi-producer multi-consumer
//! unbounded channel and a `WaitGroup`, built on `Mutex` + `Condvar`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded MPMC channel; cloneable so several
    /// workers can pull from one queue.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.shared
                .state
                .lock()
                .unwrap()
                .queue
                .pop_front()
                .ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().receivers -= 1;
        }
    }
}

pub mod sync {
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner {
        count: Mutex<usize>,
        zero: Condvar,
    }

    /// Barrier that waits for all clones to be dropped.
    pub struct WaitGroup {
        inner: Arc<Inner>,
    }

    impl WaitGroup {
        pub fn new() -> WaitGroup {
            WaitGroup {
                inner: Arc::new(Inner {
                    count: Mutex::new(1),
                    zero: Condvar::new(),
                }),
            }
        }

        /// Drops this handle and blocks until every other clone is dropped.
        pub fn wait(self) {
            let inner = Arc::clone(&self.inner);
            drop(self);
            let mut n = inner.count.lock().unwrap();
            while *n > 0 {
                n = inner.zero.wait(n).unwrap();
            }
        }
    }

    impl Default for WaitGroup {
        fn default() -> Self {
            WaitGroup::new()
        }
    }

    impl Clone for WaitGroup {
        fn clone(&self) -> Self {
            *self.inner.count.lock().unwrap() += 1;
            WaitGroup {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl Drop for WaitGroup {
        fn drop(&mut self) {
            let mut n = self.inner.count.lock().unwrap();
            *n -= 1;
            if *n == 0 {
                drop(n);
                self.inner.zero.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};
    use super::sync::WaitGroup;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn mpmc_channel_distributes_work() {
        let (tx, rx) = unbounded::<u32>();
        let sum = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                let sum = Arc::clone(&sum);
                std::thread::spawn(move || {
                    while let Ok(v) = rx.recv() {
                        sum.fetch_add(v as usize, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for v in 1..=100 {
            tx.send(v).unwrap();
        }
        drop(tx); // disconnect: workers drain and exit
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn recv_reports_disconnect_after_drain() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn waitgroup_blocks_until_all_clones_drop() {
        let wg = WaitGroup::new();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let wg = wg.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
                drop(wg);
            });
        }
        wg.wait();
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }
}
