//! Quickstart: create an index, ingest vectors with attributes, build
//! the IVF index, and run ANN + hybrid searches.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use micronn::{
    AttributeDef, Config, Expr, Metric, MicroNN, SearchRequest, SyncMode, ValueType, VectorRecord,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("micronn-quickstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("quickstart.mnn");

    // 1. Configure: 64-d vectors, L2, one indexed attribute + one FTS.
    let mut config = Config::new(64, Metric::L2);
    config.store.sync = SyncMode::Off; // demo speed; Normal for durability
    config.attributes = vec![
        AttributeDef::indexed("category", ValueType::Text),
        AttributeDef::full_text("caption"),
    ];
    let db = MicroNN::create(&path, config)?;

    // 2. Ingest 5,000 vectors (three synthetic "topics").
    println!("ingesting 5,000 vectors...");
    let topics = ["animals", "landscapes", "food"];
    let mut records = Vec::new();
    let mut state = 42u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    };
    for i in 0..5000i64 {
        let topic = (i % 3) as usize;
        let mut v = vec![0f32; 64];
        for (j, x) in v.iter_mut().enumerate() {
            *x = (topic as f32) * 8.0 + ((j % 5) as f32) + rnd();
        }
        records.push(
            VectorRecord::new(i, v)
                .with_attr("category", topics[topic])
                .with_attr(
                    "caption",
                    format!("a photo of {} number {i}", topics[topic]),
                ),
        );
    }
    db.upsert_batch(&records)?;

    // 3. Build the IVF index (mini-batch balanced k-means).
    let report = db.rebuild()?;
    println!(
        "built index: {} vectors -> {} partitions in {:?} (training {:?})",
        report.vectors, report.partitions, report.total_time, report.train_time
    );

    // 4. Plain ANN search.
    let query = db.get_vector(123)?.expect("vector 123 exists");
    let t = std::time::Instant::now();
    let hits = db.search(&query, 10)?;
    println!(
        "\ntop-10 ANN in {:?} (scanned {} vectors across {} partitions):",
        t.elapsed(),
        hits.info.vectors_scanned,
        hits.info.partitions_scanned
    );
    for r in &hits.results {
        println!("  asset {:>5}  distance {:.4}", r.asset_id, r.distance);
    }

    // 5. Hybrid search: filter by attribute; the optimizer chooses the
    //    plan from selectivity estimates.
    let req = SearchRequest::new(query.clone(), 5).with_filter(Expr::eq("category", "animals"));
    let hits = db.search_with(&req)?;
    println!("\nhybrid (category = animals), plan = {}:", hits.info.plan);
    for r in &hits.results {
        println!("  asset {:>5}  distance {:.4}", r.asset_id, r.distance);
    }

    // 6. Full-text MATCH filter (query near the "food" topic).
    let food_query = db.get_vector(2)?.expect("vector 2 exists");
    let req = SearchRequest::new(food_query, 5).with_filter(Expr::matches("caption", "food photo"));
    let hits = db.search_with(&req)?;
    println!(
        "\nhybrid (caption MATCH 'food photo'), plan = {}:",
        hits.info.plan
    );
    for r in &hits.results {
        println!("  asset {:>5}  distance {:.4}", r.asset_id, r.distance);
    }

    // 7. Streaming updates: visible immediately via the delta store.
    db.upsert(VectorRecord::new(999_999, vec![100.0; 64]).with_attr("category", "new"))?;
    let fresh = db.search(&vec![100.0; 64], 1)?;
    println!(
        "\nfreshly inserted asset found immediately: asset {} at distance {}",
        fresh.results[0].asset_id, fresh.results[0].distance
    );

    let stats = db.stats()?;
    println!(
        "\nstats: {} vectors ({} in delta), {} partitions, avg size {:.1}, pool {} KiB resident",
        stats.total_vectors,
        stats.delta_vectors,
        stats.partitions,
        stats.avg_partition_size,
        stats.resident_bytes / 1024
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
