//! Interactive semantic search (Example 1 of the paper): a photo
//! library on a personal device.
//!
//! Photos arrive and disappear continuously (camera, sync, deletions);
//! searches combine embedding similarity with date-range and location
//! filters; background maintenance folds the delta store into the IVF
//! index and eventually triggers rebuilds — all while concurrent
//! readers keep serving consistent results.
//!
//! ```sh
//! cargo run --release --example semantic_search
//! ```

use micronn::{
    AttributeDef, Config, Expr, MaintenanceAction, Metric, MicroNN, SearchRequest, SyncMode,
    ValueType, VectorRecord,
};
use micronn_datasets::gaussian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 128;

/// A fake CLIP-style embedder: deterministic direction per concept.
fn embed(concept: usize, rng: &mut StdRng) -> Vec<f32> {
    let mut base = StdRng::seed_from_u64(7_000 + concept as u64);
    let mut v: Vec<f32> = (0..DIM).map(|_| base.gen_range(-1.0f32..1.0)).collect();
    for x in v.iter_mut() {
        *x += 0.2 * gaussian(rng);
    }
    v
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("micronn-semsearch-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    let mut config = Config::new(DIM, Metric::Cosine);
    config.store.sync = SyncMode::Off;
    config.delta_flush_threshold = 500;
    config.attributes = vec![
        AttributeDef::indexed("location", ValueType::Text),
        AttributeDef::indexed("taken_at", ValueType::Integer),
        AttributeDef::full_text("caption"),
    ];
    let db = MicroNN::create(dir.join("photos.mnn"), config)?;

    // The library: 20k photos across 12 concepts, mostly taken at home
    // (Seattle), a few on a New York trip — the paper's selectivity
    // running example.
    println!("importing 20,000 photos...");
    let mut rng = StdRng::seed_from_u64(11);
    let concepts = [
        "cat", "dog", "beach", "mountain", "food", "car", "flower", "snow", "city", "lake",
        "concert", "museum",
    ];
    let mut batch = Vec::new();
    for i in 0..20_000i64 {
        let concept = rng.gen_range(0..concepts.len());
        let on_trip = rng.gen_bool(0.002); // ~40 trip photos
        let location = if on_trip { "NewYork" } else { "Seattle" };
        let taken_at = 1_700_000_000 + i * 60;
        batch.push(
            VectorRecord::new(i, embed(concept, &mut rng))
                .with_attr("location", location)
                .with_attr("taken_at", taken_at)
                .with_attr("caption", format!("a photo of a {}", concepts[concept])),
        );
        if batch.len() == 2000 {
            db.upsert_batch(&batch)?;
            batch.clear();
        }
    }
    db.upsert_batch(&batch)?;
    let report = db.rebuild()?;
    println!(
        "index built: {} partitions over {} photos in {:?}\n",
        report.partitions, report.vectors, report.total_time
    );

    // --- Interactive query 1: plain semantic search -------------------
    let cat_query = embed(0, &mut rng);
    let t = std::time::Instant::now();
    let hits = db.search(&cat_query, 10)?;
    println!(
        "\"cat\" search: {:?}, top hit asset {}",
        t.elapsed(),
        hits.results[0].asset_id
    );

    // --- Interactive query 2: highly selective trip filter ------------
    // Only ~0.2% of photos qualify: the optimizer should pre-filter for
    // 100% recall at tiny cost.
    let req =
        SearchRequest::new(cat_query.clone(), 10).with_filter(Expr::eq("location", "NewYork"));
    let t = std::time::Instant::now();
    let hits = db.search_with(&req)?;
    println!(
        "\"cat in New York\": {:?}, plan = {}, {} results (all from the trip)",
        t.elapsed(),
        hits.info.plan,
        hits.results.len()
    );

    // --- Interactive query 3: date range + text -----------------------
    let recent =
        Expr::ge("taken_at", 1_700_000_000 + 15_000 * 60i64).and(Expr::matches("caption", "beach"));
    let hits = db.search_with(&SearchRequest::new(embed(2, &mut rng), 10).with_filter(recent))?;
    println!(
        "\"recent beach photos\": plan = {}, {} results",
        hits.info.plan,
        hits.results.len()
    );

    // --- Live updates while a background reader runs ------------------
    println!("\nsimulating sync: 1,500 new photos + deletions while searching...");
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let reader_db = db.clone();
        let q = cat_query.clone();
        let stop_ref = &stop;
        let reader = s.spawn(move || {
            let mut searches = 0u64;
            while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                let r = reader_db.search(&q, 10).expect("search during writes");
                assert!(!r.results.is_empty());
                searches += 1;
            }
            searches
        });
        let mut rng = StdRng::seed_from_u64(13);
        for i in 0..1500i64 {
            let concept = rng.gen_range(0..concepts.len());
            db.upsert(
                VectorRecord::new(100_000 + i, embed(concept, &mut rng))
                    .with_attr("location", "Seattle")
                    .with_attr("taken_at", 1_800_000_000 + i)
                    .with_attr(
                        "caption",
                        format!("synced photo of a {}", concepts[concept]),
                    ),
            )
            .expect("upsert");
            if i % 300 == 0 {
                db.delete(i * 3).expect("delete");
            }
        }
        // Background maintenance: run whatever the monitor asks —
        // flushes, local splits/merges, and (rarely) a full rebuild —
        // chained until the index is healthy again.
        let report = db.maybe_maintain().expect("maintain");
        if report.actions.is_empty() {
            println!("maintenance: healthy");
        }
        for action in &report.actions {
            match action {
                MaintenanceAction::Flushed(f) => println!(
                    "maintenance: flushed {} delta vectors into {} partitions",
                    f.flushed, f.partitions_touched
                ),
                MaintenanceAction::Split(s) => println!(
                    "maintenance: split partition {} into {} new partitions",
                    s.partition,
                    s.new_partitions.len()
                ),
                MaintenanceAction::Merged(m) => println!(
                    "maintenance: merged partition {} into {}",
                    m.partition, m.target
                ),
                MaintenanceAction::Retrained(r) => println!(
                    "maintenance: retrained quantization ranges of partition {} ({} codes)",
                    r.partition, r.encoded
                ),
                MaintenanceAction::Rebuilt(r) => {
                    println!("maintenance: full rebuild into {} partitions", r.partitions)
                }
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let searches = reader.join().unwrap();
        println!("reader completed {searches} consistent searches during the sync");
    });

    let stats = db.stats()?;
    println!(
        "\nfinal: {} photos, {} in delta, {} partitions (avg {:.1} vectors), epoch {}",
        stats.total_vectors,
        stats.delta_vectors,
        stats.partitions,
        stats.avg_partition_size,
        stats.epoch
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
