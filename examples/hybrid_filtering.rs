//! Hybrid query optimizer walkthrough: how pre-filtering,
//! post-filtering, and the optimizer behave across predicate
//! selectivities (a miniature of the paper's Figure 7).
//!
//! ```sh
//! cargo run --release --example hybrid_filtering
//! ```

use micronn::{
    AttributeDef, Config, Expr, MicroNN, PlanPreference, SearchRequest, SyncMode, VectorRecord,
};
use micronn_datasets::filtered_tags;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("micronn-hybrid-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    // Tagged corpus with Zipfian tag frequencies (stand-in for the
    // Big-ANN Filtered Search track; see DESIGN.md §3).
    println!("generating tagged corpus...");
    let workload = filtered_tags(20_000, 64, 300, 6, 5, 0xF17);

    let mut config = Config::new(workload.dim, workload.metric);
    config.store.sync = SyncMode::Off;
    config.default_probes = 8;
    config.attributes = vec![AttributeDef::full_text("tags")];
    let db = MicroNN::create(dir.join("tagged.mnn"), config)?;
    let records: Vec<VectorRecord> = workload
        .assets
        .iter()
        .map(|a| VectorRecord::new(a.asset_id, a.vector.clone()).with_attr("tags", a.tags.clone()))
        .collect();
    for chunk in records.chunks(2000) {
        db.upsert_batch(chunk)?;
    }
    db.rebuild()?;

    println!(
        "\n{:>12} {:>12} {:>10} | {:>9} {:>9} {:>9} | {:>9} {:>9}",
        "selectivity",
        "plan chosen",
        "est.F",
        "pre(ms)",
        "post(ms)",
        "opt(ms)",
        "pre.rec",
        "post.rec"
    );
    for bin in workload.bins.iter() {
        let Some(q) = bin.first() else { continue };
        let filter = q
            .tags
            .iter()
            .skip(1)
            .fold(Expr::matches("tags", q.tags[0].clone()), |acc, t| {
                acc.and(Expr::matches("tags", t.clone()))
            });

        // Ground truth within the filter.
        let truth = db.exact(&q.vector, 100, Some(&filter))?;
        let truth_ids: std::collections::HashSet<i64> =
            truth.results.iter().map(|r| r.asset_id).collect();
        let recall = |resp: &micronn::SearchResponse| {
            if truth_ids.is_empty() {
                return 1.0;
            }
            resp.results
                .iter()
                .filter(|r| truth_ids.contains(&r.asset_id))
                .count() as f64
                / truth_ids.len() as f64
        };

        let run = |plan: PlanPreference| -> Result<(f64, micronn::SearchResponse), micronn::Error> {
            let t = std::time::Instant::now();
            let resp = db.search_with(
                &SearchRequest::new(q.vector.clone(), 100)
                    .with_filter(filter.clone())
                    .with_plan(plan),
            )?;
            Ok((t.elapsed().as_secs_f64() * 1e3, resp))
        };
        let (pre_ms, pre) = run(PlanPreference::ForcePreFilter)?;
        let (post_ms, post) = run(PlanPreference::ForcePostFilter)?;
        let (opt_ms, opt) = run(PlanPreference::Auto)?;
        let est = db.estimate_filter_selectivity(&filter)?;
        println!(
            "{:>12.2e} {:>12} {:>10.2e} | {:>9.2} {:>9.2} {:>9.2} | {:>9.2} {:>9.2}",
            q.selectivity,
            opt.info.plan.to_string(),
            est,
            pre_ms,
            post_ms,
            opt_ms,
            recall(&pre),
            recall(&post),
        );
    }

    println!("\npre-filtering always reaches recall 1.0; post-filtering is fast but");
    println!("starves on selective predicates; the optimizer switches between them");
    println!("at F_IVF = n*t/|R| (Eq. 2 of the paper).");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
