//! Visual analytics (Example 2 of the paper): batch related-item
//! grouping over an asset collection.
//!
//! A background analytics job processes *many* target assets at once to
//! build topically-related groups. The batch multi-query optimizer
//! shares partition scans across the whole batch (one disk pass per
//! partition + one matrix multiplication per partition/query group),
//! which is where the paper's ≥30% amortized latency cut at batch 512
//! comes from.
//!
//! ```sh
//! cargo run --release --example visual_analytics
//! ```

use micronn::{Config, Metric, MicroNN, SyncMode, VectorRecord};
use micronn_datasets::{generate, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("micronn-analytics-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    // A scaled-down InternalA-like corpus (512-d cosine).
    let spec = DatasetSpec {
        name: "analytics",
        dim: 512,
        n_vectors: 12_000,
        n_queries: 512,
        metric: Metric::Cosine,
        clusters: 40,
        spread: 0.13,
        seed: 0xBEEF,
    };
    println!("generating {} x {}-d corpus...", spec.n_vectors, spec.dim);
    let data = generate(&spec);

    let mut config = Config::new(spec.dim, spec.metric);
    config.store.sync = SyncMode::Off;
    config.target_partition_size = 100;
    config.default_probes = 8;
    let db = MicroNN::create(dir.join("assets.mnn"), config)?;
    let records: Vec<VectorRecord> = (0..data.len())
        .map(|i| VectorRecord::new(i as i64, data.vector(i).to_vec()))
        .collect();
    for chunk in records.chunks(2000) {
        db.upsert_batch(chunk)?;
    }
    let report = db.rebuild()?;
    println!(
        "index: {} partitions in {:?}\n",
        report.partitions, report.total_time
    );

    // The analytics job: find the 20 nearest assets for 512 targets.
    let targets: Vec<Vec<f32>> = (0..spec.n_queries)
        .map(|i| data.query(i).to_vec())
        .collect();

    println!("batch sizes vs amortized per-query latency (k=20, n=8):");
    println!(
        "{:>10} {:>14} {:>16} {:>12}",
        "batch", "total (ms)", "per query (ms)", "speedup"
    );
    let mut sequential_per_query = 0.0f64;
    for &batch_size in &[1usize, 32, 128, 512] {
        let batch = &targets[..batch_size];
        let t = std::time::Instant::now();
        let response = db.batch_search(batch, 20, None)?;
        let total = t.elapsed().as_secs_f64() * 1e3;
        let per_query = total / batch_size as f64;
        if batch_size == 1 {
            sequential_per_query = per_query;
        }
        println!(
            "{:>10} {:>14.2} {:>16.3} {:>11.2}x",
            batch_size,
            total,
            per_query,
            sequential_per_query / per_query
        );
        assert_eq!(response.results.len(), batch_size);
    }

    // Build the topical groups from the batch results.
    let t = std::time::Instant::now();
    let response = db.batch_search(&targets, 20, None)?;
    println!(
        "\nfull batch of {} targets in {:?} ({} partitions scanned once, {} distance computations)",
        targets.len(),
        t.elapsed(),
        response.partitions_scanned,
        response.distance_computations
    );

    // Union-find style grouping: targets sharing ≥ 5 of their top-20
    // related assets are considered one topical group.
    let mut group_of: Vec<usize> = (0..targets.len()).collect();
    fn find(g: &mut Vec<usize>, i: usize) -> usize {
        if g[i] != i {
            let root = find(g, g[i]);
            g[i] = root;
        }
        g[i]
    }
    let sets: Vec<std::collections::HashSet<i64>> = response
        .results
        .iter()
        .map(|rs| rs.iter().map(|r| r.asset_id).collect())
        .collect();
    for i in 0..targets.len() {
        for j in (i + 1)..targets.len() {
            if sets[i].intersection(&sets[j]).count() >= 5 {
                let (a, b) = (find(&mut group_of, i), find(&mut group_of, j));
                if a != b {
                    group_of[a] = b;
                }
            }
        }
    }
    let mut group_sizes = std::collections::HashMap::new();
    for i in 0..targets.len() {
        *group_sizes.entry(find(&mut group_of, i)).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = group_sizes.values().copied().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "built {} topical groups; largest: {:?}",
        sizes.len(),
        &sizes[..sizes.len().min(8)]
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
