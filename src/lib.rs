//! `micronn-suite`: umbrella package hosting the workspace's integration
//! tests (`tests/`) and runnable examples (`examples/`).
//!
//! The actual library lives in the [`micronn`] crate; this package simply
//! re-exports the public crates so examples and tests can use one import
//! root.

pub use micronn;
pub use micronn_cluster;
pub use micronn_datasets;
pub use micronn_linalg;
pub use micronn_rel;
pub use micronn_storage;
pub use micronn_telemetry;
