//! Cross-crate integration tests: the full stack from the page store
//! through the relational layer to the vector database, exercised with
//! the synthetic evaluation workloads.

use micronn::{
    AttributeDef, Config, Expr, Metric, MicroNN, SearchRequest, SyncMode, ValueType, VectorRecord,
};
use micronn_datasets::{filtered_tags, generate, ground_truth, recall, DatasetSpec};

fn small_spec(name: &'static str, dim: usize, n: usize, metric: Metric) -> DatasetSpec {
    DatasetSpec {
        name,
        dim,
        n_vectors: n,
        n_queries: 30,
        metric,
        clusters: 12,
        spread: 0.12,
        seed: 0xD15C,
    }
}

fn build_db(dir: &std::path::Path, spec: &DatasetSpec) -> (MicroNN, micronn_datasets::Dataset) {
    let data = generate(spec);
    let mut cfg = Config::new(spec.dim, spec.metric);
    cfg.store.sync = SyncMode::Off;
    cfg.target_partition_size = 64;
    cfg.default_probes = 6;
    let db = MicroNN::create(dir.join(format!("{}.mnn", spec.name)), cfg).unwrap();
    let records: Vec<VectorRecord> = (0..data.len())
        .map(|i| VectorRecord::new(i as i64, data.vector(i).to_vec()))
        .collect();
    for chunk in records.chunks(2000) {
        db.upsert_batch(chunk).unwrap();
    }
    db.rebuild().unwrap();
    (db, data)
}

#[test]
fn recall_against_ground_truth_l2_and_cosine() {
    let dir = tempfile::tempdir().unwrap();
    for spec in [
        small_spec("l2ds", 32, 4000, Metric::L2),
        small_spec("cosds", 48, 4000, Metric::Cosine),
    ] {
        let (db, data) = build_db(dir.path(), &spec);
        let truth = ground_truth(&data, 10, 4);
        let mut total = 0.0;
        let probes = (db.stats().unwrap().partitions as usize / 2).max(4);
        for (qi, t) in truth.iter().enumerate().take(data.spec.n_queries) {
            let got = db
                .search_with(&SearchRequest::new(data.query(qi).to_vec(), 10).with_probes(probes))
                .unwrap();
            let ids: Vec<i64> = got.results.iter().map(|r| r.asset_id).collect();
            total += recall(&ids, t);
        }
        let avg = total / data.spec.n_queries as f64;
        assert!(avg >= 0.9, "{}: recall {avg}", spec.name);
    }
}

#[test]
fn durability_of_a_full_vector_workload_across_crash() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("crash.mnn");
    let spec = small_spec("crash", 24, 2000, Metric::L2);
    let data = generate(&spec);
    {
        let mut cfg = Config::new(spec.dim, spec.metric);
        cfg.store.sync = SyncMode::Off;
        cfg.attributes = vec![AttributeDef::indexed("tag", ValueType::Text)];
        let db = MicroNN::create(&path, cfg).unwrap();
        let records: Vec<VectorRecord> = (0..data.len())
            .map(|i| {
                VectorRecord::new(i as i64, data.vector(i).to_vec())
                    .with_attr("tag", if i % 2 == 0 { "even" } else { "odd" })
            })
            .collect();
        db.upsert_batch(&records).unwrap();
        db.rebuild().unwrap();
        db.delete_batch(&[0, 1, 2]).unwrap();
        db.upsert(VectorRecord::new(50_000, vec![9.0; 24]).with_attr("tag", "special"))
            .unwrap();
        // No checkpoint, no clean close: WAL recovery must restore all
        // of it.
    }
    let mut cfg = Config::default();
    cfg.store.sync = SyncMode::Off;
    let db = MicroNN::open(&path, cfg).unwrap();
    assert_eq!(db.len().unwrap(), 2000 - 3 + 1);
    assert!(!db.contains(1).unwrap());
    assert!(db.contains(50_000).unwrap());
    // Index survives: hybrid search over the recovered attribute index.
    let got = db
        .search_with(&SearchRequest::new(vec![9.0; 24], 1).with_filter(Expr::eq("tag", "special")))
        .unwrap();
    assert_eq!(got.results[0].asset_id, 50_000);
}

#[test]
fn hybrid_workload_end_to_end_with_fts() {
    let dir = tempfile::tempdir().unwrap();
    let workload = filtered_tags(4000, 24, 120, 4, 4, 0xF00D);
    let mut cfg = Config::new(workload.dim, workload.metric);
    cfg.store.sync = SyncMode::Off;
    cfg.attributes = vec![AttributeDef::full_text("tags")];
    let db = MicroNN::create(dir.path().join("tags.mnn"), cfg).unwrap();
    let records: Vec<VectorRecord> = workload
        .assets
        .iter()
        .map(|a| VectorRecord::new(a.asset_id, a.vector.clone()).with_attr("tags", a.tags.clone()))
        .collect();
    db.upsert_batch(&records).unwrap();
    db.rebuild().unwrap();

    for bin in &workload.bins {
        for q in bin.iter().take(2) {
            let filter = q
                .tags
                .iter()
                .skip(1)
                .fold(Expr::matches("tags", q.tags[0].clone()), |acc, t| {
                    acc.and(Expr::matches("tags", t.clone()))
                });
            let got = db
                .search_with(&SearchRequest::new(q.vector.clone(), 10).with_filter(filter.clone()))
                .unwrap();
            // Every hit must genuinely carry all query tags.
            for hit in &got.results {
                let attrs = db.get_attributes(hit.asset_id).unwrap().unwrap();
                let tags = attrs
                    .iter()
                    .find(|(n, _)| n == "tags")
                    .and_then(|(_, v)| v.as_text().map(str::to_owned))
                    .unwrap();
                let set: std::collections::HashSet<&str> = tags.split(' ').collect();
                assert!(
                    q.tags.iter().all(|t| set.contains(t.as_str())),
                    "hit {} lacks a query tag",
                    hit.asset_id
                );
            }
        }
    }
}

#[test]
fn reader_snapshot_stable_through_rebuild_and_updates() {
    // The §2.1 consistency requirement, observed at the public API:
    // results from one logical reader (here: repeated searches pinned
    // by a long-lived read txn in another thread) stay consistent while
    // the writer rebuilds.
    let dir = tempfile::tempdir().unwrap();
    let spec = small_spec("consistency", 16, 3000, Metric::L2);
    let (db, data) = build_db(dir.path(), &spec);

    let barrier = std::sync::Barrier::new(2);
    std::thread::scope(|s| {
        let db2 = db.clone();
        let q = data.query(0).to_vec();
        let barrier = &barrier;
        s.spawn(move || {
            barrier.wait();
            for _ in 0..50 {
                let got = db2.search(&q, 10).unwrap();
                assert_eq!(got.results.len(), 10);
                for w in got.results.windows(2) {
                    assert!(w[0].distance <= w[1].distance);
                }
            }
        });
        barrier.wait();
        for i in 0..300 {
            db.upsert(VectorRecord::new(
                90_000 + i,
                data.vector((i as usize) % data.len()).to_vec(),
            ))
            .unwrap();
        }
        db.rebuild().unwrap();
    });
    assert_eq!(db.len().unwrap(), 3300);
}

#[test]
fn device_profiles_bound_cache_memory() {
    use micronn::DeviceProfile;
    let dir = tempfile::tempdir().unwrap();
    let spec = small_spec("profile", 64, 5000, Metric::L2);
    let data = generate(&spec);
    let mut resident = Vec::new();
    for profile in [DeviceProfile::Small, DeviceProfile::Large] {
        let mut cfg = Config::new(spec.dim, spec.metric);
        cfg.store = profile.store_options();
        cfg.workers = profile.workers();
        let db = MicroNN::create(dir.path().join(format!("{profile:?}.mnn")), cfg).unwrap();
        let records: Vec<VectorRecord> = (0..data.len())
            .map(|i| VectorRecord::new(i as i64, data.vector(i).to_vec()))
            .collect();
        db.upsert_batch(&records).unwrap();
        db.rebuild().unwrap();
        for qi in 0..20 {
            db.search(data.query(qi), 10).unwrap();
        }
        let stats = db.stats().unwrap();
        assert!(
            stats.resident_bytes <= profile.store_options().pool_bytes + 64 * 1024,
            "{profile:?}: resident {} exceeds pool budget",
            stats.resident_bytes
        );
        resident.push(stats.resident_bytes);
    }
    // The small profile must actually cap memory below the large one.
    assert!(resident[0] < resident[1]);
}

#[test]
fn cold_start_vs_warm_cache_io() {
    let dir = tempfile::tempdir().unwrap();
    let spec = small_spec("coldwarm", 32, 4000, Metric::L2);
    let (db, data) = build_db(dir.path(), &spec);
    db.checkpoint().unwrap();

    // Warm up.
    for qi in 0..10 {
        db.search(data.query(qi), 10).unwrap();
    }
    let warm_before = db.stats().unwrap().store;
    db.search(data.query(0), 10).unwrap();
    let warm_reads = db.stats().unwrap().store.since(&warm_before).disk_reads();

    db.purge_caches();
    let cold_before = db.stats().unwrap().store;
    db.search(data.query(0), 10).unwrap();
    let cold_reads = db.stats().unwrap().store.since(&cold_before).disk_reads();
    assert!(
        cold_reads > warm_reads + 5,
        "cold start must hit disk: cold {cold_reads} vs warm {warm_reads}"
    );
}
