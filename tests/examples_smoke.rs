//! Smoke tests for the runnable examples: every example binary must
//! build, and the quickstart path (create → upsert → rebuild → search →
//! hybrid search → reopen) must work end-to-end on a tempdir.

use micronn::{
    AttributeDef, Config, Expr, Metric, MicroNN, SearchRequest, SyncMode, ValueType, VectorRecord,
};

/// Builds all four `examples/` binaries via cargo. This is the
/// `cargo build --examples` gate from the CI checklist, kept as a test
/// so a plain `cargo test` catches bit-rot in example code.
#[test]
fn examples_build() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml");
    let status = std::process::Command::new(cargo)
        .args(["build", "--examples", "--manifest-path", manifest])
        .status()
        .expect("failed to spawn cargo");
    assert!(status.success(), "cargo build --examples failed");
}

/// The quickstart flow from the README / `examples/quickstart.rs`,
/// shrunk to test size and run against a tempdir.
#[test]
fn quickstart_path_end_to_end() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("smoke.mnn");

    let mut config = Config::new(8, Metric::L2);
    config.store.sync = SyncMode::Off;
    config.attributes = vec![AttributeDef::indexed("category", ValueType::Text)];
    let db = MicroNN::create(&path, config).unwrap();

    // Three well-separated clusters with a category attribute.
    let categories = ["animals", "landscapes", "food"];
    for i in 0..600i64 {
        let c = (i % 3) as usize;
        let base = c as f32 * 10.0;
        let v: Vec<f32> = (0..8)
            .map(|j| base + (i as f32 * 0.001) + j as f32 * 0.01)
            .collect();
        db.upsert(VectorRecord::new(i, v).with_attr("category", categories[c]))
            .unwrap();
    }
    db.rebuild().unwrap();

    // Plain ANN: nearest to cluster 1's center must come from cluster 1.
    let query: Vec<f32> = (0..8).map(|j| 10.0 + j as f32 * 0.01).collect();
    let hits = db.search(&query, 5).unwrap();
    assert_eq!(hits.results.len(), 5);
    for r in &hits.results {
        assert_eq!(
            r.asset_id % 3,
            1,
            "ANN hit from wrong cluster: id {}",
            r.asset_id
        );
    }

    // Hybrid: restrict to a different category; all hits must obey it.
    let req = SearchRequest::new(query.clone(), 5).with_filter(Expr::eq("category", "food"));
    let hybrid = db.search_with(&req).unwrap();
    assert!(!hybrid.results.is_empty());
    for r in &hybrid.results {
        assert_eq!(
            r.asset_id % 3,
            2,
            "hybrid hit outside filter: id {}",
            r.asset_id
        );
    }

    // Streaming update visible without a rebuild: an exact-match vector
    // (distance 0, strictly closer than any ingested point).
    db.upsert(VectorRecord::new(10_000, query.clone()).with_attr("category", "animals"))
        .unwrap();
    let hits = db.search(&query, 1).unwrap();
    assert_eq!(
        hits.results[0].asset_id, 10_000,
        "delta-store insert must win top-1"
    );

    // Delete is visible too.
    db.delete(10_000).unwrap();
    let hits = db.search(&query, 1).unwrap();
    assert_ne!(hits.results[0].asset_id, 10_000);

    // Reopen from disk: state survives.
    drop(db);
    let mut reopen_cfg = Config::new(0, Metric::L2);
    reopen_cfg.store.sync = SyncMode::Off;
    let db = MicroNN::open(&path, reopen_cfg).unwrap();
    let hits = db.search(&query, 5).unwrap();
    assert_eq!(hits.results.len(), 5);
    for r in &hits.results {
        assert_eq!(r.asset_id % 3, 1);
    }

    // The library-level integrity walk is clean...
    assert!(db.verify_integrity().unwrap().is_clean());
    drop(db);
    // ...and so says the operator tool: `micronnctl fsck` shares the
    // same walker and must exit zero with its per-check counts.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml");
    let out = std::process::Command::new(cargo)
        .args([
            "run",
            "-q",
            "-p",
            "micronn",
            "--bin",
            "micronnctl",
            "--manifest-path",
            manifest,
            "--",
            "fsck",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("failed to spawn cargo run micronnctl");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "micronnctl fsck failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("ok: no corruption found"), "{stdout}");
    assert!(stdout.contains("partitions walked"), "{stdout}");
}
