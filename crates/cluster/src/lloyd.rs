//! Full-memory Lloyd's k-means: the quantizer of the paper's InMemory
//! baseline (§4.1.4), which "needs to buffer all vectors in memory and
//! thus has a significantly larger memory footprint" (Figure 6b).
//! Figure 8 compares mini-batch clustering quality against this.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use micronn_linalg::Metric;

use crate::model::Clustering;

/// Configuration for [`train`].
#[derive(Debug, Clone)]
pub struct LloydConfig {
    /// Target vectors per cluster; `k = max(1, n/t)`.
    pub target_cluster_size: usize,
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Stop early once total centroid movement (squared) per dimension
    /// falls below this.
    pub tolerance: f32,
    /// RNG seed.
    pub seed: u64,
    /// Distance metric.
    pub metric: Metric,
}

impl Default for LloydConfig {
    fn default() -> Self {
        LloydConfig {
            target_cluster_size: 100,
            max_iterations: 25,
            tolerance: 1e-4,
            seed: 0x5EED,
            metric: Metric::L2,
        }
    }
}

/// Trains k-means over the full in-memory matrix `data (n × dim)`.
/// Deterministic given the seed.
pub fn train(data: &[f32], dim: usize, cfg: &LloydConfig) -> Clustering {
    assert!(dim > 0);
    assert_eq!(data.len() % dim, 0);
    let n = data.len() / dim;
    assert!(n > 0, "cannot cluster an empty vector set");
    let k = (n / cfg.target_cluster_size.max(1)).max(1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // k-means++ init: each next centroid is sampled proportionally to
    // its squared distance from the chosen set, avoiding the local
    // minima plain random seeding falls into.
    let mut centroids = Vec::with_capacity(k * dim);
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(&data[first * dim..(first + 1) * dim]);
    let mut d2: Vec<f64> = data
        .chunks_exact(dim)
        .map(|x| micronn_linalg::l2_sq(x, &centroids[..dim]) as f64)
        .collect();
    while centroids.len() < k * dim {
        let total: f64 = d2.iter().sum();
        let id = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        let new_c = &data[id * dim..(id + 1) * dim];
        centroids.extend_from_slice(new_c);
        for (i, x) in data.chunks_exact(dim).enumerate() {
            let d = micronn_linalg::l2_sq(x, new_c) as f64;
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    let mut clustering = Clustering::new(centroids, dim, cfg.metric);

    let mut assignments = vec![0usize; n];
    let mut sums = vec![0f64; k * dim];
    let mut counts = vec![0usize; k];
    for _iter in 0..cfg.max_iterations {
        // Assignment step (the full-collection pass mini-batch avoids).
        for (i, x) in data.chunks_exact(dim).enumerate() {
            assignments[i] = clustering.nearest(x).0;
        }
        // Update step: arithmetic means.
        sums.iter_mut().for_each(|s| *s = 0.0);
        counts.iter_mut().for_each(|c| *c = 0);
        for (i, x) in data.chunks_exact(dim).enumerate() {
            let c = assignments[i];
            counts[c] += 1;
            for (s, &v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(x) {
                *s += v as f64;
            }
        }
        let mut movement = 0f64;
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: reseed to a random point.
                let id = rng.gen_range(0..n);
                let centroid = clustering.centroid_mut(c);
                centroid.copy_from_slice(&data[id * dim..(id + 1) * dim]);
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            let centroid = clustering.centroid_mut(c);
            for (j, cv) in centroid.iter_mut().enumerate() {
                let new = (sums[c * dim + j] * inv) as f32;
                movement += ((new - *cv) as f64).powi(2);
                *cv = new;
            }
        }
        let mean_movement = movement / (k * dim) as f64;
        if mean_movement < cfg.tolerance as f64 {
            break;
        }
    }
    clustering
}

/// Assigns every vector to its plain nearest centroid.
pub fn assign_all(data: &[f32], dim: usize, clustering: &Clustering) -> Vec<u32> {
    data.chunks_exact(dim)
        .map(|x| clustering.nearest(x).0 as u32)
        .collect()
}

/// Mean distance of each vector to its assigned centroid (inertia /
/// n) — the clustering-quality scalar used by quality comparisons.
pub fn mean_assignment_distance(data: &[f32], dim: usize, clustering: &Clustering) -> f64 {
    let n = data.len() / dim;
    if n == 0 {
        return 0.0;
    }
    let total: f64 = data
        .chunks_exact(dim)
        .map(|x| clustering.nearest(x).1 as f64)
        .sum();
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f32, f32)], per: usize, spread: f32) -> Vec<f32> {
        let mut state = 777u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let mut data = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per {
                data.push(cx + spread * next());
                data.push(cy + spread * next());
            }
        }
        data
    }

    #[test]
    fn recovers_blob_centers() {
        let centers = [(0.0, 0.0), (30.0, 0.0), (0.0, 30.0)];
        let data = blobs(&centers, 300, 1.5);
        let c = train(
            &data,
            2,
            &LloydConfig {
                target_cluster_size: 300,
                ..Default::default()
            },
        );
        assert_eq!(c.k(), 3);
        for &(cx, cy) in &centers {
            let (_, d) = c.nearest(&[cx, cy]);
            assert!(d < 4.0, "missed center ({cx},{cy}): {d}");
        }
        let mad = mean_assignment_distance(&data, 2, &c);
        assert!(mad < 2.0, "tight blobs => small inertia, got {mad}");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(&[(0.0, 0.0), (10.0, 10.0)], 100, 1.0);
        let cfg = LloydConfig {
            target_cluster_size: 50,
            ..Default::default()
        };
        assert_eq!(train(&data, 2, &cfg), train(&data, 2, &cfg));
    }

    #[test]
    fn assign_all_matches_nearest() {
        let data = blobs(&[(0.0, 0.0), (20.0, 20.0)], 50, 1.0);
        let c = train(
            &data,
            2,
            &LloydConfig {
                target_cluster_size: 50,
                ..Default::default()
            },
        );
        let a = assign_all(&data, 2, &c);
        assert_eq!(a.len(), 100);
        for (i, x) in data.chunks_exact(2).enumerate() {
            assert_eq!(a[i] as usize, c.nearest(x).0);
        }
    }

    #[test]
    fn more_clusters_reduce_inertia() {
        let data = blobs(&[(0.0, 0.0), (8.0, 0.0), (0.0, 8.0), (8.0, 8.0)], 200, 2.0);
        let coarse = train(
            &data,
            2,
            &LloydConfig {
                target_cluster_size: 800, // k=1
                ..Default::default()
            },
        );
        let fine = train(
            &data,
            2,
            &LloydConfig {
                target_cluster_size: 100, // k=8
                ..Default::default()
            },
        );
        assert!(
            mean_assignment_distance(&data, 2, &fine) < mean_assignment_distance(&data, 2, &coarse)
        );
    }
}
