//! Streaming access to training vectors.
//!
//! The whole point of the paper's indexing algorithm (§3.1) is that
//! clustering must not require "the entire vector set to be buffered in
//! memory". [`VectorSource`] abstracts random-access batch gathering so
//! mini-batch k-means can stream samples straight from the disk
//!-resident vector table; [`SliceSource`] adapts an in-memory matrix
//! for the InMemory baseline and for tests.

use std::fmt;

/// Error raised by a vector source (e.g. a storage failure while
/// gathering a batch from disk).
#[derive(Debug)]
pub struct SourceError(pub Box<dyn std::error::Error + Send + Sync + 'static>);

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vector source error: {}", self.0)
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.0.as_ref())
    }
}

impl SourceError {
    /// Wraps any error as a source error.
    pub fn new(e: impl std::error::Error + Send + Sync + 'static) -> SourceError {
        SourceError(Box::new(e))
    }

    /// Wraps a message as a source error.
    pub fn msg(m: impl Into<String>) -> SourceError {
        #[derive(Debug)]
        struct Msg(String);
        impl fmt::Display for Msg {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }
        impl std::error::Error for Msg {}
        SourceError(Box::new(Msg(m.into())))
    }
}

/// Random-access batched vector supplier.
pub trait VectorSource {
    /// Number of vectors available.
    fn len(&self) -> usize;

    /// True when the source holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vector dimensionality.
    fn dim(&self) -> usize;

    /// Appends the vectors at `ids` (row-major) to `out`. `out` is
    /// cleared first; after return it holds `ids.len() * dim` floats.
    fn gather(&self, ids: &[usize], out: &mut Vec<f32>) -> Result<(), SourceError>;
}

/// A [`VectorSource`] over a flat in-memory row-major matrix.
pub struct SliceSource<'a> {
    data: &'a [f32],
    dim: usize,
}

impl<'a> SliceSource<'a> {
    /// Wraps `data` (`len × dim`, row-major).
    pub fn new(data: &'a [f32], dim: usize) -> SliceSource<'a> {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data length not a multiple of dim");
        SliceSource { data, dim }
    }
}

impl VectorSource for SliceSource<'_> {
    fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn gather(&self, ids: &[usize], out: &mut Vec<f32>) -> Result<(), SourceError> {
        out.clear();
        out.reserve(ids.len() * self.dim);
        for &id in ids {
            let start = id * self.dim;
            let row = self
                .data
                .get(start..start + self.dim)
                .ok_or_else(|| SourceError::msg(format!("vector id {id} out of range")))?;
            out.extend_from_slice(row);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_source_gathers() {
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let s = SliceSource::new(&data, 3);
        assert_eq!(s.len(), 4);
        assert_eq!(s.dim(), 3);
        let mut out = vec![99.0];
        s.gather(&[2, 0], &mut out).unwrap();
        assert_eq!(out, vec![6.0, 7.0, 8.0, 0.0, 1.0, 2.0]);
        assert!(s.gather(&[4], &mut out).is_err());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bad_shape_panics() {
        SliceSource::new(&[1.0; 7], 3);
    }

    #[test]
    fn error_wrapping() {
        let e = SourceError::msg("boom");
        assert!(e.to_string().contains("boom"));
        let io = std::io::Error::other("disk");
        let e = SourceError::new(io);
        assert!(std::error::Error::source(&e).is_some());
    }
}
