//! Mini-batch k-means with flexible balance constraints — the paper's
//! Algorithm 1.
//!
//! Two deviations from textbook k-means make the quantizer fit
//! on-device constraints (§3.1):
//!
//! 1. **Mini-batches** (Sculley \[35\]): each iteration samples a small
//!    uniform batch through the streaming [`VectorSource`], so memory
//!    is `O(batch + k·dim)` instead of `O(n·dim)` — this is what
//!    Figures 6b and 8b measure.
//! 2. **Balance penalty** (Liu et al. \[22\]): the `NEAREST` step scales
//!    each centroid's distance by a factor that grows with the
//!    cluster's current size, so "vectors are spread out among nearby
//!    clusters instead of creating a few 'mega' clusters".
//!
//! Centroids update with per-center learning rate `η = 1/v[c]`
//! (Algorithm 1 lines 9–13); the final pass assigns every vector to a
//! centroid, optionally re-applying the balance penalty.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use micronn_linalg::Metric;

use crate::model::Clustering;
use crate::source::{SourceError, VectorSource};

/// Configuration for [`train`].
#[derive(Debug, Clone)]
pub struct MiniBatchConfig {
    /// Target vectors per cluster `t`; `k = max(1, n/t)`. The paper
    /// defaults to 100 vectors per cluster.
    pub target_cluster_size: usize,
    /// Mini-batch size `s`. Figure 8 sweeps this from 0.04% to 100% of
    /// the collection.
    pub batch_size: usize,
    /// Number of iterations `n`; `0` picks enough iterations to touch
    /// roughly five times the collection size in samples.
    pub iterations: usize,
    /// Balance penalty weight λ; `0` disables balancing.
    pub balance_lambda: f32,
    /// Whether the final full assignment pass also applies the balance
    /// penalty (keeps partition sizes near the target).
    pub balanced_assignment: bool,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Distance metric.
    pub metric: Metric,
}

impl Default for MiniBatchConfig {
    fn default() -> Self {
        MiniBatchConfig {
            target_cluster_size: 100,
            batch_size: 1024,
            iterations: 0,
            balance_lambda: 0.5,
            balanced_assignment: true,
            seed: 0x5EED,
            metric: Metric::L2,
        }
    }
}

/// `NEAREST(C, v, x)`: index of the centroid minimizing the
/// size-penalized distance `d(x, c) · (1 + λ · v[c]/scale)`.
fn nearest_penalized(
    clustering: &Clustering,
    counts: &[u64],
    x: &[f32],
    lambda: f32,
    scale: f32,
) -> usize {
    let mut best = 0usize;
    let mut best_score = f32::INFINITY;
    for (i, &count) in counts.iter().enumerate().take(clustering.k()) {
        let d = clustering.metric().distance(x, clustering.centroid(i));
        // Cosine/dot distances can be negative or zero; shift into a
        // positive range so the multiplicative penalty stays monotone.
        let base = d - match clustering.metric() {
            Metric::L2 => 0.0,
            Metric::Cosine => -2.0,
            Metric::Dot => f32::MIN_POSITIVE, // handled by additive path below
        };
        let score = if lambda > 0.0 {
            match clustering.metric() {
                Metric::Dot => d + lambda * (count as f32 / scale),
                _ => base * (1.0 + lambda * count as f32 / scale),
            }
        } else {
            d
        };
        if score < best_score {
            best_score = score;
            best = i;
        }
    }
    best
}

/// Trains a quantizer over `source` (Algorithm 1). Deterministic for a
/// given seed.
pub fn train<S: VectorSource + ?Sized>(
    source: &S,
    cfg: &MiniBatchConfig,
) -> Result<Clustering, SourceError> {
    let n = source.len();
    let dim = source.dim();
    if n == 0 {
        return Err(SourceError::msg("cannot cluster an empty vector set"));
    }
    let k = (n / cfg.target_cluster_size.max(1)).max(1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Line 2: initialize each centroid with a random x ∈ X (distinct
    // ids where possible).
    let mut init_ids: Vec<usize> = Vec::with_capacity(k);
    let mut seen = std::collections::HashSet::with_capacity(k);
    while init_ids.len() < k {
        let id = rng.gen_range(0..n);
        if seen.insert(id) || seen.len() >= n {
            init_ids.push(id);
        }
    }
    let mut centroids = Vec::with_capacity(k * dim);
    source.gather(&init_ids, &mut centroids)?;
    let mut clustering = Clustering::new(centroids, dim, cfg.metric);

    let batch = cfg.batch_size.clamp(1, n);
    let iterations = if cfg.iterations > 0 {
        cfg.iterations
    } else {
        // Enough iterations to sample ~5 × n points overall.
        (5 * n).div_ceil(batch).clamp(10, 400)
    };

    let mut counts = vec![0u64; k];
    let mut ids = vec![0usize; batch];
    let mut buf: Vec<f32> = Vec::with_capacity(batch * dim);
    let mut assigned = vec![0usize; batch];
    for _iter in 0..iterations {
        // Line 6: M ← s examples picked uniformly at random.
        for id in ids.iter_mut() {
            *id = rng.gen_range(0..n);
        }
        source.gather(&ids, &mut buf)?;
        // Lines 7–8: cache the penalized nearest centroid per sample.
        let total: u64 = counts.iter().sum();
        let scale = (total as f32 / k as f32).max(1.0);
        for (slot, x) in buf.chunks_exact(dim).enumerate() {
            assigned[slot] = nearest_penalized(&clustering, &counts, x, cfg.balance_lambda, scale);
        }
        // Lines 9–13: per-center learning-rate updates.
        for (slot, x) in buf.chunks_exact(dim).enumerate() {
            let c = assigned[slot];
            counts[c] += 1;
            let eta = 1.0 / counts[c] as f32;
            let centroid = clustering.centroid_mut(c);
            for (cv, xv) in centroid.iter_mut().zip(x) {
                *cv = (1.0 - eta) * *cv + eta * xv;
            }
        }
    }
    Ok(clustering)
}

/// Final assignment pass (Algorithm 1 lines 14–16): streams the whole
/// collection in chunks and maps each vector id to its partition.
/// With `balanced` the running-count penalty of \[22\] is applied so
/// partition sizes stay near `n/k`.
pub fn assign_all<S: VectorSource + ?Sized>(
    source: &S,
    clustering: &Clustering,
    lambda: f32,
    chunk: usize,
) -> Result<Vec<u32>, SourceError> {
    let n = source.len();
    let dim = source.dim();
    let k = clustering.k();
    let mut out = Vec::with_capacity(n);
    let mut counts = vec![0u64; k];
    let target = (n as f32 / k as f32).max(1.0);
    let chunk = chunk.max(1);
    let mut buf: Vec<f32> = Vec::with_capacity(chunk * dim);
    let mut ids: Vec<usize> = Vec::with_capacity(chunk);
    let mut start = 0usize;
    while start < n {
        let end = (start + chunk).min(n);
        ids.clear();
        ids.extend(start..end);
        source.gather(&ids, &mut buf)?;
        for x in buf.chunks_exact(dim) {
            let c = if lambda > 0.0 {
                nearest_penalized(clustering, &counts, x, lambda, target)
            } else {
                clustering.nearest(x).0
            };
            counts[c] += 1;
            out.push(c as u32);
        }
        start = end;
    }
    Ok(out)
}

/// Coefficient of variation of partition sizes (std/mean) — the
/// imbalance measure the balance constraint is meant to minimize.
pub fn size_cv(assignments: &[u32], k: usize) -> f64 {
    if assignments.is_empty() || k == 0 {
        return 0.0;
    }
    let mut counts = vec![0f64; k];
    for &a in assignments {
        counts[a as usize] += 1.0;
    }
    let mean = assignments.len() as f64 / k as f64;
    let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / k as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SliceSource;

    /// Gaussian-ish blobs around `centers` using a cheap LCG.
    fn blobs(centers: &[(f32, f32)], per: usize, spread: f32, skew: Option<&[usize]>) -> Vec<f32> {
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let mut data = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            let count = skew.map_or(per, |s| s[ci]);
            for _ in 0..count {
                data.push(cx + spread * next());
                data.push(cy + spread * next());
            }
        }
        data
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let centers = [(0.0, 0.0), (50.0, 0.0), (0.0, 50.0), (50.0, 50.0)];
        let data = blobs(&centers, 250, 2.0, None);
        let src = SliceSource::new(&data, 2);
        let cfg = MiniBatchConfig {
            target_cluster_size: 250,
            batch_size: 64,
            ..Default::default()
        };
        let c = train(&src, &cfg).unwrap();
        assert_eq!(c.k(), 4);
        // Every true center has a trained centroid nearby.
        for &(cx, cy) in &centers {
            let (_, d) = c.nearest(&[cx, cy]);
            assert!(d < 25.0, "no centroid near ({cx},{cy}): d²={d}");
        }
        // Points assign to consistent clusters with high purity.
        let assignments = assign_all(&src, &c, 0.0, 128).unwrap();
        for blob in 0..4 {
            let slice = &assignments[blob * 250..(blob + 1) * 250];
            let mut hist = [0usize; 4];
            for &a in slice {
                hist[a as usize] += 1;
            }
            let purity = *hist.iter().max().unwrap() as f64 / 250.0;
            assert!(purity > 0.9, "blob {blob} purity {purity}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(&[(0.0, 0.0), (10.0, 10.0)], 200, 1.0, None);
        let src = SliceSource::new(&data, 2);
        let cfg = MiniBatchConfig {
            target_cluster_size: 100,
            batch_size: 32,
            iterations: 30,
            ..Default::default()
        };
        let a = train(&src, &cfg).unwrap();
        let b = train(&src, &cfg).unwrap();
        assert_eq!(a, b);
        let c = train(
            &src,
            &MiniBatchConfig {
                seed: 999,
                ..cfg.clone()
            },
        )
        .unwrap();
        assert_ne!(a, c, "different seed, different init");
    }

    #[test]
    fn balance_penalty_reduces_size_variance_on_skewed_data() {
        // One huge blob + two small ones: unbalanced k-means makes a
        // mega-cluster; the penalty spreads it across centroids.
        let data = blobs(
            &[(0.0, 0.0), (40.0, 0.0), (0.0, 40.0)],
            0,
            4.0,
            Some(&[1600, 200, 200]),
        );
        let src = SliceSource::new(&data, 2);
        let base = MiniBatchConfig {
            target_cluster_size: 200, // k = 10
            batch_size: 128,
            iterations: 60,
            ..Default::default()
        };
        let unbalanced_cfg = MiniBatchConfig {
            balance_lambda: 0.0,
            balanced_assignment: false,
            ..base.clone()
        };
        let balanced_cfg = MiniBatchConfig {
            balance_lambda: 1.0,
            ..base
        };
        let cu = train(&src, &unbalanced_cfg).unwrap();
        let cb = train(&src, &balanced_cfg).unwrap();
        let au = assign_all(&src, &cu, 0.0, 256).unwrap();
        let ab = assign_all(&src, &cb, 1.0, 256).unwrap();
        let cv_u = size_cv(&au, cu.k());
        let cv_b = size_cv(&ab, cb.k());
        assert!(
            cv_b < cv_u,
            "balance constraint must reduce size variation: {cv_b:.3} vs {cv_u:.3}"
        );
        // Balancing is "flexible" (soft) in [22]: it spreads mega
        // clusters across nearby centroids but does not force global
        // equality across distant blobs.
        assert!(cv_b < 0.9, "balanced CV should be moderate: {cv_b:.3}");
    }

    #[test]
    fn k_derived_from_target_size() {
        let data = blobs(&[(0.0, 0.0)], 1000, 1.0, None);
        let src = SliceSource::new(&data, 2);
        let cfg = MiniBatchConfig {
            target_cluster_size: 100,
            batch_size: 64,
            iterations: 10,
            ..Default::default()
        };
        let c = train(&src, &cfg).unwrap();
        assert_eq!(c.k(), 10);
        // Tiny collection: k clamps to 1.
        let tiny = blobs(&[(0.0, 0.0)], 5, 1.0, None);
        let tiny_src = SliceSource::new(&tiny, 2);
        let c = train(&tiny_src, &cfg).unwrap();
        assert_eq!(c.k(), 1);
    }

    #[test]
    fn empty_source_is_an_error() {
        let src = SliceSource::new(&[], 4);
        assert!(train(&src, &MiniBatchConfig::default()).is_err());
    }

    #[test]
    fn size_cv_measures_imbalance() {
        assert_eq!(size_cv(&[0, 0, 1, 1], 2), 0.0);
        let skewed = size_cv(&[0, 0, 0, 1], 2);
        assert!(skewed > 0.4);
        assert_eq!(size_cv(&[], 4), 0.0);
    }
}
