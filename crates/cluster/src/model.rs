//! The trained quantizer: cluster centroids plus nearest-centroid
//! queries ("FindNearestCentroids" of Algorithm 2).

use micronn_linalg::{Metric, TopK};

/// A trained clustering: `k` centroids of dimension `dim` under a
/// metric. This is the IVF quantizer persisted to the centroids table.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    centroids: Vec<f32>,
    k: usize,
    dim: usize,
    metric: Metric,
}

impl Clustering {
    /// Builds a clustering from a flat `k × dim` centroid matrix.
    pub fn new(centroids: Vec<f32>, dim: usize, metric: Metric) -> Clustering {
        assert!(dim > 0);
        assert_eq!(centroids.len() % dim, 0);
        let k = centroids.len() / dim;
        Clustering {
            centroids,
            k,
            dim,
            metric,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The metric centroid distances are measured in.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Centroid `i`.
    #[inline]
    pub fn centroid(&self, i: usize) -> &[f32] {
        &self.centroids[i * self.dim..(i + 1) * self.dim]
    }

    /// The flat centroid matrix.
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Mutable centroid access (used by incremental maintenance to
    /// fold delta vectors into a centroid's running mean, per \[1\]).
    pub fn centroid_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.centroids[i * self.dim..(i + 1) * self.dim]
    }

    /// Nearest centroid to `x` and its distance. Panics if `k == 0`.
    pub fn nearest(&self, x: &[f32]) -> (usize, f32) {
        assert!(self.k > 0, "empty clustering");
        let mut best = (0usize, f32::INFINITY);
        for i in 0..self.k {
            let d = self.metric.distance(x, self.centroid(i));
            if d < best.1 {
                best = (i, d);
            }
        }
        best
    }

    /// The `n` nearest centroids to `x`, ascending by distance — the
    /// probe set of an ANN search.
    pub fn nearest_n(&self, x: &[f32], n: usize) -> Vec<(usize, f32)> {
        let mut top = TopK::new(n.min(self.k));
        for i in 0..self.k {
            top.push(i as u64, self.metric.distance(x, self.centroid(i)));
        }
        top.into_sorted()
            .into_iter()
            .map(|nb| (nb.id as usize, nb.distance))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_clustering() -> Clustering {
        // Four centroids on a 2-D grid.
        Clustering::new(
            vec![0.0, 0.0, 10.0, 0.0, 0.0, 10.0, 10.0, 10.0],
            2,
            Metric::L2,
        )
    }

    #[test]
    fn nearest_picks_closest() {
        let c = grid_clustering();
        assert_eq!(c.k(), 4);
        assert_eq!(c.nearest(&[1.0, 1.0]).0, 0);
        assert_eq!(c.nearest(&[9.0, 1.0]).0, 1);
        assert_eq!(c.nearest(&[1.0, 9.0]).0, 2);
        assert_eq!(c.nearest(&[9.0, 9.0]).0, 3);
        let (_, d) = c.nearest(&[0.0, 0.0]);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn nearest_n_is_sorted_and_bounded() {
        let c = grid_clustering();
        let probes = c.nearest_n(&[1.0, 1.0], 3);
        assert_eq!(probes.len(), 3);
        assert_eq!(probes[0].0, 0);
        assert!(probes[0].1 <= probes[1].1 && probes[1].1 <= probes[2].1);
        // Asking for more than k clamps.
        assert_eq!(c.nearest_n(&[0.0, 0.0], 99).len(), 4);
    }

    #[test]
    fn centroid_mut_updates() {
        let mut c = grid_clustering();
        c.centroid_mut(0)[0] = 100.0;
        assert_eq!(c.centroid(0), &[100.0, 0.0]);
        assert_ne!(c.nearest(&[1.0, 1.0]).0, 0, "moved centroid lost its point");
    }

    #[test]
    fn cosine_metric_respected() {
        // Two directions; cosine ignores magnitude.
        let c = Clustering::new(vec![1.0, 0.0, 0.0, 1.0], 2, Metric::Cosine);
        assert_eq!(c.nearest(&[100.0, 1.0]).0, 0);
        assert_eq!(c.nearest(&[0.5, 60.0]).0, 1);
    }
}
