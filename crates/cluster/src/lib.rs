//! `micronn-cluster`: vector quantization for the MicroNN IVF index.
//!
//! Implements the paper's Algorithm 1 — mini-batch k-means (Sculley
//! \[35\]) with flexible balance constraints (Liu et al. \[22\]) over a
//! streaming [`VectorSource`] so that index construction runs in
//! `O(batch)` memory — plus full-memory Lloyd's k-means as the
//! InMemory baseline quantizer used throughout the paper's evaluation
//! (Figures 6 and 8).

pub mod lloyd;
pub mod minibatch;
pub mod model;
pub mod source;

pub use lloyd::LloydConfig;
pub use minibatch::{assign_all, size_cv, train, MiniBatchConfig};
pub use model::Clustering;
pub use source::{SliceSource, SourceError, VectorSource};
