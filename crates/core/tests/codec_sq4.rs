//! End-to-end behaviour of the SQ4 fastscan codec: blocked 4-bit
//! quantized scans + exact re-rank, recall against exact and F32
//! search, bytes-scanned reduction (~8× raw payload, ≥ 6× end to end
//! with re-rank reads), catalog persistence, hybrid plans, batch MQO,
//! update consistency, and the quantizer range-drift → retrain loop.

use micronn::{
    AttributeDef, Config, Expr, MaintenanceStatus, Metric, MicroNN, PlanPreference, PlanUsed,
    SearchRequest, SyncMode, ValueType, VectorCodec, VectorRecord,
};
use micronn_datasets::{generate, DatasetSpec};

const DIM: usize = 24;
const K: usize = 10;

fn dataset(n: usize, seed: u64) -> micronn_datasets::Dataset {
    generate(&DatasetSpec {
        name: "synthetic-sq4",
        dim: DIM,
        n_vectors: n,
        n_queries: 25,
        metric: Metric::L2,
        clusters: 12,
        spread: 0.08,
        seed,
    })
}

fn config(codec: VectorCodec) -> Config {
    let mut c = Config::new(DIM, Metric::L2);
    c.store.sync = SyncMode::Off;
    c.target_partition_size = 50;
    c.default_probes = 16;
    c.codec = codec;
    // 4-bit codes are coarser than 8-bit ones, so the exact re-rank
    // pool carries more of the recall budget.
    c.rerank_factor = 6;
    c
}

fn build(
    dir: &std::path::Path,
    name: &str,
    codec: VectorCodec,
    ds: &micronn_datasets::Dataset,
) -> MicroNN {
    let db = MicroNN::create(dir.join(name), config(codec)).unwrap();
    let records: Vec<VectorRecord> = (0..ds.len())
        .map(|i| VectorRecord::new(i as i64, ds.vector(i).to_vec()))
        .collect();
    db.upsert_batch(&records).unwrap();
    db.rebuild().unwrap();
    db
}

fn recall(got: &[micronn::SearchResult], truth: &[micronn::SearchResult]) -> f64 {
    let truth_ids: std::collections::HashSet<i64> = truth.iter().map(|r| r.asset_id).collect();
    got.iter()
        .filter(|r| truth_ids.contains(&r.asset_id))
        .count() as f64
        / truth.len() as f64
}

fn mean_recall_vs_exact(db: &MicroNN, ds: &micronn_datasets::Dataset) -> f64 {
    let nq = ds.spec.n_queries;
    let mut total = 0.0;
    for qi in 0..nq {
        let q = ds.query(qi);
        let exact = db.exact(q, K, None).unwrap();
        let approx = db.search(q, K).unwrap();
        total += recall(&approx.results, &exact.results);
    }
    total / nq as f64
}

#[test]
fn sq4_recall_at_10_vs_exact_including_after_maintenance() {
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(3000, 42);
    let db = build(dir.path(), "sq4.mnn", VectorCodec::Sq4, &ds);

    let r = mean_recall_vs_exact(&db, &ds);
    assert!(r >= 0.95, "SQ4 recall@10 vs exact after build: {r}");

    // Streaming updates: new vectors land in the delta store (scanned
    // in full precision) and a flush appends their 4-bit codes into
    // the touched partitions' blocks under the existing ranges.
    let extra = dataset(400, 77);
    let records: Vec<VectorRecord> = (0..extra.len())
        .map(|i| VectorRecord::new(50_000 + i as i64, extra.vector(i).to_vec()))
        .collect();
    db.upsert_batch(&records).unwrap();
    let r = mean_recall_vs_exact(&db, &ds);
    assert!(r >= 0.95, "SQ4 recall@10 with staged delta: {r}");

    let flush = db.flush_delta().unwrap();
    assert_eq!(flush.flushed, 400);
    let r = mean_recall_vs_exact(&db, &ds);
    assert!(r >= 0.95, "SQ4 recall@10 after delta flush: {r}");

    // Full rebuild retrains every partition's ranges and repacks all
    // blocks from scratch.
    db.rebuild().unwrap();
    let r = mean_recall_vs_exact(&db, &ds);
    assert!(r >= 0.95, "SQ4 recall@10 after rebuild: {r}");

    // The mirror invariants hold through all of the above.
    let rep = db.verify_integrity().unwrap();
    assert!(rep.is_clean(), "{:?}", rep.errors);
}

#[test]
fn sq4_matches_f32_results_and_scans_6x_fewer_bytes() {
    // Shape chosen so blocks are near-full right after the build:
    // target 96 rows/partition = 3 exact 32-row blocks, measured
    // before any delta churn dilutes occupancy.
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(4096, 7);
    let mk = |codec| {
        let mut c = config(codec);
        c.target_partition_size = 96;
        c.default_probes = 64; // every partition: worst case for bytes
        c.rerank_factor = 4;
        c
    };
    let f32_db = MicroNN::create(dir.path().join("f32.mnn"), mk(VectorCodec::F32)).unwrap();
    let sq4_db = MicroNN::create(dir.path().join("sq4.mnn"), mk(VectorCodec::Sq4)).unwrap();
    let records: Vec<VectorRecord> = (0..ds.len())
        .map(|i| VectorRecord::new(i as i64, ds.vector(i).to_vec()))
        .collect();
    for db in [&f32_db, &sq4_db] {
        db.upsert_batch(&records).unwrap();
        db.rebuild().unwrap();
    }

    let mut agree = 0.0;
    let (mut f32_bytes, mut sq4_bytes) = (0usize, 0usize);
    for qi in 0..ds.spec.n_queries {
        let q = ds.query(qi);
        let a = f32_db.search(q, K).unwrap();
        let b = sq4_db.search(q, K).unwrap();
        assert_eq!(b.results.len(), K);
        // Re-ranked distances are exact: every shared hit carries the
        // same f32 distance in both catalogs.
        let a_by_id: std::collections::HashMap<i64, f32> =
            a.results.iter().map(|r| (r.asset_id, r.distance)).collect();
        for hit in &b.results {
            if let Some(&d) = a_by_id.get(&hit.asset_id) {
                assert_eq!(hit.distance, d, "asset {}", hit.asset_id);
            }
        }
        agree += recall(&b.results, &a.results);
        f32_bytes += a.info.bytes_scanned;
        sq4_bytes += b.info.bytes_scanned;
        assert_eq!(a.info.reranked, 0);
        // The re-rank pool is bounded by rerank_factor · k.
        assert!(b.info.reranked <= 4 * K);
    }
    let agree = agree / ds.spec.n_queries as f64;
    assert!(agree >= 0.95, "SQ4 recall@10 vs the F32 path: {agree}");
    let ratio = f32_bytes as f64 / sq4_bytes.max(1) as f64;
    assert!(
        ratio >= 6.0,
        "bytes-scanned reduction: {f32_bytes} vs {sq4_bytes} ({ratio:.2}x)"
    );
}

#[test]
fn sq4_catalog_persists_and_open_validates() {
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(600, 3);
    let path = dir.path().join("sq4.mnn");
    {
        let db = build(dir.path(), "sq4.mnn", VectorCodec::Sq4, &ds);
        assert_eq!(db.codec(), VectorCodec::Sq4);
    }
    // Reopening with a default config restores the persisted codec.
    let mut cfg = Config::default();
    cfg.store.sync = SyncMode::Off;
    let db = MicroNN::open(&path, cfg).unwrap();
    assert_eq!(db.codec(), VectorCodec::Sq4);
    let got = db.search(ds.query(0), K).unwrap();
    assert_eq!(got.results.len(), K);
    assert!(got.info.reranked > 0, "quantized pipeline active");
    drop(db);

    // A full-precision catalog cannot be opened as quantized: the
    // blocks were never written.
    let f32_path = dir.path().join("f32.mnn");
    {
        let _ = build(dir.path(), "f32.mnn", VectorCodec::F32, &ds);
    }
    let mut cfg = Config::default();
    cfg.store.sync = SyncMode::Off;
    cfg.codec = VectorCodec::Sq4;
    let err = MicroNN::open(&f32_path, cfg);
    assert!(err.is_err(), "sq4-on-f32 open must fail");

    // Nor can an SQ4 catalog be reinterpreted as SQ8: the code-table
    // layouts differ.
    let mut cfg = Config::default();
    cfg.store.sync = SyncMode::Off;
    cfg.codec = VectorCodec::Sq8;
    let err = MicroNN::open(&path, cfg);
    assert!(err.is_err(), "sq8-on-sq4 open must fail");
}

#[test]
fn sq4_hybrid_filters_respected_by_quantized_scans() {
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(2000, 11);
    let mut cfg = config(VectorCodec::Sq4);
    cfg.attributes = vec![AttributeDef::indexed("parity", ValueType::Integer)];
    let db = MicroNN::create(dir.path().join("h.mnn"), cfg).unwrap();
    let records: Vec<VectorRecord> = (0..ds.len())
        .map(|i| {
            VectorRecord::new(i as i64, ds.vector(i).to_vec()).with_attr("parity", (i % 2) as i64)
        })
        .collect();
    db.upsert_batch(&records).unwrap();
    db.rebuild().unwrap();

    let q = ds.query(1);
    let filter = Expr::eq("parity", 0i64);
    let truth = db.exact(q, K, Some(&filter)).unwrap();
    assert!(truth.results.iter().all(|r| r.asset_id % 2 == 0));

    // Post-filtering drops disqualified slots before scoring blocks.
    let post = db
        .search_with(
            &SearchRequest::new(q.to_vec(), K)
                .with_filter(filter.clone())
                .with_plan(PlanPreference::ForcePostFilter),
        )
        .unwrap();
    assert_eq!(post.info.plan, PlanUsed::PostFilter);
    assert!(post.results.iter().all(|r| r.asset_id % 2 == 0));
    assert!(recall(&post.results, &truth.results) >= 0.9);

    // Pre-filtering stays exact (full recall) under any codec.
    let pre = db
        .search_with(
            &SearchRequest::new(q.to_vec(), K)
                .with_filter(filter)
                .with_plan(PlanPreference::ForcePreFilter),
        )
        .unwrap();
    assert_eq!(recall(&pre.results, &truth.results), 1.0);
}

#[test]
fn sq4_batch_mqo_matches_single_query_pipeline() {
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(2000, 13);
    let db = build(dir.path(), "b.mnn", VectorCodec::Sq4, &ds);
    let queries: Vec<Vec<f32>> = (0..ds.spec.n_queries)
        .map(|qi| ds.query(qi).to_vec())
        .collect();
    let batched = db.batch_search(&queries, K, Some(16)).unwrap();
    let sequential = db.batch_search_sequential(&queries, K, Some(16)).unwrap();
    assert!(batched.bytes_scanned > 0);
    for (b, s) in batched.results.iter().zip(&sequential) {
        // Identical probe sets, identical integer LUT scoring,
        // identical exact re-rank: the MQO path must reproduce the
        // single-query pipeline exactly.
        let b_ids: Vec<i64> = b.iter().map(|r| r.asset_id).collect();
        let s_ids: Vec<i64> = s.iter().map(|r| r.asset_id).collect();
        assert_eq!(b_ids, s_ids);
        for (x, y) in b.iter().zip(s) {
            assert_eq!(x.distance, y.distance);
        }
    }
}

#[test]
fn sq4_upsert_replace_and_delete_stay_consistent() {
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(800, 17);
    let db = build(dir.path(), "u.mnn", VectorCodec::Sq4, &ds);

    // Replace an indexed vector: its block slot is tombstoned, so the
    // stale nibbles must never resurface in results.
    let probe: Vec<f32> = vec![9.0; DIM];
    db.upsert(VectorRecord::new(5, probe.clone())).unwrap();
    let hit = db.search(&probe, 1).unwrap();
    assert_eq!(hit.results[0].asset_id, 5);
    let old = db.search(ds.vector(5), K).unwrap();
    assert!(
        old.results
            .iter()
            .all(|r| r.asset_id != 5 || r.distance > 1.0),
        "stale quantized code for a replaced vector"
    );

    // Flush re-fills tombstoned slots; the replacement stays findable.
    db.flush_delta().unwrap();
    let hit = db.search(&probe, 1).unwrap();
    assert_eq!(hit.results[0].asset_id, 5);

    // Delete tombstones the slot again and drops the asset.
    db.delete(5).unwrap();
    let gone = db.search(&probe, K).unwrap();
    assert!(gone.results.iter().all(|r| r.asset_id != 5));

    // Tombstone churn must not break the codes ↔ vectors mirror.
    let rep = db.verify_integrity().unwrap();
    assert!(rep.is_clean(), "{:?}", rep.errors);
}

#[test]
fn sq4_range_drift_triggers_background_retrain() {
    // Two tight, well-separated clusters; ranges trained on them are
    // narrow, so flushing far-out-of-range rows clamps every
    // dimension and must push the drift fraction past the limit.
    let dir = tempfile::tempdir().unwrap();
    let mut cfg = Config::new(8, Metric::L2);
    cfg.store.sync = SyncMode::Off;
    cfg.target_partition_size = 100;
    cfg.default_probes = 4;
    cfg.codec = VectorCodec::Sq4;
    let db = MicroNN::create(dir.path().join("d.mnn"), cfg).unwrap();
    let jitter = |i: i64, j: usize| ((i * 7 + j as i64) % 11) as f32 * 0.01 - 0.05;
    for i in 0..200i64 {
        let base = if i < 100 { 0.0f32 } else { 10.0 };
        let v: Vec<f32> = (0..8).map(|j| base + jitter(i, j)).collect();
        db.upsert(VectorRecord::new(i, v)).unwrap();
    }
    db.rebuild().unwrap();
    assert_eq!(db.maintenance_status().unwrap(), MaintenanceStatus::Healthy);

    // 24 rows at 1.0 per dim: nearest to the 0-cluster's centroid but
    // far outside its trained ranges — every encode clamps.
    for i in 1000..1024i64 {
        let v: Vec<f32> = (0..8).map(|j| 1.0 + jitter(i, j) * 0.1).collect();
        db.upsert(VectorRecord::new(i, v)).unwrap();
    }
    db.flush_delta().unwrap();
    assert_eq!(
        db.maintenance_status().unwrap(),
        MaintenanceStatus::NeedsRetrain,
        "clamped flush must surface as range drift"
    );

    let report = db.maybe_maintain().unwrap();
    assert_eq!(report.retrains(), 1, "{:?}", report.actions);
    assert_eq!(report.status, MaintenanceStatus::Healthy);
    assert_eq!(db.maintenance_status().unwrap(), MaintenanceStatus::Healthy);

    // Fresh ranges cover the drifted rows: the fsck re-encode check
    // passes and the new rows are findable through quantized scans.
    let rep = db.verify_integrity().unwrap();
    assert!(rep.is_clean(), "{:?}", rep.errors);
    let probe: Vec<f32> = vec![1.0; 8];
    let hits = db.search(&probe, 5).unwrap();
    assert!(
        hits.results.iter().any(|r| r.asset_id >= 1000),
        "{:?}",
        hits.results
    );
}

#[test]
fn sq4_crash_recovery_preserves_blocks_and_ranges() {
    // Blocks and quantization ranges are written in the same write
    // transactions as the rows they mirror, so WAL replay restores a
    // consistent quantized catalog.
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(1200, 23);
    let path = dir.path().join("crash.mnn");
    {
        let db = build(dir.path(), "crash.mnn", VectorCodec::Sq4, &ds);
        db.upsert(VectorRecord::new(99_777, vec![3.5; DIM]))
            .unwrap();
        // Dropped without checkpoint: the WAL carries everything.
        let _ = db;
    }
    let mut cfg = Config::default();
    cfg.store.sync = SyncMode::Off;
    let db = MicroNN::open(&path, cfg).unwrap();
    assert_eq!(db.codec(), VectorCodec::Sq4);
    assert_eq!(db.len().unwrap(), 1201);
    // The delta insert survives (full-precision delta scan)...
    let hit = db.search(&[3.5; DIM], 1).unwrap();
    assert_eq!(hit.results[0].asset_id, 99_777);
    // ...and the quantized pipeline still meets the recall bar.
    let r = mean_recall_vs_exact(&db, &ds);
    assert!(r >= 0.95, "SQ4 recall@10 after WAL recovery: {r}");
}
