//! Maintenance churn suite: the partition lifecycle (split/merge) and
//! the background `IndexMaintainer` under a sustained upsert/delete
//! stream.
//!
//! The stream is deliberately skewed — most inserts land in a few "hot"
//! clusters (driving partitions over the split limit) while deletes
//! drain the "cold" clusters (driving partitions under the merge
//! limit) — so a run exercises every lifecycle transition. Asserted
//! invariants:
//!
//! * the maintainer performs splits and merges but **zero** full
//!   rebuilds;
//! * stored per-partition sizes match the actual row counts exactly,
//!   and every partition respects the configured split/merge bounds
//!   once the index is healthy;
//! * recall@10 of the lifecycle-maintained index stays within 2% of a
//!   freshly rebuilt index;
//! * SQ8 catalogs keep codes and quantization ranges consistent with
//!   the rows they mirror after any number of splits and merges.
//!
//! Scale: `MICRONN_CHURN_OPS` bounds the stream length (CI sets a small
//! value, like `PROPTEST_CASES`); the default keeps a local run under a
//! few seconds per codec/worker combination.

use std::collections::{HashMap, HashSet};

use micronn::{
    Config, MaintainerOptions, MaintenanceAction, MaintenanceStatus, Metric, MicroNN, SyncMode,
    VectorCodec, VectorRecord,
};
use micronn_linalg::Sq8Params;
use micronn_rel::{blob_to_f32, Value};

const DIM: usize = 16;
const K: usize = 10;
const TARGET: usize = 50;
const CLUSTERS: i64 = 12;
/// Hot clusters receive the insert stream; the rest are drained.
const HOT: i64 = 4;

fn churn_ops() -> usize {
    std::env::var("MICRONN_CHURN_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4000)
}

fn config(codec: VectorCodec, workers: usize) -> Config {
    let mut c = Config::new(DIM, Metric::L2);
    c.store.sync = SyncMode::Off;
    c.target_partition_size = TARGET;
    c.delta_flush_threshold = 64;
    c.default_probes = 8;
    c.codec = codec;
    c.workers = workers;
    c
}

/// Deterministic point near `cluster`'s center (well-separated grid).
fn vec_for(id: i64, cluster: i64) -> Vec<f32> {
    let mut state = (id as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u64 << 24) as f32 - 0.5
    };
    let cx = (cluster % 4) as f32 * 20.0;
    let cy = (cluster / 4) as f32 * 20.0;
    (0..DIM)
        .map(|d| match d % 2 {
            0 => cx + next(),
            _ => cy + next(),
        })
        .collect()
}

fn split_bound(cfg: &Config) -> u64 {
    (cfg.split_limit * cfg.target_partition_size as f64).floor() as u64
}

fn merge_bound(cfg: &Config) -> u64 {
    (cfg.merge_limit * cfg.target_partition_size as f64).ceil() as u64
}

/// Mean recall@K of the ANN path against exact search over a fixed
/// query set.
fn mean_recall(db: &MicroNN, queries: &[Vec<f32>], probes: usize) -> f64 {
    let mut total = 0.0;
    for q in queries {
        let exact = db.exact(q, K, None).unwrap();
        let approx = db
            .search_with(&micronn::SearchRequest::new(q.clone(), K).with_probes(probes))
            .unwrap();
        let truth: HashSet<i64> = exact.results.iter().map(|r| r.asset_id).collect();
        let hits = approx
            .results
            .iter()
            .filter(|r| truth.contains(&r.asset_id))
            .count();
        total += hits as f64 / truth.len().max(1) as f64;
    }
    total / queries.len() as f64
}

/// Actual row count per indexed partition, by scanning the vectors
/// table (the delta store is excluded and returned separately).
fn actual_partition_sizes(db: &MicroNN) -> (HashMap<i64, u64>, u64) {
    let r = db.database().begin_read();
    let vectors = db.database().open_table(&r, "vectors").unwrap();
    let mut sizes: HashMap<i64, u64> = HashMap::new();
    let mut delta = 0u64;
    for row in vectors.scan(&r).unwrap() {
        let row = row.unwrap();
        let p = row[0].as_integer().unwrap();
        if p == micronn::DELTA_PARTITION {
            delta += 1;
        } else {
            *sizes.entry(p).or_default() += 1;
        }
    }
    (sizes, delta)
}

/// SQ8 invariant: every indexed vector row has exactly one code row
/// encoded under the partition's current quantization ranges, and no
/// code row is stale (its vector gone or moved).
fn check_sq8_consistency(db: &MicroNN) {
    let r = db.database().begin_read();
    let vectors = db.database().open_table(&r, "vectors").unwrap();
    let codes = db.database().open_table(&r, "codes").unwrap();
    let quants = db.database().open_table(&r, "quants").unwrap();

    let mut code_keys: HashSet<(i64, i64)> = HashSet::new();
    for row in codes.scan(&r).unwrap() {
        let row = row.unwrap();
        code_keys.insert((row[0].as_integer().unwrap(), row[1].as_integer().unwrap()));
    }

    let mut params: HashMap<i64, Sq8Params> = HashMap::new();
    let mut indexed_rows = 0usize;
    for row in vectors.scan(&r).unwrap() {
        let row = row.unwrap();
        let p = row[0].as_integer().unwrap();
        if p == micronn::DELTA_PARTITION {
            continue;
        }
        indexed_rows += 1;
        let vid = row[1].as_integer().unwrap();
        assert!(
            code_keys.contains(&(p, vid)),
            "vector ({p},{vid}) has no quantized code"
        );
        let vec = blob_to_f32(row[3].as_blob().unwrap()).unwrap();
        let q = params.entry(p).or_insert_with(|| {
            let qrow = quants
                .get(&r, &[Value::Integer(p)])
                .unwrap()
                .unwrap_or_else(|| panic!("partition {p} has no quantization ranges"));
            let vals = blob_to_f32(qrow[1].as_blob().unwrap()).unwrap();
            let (min, scale) = vals.split_at(DIM);
            Sq8Params {
                min: min.to_vec(),
                scale: scale.to_vec(),
            }
        });
        let code_row = codes
            .get(&r, &[Value::Integer(p), Value::Integer(vid)])
            .unwrap()
            .unwrap();
        let stored = code_row[3].as_blob().unwrap().to_vec();
        let mut fresh = Vec::with_capacity(DIM);
        q.encode_into(&vec, &mut fresh);
        assert_eq!(
            stored, fresh,
            "code for ({p},{vid}) is stale vs the partition's current ranges"
        );
    }
    assert_eq!(
        code_keys.len(),
        indexed_rows,
        "orphaned quantized codes exist"
    );
}

/// The churn harness: sustained skewed upsert/delete stream with the
/// background maintainer enabled; returns the db for extra checks.
fn run_churn(codec: VectorCodec, workers: usize) -> (tempfile::TempDir, MicroNN) {
    let ops = churn_ops();
    let dir = tempfile::tempdir().unwrap();
    let cfg = config(codec, workers);
    let db = MicroNN::create(dir.path().join("churn.mnn"), cfg.clone()).unwrap();

    // Base collection: 1500 vectors spread over all clusters.
    let base = 1500i64;
    let records: Vec<VectorRecord> = (0..base)
        .map(|i| VectorRecord::new(i, vec_for(i, i % CLUSTERS)))
        .collect();
    db.upsert_batch(&records).unwrap();
    db.rebuild().unwrap();

    let maintainer = db.start_maintainer(MaintainerOptions {
        interval: std::time::Duration::from_millis(1),
    });

    // The stream: ~70% hot-cluster inserts, ~30% deletes draining the
    // cold clusters first (then recycling old hot inserts), with
    // periodic searches racing the maintainer.
    let cold_victims: Vec<i64> = (0..base).filter(|i| i % CLUSTERS >= HOT).collect();
    let mut cold_idx = 0usize;
    let mut hot_victim = base;
    let mut next_id = base;
    for i in 0..ops {
        if i % 10 < 7 {
            let cluster = (i as i64) % HOT;
            db.upsert(VectorRecord::new(next_id, vec_for(next_id, cluster)))
                .unwrap();
            next_id += 1;
        } else if cold_idx < cold_victims.len() {
            db.delete(cold_victims[cold_idx]).unwrap();
            cold_idx += 1;
        } else if hot_victim < next_id {
            db.delete(hot_victim).unwrap();
            hot_victim += 1;
        }
        if i % 250 == 0 {
            let q = vec_for(7 * i as i64 + 1, (i as i64) % CLUSTERS);
            let resp = db.search(&q, K).unwrap();
            assert!(resp.results.len() <= K);
        }
    }

    let stats = maintainer.stop();
    assert_eq!(stats.errors, 0, "maintainer errors: {:?}", stats.last_error);
    assert_eq!(
        stats.rebuilds, 0,
        "lifecycle maintenance must avoid full rebuilds"
    );

    // Drive the index to Healthy and count what the final pass did.
    let report = db.maybe_maintain().unwrap();
    assert_eq!(report.status, MaintenanceStatus::Healthy);
    assert_eq!(report.rebuilds(), 0);
    let splits = stats.splits + report.splits() as u64;
    let merges = stats.merges + report.merges() as u64;
    assert!(splits >= 1, "hot-cluster growth must trigger splits");
    assert!(merges >= 1, "cold-cluster drain must trigger merges");

    // Partition-size invariants: stored sizes are exact and within the
    // lifecycle bounds.
    let stored: HashMap<i64, u64> = db.partition_sizes().unwrap().into_iter().collect();
    let (actual, delta) = actual_partition_sizes(&db);
    assert_eq!(delta, db.delta_len().unwrap(), "delta count drifted");
    assert_eq!(stored.len(), actual.len(), "phantom or missing partitions");
    for (pid, n) in &actual {
        assert_eq!(
            stored.get(pid),
            Some(n),
            "stored size of partition {pid} drifted"
        );
    }
    let total: u64 = actual.values().sum();
    assert_eq!(total + delta, db.len().unwrap());
    for (pid, &n) in &stored {
        assert!(
            n <= split_bound(&cfg),
            "healthy index left partition {pid} oversized ({n})"
        );
        // Undersized partitions may legitimately remain when no
        // neighbour has room under the split limit (the policy refuses
        // merges that would immediately force a split).
        let has_room = stored
            .iter()
            .any(|(other, &os)| other != pid && os + n <= split_bound(&cfg));
        assert!(
            n >= merge_bound(&cfg) || !has_room,
            "healthy index left mergeable partition {pid} undersized ({n})"
        );
    }

    // SQ8 catalogs must be internally consistent right after the
    // lifecycle settles (post-splits, post-merges, pre-rebuild).
    if codec.is_quantized() {
        check_sq8_consistency(&db);
    }

    // Recall@10 within 2% of a freshly rebuilt index, over queries that
    // hit both the churned (hot) and drained (cold) regions. Probes
    // match the fig10 churn phase's operating point (~40% of the
    // partitions); enough queries to keep the comparison stable across
    // timing-dependent maintenance interleavings.
    let queries: Vec<Vec<f32>> = (0..60)
        .map(|qi| vec_for(1_000_000 + qi, qi % CLUSTERS))
        .collect();
    let probes = 24;
    let lifecycle_recall = mean_recall(&db, &queries, probes);
    db.rebuild().unwrap();
    let rebuilt_recall = mean_recall(&db, &queries, probes);
    assert!(
        lifecycle_recall >= rebuilt_recall - 0.02,
        "lifecycle recall {lifecycle_recall:.4} vs rebuilt {rebuilt_recall:.4}"
    );

    (dir, db)
}

#[test]
fn churn_f32_workers_1() {
    run_churn(VectorCodec::F32, 1);
}

#[test]
fn churn_f32_workers_8() {
    run_churn(VectorCodec::F32, 8);
}

#[test]
fn churn_sq8_workers_1() {
    run_churn_sq8_with_consistency(1);
}

#[test]
fn churn_sq8_workers_8() {
    run_churn_sq8_with_consistency(8);
}

/// SQ8 churn: identical harness, plus the code/quant-range consistency
/// check both after the lifecycle settles and after the comparison
/// rebuild.
fn run_churn_sq8_with_consistency(workers: usize) -> (tempfile::TempDir, MicroNN) {
    let (dir, db) = run_churn(VectorCodec::Sq8, workers);
    // run_churn ends with a full rebuild (for the recall comparison);
    // codes must be consistent after it too.
    check_sq8_consistency(&db);
    // ...and after more lifecycle operations on top of the rebuild.
    for i in 0..300i64 {
        db.upsert(VectorRecord::new(5_000_000 + i, vec_for(5_000_000 + i, 0)))
            .unwrap();
    }
    let report = db.maybe_maintain().unwrap();
    assert_eq!(report.status, MaintenanceStatus::Healthy);
    check_sq8_consistency(&db);
    (dir, db)
}

#[test]
fn split_and_merge_preserve_exact_results() {
    let dir = tempfile::tempdir().unwrap();
    let cfg = config(VectorCodec::F32, 2);
    let db = MicroNN::create(dir.path().join("sm.mnn"), cfg).unwrap();
    let records: Vec<VectorRecord> = (0..900i64)
        .map(|i| VectorRecord::new(i, vec_for(i, i % CLUSTERS)))
        .collect();
    db.upsert_batch(&records).unwrap();
    db.rebuild().unwrap();

    let q = vec_for(424_242, 1);
    let before = db.exact(&q, 25, None).unwrap();
    let k_before = db.stats().unwrap().partitions;

    // Split the largest partition, whatever its size: a split is a pure
    // re-arrangement — exact results must be bit-identical.
    let (pid, size) = db
        .partition_sizes()
        .unwrap()
        .into_iter()
        .max_by_key(|&(_, s)| s)
        .unwrap();
    assert!(size >= 2);
    let split = db.split_partition(pid).unwrap();
    assert_eq!(split.partition, pid);
    assert!(!split.new_partitions.is_empty());
    assert!(db.stats().unwrap().partitions > k_before);
    let after_split = db.exact(&q, 25, None).unwrap();
    assert_eq!(
        before.results, after_split.results,
        "split changed search content"
    );

    // Merge the smallest partition into its neighbour: same guarantee.
    let (small, _) = db
        .partition_sizes()
        .unwrap()
        .into_iter()
        .min_by_key(|&(_, s)| s)
        .unwrap();
    let merge = db.merge_partition(small).unwrap();
    assert_eq!(merge.partition, small);
    assert_ne!(merge.target, small);
    let after_merge = db.exact(&q, 25, None).unwrap();
    assert_eq!(
        before.results, after_merge.results,
        "merge changed search content"
    );
    // The dissolved partition is gone from the catalog.
    assert!(db
        .partition_sizes()
        .unwrap()
        .iter()
        .all(|&(pid, _)| pid != small));

    // ANN search still works across the modified catalog.
    let resp = db.search(&q, K).unwrap();
    assert_eq!(resp.results.len(), K);

    // Lifecycle ops are invalid on the delta store and missing ids.
    assert!(db.split_partition(micronn::DELTA_PARTITION).is_err());
    assert!(db.merge_partition(999_999).is_err());
}

#[test]
fn flush_chains_into_split_within_one_report() {
    // Satellite regression: a delta flush that pushes a partition past
    // the split limit must surface (and run) the follow-up work in the
    // same maybe_maintain call, not silently wait for the next one.
    let dir = tempfile::tempdir().unwrap();
    let mut cfg = config(VectorCodec::F32, 2);
    cfg.delta_flush_threshold = 40;
    let db = MicroNN::create(dir.path().join("chain.mnn"), cfg).unwrap();
    let records: Vec<VectorRecord> = (0..600i64)
        .map(|i| VectorRecord::new(i, vec_for(i, i % CLUSTERS)))
        .collect();
    db.upsert_batch(&records).unwrap();
    db.rebuild().unwrap();

    // Concentrate well past the split limit onto one cluster, staged in
    // the delta store.
    for i in 0..120i64 {
        db.upsert(VectorRecord::new(10_000 + i, vec_for(10_000 + i, 0)))
            .unwrap();
    }
    let report = db.maybe_maintain().unwrap();
    assert_eq!(report.status, MaintenanceStatus::Healthy);
    assert!(report.flushes() >= 1, "delta past threshold must flush");
    assert!(
        report.splits() >= 1,
        "flush-induced growth must chain into a split: {:?}",
        report
            .actions
            .iter()
            .map(|a| match a {
                MaintenanceAction::Flushed(_) => "flush",
                MaintenanceAction::Split(_) => "split",
                MaintenanceAction::Merged(_) => "merge",
                MaintenanceAction::Rebuilt(_) => "rebuild",
                MaintenanceAction::Retrained(_) => "retrain",
            })
            .collect::<Vec<_>>()
    );
    assert_eq!(report.rebuilds(), 0, "no rebuild needed for local growth");
}

#[test]
fn lifecycle_survives_reopen() {
    // Splits allocate partition ids from a persisted counter; after a
    // reopen the lifecycle must keep allocating fresh ids and searches
    // must see every row.
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("reopen.mnn");
    {
        let db = MicroNN::create(&path, config(VectorCodec::F32, 2)).unwrap();
        let records: Vec<VectorRecord> = (0..700i64)
            .map(|i| VectorRecord::new(i, vec_for(i, i % CLUSTERS)))
            .collect();
        db.upsert_batch(&records).unwrap();
        db.rebuild().unwrap();
        for i in 0..150i64 {
            db.upsert(VectorRecord::new(20_000 + i, vec_for(20_000 + i, 2)))
                .unwrap();
        }
        let report = db.maybe_maintain().unwrap();
        assert_eq!(report.status, MaintenanceStatus::Healthy);
    }
    let mut cfg = Config::default();
    cfg.store.sync = SyncMode::Off;
    let db = MicroNN::open(&path, cfg).unwrap();
    assert_eq!(db.len().unwrap(), 850);
    // Force more splits after the reopen; partition ids must not
    // collide (collisions would corrupt sizes or lose rows).
    for i in 0..150i64 {
        db.upsert(VectorRecord::new(30_000 + i, vec_for(30_000 + i, 2)))
            .unwrap();
    }
    let report = db.maybe_maintain().unwrap();
    assert_eq!(report.status, MaintenanceStatus::Healthy);
    assert_eq!(db.len().unwrap(), 1000);
    let sizes = db.partition_sizes().unwrap();
    let ids: HashSet<i64> = sizes.iter().map(|&(p, _)| p).collect();
    assert_eq!(ids.len(), sizes.len(), "duplicate partition ids");
    let total: u64 = sizes.iter().map(|&(_, s)| s).sum();
    assert_eq!(total + db.delta_len().unwrap(), 1000);
}
