//! End-to-end telemetry: per-codec `bytes_scanned` accounting, the
//! per-stage trace spans, WAL group-commit spans, the slow-query log,
//! and the registry snapshot/exporters — driven through the public API
//! exactly as an embedding application would.

use std::sync::Arc;

use micronn::{
    CollectingSink, Config, Metric, MicroNN, SearchRequest, Span, SyncMode, VectorCodec,
    VectorRecord,
};
use micronn_datasets::{generate, DatasetSpec};

const DIM: usize = 16;
const K: usize = 8;

fn dataset(n: usize, seed: u64) -> micronn_datasets::Dataset {
    generate(&DatasetSpec {
        name: "synthetic-telemetry",
        dim: DIM,
        n_vectors: n,
        n_queries: 8,
        metric: Metric::L2,
        clusters: 8,
        spread: 0.1,
        seed,
    })
}

fn config(codec: VectorCodec) -> Config {
    let mut c = Config::new(DIM, Metric::L2);
    c.store.sync = SyncMode::Off;
    c.target_partition_size = 64;
    c.default_probes = 4;
    c.codec = codec;
    c.rerank_factor = 4;
    c.workers = 2;
    c
}

/// Builds an index of `n` vectors and rebuilds so the delta store is
/// empty — every scanned row then has the codec's storage layout.
fn build(codec: VectorCodec, n: usize) -> (tempfile::TempDir, MicroNN) {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("t.mnn"), config(codec)).unwrap();
    let ds = dataset(n, 21);
    let records: Vec<VectorRecord> = (0..n)
        .map(|i| VectorRecord::new(i as i64, ds.vector(i).to_vec()))
        .collect();
    db.upsert_batch(&records).unwrap();
    db.rebuild().unwrap();
    (dir, db)
}

// ---------------------------------------------------------------------------
// Satellite: per-codec bytes_scanned accounting, pinning the documented
// formula on `QueryInfo::bytes_scanned` (stats.rs) for every codec.
// ---------------------------------------------------------------------------

#[test]
fn bytes_scanned_f32_is_4_dim_per_row() {
    let (_dir, db) = build(VectorCodec::F32, 600);
    let q = dataset(600, 21).query(0).to_vec();
    // Exact scan touches every row exactly once, full precision.
    let resp = db.exact(&q, K, None).unwrap();
    assert_eq!(resp.info.vectors_scanned, 600);
    assert_eq!(resp.info.reranked, 0);
    assert_eq!(resp.info.bytes_scanned, 600 * 4 * DIM);
    // ANN scans a subset, still 4·dim per row and no re-rank.
    let resp = db.search(&q, K).unwrap();
    assert!(resp.info.vectors_scanned > 0);
    assert_eq!(resp.info.reranked, 0);
    assert_eq!(resp.info.bytes_scanned, resp.info.vectors_scanned * 4 * DIM);
}

#[test]
fn bytes_scanned_sq8_is_dim_per_row_plus_rerank() {
    let (_dir, db) = build(VectorCodec::Sq8, 600);
    let q = dataset(600, 21).query(0).to_vec();
    let resp = db.search(&q, K).unwrap();
    assert!(resp.info.vectors_scanned > 0);
    assert!(resp.info.reranked > 0, "quantized search must re-rank");
    assert_eq!(
        resp.info.bytes_scanned,
        resp.info.vectors_scanned * DIM + resp.info.reranked * 4 * DIM
    );
}

#[test]
fn bytes_scanned_sq4_is_16_dim_per_block_plus_rerank() {
    let (_dir, db) = build(VectorCodec::Sq4, 600);
    let q = dataset(600, 21).query(0).to_vec();
    let resp = db.search(&q, K).unwrap();
    assert!(resp.info.vectors_scanned > 0);
    assert!(resp.info.reranked > 0, "quantized search must re-rank");
    // Fastscan reads whole interleaved blocks (32 rows packed at dim/2
    // bytes each = 16·dim bytes), so the scan share must be an exact
    // multiple of the block size and cover every scanned vector.
    let scan_bytes = resp.info.bytes_scanned - resp.info.reranked * 4 * DIM;
    let block_bytes = 16 * DIM;
    assert_eq!(
        scan_bytes % block_bytes,
        0,
        "SQ4 scan bytes must be whole blocks (got {scan_bytes})"
    );
    let blocks = scan_bytes / block_bytes;
    assert!(
        blocks * 32 >= resp.info.vectors_scanned,
        "{blocks} blocks cannot hold {} scanned vectors",
        resp.info.vectors_scanned
    );
    assert!(blocks >= 1);
}

// ---------------------------------------------------------------------------
// Tentpole integration: stage spans, WAL group-commit spans, slow-query
// log, and snapshot counters observed end to end.
// ---------------------------------------------------------------------------

#[test]
fn trace_spans_wal_commits_and_slow_log_observed_end_to_end() {
    let dir = tempfile::tempdir().unwrap();
    let mut cfg = config(VectorCodec::Sq8);
    // A real durable write path, so commits go through group commit.
    cfg.store.sync = SyncMode::Normal;
    // Threshold 0 ms: every query lands in the slow-query log.
    cfg.slow_query_ms = Some(0);
    let db = MicroNN::create(dir.path().join("e2e.mnn"), cfg).unwrap();

    let sink = Arc::new(CollectingSink::new());
    db.set_trace_sink(Some(sink.clone()));

    let ds = dataset(500, 5);
    let records: Vec<VectorRecord> = (0..500)
        .map(|i| VectorRecord::new(i as i64, ds.vector(i).to_vec()))
        .collect();
    db.upsert_batch(&records).unwrap();
    db.rebuild().unwrap();

    let q = ds.query(0).to_vec();
    let single = db.search(&q, K).unwrap();
    assert_eq!(single.results.len(), K);
    let batch: Vec<Vec<f32>> = (0..4).map(|i| ds.query(i).to_vec()).collect();
    db.batch_search(&batch, K, None).unwrap();

    let spans: Vec<Span> = sink.take();
    let by_name = |n: &str| -> Vec<&Span> { spans.iter().filter(|s| s.name == n).collect() };

    // WAL group commits carry frame bytes; SyncMode::Normal fsyncs.
    let commits = by_name("wal_group_commit");
    assert!(!commits.is_empty(), "no wal_group_commit spans recorded");
    assert!(commits.iter().all(|s| s.bytes > 0 && s.items > 0));
    assert!(
        commits.iter().any(|s| s.fsyncs > 0),
        "SyncMode::Normal must fsync at least one group commit"
    );

    // The rebuild emitted a maintenance span attributing its write I/O.
    let rebuilds = by_name("maintain_rebuild");
    assert_eq!(rebuilds.len(), 1);
    assert_eq!(rebuilds[0].items, 500);
    assert!(rebuilds[0].bytes > 0);

    // Query stages: probe selection and partition scan always run; the
    // quantized pipeline re-ranks. Stage clocks must be nonzero.
    for name in ["probe_select", "partition_scan", "rerank"] {
        let stages = by_name(name);
        assert!(!stages.is_empty(), "missing {name} span");
        assert!(
            stages.iter().any(|s| !s.duration.is_zero()),
            "all {name} spans have zero duration"
        );
    }
    let queries = by_name("query");
    assert!(!queries.is_empty());
    assert!(queries.iter().all(|s| s.detail.contains("plan=")));
    let batches = by_name("batch");
    assert_eq!(batches.len(), 1);
    assert_eq!(batches[0].items, 4);

    // Slow-query log: threshold 0 captures everything, stages included.
    let slow = db.slow_queries();
    assert!(!slow.is_empty(), "slow-query log is empty at threshold 0");
    let rec = slow.last().unwrap();
    assert!(!rec.stages.is_empty(), "slow record has no stage breakdown");
    assert!(rec.partitions_scanned > 0);
    assert!(rec.bytes_scanned > 0);

    // Registry snapshot: counters flowed, histograms recorded, and the
    // store's I/O counters are re-registered live.
    let snap = db.telemetry();
    assert!(snap.counter("micronn_queries_total").unwrap() >= 1);
    assert_eq!(snap.counter("micronn_batches_total"), Some(1));
    assert!(snap.counter("micronn_slow_queries_total").unwrap() >= 1);
    assert!(snap.counter("micronn_vectors_scanned_total").unwrap() > 0);
    assert!(snap.counter("micronn_distance_computations_total").unwrap() > 0);
    assert!(snap.counter("micronn_maintenance_rebuild_total").unwrap() == 1);
    assert!(snap.counter("micronn_store_wal_writes").unwrap() > 0);
    let lat = snap.histogram("micronn_query_latency_ns").unwrap();
    assert!(lat.count >= 1);
    assert!(lat.p50() > 0.0);

    // Exporters render the same snapshot.
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE micronn_queries_total counter"));
    assert!(prom.contains("micronn_query_latency_ns_bucket{le=\"+Inf\"}"));
    let json = snap.to_json();
    assert!(json.contains("\"micronn_queries_total\""));
    assert!(json.contains("\"p99\""));
}

#[test]
fn query_counters_flow_without_any_sink() {
    // The always-on flow: no sink, no slow-query threshold — counters
    // and the latency histogram still populate.
    let (_dir, db) = build(VectorCodec::F32, 300);
    let q = dataset(300, 21).query(1).to_vec();
    for _ in 0..5 {
        db.search(&q, K).unwrap();
    }
    let snap = db.telemetry();
    assert_eq!(snap.counter("micronn_queries_total"), Some(5));
    assert_eq!(snap.histogram("micronn_query_latency_ns").unwrap().count, 5);
    assert!(snap.counter("micronn_partitions_scanned_total").unwrap() > 0);
    // No sink, no threshold: nothing detailed was collected.
    assert!(db.slow_queries().is_empty());
    assert_eq!(snap.counter("micronn_slow_queries_total"), Some(0));
}

#[test]
fn filter_join_stage_appears_for_hybrid_plans() {
    let dir = tempfile::tempdir().unwrap();
    let mut cfg = config(VectorCodec::F32);
    cfg.attributes = vec![micronn::AttributeDef::indexed(
        "g",
        micronn::ValueType::Integer,
    )];
    let db = MicroNN::create(dir.path().join("f.mnn"), cfg).unwrap();
    let ds = dataset(400, 9);
    let records: Vec<VectorRecord> = (0..400)
        .map(|i| VectorRecord::new(i as i64, ds.vector(i).to_vec()).with_attr("g", (i % 4) as i64))
        .collect();
    db.upsert_batch(&records).unwrap();
    db.rebuild().unwrap();

    let sink = Arc::new(CollectingSink::new());
    db.set_trace_sink(Some(sink.clone()));
    let filter = micronn::Expr::eq("g", micronn::Value::Integer(2));
    // Both physical plans must surface a filter_join stage.
    for plan in [
        micronn::PlanPreference::ForcePreFilter,
        micronn::PlanPreference::ForcePostFilter,
    ] {
        let req = SearchRequest::new(ds.query(0).to_vec(), K)
            .with_filter(filter.clone())
            .with_plan(plan);
        db.search_with(&req).unwrap();
        let spans = sink.take();
        assert!(
            spans.iter().any(|s| s.name == "filter_join"),
            "{plan:?}: no filter_join span in {:?}",
            spans.iter().map(|s| s.name).collect::<Vec<_>>()
        );
    }
}

#[test]
fn slow_log_is_a_bounded_ring() {
    let dir = tempfile::tempdir().unwrap();
    let mut cfg = config(VectorCodec::F32);
    cfg.slow_query_ms = Some(0);
    let db = MicroNN::create(dir.path().join("ring.mnn"), cfg).unwrap();
    let ds = dataset(200, 3);
    let records: Vec<VectorRecord> = (0..200)
        .map(|i| VectorRecord::new(i as i64, ds.vector(i).to_vec()))
        .collect();
    db.upsert_batch(&records).unwrap();
    db.rebuild().unwrap();
    let q = ds.query(0).to_vec();
    for _ in 0..200 {
        db.search(&q, K).unwrap();
    }
    let slow = db.slow_queries();
    assert!(slow.len() <= 128, "ring exceeded capacity: {}", slow.len());
    assert!(slow.len() >= 100, "ring nearly full expected");
}

#[test]
fn maintenance_spans_cover_flush_and_counters_registry() {
    let dir = tempfile::tempdir().unwrap();
    let mut cfg = config(VectorCodec::F32);
    cfg.delta_flush_threshold = 1_000_000; // manual control
    let db = MicroNN::create(dir.path().join("m.mnn"), cfg).unwrap();
    let ds = dataset(300, 13);
    let records: Vec<VectorRecord> = (0..300)
        .map(|i| VectorRecord::new(i as i64, ds.vector(i).to_vec()))
        .collect();
    db.upsert_batch(&records).unwrap();
    db.rebuild().unwrap();

    let sink = Arc::new(CollectingSink::new());
    db.set_trace_sink(Some(sink.clone()));
    // Stage and flush: the span's item count is the flushed rows.
    let extra: Vec<VectorRecord> = (0..40)
        .map(|i| VectorRecord::new(10_000 + i as i64, ds.vector(i as usize).to_vec()))
        .collect();
    db.upsert_batch(&extra).unwrap();
    let report = db.flush_delta().unwrap();
    assert_eq!(report.flushed, 40);
    let spans = sink.take();
    let flush = spans
        .iter()
        .find(|s| s.name == "maintain_flush")
        .expect("no maintain_flush span");
    assert_eq!(flush.items, 40);

    let snap = db.telemetry();
    assert_eq!(snap.counter("micronn_maintenance_flush_total"), Some(1));
    assert_eq!(snap.counter("micronn_maintenance_rebuild_total"), Some(1));
    assert!(snap.counter("micronn_maintenance_actions_total").unwrap() >= 2);
    assert!(
        snap.counter("micronn_maintenance_bytes_written_total")
            .unwrap()
            > 0
    );
}
