//! Robustness and edge-case behaviour of the public API: degenerate
//! parameters, empty states, oversized requests, and backup/restore.

use micronn::{
    AttributeDef, Config, Expr, Metric, MicroNN, PlanPreference, SearchRequest, SyncMode,
    ValueType, VectorRecord,
};

fn cfg(dim: usize) -> Config {
    let mut c = Config::new(dim, Metric::L2);
    c.store.sync = SyncMode::Off;
    c.target_partition_size = 16;
    c.attributes = vec![AttributeDef::indexed("tag", ValueType::Text)];
    c
}

fn seeded(db: &MicroNN, n: i64, dim: usize) {
    let recs: Vec<VectorRecord> = (0..n)
        .map(|i| {
            VectorRecord::new(i, vec![(i % 13) as f32; dim])
                .with_attr("tag", if i % 2 == 0 { "even" } else { "odd" })
        })
        .collect();
    db.upsert_batch(&recs).unwrap();
}

#[test]
fn search_empty_database() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("e.mnn"), cfg(4)).unwrap();
    let got = db.search(&[0.0; 4], 10).unwrap();
    assert!(got.results.is_empty());
    let got = db.exact(&[0.0; 4], 10, None).unwrap();
    assert!(got.results.is_empty());
    let got = db.batch_search(&[vec![0.0; 4]], 10, None).unwrap();
    assert_eq!(got.results.len(), 1);
    assert!(got.results[0].is_empty());
    // Rebuild of an empty collection is a no-op, not an error.
    let report = db.rebuild().unwrap();
    assert_eq!(report.vectors, 0);
}

#[test]
fn k_larger_than_collection() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("k.mnn"), cfg(4)).unwrap();
    seeded(&db, 5, 4);
    db.rebuild().unwrap();
    let got = db.search(&[1.0; 4], 100).unwrap();
    assert_eq!(got.results.len(), 5, "returns everything, no padding");
    let got = db.exact(&[1.0; 4], 100, None).unwrap();
    assert_eq!(got.results.len(), 5);
}

#[test]
fn k_zero_returns_empty() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("k0.mnn"), cfg(4)).unwrap();
    seeded(&db, 10, 4);
    let got = db.search(&[1.0; 4], 0).unwrap();
    assert!(got.results.is_empty());
}

#[test]
fn probes_exceeding_partition_count_clamp() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("p.mnn"), cfg(4)).unwrap();
    seeded(&db, 100, 4);
    db.rebuild().unwrap();
    let got = db
        .search_with(&SearchRequest::new(vec![1.0; 4], 10).with_probes(10_000))
        .unwrap();
    assert_eq!(got.results.len(), 10);
    // Clamped probes == exhaustive: equals exact.
    let exact = db.exact(&[1.0; 4], 10, None).unwrap();
    let a: Vec<i64> = got.results.iter().map(|r| r.asset_id).collect();
    let b: Vec<i64> = exact.results.iter().map(|r| r.asset_id).collect();
    assert_eq!(a, b);
}

#[test]
fn filter_matching_nothing() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("f.mnn"), cfg(4)).unwrap();
    seeded(&db, 50, 4);
    db.rebuild().unwrap();
    for plan in [
        PlanPreference::ForcePreFilter,
        PlanPreference::ForcePostFilter,
    ] {
        let got = db
            .search_with(
                &SearchRequest::new(vec![1.0; 4], 10)
                    .with_filter(Expr::eq("tag", "nonexistent"))
                    .with_plan(plan),
            )
            .unwrap();
        assert!(got.results.is_empty(), "{plan:?} must return empty");
    }
}

#[test]
fn duplicate_vectors_and_ties() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("d.mnn"), cfg(4)).unwrap();
    // 20 identical vectors: results must be deterministic (id order on
    // ties) and include exactly k of them.
    let recs: Vec<VectorRecord> = (0..20)
        .map(|i| VectorRecord::new(i, vec![5.0; 4]))
        .collect();
    db.upsert_batch(&recs).unwrap();
    db.rebuild().unwrap();
    let a = db.exact(&[5.0; 4], 7, None).unwrap();
    let b = db.exact(&[5.0; 4], 7, None).unwrap();
    assert_eq!(a.results, b.results);
    assert_eq!(a.results.len(), 7);
    assert!(a.results.iter().all(|r| r.distance == 0.0));
    let ids: Vec<i64> = a.results.iter().map(|r| r.asset_id).collect();
    assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6], "ties break by id");
}

#[test]
fn nan_and_extreme_vectors_do_not_poison_results() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("n.mnn"), cfg(4)).unwrap();
    db.upsert(VectorRecord::new(1, vec![1.0; 4])).unwrap();
    db.upsert(VectorRecord::new(2, vec![f32::MAX / 2.0; 4]))
        .unwrap();
    db.upsert(VectorRecord::new(3, vec![f32::NAN; 4])).unwrap();
    let got = db.search(&[1.0; 4], 3).unwrap();
    assert_eq!(got.results[0].asset_id, 1);
    // NaN distances sort last; the finite vectors come first.
    assert_eq!(got.results.len(), 3);
    assert!(!got.results[0].distance.is_nan());
}

#[test]
fn negative_and_large_asset_ids() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("ids.mnn"), cfg(4)).unwrap();
    for id in [i64::MIN, -1, 0, i64::MAX] {
        db.upsert(VectorRecord::new(id, vec![id as f32 % 100.0; 4]))
            .unwrap();
    }
    assert_eq!(db.len().unwrap(), 4);
    for id in [i64::MIN, -1, 0, i64::MAX] {
        assert!(db.contains(id).unwrap(), "id {id}");
        assert!(db.get_vector(id).unwrap().is_some());
    }
    let got = db.search(&[i64::MAX as f32 % 100.0; 4], 1).unwrap();
    assert!(!got.results.is_empty());
    db.delete(i64::MIN).unwrap();
    assert!(!db.contains(i64::MIN).unwrap());
}

#[test]
fn rebuild_twice_is_stable() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("r.mnn"), cfg(8)).unwrap();
    seeded(&db, 300, 8);
    db.rebuild().unwrap();
    let s1 = db.stats().unwrap();
    db.rebuild().unwrap();
    let s2 = db.stats().unwrap();
    assert_eq!(s1.total_vectors, s2.total_vectors);
    assert_eq!(s1.partitions, s2.partitions, "same data, same k");
    // Same query, same results.
    let a = db.exact(&[3.0; 8], 10, None).unwrap();
    db.rebuild().unwrap();
    let b = db.exact(&[3.0; 8], 10, None).unwrap();
    assert_eq!(
        a.results.iter().map(|r| r.asset_id).collect::<Vec<_>>(),
        b.results.iter().map(|r| r.asset_id).collect::<Vec<_>>()
    );
}

#[test]
fn flush_empty_delta_is_a_noop() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("fl.mnn"), cfg(4)).unwrap();
    seeded(&db, 50, 4);
    db.rebuild().unwrap();
    let report = db.flush_delta().unwrap();
    assert_eq!(report.flushed, 0);
    assert_eq!(report.partitions_touched, 0);
}

#[test]
fn backup_is_a_consistent_snapshot() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("src.mnn"), cfg(8)).unwrap();
    seeded(&db, 200, 8);
    db.rebuild().unwrap();
    let backup_path = dir.path().join("backup.mnn");
    db.backup_to(&backup_path).unwrap();
    // Mutate the original after the backup.
    db.delete_batch(&(0..100).collect::<Vec<i64>>()).unwrap();
    assert_eq!(db.len().unwrap(), 100);

    // The backup opens independently with the pre-mutation state.
    let mut open_cfg = Config::default();
    open_cfg.store.sync = SyncMode::Off;
    let restored = MicroNN::open(&backup_path, open_cfg).unwrap();
    assert_eq!(restored.len().unwrap(), 200);
    let got = restored.search(&[3.0; 8], 5).unwrap();
    assert!(!got.results.is_empty());
    // Hybrid machinery (indexes, stats) survived the copy.
    let got = restored
        .search_with(&SearchRequest::new(vec![3.0; 8], 5).with_filter(Expr::eq("tag", "even")))
        .unwrap();
    assert!(got.results.iter().all(|r| r.asset_id % 2 == 0));
}

#[test]
fn backup_under_concurrent_writer_is_consistent() {
    // The quiescent-backup test above proves the copy is usable; this
    // one proves the *snapshot* claim: backups taken while a writer is
    // churning upserts, deletes, and maintenance must each open
    // cleanly, pass the full integrity walk, and contain no torn
    // multi-table transaction.
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("src.mnn"), cfg(8)).unwrap();
    seeded(&db, 300, 8);
    db.rebuild().unwrap();

    let stop = std::sync::atomic::AtomicBool::new(false);
    let backups: Vec<std::path::PathBuf> = (0..5)
        .map(|i| dir.path().join(format!("backup-{i}.mnn")))
        .collect();
    std::thread::scope(|s| {
        let writer_db = db.clone();
        let stop_ref = &stop;
        s.spawn(move || {
            let mut i = 0i64;
            while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                let id = 1000 + (i % 200);
                writer_db
                    .upsert(VectorRecord::new(id, vec![(i % 17) as f32; 8]))
                    .unwrap();
                if i % 3 == 0 {
                    writer_db.delete(i % 300).unwrap();
                }
                if i % 25 == 0 {
                    writer_db.maybe_maintain().unwrap();
                }
                i += 1;
            }
        });
        for b in &backups {
            db.backup_to(b).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    for b in &backups {
        let mut open_cfg = Config::default();
        open_cfg.store.sync = SyncMode::Off;
        let restored = MicroNN::open(b, open_cfg).unwrap();
        let report = restored.verify_integrity().unwrap();
        assert!(
            report.is_clean(),
            "backup {} is torn: {:?}",
            b.display(),
            report.errors
        );
        assert!(restored.len().unwrap() > 0);
        // And it is a live database, not just a readable one.
        let got = restored.search(&[3.0; 8], 5).unwrap();
        assert!(!got.results.is_empty());
    }
    // The source itself stays clean after the churn.
    assert!(db.verify_integrity().unwrap().is_clean());
}

#[test]
fn create_on_existing_path_fails_cleanly() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("dup.mnn");
    let _db = MicroNN::create(&path, cfg(4)).unwrap();
    assert!(MicroNN::create(&path, cfg(4)).is_err());
}

#[test]
fn concurrent_batch_and_single_searches() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("c.mnn"), cfg(8)).unwrap();
    seeded(&db, 500, 8);
    db.rebuild().unwrap();
    // Batch and single searches share the worker pool; run them from
    // several threads at once to shake out pool deadlocks.
    std::thread::scope(|s| {
        for t in 0..4 {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..20 {
                    let q = vec![((t * 20 + i) % 13) as f32; 8];
                    if i % 2 == 0 {
                        let r = db.search(&q, 5).unwrap();
                        assert!(r.results.len() <= 5);
                    } else {
                        let qs = vec![q.clone(), q];
                        let r = db.batch_search(&qs, 5, None).unwrap();
                        assert_eq!(r.results.len(), 2);
                    }
                }
            });
        }
    });
}
