//! MVCC stress suite: multi-reader/multi-writer churn with snapshot
//! consistency proofs (the promotion of `exec_determinism`'s
//! concurrent smoke into a real suite).
//!
//! What is proven here:
//!
//! * **Frozen snapshots** — a search pinned *before* concurrent
//!   upserts/deletes/flushes/splits/merges returns **bit-identical**
//!   results when re-run on the same [`micronn::Snapshot`] after the
//!   churn, for both codecs.
//! * **Readers never block behind writers** — a full search completes
//!   while a write transaction is held open, and the reader-side path
//!   never touches the writer lock (`writer_lock_waits` telemetry
//!   stays flat across a reader-only phase).
//! * **Writers never block behind readers** — commits proceed at full
//!   rate while a pinned snapshot runs queries continuously.
//! * **The reader registry drains** — after every thread is done (or
//!   has panicked mid-read), `active_readers` is 0 and version GC can
//!   advance.
//! * **Crash safety under concurrency** — with the Begin/PagePut/Commit
//!   WAL records, a power cut at injected points during churn with a
//!   live pinned reader recovers to a clean, fsck-passing catalog.
//!
//! Scale: `MICRONN_MVCC_OPS` bounds the churn rounds and
//! `MICRONN_MVCC_CRASH_POINTS` the injection points (CI sets small
//! values; local runs can raise them).

use std::sync::atomic::{AtomicBool, Ordering};

use micronn::{
    AttributeDef, Config, Expr, MaintainerOptions, Metric, MicroNN, SearchRequest, SyncMode,
    ValueType, VectorCodec, VectorRecord,
};
use micronn_datasets::{generate, DatasetSpec};
use micronn_rel::Value;
use micronn_storage::{CrashPlan, PowerCut, SimVfs};

const DIM: usize = 16;
const K: usize = 10;

fn churn_rounds() -> usize {
    std::env::var("MICRONN_MVCC_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6)
}

/// Number of crash-injection points (`0` = every point, mirroring
/// `MICRONN_CRASH_POINTS`).
fn crash_points(total: u64) -> u64 {
    match std::env::var("MICRONN_MVCC_CRASH_POINTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
    {
        0 => total,
        n => n.min(total),
    }
}

fn dataset(n: usize, seed: u64) -> micronn_datasets::Dataset {
    generate(&DatasetSpec {
        name: "synthetic-mvcc",
        dim: DIM,
        n_vectors: n,
        n_queries: 12,
        metric: Metric::L2,
        clusters: 8,
        spread: 0.1,
        seed,
    })
}

fn config(codec: VectorCodec) -> Config {
    let mut c = Config::new(DIM, Metric::L2);
    c.store.sync = SyncMode::Off;
    c.target_partition_size = 40;
    c.default_probes = 6;
    c.codec = codec;
    c.rerank_factor = 4;
    c.workers = 4;
    c.attributes = vec![AttributeDef::indexed("g", ValueType::Integer)];
    c
}

fn build(path: &std::path::Path, codec: VectorCodec, ds: &micronn_datasets::Dataset) -> MicroNN {
    let db = MicroNN::create(path, config(codec)).unwrap();
    let records: Vec<VectorRecord> = (0..ds.len())
        .map(|i| VectorRecord::new(i as i64, ds.vector(i).to_vec()).with_attr("g", (i % 5) as i64))
        .collect();
    db.upsert_batch(&records).unwrap();
    db.rebuild().unwrap();
    db
}

/// One writer round: upserts, deletes, a delta flush, and (odd rounds)
/// a full lifecycle pass — enough to force splits/merges/retrains on
/// small partitions. Fallible so the crash-injection test can observe
/// the simulated-crash error instead of unwinding.
fn try_churn_round(
    db: &MicroNN,
    fresh: &micronn_datasets::Dataset,
    round: usize,
) -> micronn::Result<()> {
    let records: Vec<VectorRecord> = (0..60)
        .map(|i| {
            let src = (round * 60 + i) % fresh.len();
            VectorRecord::new(50_000 + (round * 60 + i) as i64, fresh.vector(src).to_vec())
                .with_attr("g", (src % 5) as i64)
        })
        .collect();
    db.upsert_batch(&records)?;
    let doomed: Vec<i64> = (0..25).map(|i| (round * 25 + i) as i64).collect();
    db.delete_batch(&doomed)?;
    db.flush_delta()?;
    if round % 2 == 1 {
        db.maybe_maintain()?;
    }
    Ok(())
}

fn churn_round(db: &MicroNN, fresh: &micronn_datasets::Dataset, round: usize) {
    try_churn_round(db, fresh, round).unwrap();
}

/// A result list from one snapshot must be bounded, sorted, deduped,
/// and finite.
fn check_well_formed(results: &[micronn::SearchResult]) {
    assert!(results.len() <= K);
    let mut seen = std::collections::HashSet::new();
    for w in results.windows(2) {
        assert!(
            (w[0].distance, w[0].asset_id) <= (w[1].distance, w[1].asset_id),
            "results not sorted: {w:?}"
        );
    }
    for r in results {
        assert!(seen.insert(r.asset_id), "duplicate id {}", r.asset_id);
        assert!(r.distance.is_finite());
    }
}

fn assert_bit_identical(a: &[micronn::SearchResult], b: &[micronn::SearchResult], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: result counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.asset_id, y.asset_id, "{what}: id at rank {i}");
        assert_eq!(
            x.distance.to_bits(),
            y.distance.to_bits(),
            "{what}: distance bits at rank {i}"
        );
    }
}

/// Tentpole proof: results from a pinned snapshot do not change while
/// flush/split/merge/retrain commit underneath it — re-running the
/// same queries on the same snapshot after heavy churn is
/// bit-identical to before, for both codecs.
fn pinned_snapshot_frozen(codec: VectorCodec) {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("frozen.mnn");
    let ds = dataset(1200, 31);
    let db = build(&path, codec, &ds);
    let filter = Expr::eq("g", Value::Integer(2));

    let snap = db.snapshot();
    let len_before = snap.len().unwrap();
    let baseline: Vec<_> = (0..ds.spec.n_queries)
        .map(|qi| {
            let q = ds.query(qi);
            (
                snap.search(q, K).unwrap().results,
                snap.search_with(&SearchRequest::new(q.to_vec(), K).with_filter(filter.clone()))
                    .unwrap()
                    .results,
                snap.exact(q, K, None).unwrap().results,
            )
        })
        .collect();
    let batch_queries: Vec<Vec<f32>> = (0..ds.spec.n_queries)
        .map(|qi| ds.query(qi).to_vec())
        .collect();
    let batch_baseline = snap.batch_search(&batch_queries, K, None).unwrap().results;

    let fresh = dataset(600, 77);
    for round in 0..churn_rounds() {
        churn_round(&db, &fresh, round);
    }
    // The live view moved…
    assert_ne!(db.len().unwrap(), len_before, "churn must change the db");

    // …the pinned snapshot did not: same len, same bits, clean fsck.
    assert_eq!(snap.len().unwrap(), len_before);
    assert!(snap.verify_integrity().unwrap().is_clean());
    for (qi, (plain, filtered, exact)) in baseline.iter().enumerate() {
        let q = ds.query(qi);
        assert_bit_identical(
            &snap.search(q, K).unwrap().results,
            plain,
            &format!("{codec} plain q{qi}"),
        );
        assert_bit_identical(
            &snap
                .search_with(&SearchRequest::new(q.to_vec(), K).with_filter(filter.clone()))
                .unwrap()
                .results,
            filtered,
            &format!("{codec} filtered q{qi}"),
        );
        assert_bit_identical(
            &snap.exact(q, K, None).unwrap().results,
            exact,
            &format!("{codec} exact q{qi}"),
        );
    }
    let batch_after = snap.batch_search(&batch_queries, K, None).unwrap().results;
    assert_eq!(batch_after.len(), batch_baseline.len());
    for (qi, (a, b)) in batch_after.iter().zip(&batch_baseline).enumerate() {
        assert_bit_identical(a, b, &format!("{codec} batch q{qi}"));
    }
    drop(snap);
    assert_eq!(db.database().store().active_readers(), 0);
}

#[test]
fn pinned_snapshot_frozen_f32() {
    pinned_snapshot_frozen(VectorCodec::F32);
}

#[test]
fn pinned_snapshot_frozen_sq8() {
    pinned_snapshot_frozen(VectorCodec::Sq8);
}

/// Multi-reader/multi-writer: N reader threads assert per-snapshot
/// consistency (same snapshot queried twice is bit-identical) while a
/// writer and the background [`micronn::IndexMaintainer`] churn.
fn reader_writer_stress(codec: VectorCodec) {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("stress.mnn");
    let ds = dataset(1500, 41);
    let db = build(&path, codec, &ds);
    let maintainer = db.start_maintainer(MaintainerOptions::default());

    let before = db.io_stats();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut readers = Vec::new();
        for t in 0..3usize {
            let db = db.clone();
            let ds = &ds;
            let stop = &stop;
            readers.push(s.spawn(move || {
                let filter = Expr::eq("g", Value::Integer(1));
                let mut iters = 0usize;
                while !stop.load(Ordering::Relaxed) || iters < 20 {
                    let q = ds.query((iters + t) % ds.spec.n_queries);
                    // Pin one snapshot; everything inside must be
                    // self-consistent and repeatable.
                    let snap = db.snapshot();
                    let a = snap.search(q, K).unwrap();
                    check_well_formed(&a.results);
                    let b = snap.search(q, K).unwrap();
                    assert_bit_identical(
                        &a.results,
                        &b.results,
                        "same snapshot, same query, twice",
                    );
                    let f = snap
                        .search_with(&SearchRequest::new(q.to_vec(), K).with_filter(filter.clone()))
                        .unwrap();
                    check_well_formed(&f.results);
                    // Unpinned searches still work and are well-formed.
                    check_well_formed(&db.search(q, K).unwrap().results);
                    iters += 1;
                    if iters >= 150 {
                        break; // safety valve if the writer is slow
                    }
                }
            }));
        }
        let fresh = dataset(700, 99);
        for round in 0..churn_rounds() {
            churn_round(&db, &fresh, round);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
    });
    maintainer.stop();

    // Reader registry drained: nothing pins old versions, GC floor is
    // the committed seq again.
    let store = db.database().store();
    assert_eq!(store.active_readers(), 0, "reader registry must drain");
    assert_eq!(store.oldest_reader_snapshot(), None);
    let after = db.io_stats();
    assert!(
        after.reader_pins > before.reader_pins,
        "stress must have pinned snapshots"
    );
    assert!(db.verify_integrity().unwrap().is_clean());
}

#[test]
fn reader_writer_stress_f32() {
    reader_writer_stress(VectorCodec::F32);
}

#[test]
fn reader_writer_stress_sq8() {
    reader_writer_stress(VectorCodec::Sq8);
}

/// No reader-blocks-writer wait: a long-lived pinned snapshot queries
/// continuously while the writer commits at full rate — every commit
/// must land (and the snapshot must not see any of them).
#[test]
fn writers_never_wait_for_readers() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("wnb.mnn");
    let ds = dataset(800, 53);
    let db = build(&path, VectorCodec::F32, &ds);

    let snap = db.snapshot();
    let len_before = snap.len().unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let reader = {
            let snap = &snap;
            let ds = &ds;
            let stop = &stop;
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let q = ds.query(i % ds.spec.n_queries);
                    check_well_formed(&snap.search(q, K).unwrap().results);
                    i += 1;
                }
                i
            })
        };
        // 50 commits while the snapshot reads hot.
        for i in 0..50i64 {
            db.upsert(VectorRecord::new(
                80_000 + i,
                ds.vector(i as usize % ds.len()).to_vec(),
            ))
            .unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        assert!(reader.join().unwrap() > 0, "reader must have run");
    });
    assert_eq!(db.len().unwrap(), len_before + 50, "every commit landed");
    assert_eq!(snap.len().unwrap(), len_before, "snapshot saw none of them");
}

/// No writer-blocks-reader wait: a search started *while a write
/// transaction is held open* completes without waiting for the writer,
/// and the reader-side path never touches the writer lock.
#[test]
fn readers_never_wait_for_writers() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("rnb.mnn");
    let ds = dataset(800, 67);
    let db = build(&path, VectorCodec::F32, &ds);

    // Hold the writer lock open (uncommitted transaction with dirty
    // pages) and run full searches underneath it, with a watchdog so a
    // regression fails fast instead of hanging the suite.
    let txn = db.database().begin_write().unwrap();
    let waits_before = db.io_stats().writer_lock_waits;
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|s| {
        let db2 = db.clone();
        let ds = &ds;
        s.spawn(move || {
            for qi in 0..ds.spec.n_queries {
                let resp = db2.search(ds.query(qi), K).unwrap();
                check_well_formed(&resp.results);
                let resp = db2.exact(ds.query(qi), K, None).unwrap();
                check_well_formed(&resp.results);
            }
            tx.send(()).unwrap();
        });
        rx.recv_timeout(std::time::Duration::from_secs(30))
            .expect("searches must complete while a write txn is open");
    });
    // The reader-only phase never contended on the writer lock.
    assert_eq!(
        db.io_stats().writer_lock_waits,
        waits_before,
        "reads must not touch the writer lock"
    );
    txn.rollback();
}

/// Reader-registry leak regression (drop-guard satellite): a panic
/// while a snapshot is alive must still deregister the reader during
/// unwind.
#[test]
fn panicked_reader_still_deregisters() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("panic.mnn");
    let ds = dataset(300, 73);
    let db = build(&path, VectorCodec::F32, &ds);

    let db2 = db.clone();
    let ds2 = &ds;
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let snap = db2.snapshot();
        let _ = snap.search(ds2.query(0), K).unwrap();
        panic!("boom with a live snapshot");
    }));
    assert!(outcome.is_err());
    assert_eq!(
        db.database().store().active_readers(),
        0,
        "unwind must drop the reader registration"
    );
    // Version GC is unblocked: a checkpoint folds the WAL fully.
    assert!(db.checkpoint().unwrap());
}

/// Retrain-vs-search interleaving regression (cache-invalidation race
/// satellite): concurrent searches across repeated quantizer retrains
/// must never score against a mix of old and new ranges — every result
/// set stays well-formed, and a pinned snapshot's results stay frozen
/// across each retrain.
#[test]
fn retrain_vs_search_interleaving() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("retrain.mnn");
    let ds = dataset(1000, 83);
    let db = build(&path, VectorCodec::Sq8, &ds);
    let partitions: Vec<i64> = db
        .partition_sizes()
        .unwrap()
        .into_iter()
        .map(|(p, _)| p)
        .collect();
    assert!(!partitions.is_empty());

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let searcher = {
            let db = db.clone();
            let ds = &ds;
            let stop = &stop;
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let q = ds.query(i % ds.spec.n_queries);
                    let snap = db.snapshot();
                    let a = snap.search(q, K).unwrap();
                    check_well_formed(&a.results);
                    let b = snap.search(q, K).unwrap();
                    assert_bit_identical(&a.results, &b.results, "snapshot across retrain");
                    check_well_formed(&db.search(q, K).unwrap().results);
                    i += 1;
                }
            })
        };
        for round in 0..churn_rounds().max(3) {
            let p = partitions[round % partitions.len()];
            db.retrain_partition(p).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        searcher.join().expect("searcher panicked");
    });
    assert!(db.verify_integrity().unwrap().is_clean());
    assert_eq!(db.database().store().active_readers(), 0);
}

/// Crash injection during concurrent churn with a live pinned reader:
/// at every sampled injection point, recovery lands on a clean,
/// fsck-passing committed state under the Begin/PagePut/Commit WAL
/// records.
#[test]
fn crash_points_during_concurrent_churn_recover_clean() {
    let path = std::path::Path::new("/sim/mvcc.mnn");
    let ds = dataset(500, 91);
    let fresh = dataset(300, 17);

    // Clean pass to count mutating VFS ops.
    let total = {
        let sim = SimVfs::new();
        let mut cfg = config(VectorCodec::Sq8);
        cfg.store.sync = SyncMode::Normal;
        cfg.store.vfs = sim.handle();
        let db = MicroNN::create(path, cfg).unwrap();
        let records: Vec<VectorRecord> = (0..ds.len())
            .map(|i| {
                VectorRecord::new(i as i64, ds.vector(i).to_vec()).with_attr("g", (i % 5) as i64)
            })
            .collect();
        db.upsert_batch(&records).unwrap();
        db.rebuild().unwrap();
        sim.arm(CrashPlan {
            at_op: u64::MAX,
            torn_eighths: None,
        });
        for round in 0..3 {
            churn_round(&db, &fresh, round);
        }
        sim.ops()
    };
    assert!(total > 20, "churn too small to prove anything: {total}");

    let n = crash_points(total);
    let points: Vec<u64> = (1..=n).map(|i| i * total / n).collect();
    for at_op in points {
        let sim = SimVfs::new();
        let mut cfg = config(VectorCodec::Sq8);
        cfg.store.sync = SyncMode::Normal;
        cfg.store.vfs = sim.handle();
        let db = MicroNN::create(path, cfg.clone()).unwrap();
        let records: Vec<VectorRecord> = (0..ds.len())
            .map(|i| {
                VectorRecord::new(i as i64, ds.vector(i).to_vec()).with_attr("g", (i % 5) as i64)
            })
            .collect();
        db.upsert_batch(&records).unwrap();
        db.rebuild().unwrap();
        sim.arm(CrashPlan {
            at_op,
            torn_eighths: Some(4),
        });
        // Pin a reader, then churn until the injected crash fires;
        // reads from the pinned snapshot race the dying writer.
        let snap = db.snapshot();
        let mut crash_err = None;
        for round in 0..6 {
            let _ = snap.search(ds.query(round % ds.spec.n_queries), K);
            if let Err(e) = try_churn_round(&db, &fresh, round) {
                crash_err = Some(e.to_string());
                break;
            }
        }
        let err =
            crash_err.unwrap_or_else(|| panic!("at_op {at_op}: churn outran the crash point"));
        assert!(
            err.contains("simulated crash"),
            "at_op {at_op}: non-crash failure: {err}"
        );
        drop(snap);
        drop(db);
        sim.power_cut(PowerCut::DropUnsynced);
        let db = MicroNN::open(path, cfg).unwrap_or_else(|e| {
            panic!("at_op {at_op}: reopen failed: {e}");
        });
        let report = db.verify_integrity().unwrap();
        assert!(
            report.is_clean(),
            "at_op {at_op}: fsck found partial transactions: {:?}",
            report.errors
        );
        // Recovered database accepts new work.
        db.upsert(VectorRecord::new(99_999, vec![0.5; DIM]))
            .unwrap();
        assert!(db.contains(99_999).unwrap());
    }
}
