//! Executor-layer guarantees: worker-count-independent results,
//! deterministic first-error reporting, and concurrent
//! search-vs-update safety.
//!
//! The unified scan executor promises that (1) every query path
//! returns **bit-identical** ids and distances whatever the scan-pool
//! size, for both codecs; (2) a failing partition surfaces a *stable*
//! error — the first by partition/query index — rather than whichever
//! worker lost the race; and (3) searches running concurrently with
//! streaming updates observe consistent snapshots.

use micronn::{
    AttributeDef, Config, Expr, Metric, MicroNN, PlanPreference, SearchRequest, SyncMode,
    ValueType, VectorCodec, VectorRecord,
};
use micronn_datasets::{generate, DatasetSpec};
use micronn_rel::Value;

const DIM: usize = 24;
const K: usize = 10;

fn dataset(n: usize, seed: u64) -> micronn_datasets::Dataset {
    generate(&DatasetSpec {
        name: "synthetic-exec",
        dim: DIM,
        n_vectors: n,
        n_queries: 20,
        metric: Metric::L2,
        clusters: 12,
        spread: 0.08,
        seed,
    })
}

fn config(codec: VectorCodec, workers: usize) -> Config {
    let mut c = Config::new(DIM, Metric::L2);
    c.store.sync = SyncMode::Off;
    c.target_partition_size = 50;
    c.default_probes = 12;
    c.codec = codec;
    c.rerank_factor = 4;
    c.workers = workers;
    c.attributes = vec![AttributeDef::indexed("g", ValueType::Integer)];
    c
}

/// Creates, fills, and rebuilds an index at `path` (workers = 1 for
/// the build; worker count is a runtime knob, not part of the file).
fn build(path: &std::path::Path, codec: VectorCodec, ds: &micronn_datasets::Dataset) {
    let db = MicroNN::create(path, config(codec, 1)).unwrap();
    let records: Vec<VectorRecord> = (0..ds.len())
        .map(|i| VectorRecord::new(i as i64, ds.vector(i).to_vec()).with_attr("g", (i % 5) as i64))
        .collect();
    db.upsert_batch(&records).unwrap();
    db.rebuild().unwrap();
}

/// Asserts two result lists agree exactly: same ids, same f32
/// distance bits, same order.
fn assert_bit_identical(a: &[micronn::SearchResult], b: &[micronn::SearchResult], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: result counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.asset_id, y.asset_id, "{what}: id at rank {i}");
        assert_eq!(
            x.distance.to_bits(),
            y.distance.to_bits(),
            "{what}: distance at rank {i} ({} vs {})",
            x.distance,
            y.distance
        );
    }
}

fn workers_are_bit_identical(codec: VectorCodec) {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("det.mnn");
    let ds = dataset(2500, 99);
    build(&path, codec, &ds);
    // Stage some delta vectors too, so every scan crosses both the
    // indexed partitions and the (always full-precision) delta store.
    let db_seed = MicroNN::open(&path, config(codec, 1)).unwrap();
    let extra = dataset(150, 7);
    let staged: Vec<VectorRecord> = (0..extra.len())
        .map(|i| {
            VectorRecord::new(90_000 + i as i64, extra.vector(i).to_vec())
                .with_attr("g", (i % 5) as i64)
        })
        .collect();
    db_seed.upsert_batch(&staged).unwrap();
    drop(db_seed);

    let w1 = MicroNN::open(&path, config(codec, 1)).unwrap();
    let w8 = MicroNN::open(&path, config(codec, 8)).unwrap();
    let filter = Expr::eq("g", Value::Integer(3));
    for qi in 0..ds.spec.n_queries {
        let q = ds.query(qi);
        // Plain ANN.
        let a = w1.search(q, K).unwrap();
        let b = w8.search(q, K).unwrap();
        assert_bit_identical(&a.results, &b.results, "plain");
        assert_eq!(a.info.bytes_scanned, b.info.bytes_scanned, "plain bytes");
        // Filtered, post-filter plan forced (the filter runs inside
        // the parallel scan frame).
        let req = SearchRequest::new(q.to_vec(), K)
            .with_filter(filter.clone())
            .with_plan(PlanPreference::ForcePostFilter);
        let a = w1.search_with(&req).unwrap();
        let b = w8.search_with(&req).unwrap();
        assert_bit_identical(&a.results, &b.results, "post-filter");
        // Filtered, optimizer's choice.
        let req = SearchRequest::new(q.to_vec(), K).with_filter(filter.clone());
        let a = w1.search_with(&req).unwrap();
        let b = w8.search_with(&req).unwrap();
        assert_eq!(a.info.plan, b.info.plan, "plan choice");
        assert_bit_identical(&a.results, &b.results, "auto-filter");
        // Exhaustive exact.
        let a = w1.exact(q, K, None).unwrap();
        let b = w8.exact(q, K, None).unwrap();
        assert_bit_identical(&a.results, &b.results, "exact");
        let a = w1.exact(q, K, Some(&filter)).unwrap();
        let b = w8.exact(q, K, Some(&filter)).unwrap();
        assert_bit_identical(&a.results, &b.results, "exact filtered");
    }
    // Batch MQO: per-query lists and aggregate counters must match.
    let batch: Vec<Vec<f32>> = (0..ds.spec.n_queries)
        .map(|qi| ds.query(qi).to_vec())
        .collect();
    let a = w1.batch_search(&batch, K, None).unwrap();
    let b = w8.batch_search(&batch, K, None).unwrap();
    assert_eq!(a.partitions_scanned, b.partitions_scanned);
    assert_eq!(a.distance_computations, b.distance_computations);
    assert_eq!(a.bytes_scanned, b.bytes_scanned);
    for (qi, (x, y)) in a.results.iter().zip(&b.results).enumerate() {
        assert_bit_identical(x, y, &format!("batch q{qi}"));
    }
}

/// Telemetry must be an observer, never a participant: the same index
/// queried with full tracing armed (collecting sink + slow-query log
/// at threshold 0) returns bit-identical results and identical
/// execution counters to an untraced handle.
fn tracing_is_transparent(codec: VectorCodec) {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("trace.mnn");
    let ds = dataset(1500, 77);
    build(&path, codec, &ds);

    let plain = MicroNN::open(&path, config(codec, 4)).unwrap();
    let mut traced_cfg = config(codec, 4);
    traced_cfg.slow_query_ms = Some(0);
    let traced = MicroNN::open(&path, traced_cfg).unwrap();
    traced.set_trace_sink(Some(std::sync::Arc::new(micronn::CollectingSink::new())));

    let filter = Expr::eq("g", Value::Integer(1));
    for qi in 0..ds.spec.n_queries {
        let q = ds.query(qi);
        let a = plain.search(q, K).unwrap();
        let b = traced.search(q, K).unwrap();
        assert_bit_identical(&a.results, &b.results, "traced plain");
        assert_eq!(a.info, b.info, "traced plain counters");
        let req = SearchRequest::new(q.to_vec(), K)
            .with_filter(filter.clone())
            .with_plan(PlanPreference::ForcePostFilter);
        let a = plain.search_with(&req).unwrap();
        let b = traced.search_with(&req).unwrap();
        assert_bit_identical(&a.results, &b.results, "traced post-filter");
        assert_eq!(a.info, b.info, "traced post-filter counters");
        let a = plain.exact(q, K, None).unwrap();
        let b = traced.exact(q, K, None).unwrap();
        assert_bit_identical(&a.results, &b.results, "traced exact");
        assert_eq!(a.info, b.info, "traced exact counters");
    }
    let batch: Vec<Vec<f32>> = (0..ds.spec.n_queries)
        .map(|qi| ds.query(qi).to_vec())
        .collect();
    let a = plain.batch_search(&batch, K, None).unwrap();
    let b = traced.batch_search(&batch, K, None).unwrap();
    assert_eq!(a.partitions_scanned, b.partitions_scanned);
    assert_eq!(a.distance_computations, b.distance_computations);
    assert_eq!(a.bytes_scanned, b.bytes_scanned);
    for (qi, (x, y)) in a.results.iter().zip(&b.results).enumerate() {
        assert_bit_identical(x, y, &format!("traced batch q{qi}"));
    }
    assert!(
        !traced.slow_queries().is_empty(),
        "threshold 0 must populate the slow log"
    );
}

#[test]
fn tracing_is_transparent_f32() {
    tracing_is_transparent(VectorCodec::F32);
}

#[test]
fn tracing_is_transparent_sq8() {
    tracing_is_transparent(VectorCodec::Sq8);
}

#[test]
fn tracing_is_transparent_sq4() {
    tracing_is_transparent(VectorCodec::Sq4);
}

#[test]
fn workers_1_and_8_bit_identical_f32() {
    workers_are_bit_identical(VectorCodec::F32);
}

#[test]
fn workers_1_and_8_bit_identical_sq8() {
    workers_are_bit_identical(VectorCodec::Sq8);
}

#[test]
fn workers_1_and_8_bit_identical_sq4() {
    // Integer LUT scoring is bit-identical across worker counts *and*
    // across SIMD backends (the kernels accumulate the same u16 sums);
    // CI re-runs this suite with MICRONN_KERNELS=scalar to pin the
    // cross-dispatch half of the invariant.
    workers_are_bit_identical(VectorCodec::Sq4);
}

/// Returns the two smallest indexed (non-delta) partition ids.
fn two_smallest_partitions(db: &MicroNN) -> (i64, i64) {
    let raw = db.database();
    let r = raw.begin_read();
    let centroids = raw.open_table(&r, "centroids").unwrap();
    let mut pids: Vec<i64> = centroids
        .scan(&r)
        .unwrap()
        .map(|row| row.unwrap()[0].as_integer().unwrap())
        .collect();
    pids.sort_unstable();
    assert!(pids.len() >= 2, "need at least two partitions");
    (pids[0], pids[1])
}

/// Plants a vector row with a wrong-length blob inside `partition`,
/// bypassing the MicroNN API (the injected fault of the regression
/// test).
fn corrupt_partition(db: &MicroNN, partition: i64, blob_len: usize) {
    let raw = db.database();
    let mut txn = raw.begin_write().unwrap();
    let r = raw.begin_read();
    let vectors = raw.open_table(&r, "vectors").unwrap();
    drop(r);
    vectors
        .upsert(
            &mut txn,
            vec![
                Value::Integer(partition),
                Value::Integer(8_000_000 + blob_len as i64),
                Value::Integer(8_000_000 + blob_len as i64),
                Value::Blob(vec![0u8; blob_len]),
            ],
        )
        .unwrap();
    txn.commit().unwrap();
}

#[test]
fn injected_failing_partition_reports_stable_first_error() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("err.mnn");
    let ds = dataset(3000, 4242);
    build(&path, VectorCodec::F32, &ds);

    let db = MicroNN::open(&path, config(VectorCodec::F32, 1)).unwrap();
    let (pa, pb) = two_smallest_partitions(&db);
    // Two failing partitions with *distinguishable* errors: the lower
    // partition id holds a 3-byte blob, the higher a 5-byte blob. The
    // executor must always surface the lower-index failure, never
    // whichever worker happened to fail first.
    corrupt_partition(&db, pa, 3);
    corrupt_partition(&db, pb, 5);
    drop(db);

    for workers in [1usize, 8] {
        let db = MicroNN::open(&path, config(VectorCodec::F32, workers)).unwrap();
        let batch: Vec<Vec<f32>> = (0..8).map(|qi| ds.query(qi).to_vec()).collect();
        for _ in 0..10 {
            // Probe every partition so both corrupted ones are in the
            // batch's group map.
            let err = db.batch_search(&batch, K, Some(10_000)).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("has 3 bytes"),
                "workers={workers}: expected the lower partition's error, got: {msg}"
            );
            // Exhaustive exact search crosses both partitions too and
            // must agree on which error wins.
            let err = db.exact(ds.query(0), K, None).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("has 3 bytes"),
                "workers={workers} exact: got: {msg}"
            );
        }
    }
}

#[test]
fn concurrent_searches_with_updates_complete_consistently() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("conc.mnn");
    let ds = dataset(2000, 11);
    build(&path, VectorCodec::F32, &ds);
    let db = MicroNN::open(&path, config(VectorCodec::F32, 4)).unwrap();

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        // Readers: plain, filtered, batch, and exact searches racing
        // the writer. Every search must succeed and return a
        // well-formed, sorted result set from one snapshot.
        let mut readers = Vec::new();
        for t in 0..3usize {
            let db = db.clone();
            let ds = &ds;
            let stop = &stop;
            readers.push(s.spawn(move || {
                let filter = Expr::eq("g", Value::Integer(2));
                let mut iters = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) || iters < 30 {
                    let q = ds.query((iters + t) % ds.spec.n_queries);
                    let resp = db.search(q, K).unwrap();
                    check_well_formed(&resp.results);
                    let resp = db
                        .search_with(&SearchRequest::new(q.to_vec(), K).with_filter(filter.clone()))
                        .unwrap();
                    check_well_formed(&resp.results);
                    let resp = db.exact(q, K, None).unwrap();
                    check_well_formed(&resp.results);
                    let batch = vec![q.to_vec(), ds.query(0).to_vec()];
                    let resp = db.batch_search(&batch, K, None).unwrap();
                    for list in &resp.results {
                        check_well_formed(list);
                    }
                    iters += 1;
                    if iters >= 200 {
                        break; // safety valve if the writer is slow
                    }
                }
            }));
        }
        // Writer: streaming upserts, deletes, and delta flushes.
        let fresh = dataset(600, 555);
        for round in 0..6 {
            let records: Vec<VectorRecord> = (0..100)
                .map(|i| {
                    let src = round * 100 + i;
                    VectorRecord::new(70_000 + src as i64, fresh.vector(src).to_vec())
                        .with_attr("g", (src % 5) as i64)
                })
                .collect();
            db.upsert_batch(&records).unwrap();
            let doomed: Vec<i64> = (0..40).map(|i| (round * 40 + i) as i64).collect();
            db.delete_batch(&doomed).unwrap();
            if round % 2 == 1 {
                db.flush_delta().unwrap();
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
    });
    // The handle is still fully usable afterwards.
    let resp = db.search(ds.query(0), K).unwrap();
    assert_eq!(resp.results.len(), K);
}

/// A result list must be deduplicated, sorted by (distance, id), and
/// bounded by `K` — the invariants of one consistent snapshot.
fn check_well_formed(results: &[micronn::SearchResult]) {
    assert!(results.len() <= K);
    let mut seen = std::collections::HashSet::new();
    for w in results.windows(2) {
        assert!(
            (w[0].distance, w[0].asset_id) <= (w[1].distance, w[1].asset_id),
            "results not sorted: {w:?}"
        );
    }
    for r in results {
        assert!(seen.insert(r.asset_id), "duplicate id {}", r.asset_id);
        assert!(r.distance.is_finite());
    }
}
