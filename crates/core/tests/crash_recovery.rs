//! The crash-recovery harness: proves the durability claims stacked on
//! the WAL page store by actually crashing at *every* injection point.
//!
//! The database runs on [`SimVfs`], which counts every mutating file
//! operation (write, truncate, fsync). One clean pass measures the
//! workload's operation stream; the loop then re-runs the workload
//! once per injection point, interrupting the Nth operation — under
//! three power-loss policies per point — reopens the database from
//! the surviving bytes, and asserts:
//!
//! * reopen succeeds (WAL recovery stops at the last valid commit);
//! * [`MicroNN::verify_integrity`] — the `micronnctl fsck` walker —
//!   finds no partial multi-table transaction;
//! * every operation acknowledged before the crash is present: the
//!   recovered asset→vector map equals the in-memory model after the
//!   acked prefix (the in-flight operation may additionally have
//!   committed — its sync can land before the ack returns);
//! * the database accepts new writes after recovery.
//!
//! The workload covers upsert, delete, delta flush, partition split,
//! partition merge, checkpoint, and full rebuild, under the F32, SQ8,
//! and SQ4 codecs. `MICRONN_CRASH_POINTS` bounds the number of
//! injection points per run (`0` / unset = every point), mirroring the
//! `MICRONN_CHURN_OPS` pattern, so CI stays fast while local runs can
//! be exhaustive.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use micronn::{Config, Metric, MicroNN, SyncMode, VectorCodec, VectorRecord};
use micronn_storage::{CrashPlan, PowerCut, SimVfs};

const DIM: usize = 8;

type Model = BTreeMap<i64, Vec<f32>>;

fn cfg(codec: VectorCodec, sim: &SimVfs) -> Config {
    let mut c = Config::new(DIM, Metric::L2);
    c.codec = codec;
    c.store.sync = SyncMode::Normal; // acked commits must survive power loss
    c.store.vfs = sim.handle();
    c.store.spill_after_pages = 16; // exercise the WAL spill path
    c.store.checkpoint_after_frames = 64; // and mid-workload checkpoints
    c.target_partition_size = 8;
    c.delta_flush_threshold = 16;
    c.split_limit = 1.5;
    c.merge_limit = 0.3;
    c.workers = 1;
    c
}

/// Deterministic vectors: ids below 1000 form four well-separated
/// clusters; ids from 1000 pile onto cluster 0 (split pressure).
fn vecf(id: i64) -> Vec<f32> {
    let (anchor, jitter) = if id >= 1000 {
        (0.0, (id - 1000) as f32 * 0.01)
    } else {
        ((id.rem_euclid(4)) as f32 * 100.0, id as f32 * 0.01)
    };
    (0..DIM).map(|j| anchor + jitter + j as f32 * 0.1).collect()
}

fn recs(ids: impl Iterator<Item = i64>) -> Vec<VectorRecord> {
    ids.map(|i| VectorRecord::new(i, vecf(i))).collect()
}

/// One workload step == one public API call (at most one acked commit
/// for model-visible steps; maintenance may commit several times but
/// never changes the asset→vector map).
#[derive(Debug, Clone)]
enum Step {
    Upsert(Vec<VectorRecord>),
    Delete(Vec<i64>),
    Flush,
    Maintain,
    Checkpoint,
    Rebuild,
}

fn workload() -> Vec<Step> {
    vec![
        Step::Upsert(recs(0..48)),
        Step::Rebuild,
        Step::Upsert(recs(48..72)),
        Step::Delete((0..72).step_by(5).collect()),
        Step::Flush,
        // Pile 30 vectors onto cluster 0 and fold them in: at least one
        // partition blows past split_limit × target.
        Step::Upsert(recs(1000..1030)),
        Step::Flush,
        Step::Maintain,
        // Empty out cluster 1: its partitions drop under merge_limit.
        Step::Delete((0..72).filter(|i| i % 4 == 1).collect()),
        Step::Maintain,
        Step::Checkpoint,
        Step::Upsert(recs(72..82)),
        Step::Rebuild,
    ]
}

fn apply_model(model: &mut Model, step: &Step) {
    match step {
        Step::Upsert(rs) => {
            for r in rs {
                model.insert(r.asset_id, r.vector.clone());
            }
        }
        Step::Delete(ids) => {
            for id in ids {
                model.remove(id);
            }
        }
        _ => {}
    }
}

fn apply_step(db: &MicroNN, step: &Step) -> micronn::Result<(usize, usize)> {
    match step {
        Step::Upsert(rs) => db.upsert_batch(rs).map(|()| (0, 0)),
        Step::Delete(ids) => db.delete_batch(ids).map(|_| (0, 0)),
        Step::Flush => db.flush_delta().map(|_| (0, 0)),
        Step::Maintain => db.maybe_maintain().map(|rep| (rep.splits(), rep.merges())),
        Step::Checkpoint => db.checkpoint().map(|_| (0, 0)),
        Step::Rebuild => db.rebuild().map(|_| (0, 0)),
    }
}

/// Runs the workload until completion or the first error. Returns the
/// number of acked steps, the model after every acked prefix, and the
/// error message if one interrupted the run.
fn run_workload(db: &MicroNN) -> (usize, Vec<Model>, (usize, usize), Option<String>) {
    let mut snapshots = vec![Model::new()];
    let mut model = Model::new();
    let mut acked = 0usize;
    let mut lifecycle = (0usize, 0usize);
    for step in workload() {
        match apply_step(db, &step) {
            Ok((s, m)) => {
                lifecycle.0 += s;
                lifecycle.1 += m;
                apply_model(&mut model, &step);
                snapshots.push(model.clone());
                acked += 1;
            }
            Err(e) => return (acked, snapshots, lifecycle, Some(e.to_string())),
        }
    }
    (acked, snapshots, lifecycle, None)
}

/// Asserts the recovered database equals `model` exactly.
fn assert_matches_model(db: &MicroNN, model: &Model) -> bool {
    if db.len().unwrap() != model.len() as u64 {
        return false;
    }
    model
        .iter()
        .all(|(&id, v)| db.get_vector(id).unwrap().as_ref() == Some(v))
}

fn crash_points_cap() -> u64 {
    std::env::var("MICRONN_CRASH_POINTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn db_path() -> PathBuf {
    PathBuf::from("/sim/crash.mnn")
}

/// Clean pass: measures the operation stream and asserts the workload
/// actually covers splits and merges (otherwise the loop would be
/// proving less than it claims).
fn measure(codec: VectorCodec) -> u64 {
    let sim = SimVfs::new();
    let db = MicroNN::create(db_path(), cfg(codec, &sim)).unwrap();
    sim.arm(CrashPlan {
        at_op: u64::MAX,
        torn_eighths: None,
    }); // count from here, never fire
    let (acked, _, (splits, merges), err) = run_workload(&db);
    assert_eq!(err, None, "clean run must not fail");
    assert_eq!(acked, workload().len());
    assert!(splits >= 1, "workload must exercise a partition split");
    assert!(merges >= 1, "workload must exercise a partition merge");
    assert!(db.verify_integrity().unwrap().is_clean());
    let (writes, syncs, _) = sim.recorded();
    assert!(writes > 0 && syncs > 0, "SimVfs records writes and syncs");
    sim.ops()
}

/// One crash run: returns a fingerprint of the recovered state (for
/// the determinism test).
fn crash_run(
    codec: VectorCodec,
    at_op: u64,
    torn_eighths: Option<u8>,
    policy: PowerCut,
) -> Vec<(i64, u64)> {
    let sim = SimVfs::new();
    let path = db_path();
    let db = MicroNN::create(&path, cfg(codec, &sim)).unwrap();
    sim.arm(CrashPlan {
        at_op,
        torn_eighths,
    });
    let (acked, snapshots, _, err) = run_workload(&db);
    let label = format!("codec {codec}, crash at op {at_op}, {policy:?}");
    let err = err.unwrap_or_else(|| panic!("{label}: workload finished before the crash point"));
    assert!(
        err.contains("simulated crash"),
        "{label}: workload failed with a non-crash error: {err}"
    );
    drop(db);
    sim.power_cut(policy);

    // Reopen from exactly the surviving bytes.
    let db = MicroNN::open(&path, cfg(codec, &sim))
        .unwrap_or_else(|e| panic!("{label}: reopen failed: {e}"));
    let report = db.verify_integrity().unwrap();
    assert!(
        report.is_clean(),
        "{label}: fsck found partial transactions: {:?} ({report})",
        report.errors
    );
    // Prefix consistency: every acked op is durable; the in-flight op
    // (the one the crash interrupted) may additionally have committed —
    // its WAL sync can land before the ack returns.
    let inflight = {
        let mut m = snapshots[acked].clone();
        if let Some(step) = workload().get(acked) {
            apply_model(&mut m, step);
        }
        m
    };
    let matched =
        assert_matches_model(&db, &snapshots[acked]) || assert_matches_model(&db, &inflight);
    assert!(
        matched,
        "{label}: recovered state matches neither the {acked}-op nor the {}-op prefix \
         (len {} vs {} / {})",
        acked + 1,
        db.len().unwrap(),
        snapshots[acked].len(),
        inflight.len(),
    );

    // The recovered database must accept new work.
    let probe = vec![-500.0; DIM]; // far from every workload cluster
    db.upsert(VectorRecord::new(99_999, probe.clone())).unwrap();
    assert!(db.contains(99_999).unwrap());
    let hits = db.search(&probe, 1).unwrap();
    assert_eq!(hits.results[0].asset_id, 99_999);
    assert!(db.delete(99_999).unwrap());
    assert!(db.verify_integrity().unwrap().is_clean());

    db.partition_sizes().unwrap()
}

/// The points to exercise: every injection point, or an evenly-strided
/// subset capped by `MICRONN_CRASH_POINTS`.
fn points(total: u64) -> Vec<u64> {
    let cap = crash_points_cap();
    if cap == 0 || total <= cap {
        (1..=total).collect()
    } else {
        let mut pts: Vec<u64> = (1..=cap).map(|i| i * total / cap).collect();
        pts.dedup();
        pts
    }
}

fn crash_loop(codec: VectorCodec) {
    let total = measure(codec);
    assert!(
        total > 50,
        "workload too small to prove anything: {total} ops"
    );
    for p in points(total) {
        // Process crash at an op boundary: everything written survives.
        crash_run(codec, p, None, PowerCut::KeepAll);
        // Power cut tearing the final write and losing every unsynced
        // write: only synced state survives.
        crash_run(codec, p, Some(4), PowerCut::DropUnsynced);
        // Power cut keeping a seed-deterministic arbitrary subset of
        // unsynced writes (drives reorder freely between barriers).
        crash_run(codec, p, Some(3), PowerCut::KeepSeeded(0x5EED ^ p));
    }
}

#[test]
fn crash_loop_f32() {
    crash_loop(VectorCodec::F32);
}

#[test]
fn crash_loop_sq8() {
    crash_loop(VectorCodec::Sq8);
}

#[test]
fn crash_loop_sq4() {
    // The SQ4 read-modify-write block appends (flush filling
    // tombstoned slots) ride the same transactions as the rows they
    // mirror, so every injection point must recover to a catalog the
    // fsck block-walk accepts.
    crash_loop(VectorCodec::Sq4);
}

/// Same seed → same failure: the whole crash enumeration is
/// deterministic, so any failing point reproduces exactly.
#[test]
fn crash_point_enumeration_is_deterministic() {
    let total = measure(VectorCodec::Sq8);
    for p in [total / 4, total / 2, total - 1] {
        let a = crash_run(VectorCodec::Sq8, p, Some(3), PowerCut::KeepSeeded(7));
        let b = crash_run(VectorCodec::Sq8, p, Some(3), PowerCut::KeepSeeded(7));
        assert_eq!(a, b, "crash at op {p} must recover identically");
    }
}

/// The operation count itself is stable across runs — a canary for
/// nondeterministic write ordering sneaking back into the write paths
/// (hash-ordered iteration, etc.).
#[test]
fn operation_stream_is_stable() {
    let a = measure(VectorCodec::F32);
    let b = measure(VectorCodec::F32);
    assert_eq!(a, b, "two clean runs must issue the same operation stream");
}

/// Backups copy through the configured VFS (not the host file system),
/// so they work — and stay crash-testable — under simulation: a backup
/// taken mid-workload opens independently and passes the full
/// integrity walk.
#[test]
fn backup_goes_through_the_vfs() {
    let sim = SimVfs::new();
    let src = Path::new("/sim/backup-src.mnn");
    let dst = Path::new("/sim/backup-dst.mnn");
    let db = MicroNN::create(src, cfg(VectorCodec::Sq8, &sim)).unwrap();
    db.upsert_batch(&recs(0..60)).unwrap();
    db.rebuild().unwrap();
    db.upsert_batch(&recs(60..70)).unwrap(); // unflushed delta rides along
    db.backup_to(dst).unwrap();
    // Diverge the source after the backup.
    db.delete_batch(&(0..30).collect::<Vec<i64>>()).unwrap();

    let backup = MicroNN::open(dst, cfg(VectorCodec::Sq8, &sim)).unwrap();
    assert_eq!(backup.len().unwrap(), 70, "pre-divergence snapshot");
    assert!(backup.verify_integrity().unwrap().is_clean());
    assert_eq!(db.len().unwrap(), 40, "source unaffected by the backup");
    // Backing up onto the same destination again must not let a stale
    // destination WAL replay over the fresh copy.
    db.checkpoint().unwrap();
    db.backup_to(dst).unwrap();
    let backup = MicroNN::open(dst, cfg(VectorCodec::Sq8, &sim)).unwrap();
    assert_eq!(backup.len().unwrap(), 40);
    assert!(backup.verify_integrity().unwrap().is_clean());
}

/// `open_or_create` probes existence through the configured VFS, so a
/// simulated database reopens (rather than re-creates) after a crash.
#[test]
fn open_or_create_uses_the_vfs() {
    let sim = SimVfs::new();
    let path = Path::new("/sim/ooc.mnn");
    let db = MicroNN::open_or_create(path, cfg(VectorCodec::F32, &sim)).unwrap();
    db.upsert(VectorRecord::new(1, vecf(1))).unwrap();
    drop(db);
    let db = MicroNN::open_or_create(path, cfg(VectorCodec::F32, &sim)).unwrap();
    assert!(db.contains(1).unwrap(), "existing sim file was reopened");
}
