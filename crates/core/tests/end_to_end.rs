//! End-to-end behaviour of the MicroNN vector database: build, search
//! recall, hybrid plans, batch MQO, incremental maintenance, and
//! durability.

use micronn::{
    AttributeDef, Config, Expr, MaintenanceAction, MaintenanceStatus, Metric, MicroNN,
    PlanPreference, PlanUsed, SearchRequest, SyncMode, ValueType, VectorRecord,
};

const DIM: usize = 16;

/// Deterministic clustered vectors: `n` points around `n_centers`
/// well-separated centers.
fn clustered(n: usize, n_centers: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u64 << 24) as f32 - 0.5
    };
    (0..n)
        .map(|i| {
            let c = (i % n_centers) as f32 * 10.0;
            (0..DIM).map(|_| c + next()).collect()
        })
        .collect()
}

fn config() -> Config {
    let mut c = Config::new(DIM, Metric::L2);
    c.store.sync = SyncMode::Off;
    c.target_partition_size = 50;
    c.default_probes = 4;
    c.attributes = vec![
        AttributeDef::indexed("location", ValueType::Text),
        AttributeDef::indexed("taken_at", ValueType::Integer),
        AttributeDef::full_text("tags"),
    ];
    c
}

fn populate(db: &MicroNN, vectors: &[Vec<f32>]) {
    let records: Vec<VectorRecord> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let loc = if i % 100 == 0 { "Seattle" } else { "NYC" };
            let tags = if i % 50 == 0 {
                "rare cat"
            } else {
                "common dog"
            };
            VectorRecord::new(i as i64, v.clone())
                .with_attr("location", loc)
                .with_attr("taken_at", i as i64)
                .with_attr("tags", tags)
        })
        .collect();
    db.upsert_batch(&records).unwrap();
}

fn recall(got: &[micronn::SearchResult], truth: &[micronn::SearchResult]) -> f64 {
    let truth_ids: std::collections::HashSet<i64> = truth.iter().map(|r| r.asset_id).collect();
    got.iter()
        .filter(|r| truth_ids.contains(&r.asset_id))
        .count() as f64
        / truth.len() as f64
}

#[test]
fn build_then_ann_search_has_high_recall() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("db.mnn"), config()).unwrap();
    let vectors = clustered(2000, 8, 1);
    populate(&db, &vectors);
    let report = db.rebuild().unwrap();
    assert_eq!(report.vectors, 2000);
    assert!(report.partitions >= 20, "k = n/t = 40-ish");
    assert_eq!(db.delta_len().unwrap(), 0, "delta folded into the index");

    let mut total_recall = 0.0;
    for qi in 0..20 {
        let q = &vectors[qi * 97];
        let exact = db.exact(q, 10, None).unwrap();
        let approx = db.search(q, 10).unwrap();
        assert_eq!(approx.results.len(), 10);
        total_recall += recall(&approx.results, &exact.results);
        // Scanning fewer vectors than exhaustive is the whole point.
        assert!(approx.info.vectors_scanned < exact.info.vectors_scanned);
    }
    let avg = total_recall / 20.0;
    assert!(avg >= 0.9, "recall@10 with 4/40 probes: {avg}");
}

#[test]
fn more_probes_more_recall() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("db.mnn"), config()).unwrap();
    let vectors = clustered(1500, 6, 2);
    populate(&db, &vectors);
    db.rebuild().unwrap();
    let stats = db.stats().unwrap();
    let all = stats.partitions as usize;

    let mut recalls = Vec::new();
    for probes in [1, all / 2, all] {
        let mut sum = 0.0;
        for qi in 0..10 {
            let q = &vectors[qi * 131];
            let exact = db.exact(q, 10, None).unwrap();
            let got = db
                .search_with(&SearchRequest::new(q.clone(), 10).with_probes(probes))
                .unwrap();
            sum += recall(&got.results, &exact.results);
        }
        recalls.push(sum / 10.0);
    }
    assert!(recalls[0] <= recalls[2] + 1e-9);
    assert!(
        (recalls[2] - 1.0).abs() < 1e-9,
        "all probes == exact: {recalls:?}"
    );
}

#[test]
fn delta_inserts_visible_immediately_and_after_flush() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("db.mnn"), config()).unwrap();
    let vectors = clustered(800, 4, 3);
    populate(&db, &vectors);
    db.rebuild().unwrap();

    // Insert a far-away outlier after the build: it must be findable
    // right away (delta scan), then survive a flush.
    let outlier = vec![500.0f32; DIM];
    db.upsert(VectorRecord::new(9999, outlier.clone())).unwrap();
    assert_eq!(db.delta_len().unwrap(), 1);
    let hit = db.search(&outlier, 1).unwrap();
    assert_eq!(hit.results[0].asset_id, 9999);
    assert_eq!(hit.results[0].distance, 0.0);

    let flush = db.flush_delta().unwrap();
    assert_eq!(flush.flushed, 1);
    assert_eq!(db.delta_len().unwrap(), 0);
    // Needs enough probes to reach the (moved) partition; exhaustive
    // must certainly find it.
    let hit = db.exact(&outlier, 1, None).unwrap();
    assert_eq!(hit.results[0].asset_id, 9999);
    // And the nearest-centroid partition now contains it: a 1-probe
    // search from the outlier's own position finds it.
    let hit = db
        .search_with(&SearchRequest::new(outlier.clone(), 1).with_probes(1))
        .unwrap();
    assert_eq!(hit.results[0].asset_id, 9999);
}

#[test]
fn upsert_replaces_and_delete_removes_from_search() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("db.mnn"), config()).unwrap();
    let vectors = clustered(500, 4, 4);
    populate(&db, &vectors);
    db.rebuild().unwrap();

    // Move asset 7 to a distinctive location.
    let probe = vec![77.0f32; DIM];
    db.upsert(VectorRecord::new(7, probe.clone())).unwrap();
    let hit = db.search(&probe, 1).unwrap();
    assert_eq!(hit.results[0].asset_id, 7);
    // Old position no longer returns asset 7 as an exact-0 match.
    let old = db.exact(&vectors[7], 1, None).unwrap();
    assert_ne!(old.results[0].asset_id, 7);

    db.delete(7).unwrap();
    let gone = db.exact(&probe, 5, None).unwrap();
    assert!(gone.results.iter().all(|r| r.asset_id != 7));
    assert_eq!(db.len().unwrap(), 499);
}

#[test]
fn hybrid_plans_agree_on_results_and_prefilter_has_full_recall() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("db.mnn"), config()).unwrap();
    let vectors = clustered(2000, 8, 5);
    populate(&db, &vectors);
    db.rebuild().unwrap();

    let q = vectors[150].clone();
    // 1% of rows.
    let filter = Expr::eq("location", "Seattle");
    // Ground truth: exact search restricted to the filter.
    let truth = db.exact(&q, 10, Some(&filter)).unwrap();
    assert!(
        truth.results.iter().all(|r| r.asset_id % 100 == 0),
        "filter respected by exact scan"
    );

    let pre = db
        .search_with(
            &SearchRequest::new(q.clone(), 10)
                .with_filter(filter.clone())
                .with_plan(PlanPreference::ForcePreFilter),
        )
        .unwrap();
    assert_eq!(pre.info.plan, PlanUsed::PreFilter);
    assert_eq!(
        recall(&pre.results, &truth.results),
        1.0,
        "pre-filtering guarantees 100% recall"
    );
    assert!(pre.results.iter().all(|r| r.asset_id % 100 == 0));

    let post = db
        .search_with(
            &SearchRequest::new(q.clone(), 10)
                .with_filter(filter.clone())
                .with_plan(PlanPreference::ForcePostFilter),
        )
        .unwrap();
    assert_eq!(post.info.plan, PlanUsed::PostFilter);
    // Post-filtering returns only qualifying rows but may miss some.
    assert!(post.results.iter().all(|r| r.asset_id % 100 == 0));
    assert!(recall(&post.results, &truth.results) <= 1.0);
}

#[test]
fn optimizer_picks_pre_for_rare_and_post_for_common_filters() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("db.mnn"), config()).unwrap();
    let vectors = clustered(3000, 8, 6);
    populate(&db, &vectors);
    db.rebuild().unwrap(); // also runs ANALYZE

    // "rare" tag: 2% of rows; F_IVF = 4 * 50 / 3000 ≈ 6.7%.
    let rare = Expr::matches("tags", "rare");
    assert!(db.estimate_filter_selectivity(&rare).unwrap() < 0.067);
    assert_eq!(db.explain_plan(&rare, None).unwrap(), PlanUsed::PreFilter);

    // "common" tag: 98% of rows.
    let common = Expr::matches("tags", "common");
    assert!(db.estimate_filter_selectivity(&common).unwrap() > 0.5);
    assert_eq!(
        db.explain_plan(&common, None).unwrap(),
        PlanUsed::PostFilter
    );

    // Auto executes the chosen plan.
    let q = vectors[0].clone();
    let got = db
        .search_with(&SearchRequest::new(q.clone(), 10).with_filter(rare))
        .unwrap();
    assert_eq!(got.info.plan, PlanUsed::PreFilter);
    let got = db
        .search_with(&SearchRequest::new(q, 10).with_filter(common))
        .unwrap();
    assert_eq!(got.info.plan, PlanUsed::PostFilter);
}

#[test]
fn fts_match_filter_works_end_to_end() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("db.mnn"), config()).unwrap();
    let vectors = clustered(1000, 4, 7);
    populate(&db, &vectors);
    db.rebuild().unwrap();
    let q = vectors[100].clone();
    let got = db
        .search_with(&SearchRequest::new(q, 20).with_filter(Expr::matches("tags", "rare cat")))
        .unwrap();
    assert!(!got.results.is_empty());
    assert!(got.results.iter().all(|r| r.asset_id % 50 == 0));
}

#[test]
fn batch_mqo_matches_sequential_results() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("db.mnn"), config()).unwrap();
    let vectors = clustered(1500, 6, 8);
    populate(&db, &vectors);
    db.rebuild().unwrap();

    let queries: Vec<Vec<f32>> = (0..64).map(|i| vectors[i * 23].clone()).collect();
    let batched = db.batch_search(&queries, 10, Some(4)).unwrap();
    let sequential = db.batch_search_sequential(&queries, 10, Some(4)).unwrap();
    assert_eq!(batched.results.len(), 64);
    for (b, s) in batched.results.iter().zip(&sequential) {
        // The GEMM path computes L2 via the norm identity, which
        // rounds differently from the scalar kernel: near-ties may
        // swap. Compare as sets with distance tolerance.
        let b_ids: std::collections::HashSet<i64> = b.iter().map(|r| r.asset_id).collect();
        let s_ids: std::collections::HashSet<i64> = s.iter().map(|r| r.asset_id).collect();
        let overlap = b_ids.intersection(&s_ids).count();
        assert!(
            overlap >= b.len() - 1,
            "MQO must not change results beyond float-tie effects: {b_ids:?} vs {s_ids:?}"
        );
        let s_by_id: std::collections::HashMap<i64, f32> =
            s.iter().map(|r| (r.asset_id, r.distance)).collect();
        for hit in b {
            if let Some(&sd) = s_by_id.get(&hit.asset_id) {
                assert!(
                    (hit.distance - sd).abs() <= 1e-2 * (1.0 + sd.abs()),
                    "distance mismatch for {}: {} vs {sd}",
                    hit.asset_id,
                    hit.distance
                );
            }
        }
        // Both orderings are ascending in their own distances.
        for w in b.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }
    // The MQO property: every partition scanned at most once for the
    // whole batch.
    let stats = db.stats().unwrap();
    assert!(batched.partitions_scanned <= stats.partitions as usize + 1);
}

#[test]
fn monitor_triggers_flush_then_growth_rebuild() {
    let dir = tempfile::tempdir().unwrap();
    let mut cfg = config();
    cfg.delta_flush_threshold = 100;
    cfg.growth_limit = 1.5;
    // The paper's baseline monitor: growth has exactly one answer — a
    // full rebuild. Lifecycle split/merge maintenance is exercised by
    // the dedicated `maintenance_churn` suite.
    cfg.lifecycle = false;
    let db = MicroNN::create(dir.path().join("db.mnn"), cfg).unwrap();
    let vectors = clustered(1000, 4, 9);
    populate(&db, &vectors);
    assert_eq!(
        db.maintenance_status().unwrap(),
        MaintenanceStatus::NeedsBuild
    );
    let report = db.maybe_maintain().unwrap();
    assert_eq!(report.status, MaintenanceStatus::Healthy);
    match &report.actions[..] {
        [MaintenanceAction::Rebuilt(r)] => assert_eq!(r.vectors, 1000),
        other => panic!("expected rebuild, got {other:?}"),
    }
    assert_eq!(db.maintenance_status().unwrap(), MaintenanceStatus::Healthy);

    // Stage more than the flush threshold.
    let extra = clustered(150, 4, 10);
    for (i, v) in extra.iter().enumerate() {
        db.upsert(VectorRecord::new(5000 + i as i64, v.clone()))
            .unwrap();
    }
    assert_eq!(
        db.maintenance_status().unwrap(),
        MaintenanceStatus::NeedsFlush
    );
    let report = db.maybe_maintain().unwrap();
    match &report.actions[..] {
        // A flush, plus — if folding the delta pushed average growth
        // past the limit — the chained follow-up rebuild (the monitor
        // never leaves work silently pending).
        [MaintenanceAction::Flushed(f)] => assert_eq!(f.flushed, 150),
        [MaintenanceAction::Flushed(f), MaintenanceAction::Rebuilt(_)] => {
            assert_eq!(f.flushed, 150)
        }
        other => panic!("expected flush, got {other:?}"),
    }
    assert_eq!(report.status, MaintenanceStatus::Healthy);

    // Keep inserting + flushing until average partition size grows 50%
    // past baseline: the monitor must demand a full rebuild.
    let mut next_id = 10_000i64;
    let mut saw_rebuild_request = false;
    for round in 0..12 {
        let wave = clustered(120, 4, 100 + round);
        for v in &wave {
            db.upsert(VectorRecord::new(next_id, v.clone())).unwrap();
            next_id += 1;
        }
        match db.maintenance_status().unwrap() {
            MaintenanceStatus::NeedsRebuild => {
                saw_rebuild_request = true;
                break;
            }
            MaintenanceStatus::NeedsFlush => {
                db.flush_delta().unwrap();
            }
            MaintenanceStatus::Healthy => {}
            // Lifecycle is disabled in this test; F32 never retrains.
            MaintenanceStatus::NeedsBuild
            | MaintenanceStatus::NeedsSplit
            | MaintenanceStatus::NeedsMerge
            | MaintenanceStatus::NeedsRetrain => unreachable!(),
        }
        // Growth check also applies post-flush.
        if db.maintenance_status().unwrap() == MaintenanceStatus::NeedsRebuild {
            saw_rebuild_request = true;
            break;
        }
    }
    assert!(saw_rebuild_request, "growth limit must trigger a rebuild");
    match &db.maybe_maintain().unwrap().actions[..] {
        [MaintenanceAction::Rebuilt(_)] => {}
        other => panic!("expected rebuild, got {other:?}"),
    }
    assert_eq!(db.maintenance_status().unwrap(), MaintenanceStatus::Healthy);
}

#[test]
fn flush_preserves_search_correctness() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("db.mnn"), config()).unwrap();
    let vectors = clustered(600, 4, 11);
    populate(&db, &vectors);
    db.rebuild().unwrap();
    let extra = clustered(200, 4, 12);
    let extra_records: Vec<VectorRecord> = extra
        .iter()
        .enumerate()
        .map(|(i, v)| VectorRecord::new(20_000 + i as i64, v.clone()))
        .collect();
    db.upsert_batch(&extra_records).unwrap();

    // Exact results before and after the flush must be identical: a
    // flush relocates rows but changes no content.
    let q = extra[17].clone();
    let before = db.exact(&q, 15, None).unwrap();
    db.flush_delta().unwrap();
    let after = db.exact(&q, 15, None).unwrap();
    let ids =
        |r: &micronn::SearchResponse| r.results.iter().map(|x| x.asset_id).collect::<Vec<_>>();
    assert_eq!(ids(&before), ids(&after));
    assert_eq!(db.len().unwrap(), 800);
}

#[test]
fn concurrent_searches_during_writes_and_rebuild() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("db.mnn"), config()).unwrap();
    let vectors = clustered(1200, 6, 13);
    populate(&db, &vectors);
    db.rebuild().unwrap();

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        // Readers hammer searches while the writer mutates + rebuilds.
        for t in 0..3 {
            let db = db.clone();
            let stop = &stop;
            let q = vectors[t * 100].clone();
            s.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let got = db.search(&q, 10).unwrap();
                    assert!(got.results.len() <= 10);
                    assert!(!got.results.is_empty());
                    // Distances sorted ascending.
                    for w in got.results.windows(2) {
                        assert!(w[0].distance <= w[1].distance);
                    }
                }
            });
        }
        for i in 0..200 {
            db.upsert(VectorRecord::new(
                30_000 + i,
                vectors[(i as usize) % vectors.len()].clone(),
            ))
            .unwrap();
        }
        db.rebuild().unwrap();
        for i in 0..100 {
            db.delete(30_000 + i).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(db.len().unwrap(), 1200 + 100);
}

#[test]
fn crash_without_checkpoint_recovers_index() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("db.mnn");
    let vectors = clustered(600, 4, 14);
    {
        let db = MicroNN::create(&path, config()).unwrap();
        populate(&db, &vectors);
        db.rebuild().unwrap();
        db.upsert(VectorRecord::new(777, vec![3.5; DIM])).unwrap();
        // Dropped without checkpoint: the WAL carries everything.
    }
    let mut cfg = Config::default();
    cfg.store.sync = SyncMode::Off;
    let db = MicroNN::open(&path, cfg).unwrap();
    assert_eq!(db.len().unwrap(), 601);
    let hit = db.search(&[3.5; DIM], 1).unwrap();
    assert_eq!(hit.results[0].asset_id, 777);
    // Index is intact: recall sanity on an indexed query.
    let exact = db.exact(&vectors[42], 10, None).unwrap();
    let approx = db.search(&vectors[42], 10).unwrap();
    assert!(recall(&approx.results, &exact.results) >= 0.5);
}

#[test]
fn search_unbuilt_index_scans_delta_only() {
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("db.mnn"), config()).unwrap();
    let vectors = clustered(50, 2, 15);
    populate(&db, &vectors);
    // No rebuild: brute-force over the delta gives exact results.
    let got = db.search(&vectors[3], 5).unwrap();
    assert_eq!(got.results[0].asset_id, 3);
    assert_eq!(got.results[0].distance, 0.0);
    let exact = db.exact(&vectors[3], 5, None).unwrap();
    assert_eq!(
        got.results.iter().map(|r| r.asset_id).collect::<Vec<_>>(),
        exact.results.iter().map(|r| r.asset_id).collect::<Vec<_>>()
    );
}

#[test]
fn two_level_centroid_index_preserves_recall() {
    // §3.2's extension: with the hierarchy forced on (threshold 1),
    // probe selection goes through super-clusters yet recall stays at
    // the flat-scan level.
    let dir = tempfile::tempdir().unwrap();
    let vectors = clustered(2000, 8, 21);
    let mut flat_cfg = config();
    flat_cfg.centroid_index_threshold = usize::MAX; // never
    let mut hier_cfg = config();
    hier_cfg.centroid_index_threshold = 1; // always

    let mut recalls = Vec::new();
    for cfg in [flat_cfg, hier_cfg] {
        let db = MicroNN::create(
            dir.path()
                .join(format!("t{}.mnn", cfg.centroid_index_threshold)),
            cfg,
        )
        .unwrap();
        populate(&db, &vectors);
        db.rebuild().unwrap();
        let mut total = 0.0;
        for qi in 0..15 {
            let q = &vectors[qi * 113];
            let exact = db.exact(q, 10, None).unwrap();
            let approx = db.search(q, 10).unwrap();
            total += recall(&approx.results, &exact.results);
        }
        recalls.push(total / 15.0);
    }
    assert!(recalls[0] >= 0.9, "flat baseline recall {}", recalls[0]);
    assert!(
        recalls[1] >= recalls[0] - 0.05,
        "hierarchical probe selection must not hurt recall: {} vs {}",
        recalls[1],
        recalls[0]
    );
}

#[test]
fn row_changes_incremental_far_below_rebuild() {
    // The Figure 10d claim: incremental maintenance touches a tiny
    // fraction of the rows a full rebuild rewrites.
    let dir = tempfile::tempdir().unwrap();
    let db = MicroNN::create(dir.path().join("db.mnn"), config()).unwrap();
    let vectors = clustered(1000, 4, 16);
    populate(&db, &vectors);
    db.rebuild().unwrap();
    let after_build = db.stats().unwrap().row_changes;

    let extra = clustered(30, 4, 17);
    for (i, v) in extra.iter().enumerate() {
        db.upsert(VectorRecord::new(40_000 + i as i64, v.clone()))
            .unwrap();
    }
    let before_flush = db.stats().unwrap().row_changes;
    db.flush_delta().unwrap();
    let flush_changes = db.stats().unwrap().row_changes - before_flush;

    let before_rebuild = db.stats().unwrap().row_changes;
    db.rebuild().unwrap();
    let rebuild_changes = db.stats().unwrap().row_changes - before_rebuild;
    assert!(
        (flush_changes as f64) < 0.2 * rebuild_changes as f64,
        "flush {flush_changes} vs rebuild {rebuild_changes}"
    );
    assert!(after_build > 0);
}
