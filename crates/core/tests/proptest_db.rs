//! Model-based property tests for the MicroNN database: random
//! workloads of upserts, deletes, rebuilds, flushes, and searches are
//! checked against an in-memory model for exact-search correctness and
//! metadata invariants.

use proptest::prelude::*;
use std::collections::HashMap;

use micronn::{Config, Metric, MicroNN, SyncMode, VectorRecord};
use micronn_storage::{CrashPlan, PowerCut, SimVfs};

const DIM: usize = 8;

#[derive(Debug, Clone)]
enum Op {
    Upsert(i64, u8),
    Delete(i64),
    Rebuild,
    Flush,
    ExactSearch(u8),
    AnnContainsExactTop1(u8),
}

fn vec_for(tag: u8) -> Vec<f32> {
    // 16 well-separated anchor points + small deterministic offset.
    let anchor = (tag % 16) as f32 * 10.0;
    let off = (tag / 16) as f32 * 0.01;
    (0..DIM).map(|j| anchor + off + j as f32 * 0.001).collect()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0i64..40, any::<u8>()).prop_map(|(id, t)| Op::Upsert(id, t)),
        2 => (0i64..40).prop_map(Op::Delete),
        1 => Just(Op::Rebuild),
        1 => Just(Op::Flush),
        2 => any::<u8>().prop_map(Op::ExactSearch),
        1 => any::<u8>().prop_map(Op::AnnContainsExactTop1),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn db_matches_model_under_random_workload(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        let dir = tempfile::tempdir().unwrap();
        let mut cfg = Config::new(DIM, Metric::L2);
        cfg.store.sync = SyncMode::Off;
        cfg.target_partition_size = 8;
        let db = MicroNN::create(dir.path().join("prop.mnn"), cfg).unwrap();
        let mut model: HashMap<i64, u8> = HashMap::new();
        let mut built = false;

        for op in ops {
            match op {
                Op::Upsert(id, tag) => {
                    db.upsert(VectorRecord::new(id, vec_for(tag))).unwrap();
                    model.insert(id, tag);
                }
                Op::Delete(id) => {
                    let existed = db.delete(id).unwrap();
                    prop_assert_eq!(existed, model.remove(&id).is_some());
                }
                Op::Rebuild => {
                    let report = db.rebuild().unwrap();
                    prop_assert_eq!(report.vectors, model.len());
                    prop_assert_eq!(db.delta_len().unwrap(), 0);
                    built = built || !model.is_empty();
                }
                Op::Flush => {
                    if built {
                        db.flush_delta().unwrap();
                        prop_assert_eq!(db.delta_len().unwrap(), 0);
                    }
                }
                Op::ExactSearch(tag) => {
                    // Exact search result distances must equal the
                    // model's brute-force distances (as a sorted list).
                    let q = vec_for(tag);
                    let k = 5;
                    let got = db.exact(&q, k, None).unwrap();
                    let mut want: Vec<f32> = model
                        .values()
                        .map(|&t| {
                            let v = vec_for(t);
                            micronn_linalg::l2_sq(&q, &v)
                        })
                        .collect();
                    want.sort_by(f32::total_cmp);
                    want.truncate(k);
                    prop_assert_eq!(got.results.len(), want.len().min(model.len()));
                    for (r, w) in got.results.iter().zip(&want) {
                        prop_assert!(
                            (r.distance - w).abs() < 1e-3,
                            "distance {} vs model {}", r.distance, w
                        );
                    }
                }
                Op::AnnContainsExactTop1(tag) => {
                    // A query placed exactly at a stored vector must
                    // surface that vector through ANN (delta is always
                    // scanned; anchors are far apart so the nearest
                    // centroid owns the anchor's partition).
                    if let Some((&id, &t)) =
                        model.iter().find(|(_, &t)| t % 16 == tag % 16)
                    {
                        let q = vec_for(t);
                        let got = db.search(&q, model.len().min(10)).unwrap();
                        prop_assert!(
                            got.results.iter().any(|r| {
                                r.asset_id == id
                                    || model.get(&r.asset_id) == Some(&t)
                                    || r.distance <= got.results[0].distance + 1e-3
                            }),
                            "vector {id} (tag {t}) missing from ANN at its own position"
                        );
                    }
                }
            }
            // Global invariants after every operation.
            prop_assert_eq!(db.len().unwrap(), model.len() as u64);
            let stats = db.stats().unwrap();
            prop_assert!(stats.delta_vectors <= stats.total_vectors);
        }
        // Final: every model entry is retrievable with its vector.
        for (&id, &tag) in &model {
            let v = db.get_vector(id).unwrap();
            prop_assert_eq!(v, Some(vec_for(tag)));
        }
    }

    /// Crash-point property: a random op sequence interrupted at a
    /// random injection point — with a seeded arbitrary subset of
    /// unsynced writes surviving the power cut — recovers to a
    /// prefix-consistent state: exactly the model after the acked
    /// prefix (the in-flight op may additionally have committed), with
    /// a clean integrity walk.
    #[test]
    fn random_crash_point_recovers_to_acked_prefix(
        ops in proptest::collection::vec(
            prop_oneof![
                5 => (0i64..40, any::<u8>()).prop_map(|(id, t)| Op::Upsert(id, t)),
                2 => (0i64..40).prop_map(Op::Delete),
                1 => Just(Op::Rebuild),
                1 => Just(Op::Flush),
            ],
            5..60,
        ),
        crash_at in 1u64..300,
        seed in any::<u64>(),
    ) {
        let sim = SimVfs::new();
        let mut cfg = Config::new(DIM, Metric::L2);
        cfg.store.sync = SyncMode::Normal; // acked commits must survive
        cfg.store.vfs = sim.handle();
        cfg.target_partition_size = 8;
        cfg.workers = 1;
        let path = std::path::Path::new("/sim/prop-crash.mnn");
        let db = MicroNN::create(path, cfg.clone()).unwrap();
        let mut model: HashMap<i64, u8> = HashMap::new();
        let mut built = false;
        sim.arm(CrashPlan { at_op: crash_at, torn_eighths: Some(3) });

        let mut acked_model = model.clone();
        let mut crashed = false;
        for op in &ops {
            // The in-flight op's effect, in case its commit lands
            // before the ack would have.
            let mut next = acked_model.clone();
            let r = match op {
                Op::Upsert(id, tag) => {
                    next.insert(*id, *tag);
                    db.upsert(VectorRecord::new(*id, vec_for(*tag))).map(|_| ())
                }
                Op::Delete(id) => {
                    next.remove(id);
                    db.delete(*id).map(|_| ())
                }
                Op::Rebuild => db.rebuild().map(|r| { built = built || r.vectors > 0; }),
                Op::Flush => {
                    if built { db.flush_delta().map(|_| ()) } else { Ok(()) }
                }
                _ => Ok(()),
            };
            match r {
                Ok(()) => { acked_model = next; }
                Err(e) => {
                    prop_assert!(
                        e.to_string().contains("simulated crash"),
                        "non-crash failure: {e}"
                    );
                    model = next; // candidate "in-flight committed" state
                    crashed = true;
                    break;
                }
            }
        }
        drop(db);
        sim.power_cut(PowerCut::KeepSeeded(seed));
        let db = MicroNN::open(path, cfg).unwrap();
        let report = db.verify_integrity().unwrap();
        prop_assert!(report.is_clean(), "fsck: {:?}", report.errors);
        let matches = |m: &HashMap<i64, u8>| -> bool {
            db.len().unwrap() == m.len() as u64
                && m.iter().all(|(&id, &t)| {
                    db.get_vector(id).unwrap() == Some(vec_for(t))
                })
        };
        if crashed {
            prop_assert!(
                matches(&acked_model) || matches(&model),
                "recovered state is not a prefix: len {} vs acked {} / in-flight {}",
                db.len().unwrap(), acked_model.len(), model.len()
            );
        } else {
            prop_assert!(matches(&acked_model), "uncrashed run must match the model");
        }
        // Recovered database stays writable.
        db.upsert(VectorRecord::new(500, vec_for(0))).unwrap();
        prop_assert!(db.contains(500).unwrap());
    }
}
