//! Buffer-pool behaviour observed through the public API: scan
//! resistance with a pool smaller than one partition, and probe
//! readahead warming the pool during multi-probe searches.

use micronn::{Config, Metric, MicroNN, SyncMode, VectorRecord};

const DIM: usize = 64;

/// Deterministic clustered vectors around well-separated centers.
fn clustered(n: usize, n_centers: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u64 << 24) as f32 - 0.5
    };
    (0..n)
        .map(|i| {
            let c = (i % n_centers) as f32 * 10.0;
            (0..DIM).map(|_| c + next()).collect()
        })
        .collect()
}

fn populate(db: &MicroNN, vectors: &[Vec<f32>]) {
    let records: Vec<VectorRecord> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| VectorRecord::new(i as i64, v.clone()))
        .collect();
    db.upsert_batch(&records).unwrap();
}

/// With a pool budget far below one partition's footprint, an
/// exhaustive scan must churn through the probationary segment only:
/// the point-lookup working set promoted to the protected segment
/// beforehand survives the scan and is served without disk reads
/// afterwards.
#[test]
fn full_scan_does_not_evict_point_working_set() {
    let dir = tempfile::tempdir().unwrap();
    let mut c = Config::new(DIM, Metric::L2);
    c.store.sync = SyncMode::Off;
    // ~15 cached pages; one partition (500 rows x ~280 B) spans ~35+
    // leaf pages, so a single partition scan overflows the pool.
    c.store.pool_bytes = 64 * 1024;
    // Keep the readahead worker quiet: this test reasons about exact
    // disk-read deltas, and background reads would blur them.
    c.store.prefetch_queue_pages = 0;
    c.target_partition_size = 500;
    let db = MicroNN::create(dir.path().join("db.mnn"), c).unwrap();
    let vectors = clustered(2000, 4, 7);
    populate(&db, &vectors);
    db.rebuild().unwrap();
    db.checkpoint().unwrap();
    db.purge_caches();

    // Warm the point working set: the first lookup admits the pages to
    // probation, the second promotes them to the protected segment.
    for _ in 0..3 {
        assert!(db.get_vector(1234).unwrap().is_some());
    }

    // An exhaustive scan pushes every partition through the pool.
    let before_scan = db.io_stats();
    let exact = db.exact(&vectors[42], 10, None).unwrap();
    assert_eq!(exact.results.len(), 10);
    let after_scan = db.io_stats();
    let scan = after_scan.since(&before_scan);
    assert!(
        scan.pool_evictions > 0,
        "scan exceeded the pool budget: {scan:?}"
    );

    // The protected working set survived: the same point lookup is
    // served entirely from the pool.
    assert!(db.get_vector(1234).unwrap().is_some());
    let after_lookup = db.io_stats();
    let lookup = after_lookup.since(&after_scan);
    assert_eq!(
        lookup.disk_reads(),
        0,
        "post-scan point lookup hit disk: {lookup:?}"
    );
    assert!(lookup.pool_hits > 0);
    assert_eq!(lookup.pool_misses, 0);
}

/// Multi-probe searches queue readahead for the next probe partition;
/// the background worker's activity is visible in the prefetch
/// counters.
#[test]
fn multi_probe_search_issues_readahead() {
    let dir = tempfile::tempdir().unwrap();
    let mut c = Config::new(DIM, Metric::L2);
    c.store.sync = SyncMode::Off;
    c.target_partition_size = 100;
    c.default_probes = 6;
    let db = MicroNN::create(dir.path().join("db.mnn"), c).unwrap();
    let vectors = clustered(2000, 8, 11);
    populate(&db, &vectors);
    db.rebuild().unwrap();
    db.checkpoint().unwrap();
    db.purge_caches();

    let before = db.io_stats();
    let resp = db.search(&vectors[3], 10).unwrap();
    assert_eq!(resp.results.len(), 10);
    // The worker runs asynchronously; poll until its counters move.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let d = db.io_stats().since(&before);
        if d.prefetch_reads + d.prefetch_skipped > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "readahead never ran: {d:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}
