//! The InMemory baseline (§4.1.4): "a completely memory resident
//! variation of the MicroNN IVF index. This baseline gives a
//! lower-bound on latency for our IVF implementation, while
//! illustrating the memory requirements to achieve this latency."
//!
//! Same two-level IVF algorithm, same heap machinery — but every
//! vector lives in RAM, and the quantizer is full-memory Lloyd's
//! k-means (so Figures 4–6 and 8 compare like with like).

use micronn_cluster::{lloyd, Clustering, LloydConfig};
use micronn_linalg::{distances_one_to_many, Metric, TopK};

use crate::error::{Error, Result};
use crate::search::SearchResult;

/// A fully memory-resident IVF index.
pub struct InMemoryIndex {
    dim: usize,
    metric: Metric,
    /// Flat vector matrix (owns all vectors — the memory cost the
    /// paper's Figure 5 illustrates).
    data: Vec<f32>,
    asset_ids: Vec<i64>,
    clustering: Clustering,
    /// Vector indexes per partition.
    partitions: Vec<Vec<u32>>,
    /// Delta: vectors inserted after the build, always scanned.
    delta_data: Vec<f32>,
    delta_ids: Vec<i64>,
}

impl InMemoryIndex {
    /// Builds the index over `(asset_ids, vectors)` with full k-means.
    pub fn build(
        asset_ids: Vec<i64>,
        data: Vec<f32>,
        dim: usize,
        metric: Metric,
        target_partition_size: usize,
        seed: u64,
    ) -> Result<InMemoryIndex> {
        if dim == 0 || data.len() % dim != 0 {
            return Err(Error::Config("bad matrix shape".into()));
        }
        let n = data.len() / dim;
        if n != asset_ids.len() {
            return Err(Error::Config("ids/vectors length mismatch".into()));
        }
        if n == 0 {
            return Err(Error::Config("cannot build over an empty set".into()));
        }
        let clustering = lloyd::train(
            &data,
            dim,
            &LloydConfig {
                target_cluster_size: target_partition_size,
                seed,
                metric,
                ..Default::default()
            },
        );
        let assignments = lloyd::assign_all(&data, dim, &clustering);
        let mut partitions = vec![Vec::new(); clustering.k()];
        for (i, &a) in assignments.iter().enumerate() {
            partitions[a as usize].push(i as u32);
        }
        Ok(InMemoryIndex {
            dim,
            metric,
            data,
            asset_ids,
            clustering,
            partitions,
            delta_data: Vec::new(),
            delta_ids: Vec::new(),
        })
    }

    /// Number of indexed vectors (including delta).
    pub fn len(&self) -> usize {
        self.asset_ids.len() + self.delta_ids.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Approximate resident bytes of the index payload (the quantity
    /// Figure 5 contrasts with MicroNN's pool budget).
    pub fn resident_bytes(&self) -> usize {
        (self.data.len() + self.delta_data.len() + self.clustering.centroids().len()) * 4
            + (self.asset_ids.len() + self.delta_ids.len()) * 8
    }

    /// Inserts a vector into the in-memory delta.
    pub fn insert(&mut self, asset_id: i64, vector: &[f32]) -> Result<()> {
        if vector.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        self.delta_ids.push(asset_id);
        self.delta_data.extend_from_slice(vector);
        Ok(())
    }

    /// Top-`k` ANN search probing `probes` partitions (plus the delta).
    pub fn search(&self, query: &[f32], k: usize, probes: usize) -> Result<Vec<SearchResult>> {
        if query.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        let mut top = TopK::new(k);
        let mut dists = Vec::new();
        for (ci, _) in self.clustering.nearest_n(query, probes) {
            // Partition members are gathered into a contiguous strip so
            // the batched kernel applies, mirroring the disk path.
            let members = &self.partitions[ci];
            let mut strip = Vec::with_capacity(members.len() * self.dim);
            for &m in members {
                let m = m as usize;
                strip.extend_from_slice(&self.data[m * self.dim..(m + 1) * self.dim]);
            }
            dists.clear();
            distances_one_to_many(self.metric, query, &strip, self.dim, &mut dists);
            for (j, &d) in dists.iter().enumerate() {
                top.push(self.asset_ids[members[j] as usize] as u64, d);
            }
        }
        // Delta scan.
        dists.clear();
        distances_one_to_many(self.metric, query, &self.delta_data, self.dim, &mut dists);
        for (j, &d) in dists.iter().enumerate() {
            top.push(self.delta_ids[j] as u64, d);
        }
        Ok(top
            .into_sorted()
            .into_iter()
            .map(|n| SearchResult {
                asset_id: n.id as i64,
                distance: n.distance,
            })
            .collect())
    }

    /// Exact top-`k` by exhaustive scan (ground truth helper).
    pub fn exact(&self, query: &[f32], k: usize) -> Result<Vec<SearchResult>> {
        if query.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        let mut top = TopK::new(k);
        let mut dists = Vec::new();
        distances_one_to_many(self.metric, query, &self.data, self.dim, &mut dists);
        for (j, &d) in dists.iter().enumerate() {
            top.push(self.asset_ids[j] as u64, d);
        }
        dists.clear();
        distances_one_to_many(self.metric, query, &self.delta_data, self.dim, &mut dists);
        for (j, &d) in dists.iter().enumerate() {
            top.push(self.delta_ids[j] as u64, d);
        }
        Ok(top
            .into_sorted()
            .into_iter()
            .map(|n| SearchResult {
                asset_id: n.id as i64,
                distance: n.distance,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(n: usize, dim: usize) -> (Vec<i64>, Vec<f32>) {
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let mut data = Vec::with_capacity(n * dim);
        for i in 0..n {
            let center = (i % 4) as f32 * 20.0;
            for _ in 0..dim {
                data.push(center + next());
            }
        }
        ((0..n as i64).collect(), data)
    }

    #[test]
    fn build_and_search_recovers_neighbors() {
        let (ids, data) = blob_data(400, 8);
        let idx = InMemoryIndex::build(ids, data.clone(), 8, Metric::L2, 50, 7).unwrap();
        assert!(idx.partitions() >= 4);
        // Query at a known point: its exact nearest must surface with
        // enough probes.
        let q = &data[0..8];
        let exact = idx.exact(q, 10).unwrap();
        let approx = idx.search(q, 10, idx.partitions()).unwrap();
        assert_eq!(exact.len(), 10);
        assert_eq!(approx, exact, "all-probe ANN equals exact");
        assert_eq!(approx[0].asset_id, 0);
        assert_eq!(approx[0].distance, 0.0);
    }

    #[test]
    fn fewer_probes_trade_recall() {
        let (ids, data) = blob_data(800, 8);
        let idx = InMemoryIndex::build(ids, data.clone(), 8, Metric::L2, 50, 7).unwrap();
        let q = &data[8..16];
        let exact: Vec<i64> = idx
            .exact(q, 20)
            .unwrap()
            .iter()
            .map(|r| r.asset_id)
            .collect();
        let few: Vec<i64> = idx
            .search(q, 20, 1)
            .unwrap()
            .iter()
            .map(|r| r.asset_id)
            .collect();
        let many: Vec<i64> = idx
            .search(q, 20, idx.partitions())
            .unwrap()
            .iter()
            .map(|r| r.asset_id)
            .collect();
        let recall = |got: &[i64]| {
            got.iter().filter(|id| exact.contains(id)).count() as f64 / exact.len() as f64
        };
        assert_eq!(recall(&many), 1.0);
        assert!(recall(&few) <= recall(&many));
    }

    #[test]
    fn delta_inserts_visible_immediately() {
        let (ids, data) = blob_data(200, 8);
        let mut idx = InMemoryIndex::build(ids, data, 8, Metric::L2, 50, 7).unwrap();
        let special = vec![999.0f32; 8];
        idx.insert(4242, &special).unwrap();
        let hits = idx.search(&special, 1, 1).unwrap();
        assert_eq!(hits[0].asset_id, 4242);
        assert_eq!(hits[0].distance, 0.0);
        assert_eq!(idx.len(), 201);
    }

    #[test]
    fn shape_errors() {
        let (ids, data) = blob_data(10, 8);
        assert!(InMemoryIndex::build(ids.clone(), data.clone(), 7, Metric::L2, 5, 0).is_err());
        let mut idx = InMemoryIndex::build(ids, data, 8, Metric::L2, 5, 0).unwrap();
        assert!(idx.insert(1, &[0.0; 4]).is_err());
        assert!(idx.search(&[0.0; 4], 5, 1).is_err());
    }

    #[test]
    fn resident_bytes_reflect_data() {
        let (ids, data) = blob_data(100, 16);
        let idx = InMemoryIndex::build(ids, data, 16, Metric::L2, 20, 0).unwrap();
        assert!(idx.resident_bytes() >= 100 * 16 * 4);
    }
}
