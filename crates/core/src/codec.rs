//! The pluggable vector-codec layer of the scan pipeline.
//!
//! A [`VectorCodec`] decides how partition scans read vectors:
//!
//! * [`VectorCodec::F32`] — scans decode the raw f32 payload exactly
//!   as the paper's §3.3 loop does (the default; bit-identical to the
//!   un-refactored behaviour).
//! * [`VectorCodec::Sq8`] — each indexed partition additionally keeps
//!   per-dimension scalar-quantized u8 codes in a *separate* clustered
//!   table (`codes`), laid out independently from the f32 payload so a
//!   quantized scan reads ~4× fewer bytes. Scans score codes with the
//!   asymmetric kernels of [`micronn_linalg::sq8`], then re-rank the
//!   top `rerank_factor · k` candidates against the exact vectors.
//! * [`VectorCodec::Sq4`] — 4-bit fastscan codes (~8× smaller than
//!   f32). The `codes` table is keyed `(partition, block)` instead of
//!   `(partition, vid)`: each row is one register-interleaved 32-row
//!   block ([`micronn_linalg::sq4`]) plus a `members` directory blob
//!   mapping slots to `(vid, asset)`. Scans score whole blocks via
//!   in-register shuffle lookups and re-rank exactly, like SQ8.
//!
//! The codec choice is part of the index catalog (persisted in the
//! `meta` table at creation, validated when a database is opened) and
//! is honoured by every layer that touches vector bytes: ingestion,
//! rebuild, delta flush, single-query search, batch MQO, and hybrid
//! plans. Per-partition quantization ranges live in the `quants`
//! table (both quantized codecs share the [`Sq8Params`] affine-range
//! representation; only the level count differs). Ranges are
//! retrained whenever maintenance rewrites a partition wholesale
//! (rebuild, split, merge, drift retrain); a delta flush appends new
//! rows *under the existing ranges* and reports how many clamped, so
//! the maintainer can schedule a retrain when ranges drift.

use micronn_linalg::{
    set_block_code, sq4_block_bytes, sq4_train, Sq8Params, SQ4_BLOCK, SQ4_LEVELS, SQ8_LEVELS,
};
use micronn_rel::{blob_to_f32, RowDecoder, Value};
use micronn_storage::{PageRead, WriteTxn};

use crate::db::Tables;
use crate::error::{Error, Result};

/// How vector payloads are stored and scanned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VectorCodec {
    /// Full-precision f32 vectors only (the paper's layout).
    #[default]
    F32,
    /// f32 vectors plus per-partition scalar-quantized u8 codes;
    /// scans run in the compressed domain and re-rank exactly.
    Sq8,
    /// f32 vectors plus blocked 4-bit fastscan codes; scans run LUT
    /// lookups over packed 32-row blocks and re-rank exactly.
    Sq4,
}

impl VectorCodec {
    /// Catalog name of the codec.
    pub fn name(&self) -> &'static str {
        match self {
            VectorCodec::F32 => "f32",
            VectorCodec::Sq8 => "sq8",
            VectorCodec::Sq4 => "sq4",
        }
    }

    /// Parses a catalog name.
    pub fn parse(name: &str) -> Option<VectorCodec> {
        match name.to_ascii_lowercase().as_str() {
            "f32" => Some(VectorCodec::F32),
            "sq8" => Some(VectorCodec::Sq8),
            "sq4" => Some(VectorCodec::Sq4),
            _ => None,
        }
    }

    /// Whether scans read quantized codes instead of raw vectors.
    pub fn is_quantized(&self) -> bool {
        matches!(self, VectorCodec::Sq8 | VectorCodec::Sq4)
    }

    /// Code levels per dimension for quantized codecs.
    pub(crate) fn levels(&self) -> u32 {
        match self {
            VectorCodec::Sq4 => SQ4_LEVELS,
            _ => SQ8_LEVELS,
        }
    }

    /// Trains quantization ranges for this codec.
    pub(crate) fn train(&self, data: &[f32], dim: usize) -> Sq8Params {
        match self {
            VectorCodec::Sq4 => sq4_train(data, dim),
            _ => Sq8Params::train(data, dim),
        }
    }
}

impl std::fmt::Display for VectorCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Serializes quantization ranges as `min[dim] ++ scale[dim]` (LE f32).
pub(crate) fn params_to_blob(p: &Sq8Params) -> Vec<u8> {
    let mut out = Vec::with_capacity(p.dim() * 8);
    for x in p.min.iter().chain(p.scale.iter()) {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Deserializes quantization ranges written by [`params_to_blob`].
pub(crate) fn params_from_blob(blob: &[u8], dim: usize) -> Result<Sq8Params> {
    let vals = blob_to_f32(blob)?;
    if vals.len() != dim * 2 {
        return Err(Error::Config(format!(
            "quantization params blob has {} floats, expected {}",
            vals.len(),
            dim * 2
        )));
    }
    let (min, scale) = vals.split_at(dim);
    Ok(Sq8Params {
        min: min.to_vec(),
        scale: scale.to_vec(),
    })
}

/// Loads the quantization ranges of one partition, or `None` when the
/// partition has never been encoded (e.g. the delta store).
pub(crate) fn load_params<R: PageRead + ?Sized>(
    r: &R,
    tables: &Tables,
    partition: i64,
    dim: usize,
) -> Result<Option<Sq8Params>> {
    let Some(quants) = &tables.quants else {
        return Ok(None);
    };
    let Some(row) = quants.get(r, &[Value::Integer(partition)])? else {
        return Ok(None);
    };
    let blob = row[1]
        .as_blob()
        .ok_or_else(|| Error::Config("quants params column is not a blob".into()))?;
    params_from_blob(blob, dim).map(Some)
}

/// Decodes one `codes`-table row into `(asset, code bytes)`,
/// validating the code length against the index dimension — shared by
/// the single-query and batch quantized scan loops.
pub(crate) fn decode_code_row(row_bytes: &[u8], dim: usize) -> Result<(i64, &[u8])> {
    let mut dec = RowDecoder::new(row_bytes)?;
    dec.skip()?; // partition
    dec.skip()?; // vid
    let asset = dec
        .next_value()?
        .as_integer()
        .ok_or_else(|| Error::Config("code asset column is not an integer".into()))?;
    let code = dec.next_blob()?;
    if code.len() != dim {
        return Err(Error::Config(format!(
            "stored code has {} bytes, expected {}",
            code.len(),
            dim
        )));
    }
    Ok((asset, code))
}

// ---------------------------------------------------------------------
// SQ4 block storage.
//
// One `codes` row per (partition, block): a `members` directory blob
// of SQ4_BLOCK slots × 16 bytes (vid i64 LE ++ asset i64 LE; vid 0
// marks an empty or tombstoned slot — vids start at 1) and the packed
// nibble payload (16·dim bytes, register-interleaved). Tombstoning a
// slot leaves its stale nibbles in place; scans and fsck mask dead
// slots via the directory.
// ---------------------------------------------------------------------

/// Byte length of an SQ4 block's `members` directory blob.
pub(crate) const SQ4_MEMBERS_BYTES: usize = SQ4_BLOCK * 16;

/// Reads slot `j` of a members directory as `(vid, asset)`.
pub(crate) fn sq4_slot(members: &[u8], j: usize) -> (i64, i64) {
    let off = j * 16;
    let vid = i64::from_le_bytes(members[off..off + 8].try_into().expect("slot vid"));
    let asset = i64::from_le_bytes(members[off + 8..off + 16].try_into().expect("slot asset"));
    (vid, asset)
}

/// Writes slot `j` of a members directory.
pub(crate) fn sq4_set_slot(members: &mut [u8], j: usize, vid: i64, asset: i64) {
    let off = j * 16;
    members[off..off + 8].copy_from_slice(&vid.to_le_bytes());
    members[off + 8..off + 16].copy_from_slice(&asset.to_le_bytes());
}

/// Decodes one SQ4 `codes`-table row into `(block, members, packed)`,
/// validating both blob lengths — shared by the scan loop, append
/// path, and fsck.
pub(crate) fn decode_block_row(row_bytes: &[u8], dim: usize) -> Result<(i64, &[u8], &[u8])> {
    let mut dec = RowDecoder::new(row_bytes)?;
    dec.skip()?; // partition
    let block = dec
        .next_value()?
        .as_integer()
        .ok_or_else(|| Error::Config("sq4 block column is not an integer".into()))?;
    let members = dec.next_blob()?;
    if members.len() != SQ4_MEMBERS_BYTES {
        return Err(Error::Config(format!(
            "sq4 members blob has {} bytes, expected {}",
            members.len(),
            SQ4_MEMBERS_BYTES
        )));
    }
    let packed = dec.next_blob()?;
    if packed.len() != sq4_block_bytes(dim) {
        return Err(Error::Config(format!(
            "sq4 packed blob has {} bytes, expected {}",
            packed.len(),
            sq4_block_bytes(dim)
        )));
    }
    Ok((block, members, packed))
}

/// One partition's SQ4 blocks as owned `(block, members, packed)`
/// triples, in block order.
type BlockRows = Vec<(i64, Vec<u8>, Vec<u8>)>;

/// Collects one partition's SQ4 blocks as owned `(block, members,
/// packed)` triples, in block order.
fn load_blocks<R: PageRead + ?Sized>(
    r: &R,
    codes: &micronn_rel::Table,
    partition: i64,
    dim: usize,
) -> Result<BlockRows> {
    codes
        .scan_pk_prefix_raw(r, &[Value::Integer(partition)])?
        .map(|kv| {
            let (_, row) = kv?;
            let (block, members, packed) = decode_block_row(&row, dim)?;
            Ok((block, members.to_vec(), packed.to_vec()))
        })
        .collect()
}

/// Retrains the quantization ranges of `partition` from its current
/// f32 rows and rewrites the partition's code rows — the codec-aware
/// half of every maintenance operation that rewrites a partition
/// wholesale (rebuild, split, merge, drift retrain). Returns the
/// number of encoded vectors. No-op (returning 0) for non-quantized
/// catalogs.
pub(crate) fn encode_partition(
    txn: &mut WriteTxn,
    tables: &Tables,
    codec: VectorCodec,
    dim: usize,
    partition: i64,
) -> Result<usize> {
    let (Some(codes), Some(quants)) = (&tables.codes, &tables.quants) else {
        return Ok(0);
    };

    // Phase 1 (read-only): collect the partition's members (key order
    // → ascending vid, so block/slot assignment is deterministic).
    let members = crate::db::read_partition_members(txn, &tables.vectors, partition)?;
    // Phase 2 (write): retrain ranges, rewrite the code rows.
    let mut flat = Vec::with_capacity(members.len() * dim);
    for (_, _, v) in &members {
        flat.extend_from_slice(v);
    }
    let params = codec.train(&flat, dim);
    quants.upsert(
        txn,
        vec![
            Value::Integer(partition),
            Value::Blob(params_to_blob(&params)),
        ],
    )?;
    let enc = params.encoder(codec.levels());
    let mut code_buf = Vec::with_capacity(dim);
    match codec {
        VectorCodec::Sq4 => {
            // Blocks are rewritten wholesale: drop the partition's
            // old blocks (slot occupancy may have shifted), then pack
            // members 32 at a time.
            let stale: Vec<i64> = load_blocks(txn, codes, partition, dim)?
                .into_iter()
                .map(|(b, _, _)| b)
                .collect();
            for b in stale {
                codes.delete(txn, &[Value::Integer(partition), Value::Integer(b)])?;
            }
            for (block, chunk) in members.chunks(SQ4_BLOCK).enumerate() {
                let mut dir = vec![0u8; SQ4_MEMBERS_BYTES];
                let mut packed = vec![0u8; sq4_block_bytes(dim)];
                for (slot, (vid, asset, v)) in chunk.iter().enumerate() {
                    sq4_set_slot(&mut dir, slot, *vid, *asset);
                    code_buf.clear();
                    enc.encode_row(v, &mut code_buf);
                    for (d, &c) in code_buf.iter().enumerate() {
                        set_block_code(&mut packed, d, slot, c);
                    }
                }
                codes.upsert(
                    txn,
                    vec![
                        Value::Integer(partition),
                        Value::Integer(block as i64),
                        Value::Blob(dir),
                        Value::Blob(packed),
                    ],
                )?;
            }
        }
        _ => {
            // SQ8: code rows are always a subset of the partition's
            // current members — rebuild wipes them all first, a flush
            // only adds rows, and upsert/delete remove a row's code in
            // the same transaction — so upserting by (partition, vid)
            // replaces every live code and no stale sweep is needed.
            for (vid, asset, v) in &members {
                code_buf.clear();
                enc.encode_row(v, &mut code_buf);
                codes.upsert(
                    txn,
                    vec![
                        Value::Integer(partition),
                        Value::Integer(*vid),
                        Value::Integer(*asset),
                        Value::Blob(code_buf.clone()),
                    ],
                )?;
            }
        }
    }
    Ok(members.len())
}

/// Encodes newly-flushed rows into `partition`'s code storage *under
/// its existing ranges* (no retrain — that is the maintainer's drift
/// decision). `rows` must be the `(vid, asset, vector)` triples just
/// moved into the partition, in ascending-vid order. Returns
/// `(appended, clamped)` where `clamped` counts rows with at least one
/// out-of-range dimension — the quantizer range-drift signal.
pub(crate) fn append_partition(
    txn: &mut WriteTxn,
    tables: &Tables,
    codec: VectorCodec,
    dim: usize,
    partition: i64,
    params: &Sq8Params,
    rows: &[(i64, i64, Vec<f32>)],
) -> Result<(usize, usize)> {
    let Some(codes) = &tables.codes else {
        return Ok((0, 0));
    };
    let enc = params.encoder(codec.levels());
    let mut code_buf = Vec::with_capacity(dim);
    let mut clamped = 0usize;
    match codec {
        VectorCodec::Sq4 => {
            // Fill tombstoned/empty slots of existing blocks in
            // (block, slot) order, then append fresh blocks.
            let mut blocks = load_blocks(txn, codes, partition, dim)?;
            let mut next_block = blocks.iter().map(|b| b.0).max().map_or(0, |m| m + 1);
            let mut queue = rows.iter();
            let mut pending = queue.next();
            for (block, dir, packed) in &mut blocks {
                if pending.is_none() {
                    break;
                }
                let mut dirty = false;
                for slot in 0..SQ4_BLOCK {
                    let Some((vid, asset, v)) = pending else {
                        break;
                    };
                    if sq4_slot(dir, slot).0 != 0 {
                        continue;
                    }
                    sq4_set_slot(dir, slot, *vid, *asset);
                    code_buf.clear();
                    if enc.encode_row(v, &mut code_buf) {
                        clamped += 1;
                    }
                    // set_block_code clears the slot's stale nibble
                    // before writing, so tombstone leftovers vanish.
                    for (d, &c) in code_buf.iter().enumerate() {
                        set_block_code(packed, d, slot, c);
                    }
                    dirty = true;
                    pending = queue.next();
                }
                if dirty {
                    codes.upsert(
                        txn,
                        vec![
                            Value::Integer(partition),
                            Value::Integer(*block),
                            Value::Blob(dir.clone()),
                            Value::Blob(packed.clone()),
                        ],
                    )?;
                }
            }
            while pending.is_some() {
                let mut dir = vec![0u8; SQ4_MEMBERS_BYTES];
                let mut packed = vec![0u8; sq4_block_bytes(dim)];
                let mut slot = 0;
                while let Some((vid, asset, v)) = pending {
                    if slot == SQ4_BLOCK {
                        break;
                    }
                    sq4_set_slot(&mut dir, slot, *vid, *asset);
                    code_buf.clear();
                    if enc.encode_row(v, &mut code_buf) {
                        clamped += 1;
                    }
                    for (d, &c) in code_buf.iter().enumerate() {
                        set_block_code(&mut packed, d, slot, c);
                    }
                    slot += 1;
                    pending = queue.next();
                }
                codes.upsert(
                    txn,
                    vec![
                        Value::Integer(partition),
                        Value::Integer(next_block),
                        Value::Blob(dir),
                        Value::Blob(packed),
                    ],
                )?;
                next_block += 1;
            }
        }
        _ => {
            for (vid, asset, v) in rows {
                code_buf.clear();
                if enc.encode_row(v, &mut code_buf) {
                    clamped += 1;
                }
                codes.upsert(
                    txn,
                    vec![
                        Value::Integer(partition),
                        Value::Integer(*vid),
                        Value::Integer(*asset),
                        Value::Blob(code_buf.clone()),
                    ],
                )?;
            }
        }
    }
    Ok((rows.len(), clamped))
}

/// Removes one vector's code when it leaves an indexed partition
/// (replacement or delete). SQ8 deletes the `(partition, vid)` row;
/// SQ4 tombstones the vid's slot in its block directory (stale
/// nibbles stay behind and are masked by liveness). Returns whether a
/// code existed; no-op `false` for non-quantized catalogs.
pub(crate) fn remove_code(
    txn: &mut WriteTxn,
    tables: &Tables,
    codec: VectorCodec,
    dim: usize,
    partition: i64,
    vid: i64,
) -> Result<bool> {
    let Some(codes) = &tables.codes else {
        return Ok(false);
    };
    match codec {
        VectorCodec::Sq4 => {
            let mut hit: Option<(i64, Vec<u8>, Vec<u8>, usize)> = None;
            for kv in codes.scan_pk_prefix_raw(txn, &[Value::Integer(partition)])? {
                let (_, row) = kv?;
                let (block, dir, packed) = decode_block_row(&row, dim)?;
                if let Some(slot) = (0..SQ4_BLOCK).find(|&j| sq4_slot(dir, j).0 == vid) {
                    hit = Some((block, dir.to_vec(), packed.to_vec(), slot));
                    break;
                }
            }
            let Some((block, mut dir, packed, slot)) = hit else {
                return Ok(false);
            };
            sq4_set_slot(&mut dir, slot, 0, 0);
            codes.upsert(
                txn,
                vec![
                    Value::Integer(partition),
                    Value::Integer(block),
                    Value::Blob(dir),
                    Value::Blob(packed),
                ],
            )?;
            Ok(true)
        }
        _ => Ok(codes
            .delete(txn, &[Value::Integer(partition), Value::Integer(vid)])?
            .is_some()),
    }
}

/// Drops one partition's code rows and its quantization-range row —
/// the codec-aware half of retiring a partition (lifecycle split and
/// merge). No-op for non-quantized catalogs.
pub(crate) fn clear_partition_codes(
    txn: &mut WriteTxn,
    tables: &Tables,
    partition: i64,
) -> Result<usize> {
    let mut removed = 0usize;
    if let Some(codes) = &tables.codes {
        // Second key column is the vid (SQ8) or block id (SQ4) —
        // either way an integer, so one sweep serves both layouts.
        let keys: Vec<i64> = codes
            .scan_pk_prefix_raw(txn, &[Value::Integer(partition)])?
            .map(|kv| {
                let (_, row) = kv?;
                let mut dec = RowDecoder::new(&row)?;
                dec.skip()?; // partition
                dec.next_value()?
                    .as_integer()
                    .ok_or_else(|| Error::Config("code key column is not an integer".into()))
            })
            .collect::<Result<_>>()?;
        for key in keys {
            codes.delete(txn, &[Value::Integer(partition), Value::Integer(key)])?;
            removed += 1;
        }
    }
    if let Some(quants) = &tables.quants {
        if quants.delete(txn, &[Value::Integer(partition)])?.is_some() {
            removed += 1;
        }
    }
    Ok(removed)
}

/// Drops every code and quantization-range row (a rebuild re-encodes
/// all partitions from scratch).
pub(crate) fn clear_codes(txn: &mut WriteTxn, tables: &Tables) -> Result<()> {
    if let Some(codes) = &tables.codes {
        let pks: Vec<(i64, i64)> = codes
            .scan(txn)?
            .map(|row| {
                let row = row?;
                Ok((
                    row[0].as_integer().unwrap_or(0),
                    row[1].as_integer().unwrap_or(0),
                ))
            })
            .collect::<Result<_>>()?;
        for (p, v) in pks {
            codes.delete(txn, &[Value::Integer(p), Value::Integer(v)])?;
        }
    }
    if let Some(quants) = &tables.quants {
        let pks: Vec<i64> = quants
            .scan(txn)?
            .map(|row| Ok(row?[0].as_integer().unwrap_or(0)))
            .collect::<Result<_>>()?;
        for p in pks {
            quants.delete(txn, &[Value::Integer(p)])?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_names_round_trip() {
        for codec in [VectorCodec::F32, VectorCodec::Sq8, VectorCodec::Sq4] {
            assert_eq!(VectorCodec::parse(codec.name()), Some(codec));
        }
        assert_eq!(VectorCodec::parse("SQ8"), Some(VectorCodec::Sq8));
        assert_eq!(VectorCodec::parse("SQ4"), Some(VectorCodec::Sq4));
        assert_eq!(VectorCodec::parse("pq"), None);
        assert_eq!(VectorCodec::default(), VectorCodec::F32);
        assert!(!VectorCodec::F32.is_quantized());
        assert!(VectorCodec::Sq8.is_quantized());
        assert!(VectorCodec::Sq4.is_quantized());
        assert_eq!(VectorCodec::Sq4.levels(), 15);
        assert_eq!(VectorCodec::Sq8.levels(), 255);
    }

    #[test]
    fn params_blob_round_trip() {
        let p = Sq8Params {
            min: vec![-1.5, 0.0, 3.25],
            scale: vec![0.1, 0.0, 2.0],
        };
        let blob = params_to_blob(&p);
        assert_eq!(blob.len(), 3 * 2 * 4);
        let back = params_from_blob(&blob, 3).unwrap();
        assert_eq!(back, p);
        assert!(params_from_blob(&blob, 4).is_err());
    }
}
