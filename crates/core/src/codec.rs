//! The pluggable vector-codec layer of the scan pipeline.
//!
//! A [`VectorCodec`] decides how partition scans read vectors:
//!
//! * [`VectorCodec::F32`] — scans decode the raw f32 payload exactly
//!   as the paper's §3.3 loop does (the default; bit-identical to the
//!   un-refactored behaviour).
//! * [`VectorCodec::Sq8`] — each indexed partition additionally keeps
//!   per-dimension scalar-quantized u8 codes in a *separate* clustered
//!   table (`codes`), laid out independently from the f32 payload so a
//!   quantized scan reads ~4× fewer bytes. Scans score codes with the
//!   asymmetric kernels of [`micronn_linalg::sq8`], then re-rank the
//!   top `rerank_factor · k` candidates against the exact vectors.
//!
//! The codec choice is part of the index catalog (persisted in the
//! `meta` table at creation, validated when a database is opened) and
//! is honoured by every layer that touches vector bytes: ingestion,
//! rebuild, delta flush, single-query search, batch MQO, and hybrid
//! plans. Per-partition quantization ranges live in the `quants`
//! table and are retrained whenever maintenance rewrites a partition
//! (rebuild retrains everything; a delta flush retrains each touched
//! partition).

use micronn_linalg::Sq8Params;
use micronn_rel::{blob_to_f32, RowDecoder, Value};
use micronn_storage::{PageRead, WriteTxn};

use crate::db::Tables;
use crate::error::{Error, Result};

/// How vector payloads are stored and scanned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VectorCodec {
    /// Full-precision f32 vectors only (the paper's layout).
    #[default]
    F32,
    /// f32 vectors plus per-partition scalar-quantized u8 codes;
    /// scans run in the compressed domain and re-rank exactly.
    Sq8,
}

impl VectorCodec {
    /// Catalog name of the codec.
    pub fn name(&self) -> &'static str {
        match self {
            VectorCodec::F32 => "f32",
            VectorCodec::Sq8 => "sq8",
        }
    }

    /// Parses a catalog name.
    pub fn parse(name: &str) -> Option<VectorCodec> {
        match name.to_ascii_lowercase().as_str() {
            "f32" => Some(VectorCodec::F32),
            "sq8" => Some(VectorCodec::Sq8),
            _ => None,
        }
    }

    /// Whether scans read quantized codes instead of raw vectors.
    pub fn is_quantized(&self) -> bool {
        matches!(self, VectorCodec::Sq8)
    }
}

impl std::fmt::Display for VectorCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Serializes quantization ranges as `min[dim] ++ scale[dim]` (LE f32).
pub(crate) fn params_to_blob(p: &Sq8Params) -> Vec<u8> {
    let mut out = Vec::with_capacity(p.dim() * 8);
    for x in p.min.iter().chain(p.scale.iter()) {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Deserializes quantization ranges written by [`params_to_blob`].
pub(crate) fn params_from_blob(blob: &[u8], dim: usize) -> Result<Sq8Params> {
    let vals = blob_to_f32(blob)?;
    if vals.len() != dim * 2 {
        return Err(Error::Config(format!(
            "quantization params blob has {} floats, expected {}",
            vals.len(),
            dim * 2
        )));
    }
    let (min, scale) = vals.split_at(dim);
    Ok(Sq8Params {
        min: min.to_vec(),
        scale: scale.to_vec(),
    })
}

/// Loads the quantization ranges of one partition, or `None` when the
/// partition has never been encoded (e.g. the delta store).
pub(crate) fn load_params<R: PageRead + ?Sized>(
    r: &R,
    tables: &Tables,
    partition: i64,
    dim: usize,
) -> Result<Option<Sq8Params>> {
    let Some(quants) = &tables.quants else {
        return Ok(None);
    };
    let Some(row) = quants.get(r, &[Value::Integer(partition)])? else {
        return Ok(None);
    };
    let blob = row[1]
        .as_blob()
        .ok_or_else(|| Error::Config("quants params column is not a blob".into()))?;
    params_from_blob(blob, dim).map(Some)
}

/// Decodes one `codes`-table row into `(asset, code bytes)`,
/// validating the code length against the index dimension — shared by
/// the single-query and batch quantized scan loops.
pub(crate) fn decode_code_row(row_bytes: &[u8], dim: usize) -> Result<(i64, &[u8])> {
    let mut dec = RowDecoder::new(row_bytes)?;
    dec.skip()?; // partition
    dec.skip()?; // vid
    let asset = dec
        .next_value()?
        .as_integer()
        .ok_or_else(|| Error::Config("code asset column is not an integer".into()))?;
    let code = dec.next_blob()?;
    if code.len() != dim {
        return Err(Error::Config(format!(
            "stored code has {} bytes, expected {}",
            code.len(),
            dim
        )));
    }
    Ok((asset, code))
}

/// Retrains the quantization ranges of `partition` from its current
/// f32 rows and rewrites the partition's code rows — the codec-aware
/// half of every maintenance operation. Returns the number of encoded
/// vectors. No-op (returning 0) for non-quantized catalogs.
pub(crate) fn encode_partition(
    txn: &mut WriteTxn,
    tables: &Tables,
    dim: usize,
    partition: i64,
) -> Result<usize> {
    let (Some(codes), Some(quants)) = (&tables.codes, &tables.quants) else {
        return Ok(0);
    };

    // Phase 1 (read-only): collect the partition's members.
    let members = crate::db::read_partition_members(txn, &tables.vectors, partition)?;
    // Phase 2 (write): retrain ranges, rewrite the code rows. Code
    // rows are always a subset of the partition's current members —
    // rebuild wipes them all first, a flush only adds rows, and
    // upsert/delete remove a row's code in the same transaction — so
    // upserting by (partition, vid) replaces every live code and no
    // stale sweep is needed.
    let mut flat = Vec::with_capacity(members.len() * dim);
    for (_, _, v) in &members {
        flat.extend_from_slice(v);
    }
    let params = Sq8Params::train(&flat, dim);
    quants.upsert(
        txn,
        vec![
            Value::Integer(partition),
            Value::Blob(params_to_blob(&params)),
        ],
    )?;
    let mut code_buf = Vec::with_capacity(dim);
    for (vid, asset, v) in &members {
        code_buf.clear();
        params.encode_into(v, &mut code_buf);
        codes.upsert(
            txn,
            vec![
                Value::Integer(partition),
                Value::Integer(*vid),
                Value::Integer(*asset),
                Value::Blob(code_buf.clone()),
            ],
        )?;
    }
    Ok(members.len())
}

/// Drops one partition's code rows and its quantization-range row —
/// the codec-aware half of retiring a partition (lifecycle split and
/// merge). No-op for non-quantized catalogs.
pub(crate) fn clear_partition_codes(
    txn: &mut WriteTxn,
    tables: &Tables,
    partition: i64,
) -> Result<usize> {
    let mut removed = 0usize;
    if let Some(codes) = &tables.codes {
        let vids: Vec<i64> = codes
            .scan_pk_prefix_raw(txn, &[Value::Integer(partition)])?
            .map(|kv| {
                let (_, row) = kv?;
                let mut dec = RowDecoder::new(&row)?;
                dec.skip()?; // partition
                dec.next_value()?
                    .as_integer()
                    .ok_or_else(|| Error::Config("code vid column is not an integer".into()))
            })
            .collect::<Result<_>>()?;
        for vid in vids {
            codes.delete(txn, &[Value::Integer(partition), Value::Integer(vid)])?;
            removed += 1;
        }
    }
    if let Some(quants) = &tables.quants {
        if quants.delete(txn, &[Value::Integer(partition)])?.is_some() {
            removed += 1;
        }
    }
    Ok(removed)
}

/// Drops every code and quantization-range row (a rebuild re-encodes
/// all partitions from scratch).
pub(crate) fn clear_codes(txn: &mut WriteTxn, tables: &Tables) -> Result<()> {
    if let Some(codes) = &tables.codes {
        let pks: Vec<(i64, i64)> = codes
            .scan(txn)?
            .map(|row| {
                let row = row?;
                Ok((
                    row[0].as_integer().unwrap_or(0),
                    row[1].as_integer().unwrap_or(0),
                ))
            })
            .collect::<Result<_>>()?;
        for (p, v) in pks {
            codes.delete(txn, &[Value::Integer(p), Value::Integer(v)])?;
        }
    }
    if let Some(quants) = &tables.quants {
        let pks: Vec<i64> = quants
            .scan(txn)?
            .map(|row| Ok(row?[0].as_integer().unwrap_or(0)))
            .collect::<Result<_>>()?;
        for p in pks {
            quants.delete(txn, &[Value::Integer(p)])?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_names_round_trip() {
        for codec in [VectorCodec::F32, VectorCodec::Sq8] {
            assert_eq!(VectorCodec::parse(codec.name()), Some(codec));
        }
        assert_eq!(VectorCodec::parse("SQ8"), Some(VectorCodec::Sq8));
        assert_eq!(VectorCodec::parse("pq"), None);
        assert_eq!(VectorCodec::default(), VectorCodec::F32);
        assert!(!VectorCodec::F32.is_quantized());
        assert!(VectorCodec::Sq8.is_quantized());
    }

    #[test]
    fn params_blob_round_trip() {
        let p = Sq8Params {
            min: vec![-1.5, 0.0, 3.25],
            scale: vec![0.1, 0.0, 2.0],
        };
        let blob = params_to_blob(&p);
        assert_eq!(blob.len(), 3 * 2 * 4);
        let back = params_from_blob(&blob, 3).unwrap();
        assert_eq!(back, p);
        assert!(params_from_blob(&blob, 4).is_err());
    }
}
