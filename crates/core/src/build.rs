//! Full index construction (§3.1).
//!
//! Building streams the vector collection through mini-batch k-means
//! (Algorithm 1) — never buffering more than one mini-batch of vectors
//! — then rewrites each row's `partition` component of the clustered
//! primary key so partitions become contiguous on disk. The whole
//! rebuild is **one write transaction**: concurrent readers keep their
//! snapshots of the old index and flip atomically to the new one at
//! commit (the consistency requirement of §2.1). Transactions larger
//! than memory spill dirty pages to the WAL.

use std::time::Instant;

use micronn_cluster::{MiniBatchConfig, SourceError, VectorSource};
use micronn_rel::{analyze_table, blob_into_f32, f32_to_blob, RowDecoder, Table, Value};
use micronn_storage::PageRead;

use crate::db::{
    meta_int, set_meta_int, Inner, MicroNN, M_BASELINE_AVG, M_DELTA_COUNT, M_EPOCH, M_NEXT_PID,
    M_PARTITIONS,
};
use crate::error::{Error, Result};

/// Outcome of a full index build.
#[derive(Debug, Clone, PartialEq)]
pub struct RebuildReport {
    /// Vectors clustered.
    pub vectors: usize,
    /// Partitions created.
    pub partitions: usize,
    /// Rows whose partition assignment changed (and were rewritten).
    pub moved_rows: usize,
    /// Wall-clock spent training the quantizer.
    pub train_time: std::time::Duration,
    /// Total wall-clock of the rebuild.
    pub total_time: std::time::Duration,
}

/// A [`VectorSource`] streaming vectors out of the clustered vector
/// table by `(partition, vid)` key — the bridge between the relational
/// store and the clustering crate.
pub(crate) struct TableVectorSource<'a, R: PageRead + ?Sized> {
    pub table: &'a Table,
    pub reader: &'a R,
    pub keys: &'a [(i64, i64)],
    pub dim: usize,
}

impl<R: PageRead + ?Sized> VectorSource for TableVectorSource<'_, R> {
    fn len(&self) -> usize {
        self.keys.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn gather(&self, ids: &[usize], out: &mut Vec<f32>) -> std::result::Result<(), SourceError> {
        out.clear();
        out.reserve(ids.len() * self.dim);
        let mut tmp: Vec<f32> = Vec::with_capacity(self.dim);
        for &id in ids {
            let (partition, vid) = *self
                .keys
                .get(id)
                .ok_or_else(|| SourceError::msg(format!("vector index {id} out of range")))?;
            let row = self
                .table
                .get_raw(
                    self.reader,
                    &[Value::Integer(partition), Value::Integer(vid)],
                )
                .map_err(SourceError::new)?
                .ok_or_else(|| {
                    SourceError::msg(format!("vector ({partition},{vid}) vanished mid-build"))
                })?;
            let mut dec = RowDecoder::new(&row).map_err(SourceError::new)?;
            dec.skip().map_err(SourceError::new)?; // partition
            dec.skip().map_err(SourceError::new)?; // vid
            dec.skip().map_err(SourceError::new)?; // asset
            let blob = dec.next_blob().map_err(SourceError::new)?;
            blob_into_f32(blob, &mut tmp).map_err(SourceError::new)?;
            if tmp.len() != self.dim {
                return Err(SourceError::msg(format!(
                    "vector ({partition},{vid}) has dim {}, expected {}",
                    tmp.len(),
                    self.dim
                )));
            }
            out.extend_from_slice(&tmp);
        }
        Ok(())
    }
}

/// Per-rebuild overrides of the clustering parameters (the Figure 8
/// mini-batch sweep rebuilds one index under many batch sizes).
#[derive(Debug, Clone, Default)]
pub struct RebuildOptions {
    /// Mini-batch size; `None` = the index config's value.
    pub batch_size: Option<usize>,
    /// Iterations; `None` = the index config's value.
    pub iterations: Option<usize>,
    /// Train the quantizer with full-memory Lloyd's k-means instead of
    /// mini-batch: buffers the *entire* collection in RAM (the memory
    /// cost the paper's Figure 8b shows for a "100% batch"), in
    /// exchange for classic k-means quality.
    pub full_kmeans: bool,
}

impl MicroNN {
    /// Builds (or fully rebuilds) the IVF index from the current vector
    /// collection, folding the delta store in. Runs as one atomic write
    /// transaction; readers are never blocked.
    pub fn rebuild(&self) -> Result<RebuildReport> {
        self.rebuild_with(&RebuildOptions::default())
    }

    /// [`MicroNN::rebuild`] with clustering-parameter overrides.
    pub fn rebuild_with(&self, opts: &RebuildOptions) -> Result<RebuildReport> {
        let start = Instant::now();
        let span = self.maint_span("maintain_rebuild");
        let inner: &Inner = &self.inner;
        let mut txn = inner.db.begin_write()?;

        // Collect the key list (partition, vid) — metadata only, the
        // vectors themselves stay on disk.
        let mut keys: Vec<(i64, i64)> = Vec::new();
        for kv in inner.tables.vectors.scan(&txn)? {
            let row = kv?;
            keys.push((
                row[0].as_integer().unwrap_or(0),
                row[1].as_integer().unwrap_or(0),
            ));
        }
        if keys.is_empty() {
            txn.rollback();
            return Ok(RebuildReport {
                vectors: 0,
                partitions: 0,
                moved_rows: 0,
                train_time: std::time::Duration::ZERO,
                total_time: start.elapsed(),
            });
        }

        // Train the quantizer (Algorithm 1) over the streaming source.
        let mb = MiniBatchConfig {
            target_cluster_size: inner.cfg.target_partition_size,
            batch_size: opts.batch_size.unwrap_or(inner.cfg.clustering_batch_size),
            iterations: opts.iterations.unwrap_or(inner.cfg.clustering_iterations),
            balance_lambda: inner.cfg.balance_lambda,
            balanced_assignment: true,
            seed: inner.cfg.seed,
            metric: inner.metric,
        };
        let train_start = Instant::now();
        let (clustering, assignments) = {
            let source = TableVectorSource {
                table: &inner.tables.vectors,
                reader: &txn,
                keys: &keys,
                dim: inner.dim,
            };
            if opts.full_kmeans {
                // Regular k-means: buffer the whole collection (the
                // memory cost the streaming path exists to avoid).
                let all: Vec<usize> = (0..keys.len()).collect();
                let mut data = Vec::with_capacity(keys.len() * inner.dim);
                source.gather(&all, &mut data)?;
                let clustering = micronn_cluster::lloyd::train(
                    &data,
                    inner.dim,
                    &micronn_cluster::LloydConfig {
                        target_cluster_size: inner.cfg.target_partition_size,
                        seed: inner.cfg.seed,
                        metric: inner.metric,
                        ..Default::default()
                    },
                );
                let assignments = micronn_cluster::lloyd::assign_all(&data, inner.dim, &clustering);
                (clustering, assignments)
            } else {
                let clustering = micronn_cluster::train(&source, &mb)?;
                // Assignment streams in chunks sized to ~2 MiB of
                // vectors, keeping construction memory near the
                // mini-batch bound the paper claims (Figure 6b).
                let chunk = (2 * 1024 * 1024 / (inner.dim * 4)).clamp(64, 4096);
                let assignments = micronn_cluster::assign_all(
                    &source,
                    &clustering,
                    if mb.balanced_assignment {
                        mb.balance_lambda
                    } else {
                        0.0
                    },
                    chunk,
                )?;
                (clustering, assignments)
            }
        };
        let train_time = train_start.elapsed();
        let k = clustering.k();

        // Replace the centroid table.
        let old_pids: Vec<i64> = inner
            .tables
            .centroids
            .scan(&txn)?
            .map(|row| Ok(row?[0].as_integer().unwrap_or(0)))
            .collect::<Result<_>>()?;
        for pid in old_pids {
            inner
                .tables
                .centroids
                .delete(&mut txn, &[Value::Integer(pid)])?;
        }
        let mut sizes = vec![0i64; k];
        for &a in &assignments {
            sizes[a as usize] += 1;
        }
        for (c, &size) in sizes.iter().enumerate() {
            inner.tables.centroids.upsert(
                &mut txn,
                vec![
                    Value::Integer(c as i64 + 1),
                    Value::Blob(f32_to_blob(clustering.centroid(c))),
                    Value::Integer(size),
                ],
            )?;
        }

        // Rewrite rows whose partition changed: the clustered key moves
        // the row into its partition's contiguous key range.
        let mut moved = 0usize;
        for (i, &(old_p, vid)) in keys.iter().enumerate() {
            let new_p = assignments[i] as i64 + 1;
            if old_p == new_p {
                continue;
            }
            let row = inner
                .tables
                .vectors
                .delete(&mut txn, &[Value::Integer(old_p), Value::Integer(vid)])?
                .ok_or_else(|| Error::Config("row vanished during rebuild".into()))?;
            let asset = row[2].clone();
            let blob = row[3].clone();
            inner.tables.vectors.upsert(
                &mut txn,
                vec![
                    Value::Integer(new_p),
                    Value::Integer(vid),
                    asset.clone(),
                    blob,
                ],
            )?;
            inner.tables.assets.upsert(
                &mut txn,
                vec![asset, Value::Integer(new_p), Value::Integer(vid)],
            )?;
            moved += 1;
            inner
                .row_changes
                .fetch_add(3, std::sync::atomic::Ordering::Relaxed);
        }

        // Codec-aware epilogue: a rebuild moves rows between
        // partitions, so every partition's quantization ranges are
        // retrained and its codes rewritten from scratch.
        if inner.quantized() {
            crate::codec::clear_codes(&mut txn, &inner.tables)?;
            let mut encoded = 0usize;
            for c in 0..k {
                encoded += crate::codec::encode_partition(
                    &mut txn,
                    &inner.tables,
                    inner.cfg.codec,
                    inner.dim,
                    c as i64 + 1,
                )?;
            }
            inner.row_changes.fetch_add(
                encoded as u64 + k as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
        }

        // Refresh statistics for the hybrid optimizer and bump the
        // index epoch (invalidates centroid/stats caches).
        analyze_table(&mut txn, &inner.tables.attrs)?;
        let epoch = meta_int(&txn, &inner.tables.meta, M_EPOCH)?;
        set_meta_int(&mut txn, &inner.tables.meta, M_EPOCH, epoch + 1)?;
        set_meta_int(&mut txn, &inner.tables.meta, M_PARTITIONS, k as i64)?;
        set_meta_int(&mut txn, &inner.tables.meta, M_DELTA_COUNT, 0)?;
        // Partition ids 1..=k are in use; splits allocate from here.
        set_meta_int(&mut txn, &inner.tables.meta, M_NEXT_PID, k as i64 + 1)?;
        // Baseline average partition size, scaled ×1000 for integer
        // storage (the growth trigger compares ratios).
        let avg_x1000 = (keys.len() as f64 / k as f64 * 1000.0) as i64;
        set_meta_int(&mut txn, &inner.tables.meta, M_BASELINE_AVG, avg_x1000)?;
        txn.commit()?;
        // Every partition was re-encoded under fresh ranges.
        inner.clear_drift();
        self.maint_finish(span, keys.len() as u64);

        Ok(RebuildReport {
            vectors: keys.len(),
            partitions: k,
            moved_rows: moved,
            train_time,
            total_time: start.elapsed(),
        })
    }
}
