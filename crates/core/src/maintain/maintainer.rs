//! The background index maintainer: a dedicated thread driving the
//! maintenance ladder (flush → split/merge → rebuild fallback) while
//! searches and updates keep running.
//!
//! The maintainer owns nothing the foreground does not already share:
//! it clones the [`MicroNN`] handle and calls
//! [`MicroNN::maybe_maintain`] on a fixed cadence, so every operation
//! runs under the storage engine's single-writer/snapshot-reader
//! protocol — concurrent searches keep their snapshots and flip
//! atomically at each maintenance commit (the same cooperation the
//! `exec_determinism` concurrency smoke exercises). Errors are
//! recorded, not fatal: a transient failure (e.g. a candidate partition
//! emptied by a racing delete) leaves the maintainer running.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use micronn_telemetry::Counter;
use parking_lot::Mutex;

use crate::db::MicroNN;

/// Tuning knobs for [`MicroNN::start_maintainer`].
#[derive(Debug, Clone)]
pub struct MaintainerOptions {
    /// Pause between maintenance passes. Each pass runs to a healthy
    /// index (bounded), so the interval trades staleness for write-lock
    /// pressure; the default favours promptness for churn-heavy tests
    /// and on-device workloads.
    pub interval: Duration,
}

impl Default for MaintainerOptions {
    fn default() -> Self {
        MaintainerOptions {
            interval: Duration::from_millis(20),
        }
    }
}

/// The maintainer's counters live in the database's telemetry registry
/// (`micronn_maintainer_*_total`), so `micronnctl status` and the
/// Prometheus exporter see them without holding the
/// [`IndexMaintainer`] handle. The handles here share the registry's
/// atomics; counts are cumulative per index handle, surviving
/// maintainer restarts.
struct Shared {
    stop: AtomicBool,
    cycles: Arc<Counter>,
    flushes: Arc<Counter>,
    splits: Arc<Counter>,
    merges: Arc<Counter>,
    rebuilds: Arc<Counter>,
    retrains: Arc<Counter>,
    errors: Arc<Counter>,
    skips: Arc<Counter>,
    bytes_written: Arc<Counter>,
    last_error: Mutex<Option<String>>,
}

/// Point-in-time counters of a running (or stopped) maintainer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintainerStats {
    /// Maintenance passes completed (including no-op passes; idle
    /// cycles skipped by the quiet-index check are not counted).
    pub cycles: u64,
    /// Delta flushes performed.
    pub flushes: u64,
    /// Partition splits performed.
    pub splits: u64,
    /// Partition merges performed.
    pub merges: u64,
    /// Full rebuilds performed (rare once the lifecycle is on).
    pub rebuilds: u64,
    /// Quantizer range retrains performed (quantized codecs; drift
    /// triggered).
    pub retrains: u64,
    /// Passes that failed; the maintainer keeps running.
    pub errors: u64,
    /// Idle cycles skipped by the quiet-index check (no mutations since
    /// the last healthy pass), each saving a catalog scan.
    pub skips: u64,
    /// Disk bytes written by maintenance passes (store write counters
    /// sampled around each pass; the single-writer protocol keeps the
    /// attribution tight — the Figure 10d axis, in bytes).
    pub bytes_written: u64,
    /// Message of the most recent failure, if any.
    pub last_error: Option<String>,
}

/// Handle to the background maintenance thread. Dropping it stops the
/// thread (joining it); [`IndexMaintainer::stop`] does the same while
/// returning the final counters.
pub struct IndexMaintainer {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MicroNN {
    /// Spawns the background [`IndexMaintainer`] for this index. The
    /// thread shares this handle (cheap clone) and runs
    /// [`MicroNN::maybe_maintain`] every `opts.interval`, so flushes,
    /// splits, merges, and fallback rebuilds happen behind concurrent
    /// searches and updates without any caller-side polling.
    pub fn start_maintainer(&self, opts: MaintainerOptions) -> IndexMaintainer {
        let reg = &self.inner.tel.registry;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            cycles: reg.counter("micronn_maintainer_cycles_total"),
            flushes: reg.counter("micronn_maintainer_flushes_total"),
            splits: reg.counter("micronn_maintainer_splits_total"),
            merges: reg.counter("micronn_maintainer_merges_total"),
            rebuilds: reg.counter("micronn_maintainer_rebuilds_total"),
            retrains: reg.counter("micronn_maintainer_retrains_total"),
            errors: reg.counter("micronn_maintainer_errors_total"),
            skips: reg.counter("micronn_maintainer_skips_total"),
            bytes_written: reg.counter("micronn_maintainer_bytes_written_total"),
            last_error: Mutex::new(None),
        });
        let db = self.clone();
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("micronn-maintainer".into())
            .spawn(move || {
                // Quiet-index fast path: a verdict scans the centroid
                // table, which is wasted work on an idle database.
                // Every mutation through this handle (and its clones)
                // bumps `row_changes`, so an unchanged counter after a
                // healthy pass means nothing to do. A full pass still
                // runs periodically as a backstop for mutations from
                // other handles on the same file.
                const FORCE_FULL_EVERY: u32 = 64;
                let mut healthy_at: Option<u64> = None;
                let mut skipped = 0u32;
                while !thread_shared.stop.load(Ordering::Acquire) {
                    let quiet = healthy_at == Some(db.inner.row_changes.load(Ordering::Relaxed))
                        && skipped < FORCE_FULL_EVERY;
                    if quiet {
                        skipped += 1;
                        thread_shared.skips.inc();
                    } else {
                        skipped = 0;
                        let io_before = db.inner.db.store().stats();
                        match db.maybe_maintain() {
                            Ok(report) => {
                                thread_shared.flushes.add(report.flushes() as u64);
                                thread_shared.splits.add(report.splits() as u64);
                                thread_shared.merges.add(report.merges() as u64);
                                thread_shared.rebuilds.add(report.rebuilds() as u64);
                                thread_shared.retrains.add(report.retrains() as u64);
                                healthy_at = (report.status
                                    == crate::maintain::MaintenanceStatus::Healthy)
                                    .then(|| db.inner.row_changes.load(Ordering::Relaxed));
                            }
                            Err(e) => {
                                thread_shared.errors.inc();
                                *thread_shared.last_error.lock() = Some(e.to_string());
                                healthy_at = None;
                            }
                        }
                        let written = db.inner.db.store().stats().since(&io_before).disk_writes()
                            * micronn_storage::PAGE_SIZE as u64;
                        thread_shared.bytes_written.add(written);
                        thread_shared.cycles.inc();
                    }
                    // Sleep in short slices so stop() stays prompt even
                    // with long intervals.
                    let mut remaining = opts.interval;
                    while !remaining.is_zero() && !thread_shared.stop.load(Ordering::Acquire) {
                        let slice = remaining.min(Duration::from_millis(5));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
            .expect("spawn micronn-maintainer thread");
        IndexMaintainer {
            shared,
            handle: Some(handle),
        }
    }
}

impl IndexMaintainer {
    /// Counters so far; callable while the thread runs.
    pub fn stats(&self) -> MaintainerStats {
        MaintainerStats {
            cycles: self.shared.cycles.get(),
            flushes: self.shared.flushes.get(),
            splits: self.shared.splits.get(),
            merges: self.shared.merges.get(),
            rebuilds: self.shared.rebuilds.get(),
            retrains: self.shared.retrains.get(),
            errors: self.shared.errors.get(),
            skips: self.shared.skips.get(),
            bytes_written: self.shared.bytes_written.get(),
            last_error: self.shared.last_error.lock().clone(),
        }
    }

    /// Stops the thread, waits for the in-flight pass to finish, and
    /// returns the final counters.
    pub fn stop(mut self) -> MaintainerStats {
        self.join();
        self.stats()
    }

    fn join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for IndexMaintainer {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::db::VectorRecord;
    use micronn_linalg::Metric;
    use micronn_storage::SyncMode;

    #[test]
    fn maintainer_flushes_and_stops_cleanly() {
        let dir = tempfile::tempdir().unwrap();
        let mut cfg = Config::new(8, Metric::L2);
        cfg.store.sync = SyncMode::Off;
        cfg.delta_flush_threshold = 50;
        cfg.target_partition_size = 40;
        let db = MicroNN::create(dir.path().join("m.mnn"), cfg).unwrap();
        for i in 0..400i64 {
            let v: Vec<f32> = (0..8)
                .map(|j| ((i * 13 + j) % 101) as f32 / 101.0)
                .collect();
            db.upsert(VectorRecord::new(i, v)).unwrap();
        }
        db.rebuild().unwrap();
        let maintainer = db.start_maintainer(MaintainerOptions {
            interval: Duration::from_millis(1),
        });
        // Stage past the flush threshold and wait for the background
        // flush to land.
        for i in 400..480i64 {
            let v: Vec<f32> = (0..8)
                .map(|j| ((i * 13 + j) % 101) as f32 / 101.0)
                .collect();
            db.upsert(VectorRecord::new(i, v)).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while db.delta_len().unwrap() >= 50 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = maintainer.stop();
        assert!(stats.cycles > 0);
        assert!(stats.flushes >= 1, "background flush must have run");
        assert_eq!(stats.errors, 0, "last error: {:?}", stats.last_error);
        assert!(db.delta_len().unwrap() < 50);
    }
}
