//! Incremental index maintenance, the index monitor, and the partition
//! lifecycle (§3.6, extended).
//!
//! The delta store is scanned by every query, so "query latency can
//! grow if the delta-store grows too large". [`MicroNN::flush_delta`]
//! implements the paper's "simplified form of incremental index
//! maintenance that flushes vectors from the delta-store by assigning
//! them to the IVF index partition with the closest centroid and
//! updates the centroids to reflect the partition content" (a running
//! mean, after \[1\] / VLAD). Flushing touches only the delta rows plus
//! the centroid table — the tiny I/O footprint Figure 10d plots against
//! a full rebuild.
//!
//! The "IndexMonitor" half: partition sizes change as deltas are folded
//! in and assets deleted, so [`MicroNN::maintenance_status`] watches
//! the per-partition size statistics and escalates through a ladder of
//! increasingly expensive responses:
//!
//! 1. **flush** — fold the delta store into the nearest partitions;
//! 2. **split / merge** ([`lifecycle`]) — locally re-cluster one
//!    oversized partition, or fold one undersized partition into its
//!    nearest neighbour, touching only that partition's rows;
//! 3. **full rebuild** — the paper's growth trigger (average partition
//!    size past `growth_limit ×` its post-build baseline), now a rare
//!    fallback rather than the only answer to growth;
//! 4. **quantizer retrain** — for quantized codecs, a partition whose
//!    stored ranges have drifted (too many flushed rows clamped during
//!    encoding, see [`crate::Config::range_drift_limit`]) gets its
//!    ranges retrained and codes rewritten, restoring quantization
//!    quality without touching any other partition.
//!
//! [`MicroNN::maybe_maintain`] walks that ladder until the index is
//! healthy (or a bounded number of actions have run) and returns every
//! action taken plus the final status, so a caller never has to poll
//! for follow-up work the previous action uncovered. The
//! [`maintainer::IndexMaintainer`] drives the same
//! loop from a dedicated background thread, cooperating with concurrent
//! searches and updates through the storage engine's snapshot
//! isolation.

pub mod lifecycle;
pub mod maintainer;

pub use lifecycle::{MergeReport, SplitReport};
pub use maintainer::{IndexMaintainer, MaintainerOptions, MaintainerStats};

use micronn_rel::{f32_to_blob, Value};

use crate::db::{
    meta_int, read_partition_sizes, set_meta_int, MicroNN, DELTA_PARTITION, M_BASELINE_AVG,
    M_DELTA_COUNT, M_EPOCH, M_PARTITIONS,
};
use crate::error::{Error, Result};
use crate::RebuildReport;

/// What the index monitor thinks should happen next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceStatus {
    /// Index is healthy.
    Healthy,
    /// The index has never been built and holds vectors.
    NeedsBuild,
    /// The delta store exceeds the flush threshold.
    NeedsFlush,
    /// At least one partition exceeds `split_limit ×
    /// target_partition_size`: a local split is due (lifecycle
    /// maintenance only).
    NeedsSplit,
    /// At least one partition holds fewer than `merge_limit ×
    /// target_partition_size` vectors: a local merge is due (lifecycle
    /// maintenance only).
    NeedsMerge,
    /// Average partition size grew past `growth_limit ×` its post-build
    /// baseline and no local operation can fix it: a full rebuild is
    /// due.
    NeedsRebuild,
    /// A quantized partition's stored ranges have drifted: too large a
    /// fraction of recently flushed rows clamped during encoding, so
    /// its ranges should be retrained (quantized codecs only).
    NeedsRetrain,
}

/// One maintenance operation performed by [`MicroNN::maybe_maintain`].
#[derive(Debug, Clone)]
pub enum MaintenanceAction {
    /// The delta store was folded into the IVF index.
    Flushed(FlushReport),
    /// One oversized partition was split by local re-clustering.
    Split(SplitReport),
    /// One undersized partition was merged into its nearest neighbour.
    Merged(MergeReport),
    /// The whole index was rebuilt.
    Rebuilt(RebuildReport),
    /// One partition's drifted quantization ranges were retrained.
    Retrained(RetrainReport),
}

/// Everything one [`MicroNN::maybe_maintain`] call did: the actions in
/// execution order plus the monitor's status after the last one, so
/// follow-up work a flush uncovered (e.g. a partition pushed past the
/// split limit) is surfaced instead of silently deferred to the next
/// call.
#[derive(Debug, Clone)]
pub struct MaintenanceReport {
    /// Actions performed, in order. Empty when the index was healthy.
    pub actions: Vec<MaintenanceAction>,
    /// Monitor verdict after the final action ran ([`MaintenanceStatus::Healthy`]
    /// unless the per-call action cap was hit).
    pub status: MaintenanceStatus,
    /// Wall-clock time of the whole pass.
    pub total_time: std::time::Duration,
}

impl MaintenanceReport {
    /// Number of delta flushes performed.
    pub fn flushes(&self) -> usize {
        self.count(|a| matches!(a, MaintenanceAction::Flushed(_)))
    }

    /// Number of partition splits performed.
    pub fn splits(&self) -> usize {
        self.count(|a| matches!(a, MaintenanceAction::Split(_)))
    }

    /// Number of partition merges performed.
    pub fn merges(&self) -> usize {
        self.count(|a| matches!(a, MaintenanceAction::Merged(_)))
    }

    /// Number of full rebuilds performed.
    pub fn rebuilds(&self) -> usize {
        self.count(|a| matches!(a, MaintenanceAction::Rebuilt(_)))
    }

    /// Number of quantizer range retrains performed.
    pub fn retrains(&self) -> usize {
        self.count(|a| matches!(a, MaintenanceAction::Retrained(_)))
    }

    fn count(&self, f: impl Fn(&MaintenanceAction) -> bool) -> usize {
        self.actions.iter().filter(|a| f(a)).count()
    }
}

/// Outcome of one quantizer range retrain ([`MicroNN::retrain_partition`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RetrainReport {
    /// The partition whose ranges were retrained.
    pub partition: i64,
    /// Vectors re-encoded under the fresh ranges (`0` when the
    /// partition had been retired before the retrain ran — the stale
    /// drift counter is simply discarded).
    pub encoded: usize,
    /// Wall-clock time.
    pub total_time: std::time::Duration,
}

/// Outcome of one delta flush.
#[derive(Debug, Clone, PartialEq)]
pub struct FlushReport {
    /// Vectors moved out of the delta store.
    pub flushed: usize,
    /// Distinct partitions that received vectors (their centroids were
    /// updated).
    pub partitions_touched: usize,
    /// Wall-clock time.
    pub total_time: std::time::Duration,
}

impl MicroNN {
    /// Folds the delta store into the IVF index: each staged vector
    /// moves to the partition with the nearest centroid, whose centroid
    /// shifts by the running-mean update. One atomic transaction.
    pub fn flush_delta(&self) -> Result<FlushReport> {
        let start = std::time::Instant::now();
        let span = self.maint_span("maintain_flush");
        let inner = &*self.inner;
        let mut txn = inner.db.begin_write()?;
        let Some(index) = inner.clustering(&txn)? else {
            return Err(Error::Config(
                "cannot flush delta: index has never been built".into(),
            ));
        };
        let partitions = index.partitions.clone();
        let mut clustering = (*index.clustering).clone();

        // Load current partition sizes.
        let mut sizes = vec![0i64; clustering.k()];
        for (ci, &pid) in partitions.iter().enumerate() {
            if let Some(row) = inner.tables.centroids.get(&txn, &[Value::Integer(pid)])? {
                sizes[ci] = row[2].as_integer().unwrap_or(0);
            }
        }

        // Materialize the (small) delta store.
        let staged =
            crate::db::read_partition_members(&txn, &inner.tables.vectors, DELTA_PARTITION)?;
        let flushed = staged.len();

        // BTreeMap: centroid/code rows are persisted in ascending
        // partition order (ascending ci — the partitions vec comes from
        // an ascending-pid centroid scan), keeping the page-write
        // stream deterministic (the crash-injection harness enumerates
        // its operations). Each bucket keeps its rows in staged (vid)
        // order for the codec append below.
        let mut dest: std::collections::BTreeMap<usize, Vec<(i64, i64, Vec<f32>)>> =
            std::collections::BTreeMap::new();
        for (vid, asset, vec) in staged {
            let (ci, _) = clustering.nearest(&vec);
            let pid = partitions[ci];
            inner.tables.vectors.delete(
                &mut txn,
                &[Value::Integer(DELTA_PARTITION), Value::Integer(vid)],
            )?;
            inner.tables.vectors.upsert(
                &mut txn,
                vec![
                    Value::Integer(pid),
                    Value::Integer(vid),
                    Value::Integer(asset),
                    Value::Blob(f32_to_blob(&vec)),
                ],
            )?;
            inner.tables.assets.upsert(
                &mut txn,
                vec![
                    Value::Integer(asset),
                    Value::Integer(pid),
                    Value::Integer(vid),
                ],
            )?;
            inner
                .row_changes
                .fetch_add(3, std::sync::atomic::Ordering::Relaxed);
            // Running-mean centroid update [1]: c ← c + (x − c)/(m+1).
            let m = sizes[ci];
            let centroid = clustering.centroid_mut(ci);
            let eta = 1.0 / (m as f32 + 1.0);
            for (cv, xv) in centroid.iter_mut().zip(&vec) {
                *cv += eta * (xv - *cv);
            }
            sizes[ci] = m + 1;
            dest.entry(ci).or_default().push((vid, asset, vec));
        }

        // Persist the moved centroids and sizes.
        for &ci in dest.keys() {
            inner.tables.centroids.upsert(
                &mut txn,
                vec![
                    Value::Integer(partitions[ci]),
                    Value::Blob(f32_to_blob(clustering.centroid(ci))),
                    Value::Integer(sizes[ci]),
                ],
            )?;
            inner
                .row_changes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        // Codec-aware epilogue: the rows just moved into each touched
        // partition are encoded *under its existing ranges* — a flush
        // is incremental, so it must not pay a full per-partition
        // retrain. Rows that clamp against the stored ranges feed the
        // per-partition drift counters (after commit); the maintainer
        // retrains a partition once its clamped fraction crosses
        // `Config::range_drift_limit`. A partition with no stored
        // ranges yet (first flush after its creation) gets a full
        // encode, which trains them.
        let mut drift_updates: Vec<(i64, u64, u64)> = Vec::new();
        if inner.quantized() {
            let mut code_rows = 0usize;
            for (&ci, rows) in &dest {
                let pid = partitions[ci];
                match crate::codec::load_params(&txn, &inner.tables, pid, inner.dim)? {
                    Some(params) => {
                        let (appended, clamped) = crate::codec::append_partition(
                            &mut txn,
                            &inner.tables,
                            inner.cfg.codec,
                            inner.dim,
                            pid,
                            &params,
                            rows,
                        )?;
                        code_rows += appended;
                        drift_updates.push((pid, clamped as u64, appended as u64));
                    }
                    None => {
                        code_rows += 1 + crate::codec::encode_partition(
                            &mut txn,
                            &inner.tables,
                            inner.cfg.codec,
                            inner.dim,
                            pid,
                        )?;
                    }
                }
            }
            inner
                .row_changes
                .fetch_add(code_rows as u64, std::sync::atomic::Ordering::Relaxed);
        }
        set_meta_int(&mut txn, &inner.tables.meta, M_DELTA_COUNT, 0)?;
        let epoch = meta_int(&txn, &inner.tables.meta, M_EPOCH)?;
        set_meta_int(&mut txn, &inner.tables.meta, M_EPOCH, epoch + 1)?;
        let partitions_touched = dest.len();
        txn.commit()?;
        // Drift counters reflect only committed appends: fold them in
        // after the transaction is durable.
        for (pid, clamped, appended) in drift_updates {
            inner.note_drift(pid, clamped, appended);
        }
        self.maint_finish(span, flushed as u64);

        Ok(FlushReport {
            flushed,
            partitions_touched,
            total_time: start.elapsed(),
        })
    }

    /// The index monitor's verdict on the current index state.
    ///
    /// Without lifecycle maintenance this is exactly the paper's
    /// monitor: build, growth-triggered rebuild, or flush. With
    /// [`crate::Config::lifecycle`] enabled, per-partition size checks
    /// slot in between — a flush is still preferred (it may change the
    /// size picture), then splits, then merges, and the growth rebuild
    /// only fires when no local operation applies.
    pub fn maintenance_status(&self) -> Result<MaintenanceStatus> {
        Ok(self.maintenance_verdict()?.0)
    }

    /// [`MicroNN::maintenance_status`] plus the lifecycle candidate the
    /// verdict was based on (the partition to split or merge), computed
    /// from one snapshot so status and candidate can never disagree.
    fn maintenance_verdict(&self) -> Result<(MaintenanceStatus, Option<i64>)> {
        let inner = &*self.inner;
        let r = inner.db.begin_read();
        let k = meta_int(&r, &inner.tables.meta, M_PARTITIONS)?;
        let delta = meta_int(&r, &inner.tables.meta, M_DELTA_COUNT)? as u64;
        let total = inner.tables.vectors.row_count(&r)?;
        if k == 0 {
            return Ok(if total > 0 {
                (MaintenanceStatus::NeedsBuild, None)
            } else {
                (MaintenanceStatus::Healthy, None)
            });
        }
        let baseline = meta_int(&r, &inner.tables.meta, M_BASELINE_AVG)? as f64 / 1000.0;
        let current_avg = (total - delta.min(total)) as f64 / k as f64;
        let growing = baseline > 0.0 && current_avg >= inner.cfg.growth_limit * baseline;
        if growing && !inner.cfg.lifecycle {
            return Ok((MaintenanceStatus::NeedsRebuild, None));
        }
        if delta as usize >= inner.cfg.delta_flush_threshold {
            return Ok((MaintenanceStatus::NeedsFlush, None));
        }
        if inner.cfg.lifecycle {
            let sizes = read_partition_sizes(&r, &inner.tables.centroids)?;
            if let Some(pid) = lifecycle::pick_split(&inner.cfg, &sizes) {
                return Ok((MaintenanceStatus::NeedsSplit, Some(pid)));
            }
            if let Some(pid) = lifecycle::pick_merge(&inner.cfg, &sizes) {
                return Ok((MaintenanceStatus::NeedsMerge, Some(pid)));
            }
        }
        if growing {
            return Ok((MaintenanceStatus::NeedsRebuild, None));
        }
        // Quantizer range drift is the cheapest concern: only consulted
        // once sizes are healthy. The candidate may be stale (partition
        // retired since its counter accumulated); `retrain_partition`
        // self-heals by discarding the counter.
        if inner.quantized() {
            if let Some((pid, _)) = inner.drift_candidate(inner.cfg.range_drift_limit) {
                return Ok((MaintenanceStatus::NeedsRetrain, Some(pid)));
            }
        }
        Ok((MaintenanceStatus::Healthy, None))
    }

    /// Retrains one partition's quantization ranges from its current
    /// f32 members and rewrites its codes — the maintainer's response
    /// to range drift (too many flushed rows clamping against stored
    /// ranges). A retired partition is a no-op that discards the stale
    /// drift counter. Errors on non-quantized catalogs.
    pub fn retrain_partition(&self, partition: i64) -> Result<RetrainReport> {
        let start = std::time::Instant::now();
        let span = self.maint_span("maintain_retrain");
        let inner = &*self.inner;
        if !inner.quantized() {
            return Err(Error::Config(
                "codec f32 has no quantization ranges to retrain".into(),
            ));
        }
        let mut txn = inner.db.begin_write()?;
        if inner
            .tables
            .centroids
            .get(&txn, &[Value::Integer(partition)])?
            .is_none()
        {
            // Partition retired (split/merge/rebuild) after its drift
            // counter accumulated: nothing to retrain.
            txn.rollback();
            inner.reset_drift(partition);
            return Ok(RetrainReport {
                partition,
                encoded: 0,
                total_time: start.elapsed(),
            });
        }
        let encoded = crate::codec::encode_partition(
            &mut txn,
            &inner.tables,
            inner.cfg.codec,
            inner.dim,
            partition,
        )?;
        let epoch = meta_int(&txn, &inner.tables.meta, M_EPOCH)?;
        set_meta_int(&mut txn, &inner.tables.meta, M_EPOCH, epoch + 1)?;
        inner
            .row_changes
            .fetch_add(encoded as u64 + 1, std::sync::atomic::Ordering::Relaxed);
        txn.commit()?;
        inner.reset_drift(partition);
        self.maint_finish(span, encoded as u64);
        Ok(RetrainReport {
            partition,
            encoded,
            total_time: start.elapsed(),
        })
    }

    /// Runs maintenance until the monitor reports a healthy index (or a
    /// bounded number of actions have run): delta flushes, lifecycle
    /// splits/merges, and — as a last resort — a full rebuild, in the
    /// order the monitor requests them. Returns every action performed
    /// plus the final status, so follow-up work one action uncovers
    /// (e.g. a flush pushing a partition past the split limit) runs in
    /// the same pass instead of waiting for the next call.
    pub fn maybe_maintain(&self) -> Result<MaintenanceReport> {
        /// Upper bound on actions per pass: keeps one call from
        /// monopolising the writer lock under pathological churn; the
        /// returned status tells the caller whether work remains.
        const MAX_ACTIONS: usize = 32;
        /// Lifecycle candidates come from a snapshot that a concurrent
        /// writer (or a second maintenance driver, e.g. the background
        /// maintainer racing a `micronnctl maintain`) can invalidate
        /// before the write transaction starts; such stale picks fail
        /// with a transient `Config` error and are simply re-picked
        /// from a fresh verdict (the budget bounds *consecutive*
        /// failures; it resets on every successful action). Any other
        /// error kind — and a `Config` error that keeps repeating — is
        /// a real failure and is surfaced instead of retried.
        const MAX_STALE_RETRIES: usize = 3;
        let start = std::time::Instant::now();
        let mut actions = Vec::new();
        let mut stale = 0usize;
        let (mut status, mut candidate) = self.maintenance_verdict()?;
        while actions.len() < MAX_ACTIONS {
            match (status, candidate) {
                (MaintenanceStatus::Healthy, _) => break,
                (MaintenanceStatus::NeedsBuild | MaintenanceStatus::NeedsRebuild, _) => {
                    actions.push(MaintenanceAction::Rebuilt(self.rebuild()?));
                    stale = 0;
                }
                (MaintenanceStatus::NeedsFlush, _) => {
                    actions.push(MaintenanceAction::Flushed(self.flush_delta()?));
                    stale = 0;
                }
                (MaintenanceStatus::NeedsSplit, Some(pid)) => match self.split_partition(pid) {
                    Ok(report) => {
                        actions.push(MaintenanceAction::Split(report));
                        stale = 0;
                    }
                    Err(Error::Config(_)) if stale < MAX_STALE_RETRIES => stale += 1,
                    Err(e) => return Err(e),
                },
                (MaintenanceStatus::NeedsMerge, Some(pid)) => match self.merge_partition(pid) {
                    Ok(report) => {
                        actions.push(MaintenanceAction::Merged(report));
                        stale = 0;
                    }
                    Err(Error::Config(_)) if stale < MAX_STALE_RETRIES => stale += 1,
                    Err(e) => return Err(e),
                },
                (MaintenanceStatus::NeedsRetrain, Some(pid)) => {
                    // Safe against stale candidates: a retired
                    // partition is a no-op that clears its counter, so
                    // the next verdict moves on.
                    actions.push(MaintenanceAction::Retrained(self.retrain_partition(pid)?));
                    stale = 0;
                }
                // The verdict never reports a lifecycle status without
                // its candidate.
                (
                    MaintenanceStatus::NeedsSplit
                    | MaintenanceStatus::NeedsMerge
                    | MaintenanceStatus::NeedsRetrain,
                    None,
                ) => break,
            }
            (status, candidate) = self.maintenance_verdict()?;
        }
        Ok(MaintenanceReport {
            actions,
            status,
            total_time: start.elapsed(),
        })
    }

    /// Rebuilds attribute statistics (`ANALYZE`) for the hybrid query
    /// optimizer without touching the index.
    pub fn analyze(&self) -> Result<()> {
        let inner = &*self.inner;
        let mut txn = inner.db.begin_write()?;
        micronn_rel::analyze_table(&mut txn, &inner.tables.attrs)?;
        let epoch = meta_int(&txn, &inner.tables.meta, M_EPOCH)?;
        set_meta_int(&mut txn, &inner.tables.meta, M_EPOCH, epoch + 1)?;
        txn.commit()?;
        Ok(())
    }

    /// Point-in-time statistics of the index.
    pub fn stats(&self) -> Result<crate::stats::DbStats> {
        let inner = &*self.inner;
        let r = inner.db.begin_read();
        let total = inner.tables.vectors.row_count(&r)?;
        let delta = meta_int(&r, &inner.tables.meta, M_DELTA_COUNT)? as u64;
        let k = meta_int(&r, &inner.tables.meta, M_PARTITIONS)? as u64;
        let epoch = meta_int(&r, &inner.tables.meta, M_EPOCH)?;
        let baseline = meta_int(&r, &inner.tables.meta, M_BASELINE_AVG)? as f64 / 1000.0;
        let sizes = read_partition_sizes(&r, &inner.tables.centroids)?;
        Ok(crate::stats::DbStats {
            total_vectors: total,
            delta_vectors: delta,
            partitions: k,
            avg_partition_size: if k > 0 {
                (total - delta.min(total)) as f64 / k as f64
            } else {
                0.0
            },
            min_partition_size: sizes.iter().map(|&(_, s)| s).min().unwrap_or(0),
            max_partition_size: sizes.iter().map(|&(_, s)| s).max().unwrap_or(0),
            baseline_partition_size: baseline,
            epoch,
            row_changes: inner.row_changes.load(std::sync::atomic::Ordering::Relaxed),
            store: inner.db.store().stats(),
            resident_bytes: inner.db.store().resident_bytes(),
        })
    }
}
