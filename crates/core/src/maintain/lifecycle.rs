//! Partition lifecycle maintenance: local split and merge
//! re-clustering (§3.6, extended).
//!
//! The paper's incremental maintenance keeps the delta store small but
//! has only one answer to partition *growth*: a full rebuild. Under a
//! sustained update stream that is the wrong trade — a rebuild rewrites
//! every row while the damage is local to the handful of partitions the
//! stream actually touched. This module adds the two local moves the
//! rebuild was standing in for:
//!
//! * [`MicroNN::split_partition`] — re-cluster **one** oversized
//!   partition's rows with full-memory k-means (a partition is bounded,
//!   so this is cheap), keep the largest sub-cluster under the existing
//!   partition id and move the rest into freshly allocated partitions.
//! * [`MicroNN::merge_partition`] — fold **one** undersized partition
//!   into the surviving partition with the nearest centroid, updating
//!   the target's centroid to the size-weighted mean.
//!
//! Both run as a single write transaction, so a crash at any point
//! recovers to either the old or the new index through the storage
//! engine's WAL — there is no intermediate state in which a vector is
//! unreachable or doubly indexed. Quantized (SQ8/SQ4) catalogs retrain the
//! quantization ranges of exactly the touched partitions and rewrite
//! their code rows in the same transaction, so compressed-domain scans
//! never see codes encoded under stale ranges. The index epoch is
//! bumped on commit, invalidating the shared centroid/quant/stats
//! caches; a split additionally refreshes the in-process centroid cache
//! incrementally (appending new centroids to the cached super-index)
//! so steady-state maintenance does not force an `O(k √k)` super-index
//! retrain per operation.

use std::sync::Arc;

use micronn_cluster::{lloyd, Clustering, LloydConfig};
use micronn_rel::{blob_to_f32, f32_to_blob, Value};

use crate::config::Config;
use crate::db::{
    meta_int, read_partition_members, set_meta_int, CentroidCache, LoadedIndex, MicroNN,
    DELTA_PARTITION, M_EPOCH, M_NEXT_PID, M_PARTITIONS,
};
use crate::error::{Error, Result};

/// Outcome of one partition split.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitReport {
    /// The partition that was split (it survives, re-centred on its
    /// largest sub-cluster).
    pub partition: i64,
    /// Newly created partition ids.
    pub new_partitions: Vec<i64>,
    /// Rows moved out of the split partition.
    pub rows_moved: usize,
    /// Wall-clock time.
    pub total_time: std::time::Duration,
}

/// Outcome of one partition merge.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeReport {
    /// The partition that was dissolved.
    pub partition: i64,
    /// The surviving partition its rows moved into.
    pub target: i64,
    /// Rows moved (the dissolved partition's population).
    pub rows_moved: usize,
    /// Wall-clock time.
    pub total_time: std::time::Duration,
}

/// Size above which a partition is split: `split_limit × target`.
pub(crate) fn split_threshold(cfg: &Config) -> u64 {
    (cfg.split_limit * cfg.target_partition_size as f64).floor() as u64
}

/// Size below which a partition is merged: `merge_limit × target`.
pub(crate) fn merge_threshold(cfg: &Config) -> u64 {
    (cfg.merge_limit * cfg.target_partition_size as f64).ceil() as u64
}

/// The split candidate the policy prefers: the largest partition over
/// the split threshold (splitting the worst offender first shrinks the
/// scan-cost tail fastest). `None` when nothing is oversized.
pub(crate) fn pick_split(cfg: &Config, sizes: &[(i64, u64)]) -> Option<i64> {
    let limit = split_threshold(cfg);
    sizes
        .iter()
        .filter(|&&(_, s)| s > limit && s >= 2)
        .max_by_key(|&&(pid, s)| (s, std::cmp::Reverse(pid)))
        .map(|&(pid, _)| pid)
}

/// The merge candidate the policy prefers: the smallest partition under
/// the merge threshold *that fits into at least one surviving
/// neighbour* without pushing it over the split limit. Merging needs a
/// surviving neighbour, so `None` when fewer than two partitions exist
/// (or merging is disabled). The fit requirement prevents a livelock
/// the background maintainer could otherwise enter: merging a small,
/// well-separated cluster into a full neighbour forces a split that
/// re-isolates the same cluster, forever.
pub(crate) fn pick_merge(cfg: &Config, sizes: &[(i64, u64)]) -> Option<i64> {
    let limit = merge_threshold(cfg);
    if limit == 0 || sizes.len() < 2 {
        return None;
    }
    let split_at = split_threshold(cfg);
    sizes
        .iter()
        .filter(|&&(pid, s)| {
            s < limit
                && sizes
                    .iter()
                    .any(|&(other, os)| other != pid && os + s <= split_at)
        })
        .min_by_key(|&&(pid, s)| (s, pid))
        .map(|&(pid, _)| pid)
}

impl MicroNN {
    /// Splits one oversized partition by local re-clustering: the
    /// partition's rows (bounded by construction, ~`split_limit ×
    /// target_partition_size`) are re-clustered with full-memory
    /// k-means via `micronn-cluster`, the largest sub-cluster stays
    /// under the existing partition id (re-centred), and each remaining
    /// sub-cluster moves into a freshly allocated partition. One atomic
    /// write transaction; SQ8 catalogs retrain quantization ranges for
    /// exactly the touched partitions.
    pub fn split_partition(&self, partition: i64) -> Result<SplitReport> {
        let start = std::time::Instant::now();
        if partition == DELTA_PARTITION {
            return Err(Error::Config("cannot split the delta store".into()));
        }
        let span = self.maint_span("maintain_split");
        let inner = &*self.inner;
        let mut txn = inner.db.begin_write()?;
        let old_epoch = meta_int(&txn, &inner.tables.meta, M_EPOCH)?;
        if inner
            .tables
            .centroids
            .get(&txn, &[Value::Integer(partition)])?
            .is_none()
        {
            return Err(Error::Config(format!(
                "cannot split partition {partition}: it does not exist"
            )));
        }
        let members = read_partition_members(&txn, &inner.tables.vectors, partition)?;
        let n = members.len();
        if n < 2 {
            return Err(Error::Config(format!(
                "cannot split partition {partition}: it holds {n} vector(s)"
            )));
        }

        // Local re-clustering. Aim for sub-clusters of ~target size but
        // always at least two, so the split makes progress.
        let dim = inner.dim;
        let target = inner.cfg.target_partition_size.max(1);
        let k_new = ((n + target / 2) / target).max(2);
        let mut flat = Vec::with_capacity(n * dim);
        for (_, _, v) in &members {
            flat.extend_from_slice(v);
        }
        let local = lloyd::train(
            &flat,
            dim,
            &LloydConfig {
                target_cluster_size: (n / k_new).max(1),
                seed: inner.cfg.seed ^ partition as u64,
                metric: inner.metric,
                ..Default::default()
            },
        );
        let mut assignments = lloyd::assign_all(&flat, dim, &local);
        let k2 = local.k();
        let mut counts = vec![0usize; k2];
        for &a in &assignments {
            counts[a as usize] += 1;
        }
        // Degenerate data (e.g. duplicate vectors) can collapse every
        // row into one sub-cluster; a split must still make progress,
        // so fall back to an even positional partition of the rows.
        let mut centroids: Vec<Vec<f32>> = (0..k2).map(|c| local.centroid(c).to_vec()).collect();
        if counts.iter().filter(|&&c| c > 0).count() < 2 {
            let chunk = n.div_ceil(k_new);
            counts = vec![0; k_new];
            centroids = vec![vec![0.0; dim]; k_new];
            for (i, a) in assignments.iter_mut().enumerate() {
                let c = (i / chunk).min(k_new - 1);
                *a = c as u32;
                counts[c] += 1;
                for (acc, x) in centroids[c].iter_mut().zip(&members[i].2) {
                    *acc += x;
                }
            }
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let inv = 1.0 / counts[c].max(1) as f32;
                centroid.iter_mut().for_each(|x| *x *= inv);
            }
        }
        let k2 = counts.len();

        // The largest sub-cluster keeps the existing partition id (its
        // rows stay in place); the other non-empty ones move into fresh
        // ids. Empty sub-clusters (possible under degenerate local
        // clusterings) get no partition: a split never creates an
        // immediately-mergeable empty partition.
        let keep = (0..k2).max_by_key(|&c| counts[c]).unwrap_or(0);
        let mut next_pid = meta_int(&txn, &inner.tables.meta, M_NEXT_PID)?;
        if next_pid == 0 {
            // Pre-lifecycle file: derive the counter from the catalog.
            for row in inner.tables.centroids.scan(&txn)? {
                next_pid = next_pid.max(row?[0].as_integer().unwrap_or(0));
            }
            next_pid += 1;
        }
        let mut pid_of = vec![partition; k2];
        let mut new_partitions = Vec::with_capacity(k2 - 1);
        for (c, pid) in pid_of.iter_mut().enumerate() {
            if c != keep && counts[c] > 0 {
                *pid = next_pid;
                new_partitions.push(next_pid);
                next_pid += 1;
            }
        }

        // Move the rows whose sub-cluster got a new id.
        let mut moved = 0usize;
        for (i, (vid, asset, vec)) in members.iter().enumerate() {
            let new_p = pid_of[assignments[i] as usize];
            if new_p == partition {
                continue;
            }
            inner
                .tables
                .vectors
                .delete(&mut txn, &[Value::Integer(partition), Value::Integer(*vid)])?;
            inner.tables.vectors.upsert(
                &mut txn,
                vec![
                    Value::Integer(new_p),
                    Value::Integer(*vid),
                    Value::Integer(*asset),
                    Value::Blob(f32_to_blob(vec)),
                ],
            )?;
            inner.tables.assets.upsert(
                &mut txn,
                vec![
                    Value::Integer(*asset),
                    Value::Integer(new_p),
                    Value::Integer(*vid),
                ],
            )?;
            moved += 1;
            inner
                .row_changes
                .fetch_add(3, std::sync::atomic::Ordering::Relaxed);
        }

        // Centroid rows: re-centre the surviving partition, insert the
        // new ones (empty sub-clusters excluded).
        let live: Vec<usize> = (0..k2).filter(|&c| c == keep || counts[c] > 0).collect();
        for &c in &live {
            inner.tables.centroids.upsert(
                &mut txn,
                vec![
                    Value::Integer(pid_of[c]),
                    Value::Blob(f32_to_blob(&centroids[c])),
                    Value::Integer(counts[c] as i64),
                ],
            )?;
        }
        inner
            .row_changes
            .fetch_add(live.len() as u64, std::sync::atomic::Ordering::Relaxed);

        // Codec epilogue: every touched partition's content changed, so
        // its quantization ranges are retrained and codes rewritten.
        if inner.quantized() {
            let mut encoded =
                crate::codec::clear_partition_codes(&mut txn, &inner.tables, partition)?;
            for &c in &live {
                encoded += crate::codec::encode_partition(
                    &mut txn,
                    &inner.tables,
                    inner.cfg.codec,
                    dim,
                    pid_of[c],
                )?;
            }
            inner.row_changes.fetch_add(
                encoded as u64 + live.len() as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
        }

        let k = meta_int(&txn, &inner.tables.meta, M_PARTITIONS)?;
        set_meta_int(
            &mut txn,
            &inner.tables.meta,
            M_PARTITIONS,
            k + new_partitions.len() as i64,
        )?;
        set_meta_int(&mut txn, &inner.tables.meta, M_NEXT_PID, next_pid)?;
        set_meta_int(&mut txn, &inner.tables.meta, M_EPOCH, old_epoch + 1)?;
        let commit_seq = txn.commit()?;
        // The split re-encoded every touched partition under fresh
        // ranges: its drift counter starts over.
        inner.reset_drift(partition);

        // Post-commit: refresh the in-process centroid cache in place
        // (append-only super-index update) instead of dropping it.
        let new_centroids: Vec<(i64, Vec<f32>)> = live
            .iter()
            .filter(|&&c| c != keep)
            .map(|&c| (pid_of[c], centroids[c].clone()))
            .collect();
        self.refresh_cache_after_split(
            old_epoch,
            commit_seq,
            partition,
            &centroids[keep],
            &new_centroids,
        );
        self.maint_finish(span, moved as u64);

        Ok(SplitReport {
            partition,
            new_partitions,
            rows_moved: moved,
            total_time: start.elapsed(),
        })
    }

    /// Merges one undersized partition into its nearest surviving
    /// neighbour: its rows move, the target's centroid shifts to the
    /// size-weighted mean of the two, and the dissolved partition's
    /// centroid (and, for SQ8 catalogs, its codes and quantization
    /// ranges) are removed. Among neighbours the nearest one *with
    /// room* (merged size within the split limit) is preferred, so a
    /// merge does not immediately hand the ladder a split; the overall
    /// nearest is the fallback when every neighbour is full. One atomic
    /// write transaction.
    pub fn merge_partition(&self, partition: i64) -> Result<MergeReport> {
        let start = std::time::Instant::now();
        if partition == DELTA_PARTITION {
            return Err(Error::Config("cannot merge the delta store".into()));
        }
        let span = self.maint_span("maintain_merge");
        let inner = &*self.inner;
        let mut txn = inner.db.begin_write()?;
        let Some(source_row) = inner
            .tables
            .centroids
            .get(&txn, &[Value::Integer(partition)])?
        else {
            return Err(Error::Config(format!(
                "cannot merge partition {partition}: it does not exist"
            )));
        };
        let source_centroid = blob_to_f32(
            source_row[1]
                .as_blob()
                .ok_or_else(|| Error::Config("centroid column is not a blob".into()))?,
        )?;
        let source_size = source_row[2].as_integer().unwrap_or(0).max(0) as u64;

        // Nearest surviving neighbour by centroid distance, preferring
        // one the merged rows still fit into.
        let room = split_threshold(&inner.cfg).saturating_sub(source_size);
        let mut best: Option<(i64, f32)> = None;
        let mut best_fitting: Option<(i64, f32)> = None;
        for row in inner.tables.centroids.scan(&txn)? {
            let row = row?;
            let pid = row[0].as_integer().unwrap_or(0);
            if pid == partition {
                continue;
            }
            let c = blob_to_f32(
                row[1]
                    .as_blob()
                    .ok_or_else(|| Error::Config("centroid column is not a blob".into()))?,
            )?;
            let d = inner.metric.distance(&source_centroid, &c);
            if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((pid, d));
            }
            let size = row[2].as_integer().unwrap_or(0).max(0) as u64;
            if size <= room && best_fitting.map(|(_, bd)| d < bd).unwrap_or(true) {
                best_fitting = Some((pid, d));
            }
        }
        let Some((target, _)) = best_fitting.or(best) else {
            return Err(Error::Config(format!(
                "cannot merge partition {partition}: no surviving neighbour"
            )));
        };

        // Move every row into the target partition.
        let members = read_partition_members(&txn, &inner.tables.vectors, partition)?;
        for (vid, asset, vec) in &members {
            inner
                .tables
                .vectors
                .delete(&mut txn, &[Value::Integer(partition), Value::Integer(*vid)])?;
            inner.tables.vectors.upsert(
                &mut txn,
                vec![
                    Value::Integer(target),
                    Value::Integer(*vid),
                    Value::Integer(*asset),
                    Value::Blob(f32_to_blob(vec)),
                ],
            )?;
            inner.tables.assets.upsert(
                &mut txn,
                vec![
                    Value::Integer(*asset),
                    Value::Integer(target),
                    Value::Integer(*vid),
                ],
            )?;
            inner
                .row_changes
                .fetch_add(3, std::sync::atomic::Ordering::Relaxed);
        }

        // Target centroid: size-weighted mean of the two centroids.
        // Sizes stay in integer arithmetic — only the weight is
        // floating-point — so the stored counts remain exact.
        let mut target_row = inner
            .tables
            .centroids
            .get(&txn, &[Value::Integer(target)])?
            .ok_or_else(|| Error::Config("merge target centroid vanished".into()))?;
        let m_t = target_row[2].as_integer().unwrap_or(0).max(0);
        let m_s = members.len() as i64;
        if m_t + m_s > 0 {
            let mut c_t = blob_to_f32(
                target_row[1]
                    .as_blob()
                    .ok_or_else(|| Error::Config("centroid column is not a blob".into()))?,
            )?;
            let w_s = m_s as f32 / (m_t + m_s) as f32;
            for (ct, cs) in c_t.iter_mut().zip(&source_centroid) {
                *ct += w_s * (cs - *ct);
            }
            target_row[1] = Value::Blob(f32_to_blob(&c_t));
        }
        target_row[2] = Value::Integer(m_t + m_s);
        inner.tables.centroids.upsert(&mut txn, target_row)?;
        inner
            .tables
            .centroids
            .delete(&mut txn, &[Value::Integer(partition)])?;
        inner
            .row_changes
            .fetch_add(2, std::sync::atomic::Ordering::Relaxed);

        // Codec epilogue: the dissolved partition's codes and ranges go
        // away; the grown target is re-encoded under fresh ranges.
        if inner.quantized() {
            let mut encoded =
                crate::codec::clear_partition_codes(&mut txn, &inner.tables, partition)?;
            if !members.is_empty() {
                encoded += crate::codec::encode_partition(
                    &mut txn,
                    &inner.tables,
                    inner.cfg.codec,
                    inner.dim,
                    target,
                )?;
            }
            inner
                .row_changes
                .fetch_add(encoded as u64 + 1, std::sync::atomic::Ordering::Relaxed);
        }

        let k = meta_int(&txn, &inner.tables.meta, M_PARTITIONS)?;
        set_meta_int(&mut txn, &inner.tables.meta, M_PARTITIONS, (k - 1).max(1))?;
        let epoch = meta_int(&txn, &inner.tables.meta, M_EPOCH)?;
        set_meta_int(&mut txn, &inner.tables.meta, M_EPOCH, epoch + 1)?;
        txn.commit()?;
        // The dissolved partition is gone and the target was re-encoded
        // under fresh ranges: both drift counters start over.
        inner.reset_drift(partition);
        inner.reset_drift(target);

        // Removing a centroid shifts every later centroid's index, so
        // the cached super-index cannot be patched in place; drop the
        // cache and let the next query reload at the new epoch.
        *inner.centroid_cache.write() = None;
        self.maint_finish(span, members.len() as u64);

        Ok(MergeReport {
            partition,
            target,
            rows_moved: members.len(),
            total_time: start.elapsed(),
        })
    }

    /// Patches the shared centroid cache after a committed split: the
    /// surviving partition's centroid is overwritten in place and the
    /// new centroids appended (new partition ids are strictly larger
    /// than every existing id, so append order matches the centroid
    /// table's scan order). The cached super-index absorbs the change
    /// incrementally — `O(√k)` instead of a full retrain. Falls back to
    /// dropping the cache whenever the in-place picture could diverge
    /// from a fresh load.
    fn refresh_cache_after_split(
        &self,
        old_epoch: i64,
        commit_seq: u64,
        partition: i64,
        kept_centroid: &[f32],
        new_centroids: &[(i64, Vec<f32>)],
    ) {
        let inner = &*self.inner;
        let mut guard = inner.centroid_cache.write();
        let Some(cache) = guard.as_mut() else {
            return;
        };
        if cache.epoch != old_epoch {
            *guard = None;
            return;
        }
        let idx = &cache.index;
        let Some(pos) = idx.partitions.iter().position(|&p| p == partition) else {
            *guard = None;
            return;
        };
        let dim = inner.dim;
        let old_k = idx.partitions.len();
        let new_k = old_k + new_centroids.len();
        if idx.super_index.is_none() && new_k >= inner.cfg.centroid_index_threshold {
            // Crossing the super-index threshold: let the reload path
            // build the hierarchy.
            *guard = None;
            return;
        }
        let mut flat = idx.clustering.centroids().to_vec();
        flat[pos * dim..(pos + 1) * dim].copy_from_slice(kept_centroid);
        let mut partitions = (*idx.partitions).clone();
        for (pid, c) in new_centroids {
            partitions.push(*pid);
            flat.extend_from_slice(c);
        }
        let clustering = Arc::new(Clustering::new(flat, dim, inner.metric));
        let super_index = idx.super_index.as_ref().map(|si| {
            let mut si = (**si).clone();
            si.note_moved(&clustering, pos);
            for ci in old_k..new_k {
                si.insert(&clustering, ci);
            }
            Arc::new(si)
        });
        // The patched view is exactly the committed state at the
        // split's commit seq, which is newer than anything published
        // so far — safe to install unconditionally.
        *guard = Some(CentroidCache {
            epoch: old_epoch + 1,
            seq: commit_seq,
            index: LoadedIndex {
                clustering,
                partitions: Arc::new(partitions),
                super_index,
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronn_linalg::Metric;

    fn cfg() -> Config {
        let mut c = Config::new(4, Metric::L2);
        c.target_partition_size = 100;
        c.split_limit = 1.5;
        c.merge_limit = 0.25;
        c
    }

    #[test]
    fn thresholds_follow_config() {
        let c = cfg();
        assert_eq!(split_threshold(&c), 150);
        assert_eq!(merge_threshold(&c), 25);
        let mut c = cfg();
        c.merge_limit = 0.0;
        assert_eq!(merge_threshold(&c), 0);
    }

    #[test]
    fn pick_split_prefers_largest_offender() {
        let c = cfg();
        let sizes = vec![(1, 120), (2, 200), (3, 180), (4, 150)];
        assert_eq!(pick_split(&c, &sizes), Some(2));
        // Exactly at the threshold is not oversized.
        assert_eq!(pick_split(&c, &[(1, 150)]), None);
        assert_eq!(pick_split(&c, &[]), None);
    }

    #[test]
    fn pick_merge_prefers_smallest_and_needs_a_neighbour() {
        let c = cfg();
        let sizes = vec![(1, 120), (2, 3), (3, 10), (4, 24)];
        assert_eq!(pick_merge(&c, &sizes), Some(2));
        // Exactly at the threshold is not undersized.
        assert_eq!(pick_merge(&c, &[(1, 25), (2, 100)]), None);
        // A lone partition can never merge.
        assert_eq!(pick_merge(&c, &[(1, 0)]), None);
        // Merging disabled.
        let mut off = cfg();
        off.merge_limit = 0.0;
        assert_eq!(pick_merge(&off, &sizes), None);
        // No neighbour has room under the split limit (150): merging
        // would only hand the ladder a split that re-creates the small
        // partition — skip it.
        assert_eq!(pick_merge(&c, &[(1, 10), (2, 145)]), None);
        // One neighbour with room is enough.
        assert_eq!(pick_merge(&c, &[(1, 10), (2, 145), (3, 120)]), Some(1));
    }
}
