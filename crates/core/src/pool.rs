//! The persistent worker thread pool behind parallel partition scans.
//!
//! Figure 3 of the paper shows a long-lived "worker thread pool"
//! feeding per-thread result heaps. Spawning OS threads per query
//! would add milliseconds of jitter to a sub-10ms latency budget, so
//! the pool is created once per database handle and reused by every
//! search and batch scan.
//!
//! [`ScanPool::run_scoped`] executes jobs that *borrow from the
//! caller's stack* (the read transaction, the query vector, result
//! mutexes). Soundness follows the classic scoped-pool argument: the
//! call blocks on a [`WaitGroup`] until every submitted job has
//! finished (or panicked), so no job can outlive the borrowed
//! environment; the lifetime transmute below is justified by exactly
//! that barrier.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use crossbeam::sync::WaitGroup;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool executing borrowed (scoped) jobs.
pub(crate) struct ScanPool {
    sender: Sender<Job>,
    workers: usize,
}

impl ScanPool {
    /// Spawns `workers` long-lived threads.
    pub fn new(workers: usize) -> ScanPool {
        let workers = workers.max(1);
        let (sender, receiver) = unbounded::<Job>();
        for i in 0..workers {
            let rx = receiver.clone();
            std::thread::Builder::new()
                .name(format!("micronn-scan-{i}"))
                .spawn(move || {
                    // Exits when the pool (sender) is dropped.
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("failed to spawn scan worker");
        }
        ScanPool { sender, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes `jobs` on the pool and blocks until all complete.
    /// Panics if any job panicked (after all jobs have settled, so no
    /// borrowed state is left in use).
    pub fn run_scoped<'env, F>(&self, jobs: Vec<F>)
    where
        F: FnOnce() + Send + 'env,
    {
        if jobs.is_empty() {
            return;
        }
        let wg = WaitGroup::new();
        let panicked = Arc::new(AtomicBool::new(false));
        for job in jobs {
            let wg = wg.clone();
            let panicked = Arc::clone(&panicked);
            let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
                    panicked.store(true, Ordering::SeqCst);
                }
                drop(wg);
            });
            // SAFETY: `run_scoped` blocks on `wg.wait()` below until
            // every wrapped job has run to completion, so the job can
            // never be executed after `'env` ends. The transmute only
            // erases the lifetime; the type is otherwise identical.
            let erased: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(wrapped) };
            self.sender.send(erased).expect("scan pool shut down");
        }
        wg.wait();
        if panicked.load(Ordering::SeqCst) {
            panic!("scan worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_all_jobs_with_borrowed_state() {
        let pool = ScanPool::new(4);
        let counter = AtomicUsize::new(0); // stack-borrowed by jobs
        let jobs: Vec<_> = (0..64)
            .map(|_| {
                let counter = &counter;
                move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        pool.run_scoped(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        // Reusable.
        let jobs: Vec<_> = (0..8)
            .map(|_| {
                let counter = &counter;
                move || {
                    counter.fetch_add(10, Ordering::Relaxed);
                }
            })
            .collect();
        pool.run_scoped(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 64 + 80);
    }

    #[test]
    fn empty_job_list_is_a_noop() {
        let pool = ScanPool::new(2);
        pool.run_scoped(Vec::<fn()>::new());
    }

    #[test]
    fn worker_panic_propagates_after_settling() {
        let pool = ScanPool::new(2);
        let done = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send>> = vec![
                Box::new(|| panic!("boom")),
                Box::new(|| {
                    done.fetch_add(1, Ordering::Relaxed);
                }),
            ];
            pool.run_scoped(jobs);
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(done.load(Ordering::Relaxed), 1, "other jobs still ran");
        // The pool survives a panicked job.
        let ok = AtomicUsize::new(0);
        pool.run_scoped(vec![|| {
            ok.fetch_add(1, Ordering::Relaxed);
        }]);
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }
}
