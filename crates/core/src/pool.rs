//! The persistent worker thread pool behind parallel partition scans.
//!
//! Figure 3 of the paper shows a long-lived "worker thread pool"
//! feeding per-thread result heaps. Spawning OS threads per query
//! would add milliseconds of jitter to a sub-10ms latency budget, so
//! the pool is created once per database handle and reused by every
//! search and batch scan.
//!
//! [`ScanPool::parallel_indexed`] is the one fan-out primitive every
//! query path uses: it runs a typed job per index on the pool and
//! returns the results in index order. The work-stealing cursor,
//! panic propagation, and first-error capture all live here — call
//! sites never hand-roll `AtomicUsize` cursors or `Mutex` collectors.
//!
//! Jobs *borrow from the caller's stack* (the read transaction, the
//! query vectors, the result heaps). Soundness follows the classic
//! scoped-pool argument: the dispatch blocks on a [`WaitGroup`] until
//! every submitted job has finished (or panicked), so no job can
//! outlive the borrowed environment; the lifetime transmute below is
//! justified by exactly that barrier.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use crossbeam::sync::WaitGroup;
use parking_lot::Mutex;

use crate::error::{Error, Result};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool executing borrowed (scoped) jobs.
pub(crate) struct ScanPool {
    sender: Sender<Job>,
    workers: usize,
}

impl ScanPool {
    /// Spawns `workers` long-lived threads.
    pub fn new(workers: usize) -> ScanPool {
        let workers = workers.max(1);
        let (sender, receiver) = unbounded::<Job>();
        for i in 0..workers {
            let rx = receiver.clone();
            std::thread::Builder::new()
                .name(format!("micronn-scan-{i}"))
                .spawn(move || {
                    // Exits when the pool (sender) is dropped.
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("failed to spawn scan worker");
        }
        ScanPool { sender, workers }
    }

    /// Runs `f(0)..f(n - 1)` across the pool and returns the results
    /// **in index order**.
    ///
    /// Work distribution is a shared atomic cursor: each worker claims
    /// the next unclaimed index, so large items naturally steal less
    /// work from their neighbours. On failure the *lowest-index* error
    /// is returned, deterministically: the cursor hands out indexes in
    /// ascending order and claimed jobs always run to completion, so
    /// the minimum failing index is always reached regardless of the
    /// worker count or scheduling. (Later indexes may be skipped once
    /// a failure is observed.) A panicking job propagates the panic to
    /// the caller after all in-flight jobs have settled.
    ///
    /// With one worker (or one item) the closure runs inline on the
    /// caller thread, stopping at the first error — the same
    /// first-error-by-index contract. Must not be called from a pool
    /// worker itself (jobs scheduling jobs could deadlock a
    /// single-worker pool).
    pub fn parallel_indexed<'env, T, F>(&self, n: usize, f: F) -> Result<Vec<T>>
    where
        T: Send + 'env,
        F: Fn(usize) -> Result<T> + Sync + 'env,
    {
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = self.workers.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
        let first_error: Mutex<Option<(usize, Error)>> = Mutex::new(None);
        let jobs: Vec<_> = (0..workers)
            .map(|_| {
                let (cursor, failed) = (&cursor, &failed);
                let (results, first_error, f) = (&results, &first_error, &f);
                move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    while !failed.load(Ordering::Relaxed) {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match f(i) {
                            Ok(v) => local.push((i, v)),
                            Err(e) => {
                                failed.store(true, Ordering::Relaxed);
                                let mut slot = first_error.lock();
                                match &*slot {
                                    Some((j, _)) if *j <= i => {}
                                    _ => *slot = Some((i, e)),
                                }
                                break;
                            }
                        }
                    }
                    if !local.is_empty() {
                        results.lock().append(&mut local);
                    }
                }
            })
            .collect();
        self.run_scoped(jobs);
        if let Some((_, e)) = first_error.into_inner() {
            return Err(e);
        }
        let mut indexed = results.into_inner();
        indexed.sort_unstable_by_key(|&(i, _)| i);
        debug_assert_eq!(indexed.len(), n, "every index produced a result");
        Ok(indexed.into_iter().map(|(_, v)| v).collect())
    }

    /// Executes `jobs` on the pool and blocks until all complete.
    /// Panics if any job panicked (after all jobs have settled, so no
    /// borrowed state is left in use).
    fn run_scoped<'env, F>(&self, jobs: Vec<F>)
    where
        F: FnOnce() + Send + 'env,
    {
        if jobs.is_empty() {
            return;
        }
        let wg = WaitGroup::new();
        let panicked = Arc::new(AtomicBool::new(false));
        for job in jobs {
            let wg = wg.clone();
            let panicked = Arc::clone(&panicked);
            let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
                    panicked.store(true, Ordering::SeqCst);
                }
                drop(wg);
            });
            // SAFETY: `run_scoped` blocks on `wg.wait()` below until
            // every wrapped job has run to completion, so the job can
            // never be executed after `'env` ends. The transmute only
            // erases the lifetime; the type is otherwise identical.
            let erased: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(wrapped) };
            self.sender.send(erased).expect("scan pool shut down");
        }
        wg.wait();
        if panicked.load(Ordering::SeqCst) {
            panic!("scan worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let pool = ScanPool::new(4);
        let base = 100usize; // stack-borrowed by jobs
        let got = pool
            .parallel_indexed(64, |i| {
                // Stagger completion so out-of-order finishes are likely.
                if i % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                Ok(base + i)
            })
            .unwrap();
        assert_eq!(got, (100..164).collect::<Vec<_>>());
        // Reusable.
        let again = pool.parallel_indexed(3, |i| Ok(i * 2)).unwrap();
        assert_eq!(again, vec![0, 2, 4]);
    }

    #[test]
    fn empty_and_single_item_run_inline() {
        let pool = ScanPool::new(2);
        assert!(pool.parallel_indexed(0, |_| Ok(0u8)).unwrap().is_empty());
        assert_eq!(pool.parallel_indexed(1, |i| Ok(i + 41)).unwrap(), vec![41]);
    }

    #[test]
    fn first_error_by_index_is_deterministic() {
        for workers in [1, 2, 8] {
            let pool = ScanPool::new(workers);
            for _ in 0..16 {
                let err = pool
                    .parallel_indexed(32, |i| {
                        if i == 5 || i == 19 {
                            Err(Error::Config(format!("boom at {i}")))
                        } else {
                            Ok(i)
                        }
                    })
                    .unwrap_err();
                assert_eq!(
                    err.to_string(),
                    Error::Config("boom at 5".into()).to_string(),
                    "workers={workers}"
                );
            }
        }
    }

    #[test]
    fn worker_panic_propagates_after_settling() {
        let pool = ScanPool::new(2);
        let done = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.parallel_indexed(2, |i| {
                if i == 0 {
                    panic!("boom");
                }
                done.fetch_add(1, Ordering::Relaxed);
                Ok(i)
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(done.load(Ordering::Relaxed), 1, "other jobs still ran");
        // The pool survives a panicked job.
        let ok = pool.parallel_indexed(2, Ok).unwrap();
        assert_eq!(ok, vec![0, 1]);
    }
}
