//! Per-database telemetry hub: the glue between the query executor,
//! the maintenance ladder, the storage engine, and the
//! `micronn-telemetry` registry.
//!
//! Every [`MicroNN`] handle owns one [`DbTelemetry`]:
//!
//! * a [`Registry`] holding the index's counters and latency
//!   histograms, with the storage engine's
//!   [`micronn_storage::IoStats`] re-registered into it (same atomics,
//!   no double counting);
//! * a shared [`SinkCell`] mounted into both the store options (WAL
//!   group commits, checkpoints) and the query/maintenance paths, so
//!   installing one [`TraceSink`] makes the whole stack visible;
//! * the slow-query ring log ([`Config::slow_query_ms`]).
//!
//! Overhead discipline: with no sink and no slow-query threshold, a
//! query costs two `Instant::now` calls plus a handful of relaxed
//! counter adds and one histogram record — the `micro_kernels`
//! `telemetry_overhead` group keeps that under 2 % of an SQ8 chunk
//! scan. Stage timing, span construction, and slow-log records only
//! happen when [`DbTelemetry::detailed`] is true.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use micronn_telemetry::{
    Counter, Histogram, Registry, RegistrySnapshot, SinkCell, SlowQueryLog, SlowQueryRecord, Span,
    TraceSink,
};
use parking_lot::Mutex;

use crate::config::Config;
use crate::db::MicroNN;
use crate::stats::QueryInfo;

/// Number of slow-query records retained (oldest evicted first).
const SLOW_LOG_CAPACITY: usize = 128;

/// Stage span names emitted by the query paths.
pub(crate) mod stage {
    /// Choosing which partitions to probe (centroid distances).
    pub const PROBE_SELECT: &str = "probe_select";
    /// Fan-out scan over the chosen partitions (includes any inline
    /// post-filtering; see `FILTER_JOIN` for the filter share).
    pub const PARTITION_SCAN: &str = "partition_scan";
    /// Exact re-ranking of quantized candidates.
    pub const RERANK: &str = "rerank";
    /// Attribute-predicate evaluation: candidate collection of a
    /// pre-filter plan, or the filter share of a post-filter scan.
    pub const FILTER_JOIN: &str = "filter_join";
}

/// Per-query stage clock. Construction is two `Instant::now` calls;
/// when `detailed` is false every other method is a no-op, so the
/// disabled path adds nothing to the scan loops.
pub(crate) struct QueryTrace {
    pub detailed: bool,
    start: Instant,
    last: Instant,
    pub stages: Vec<(&'static str, Duration)>,
}

impl QueryTrace {
    pub fn new(detailed: bool) -> QueryTrace {
        let now = Instant::now();
        QueryTrace {
            detailed,
            start: now,
            last: now,
            stages: Vec::new(),
        }
    }

    /// Closes the stage running since the previous mark (or since
    /// construction) under `name`.
    pub fn stage(&mut self, name: &'static str) {
        if self.detailed {
            let now = Instant::now();
            self.stages.push((name, now - self.last));
            self.last = now;
        }
    }

    /// Records a stage whose duration was measured elsewhere (e.g. the
    /// filter share of a parallel scan, summed across workers).
    pub fn stage_external(&mut self, name: &'static str, d: Duration) {
        if self.detailed && !d.is_zero() {
            self.stages.push((name, d));
        }
    }

    pub fn total(&self) -> Duration {
        self.start.elapsed()
    }
}

/// The per-database telemetry hub; see the module docs.
pub(crate) struct DbTelemetry {
    pub registry: Arc<Registry>,
    pub sink: Arc<SinkCell>,
    pub slow_log: SlowQueryLog,
    slow_query_ms: Option<u64>,
    queries: Arc<Counter>,
    batches: Arc<Counter>,
    slow_queries: Arc<Counter>,
    query_latency: Arc<Histogram>,
    batch_latency: Arc<Histogram>,
    vectors_scanned: Arc<Counter>,
    bytes_scanned: Arc<Counter>,
    filtered_out: Arc<Counter>,
    reranked: Arc<Counter>,
    partitions_scanned: Arc<Counter>,
    pub distance_computations: Arc<Counter>,
    maint_actions: Arc<Counter>,
    maint_bytes: Arc<Counter>,
    maint_fsyncs: Arc<Counter>,
    action_counters: Mutex<HashMap<&'static str, Arc<Counter>>>,
}

impl DbTelemetry {
    pub fn new(cfg: &Config) -> DbTelemetry {
        let registry = Arc::new(Registry::new());
        let sink = Arc::new(SinkCell::new());
        if cfg.trace {
            sink.set(Some(Arc::new(RegistrySink::new(Arc::clone(&registry)))));
        }
        DbTelemetry {
            queries: registry.counter("micronn_queries_total"),
            batches: registry.counter("micronn_batches_total"),
            slow_queries: registry.counter("micronn_slow_queries_total"),
            query_latency: registry.histogram("micronn_query_latency_ns"),
            batch_latency: registry.histogram("micronn_batch_latency_ns"),
            vectors_scanned: registry.counter("micronn_vectors_scanned_total"),
            bytes_scanned: registry.counter("micronn_bytes_scanned_total"),
            filtered_out: registry.counter("micronn_filtered_out_total"),
            reranked: registry.counter("micronn_reranked_total"),
            partitions_scanned: registry.counter("micronn_partitions_scanned_total"),
            distance_computations: registry.counter("micronn_distance_computations_total"),
            maint_actions: registry.counter("micronn_maintenance_actions_total"),
            maint_bytes: registry.counter("micronn_maintenance_bytes_written_total"),
            maint_fsyncs: registry.counter("micronn_maintenance_fsyncs_total"),
            action_counters: Mutex::new(HashMap::new()),
            slow_log: SlowQueryLog::new(SLOW_LOG_CAPACITY),
            slow_query_ms: cfg.slow_query_ms,
            registry,
            sink,
        }
    }

    /// Whether query paths should collect per-stage timings: a sink is
    /// listening or the slow-query log is armed.
    #[inline]
    pub fn detailed(&self) -> bool {
        self.sink.enabled() || self.slow_query_ms.is_some()
    }

    /// Flows one finished single query into the registry, the sink,
    /// and (past the threshold) the slow-query log.
    pub fn finish_query(&self, trace: &QueryTrace, info: &QueryInfo, k: usize) {
        let total = trace.total();
        self.queries.inc();
        self.query_latency.record(total.as_nanos() as u64);
        self.flow_scan_counters(
            info.vectors_scanned,
            info.bytes_scanned,
            info.filtered_out,
            info.reranked,
            info.partitions_scanned,
        );
        if !trace.detailed {
            return;
        }
        if self.sink.enabled() {
            for &(name, d) in &trace.stages {
                self.sink.record(Span::new(name, d));
            }
            self.sink.record(Span {
                name: "query",
                duration: total,
                bytes: info.bytes_scanned as u64,
                items: info.vectors_scanned as u64,
                fsyncs: 0,
                detail: format!("plan={} k={k}", info.plan),
            });
        }
        if self.over_threshold(total) {
            self.slow_queries.inc();
            self.slow_log.push(SlowQueryRecord {
                plan: info.plan.to_string(),
                k,
                total,
                stages: trace.stages.clone(),
                partitions_scanned: info.partitions_scanned,
                vectors_scanned: info.vectors_scanned,
                filtered_out: info.filtered_out,
                candidates: info.candidates,
                bytes_scanned: info.bytes_scanned,
                reranked: info.reranked,
            });
        }
    }

    /// Flows one finished batch query (shared-scan fan-out of `nq`
    /// queries) into the registry, the sink, and the slow-query log.
    #[allow(clippy::too_many_arguments)]
    pub fn finish_batch(
        &self,
        trace: &QueryTrace,
        nq: usize,
        k: usize,
        partitions_scanned: usize,
        vectors_scanned: usize,
        bytes_scanned: usize,
        reranked: usize,
    ) {
        let total = trace.total();
        self.batches.inc();
        self.batch_latency.record(total.as_nanos() as u64);
        self.flow_scan_counters(
            vectors_scanned,
            bytes_scanned,
            0,
            reranked,
            partitions_scanned,
        );
        if !trace.detailed {
            return;
        }
        if self.sink.enabled() {
            for &(name, d) in &trace.stages {
                self.sink.record(Span::new(name, d));
            }
            self.sink.record(Span {
                name: "batch",
                duration: total,
                bytes: bytes_scanned as u64,
                items: nq as u64,
                fsyncs: 0,
                detail: format!("queries={nq} k={k}"),
            });
        }
        if self.over_threshold(total) {
            self.slow_queries.inc();
            self.slow_log.push(SlowQueryRecord {
                plan: format!("batch[{nq}]"),
                k,
                total,
                stages: trace.stages.clone(),
                partitions_scanned,
                vectors_scanned,
                filtered_out: 0,
                candidates: 0,
                bytes_scanned,
                reranked,
            });
        }
    }

    /// Counts one completed maintenance action and emits its span.
    pub fn note_maintenance(
        &self,
        name: &'static str,
        duration: Duration,
        bytes: u64,
        items: u64,
        fsyncs: u64,
    ) {
        self.maint_actions.inc();
        self.action_counter(name).inc();
        self.maint_bytes.add(bytes);
        self.maint_fsyncs.add(fsyncs);
        if self.sink.enabled() {
            self.sink.record(Span {
                name,
                duration,
                bytes,
                items,
                fsyncs,
                detail: String::new(),
            });
        }
    }

    fn flow_scan_counters(
        &self,
        vectors: usize,
        bytes: usize,
        filtered: usize,
        reranked: usize,
        partitions: usize,
    ) {
        self.vectors_scanned.add(vectors as u64);
        self.bytes_scanned.add(bytes as u64);
        self.filtered_out.add(filtered as u64);
        self.reranked.add(reranked as u64);
        self.partitions_scanned.add(partitions as u64);
    }

    fn over_threshold(&self, total: Duration) -> bool {
        self.slow_query_ms
            .is_some_and(|ms| total >= Duration::from_millis(ms))
    }

    fn action_counter(&self, name: &'static str) -> Arc<Counter> {
        let mut cache = self.action_counters.lock();
        Arc::clone(cache.entry(name).or_insert_with(|| {
            let suffix = name.strip_prefix("maintain_").unwrap_or(name);
            self.registry
                .counter(&format!("micronn_maintenance_{suffix}_total"))
        }))
    }
}

/// The built-in sink installed by [`Config::trace`] (`MICRONN_TRACE=1`):
/// materializes every span into the registry as a per-span-name latency
/// histogram plus byte/fsync counters, so traces are scrapeable without
/// any custom sink.
struct RegistrySink {
    registry: Arc<Registry>,
    per_name: Mutex<HashMap<&'static str, SpanMetrics>>,
}

struct SpanMetrics {
    latency: Arc<Histogram>,
    bytes: Arc<Counter>,
    fsyncs: Arc<Counter>,
}

impl RegistrySink {
    fn new(registry: Arc<Registry>) -> RegistrySink {
        RegistrySink {
            registry,
            per_name: Mutex::new(HashMap::new()),
        }
    }
}

impl TraceSink for RegistrySink {
    fn record(&self, span: &Span) {
        let mut cache = self.per_name.lock();
        let m = cache.entry(span.name).or_insert_with(|| SpanMetrics {
            latency: self
                .registry
                .histogram(&format!("micronn_span_{}_ns", span.name)),
            bytes: self
                .registry
                .counter(&format!("micronn_span_{}_bytes_total", span.name)),
            fsyncs: self
                .registry
                .counter(&format!("micronn_span_{}_fsyncs_total", span.name)),
        });
        m.latency.record(span.duration.as_nanos() as u64);
        m.bytes.add(span.bytes);
        m.fsyncs.add(span.fsyncs);
    }
}

/// Open guard for a maintenance-action span; see
/// [`MicroNN::maint_span`].
pub(crate) struct MaintGuard {
    name: &'static str,
    start: Instant,
    io: micronn_storage::StoreStats,
}

impl MicroNN {
    /// Point-in-time snapshot of this index's telemetry registry:
    /// query counters and latency histograms, maintenance counters,
    /// and the storage engine's live I/O counters. Render it with
    /// [`RegistrySnapshot::to_prometheus`] or
    /// [`RegistrySnapshot::to_json`].
    pub fn telemetry(&self) -> RegistrySnapshot {
        self.inner.tel.registry.snapshot()
    }

    /// The most recent queries that crossed [`Config::slow_query_ms`],
    /// oldest first, each with its full per-stage breakdown.
    pub fn slow_queries(&self) -> Vec<SlowQueryRecord> {
        self.inner.tel.slow_log.entries()
    }

    /// Installs (or with `None`, removes) a trace sink. The sink
    /// receives a [`Span`] per query stage, per WAL group commit, per
    /// checkpoint, and per maintenance action, across every handle to
    /// this index in this process.
    pub fn set_trace_sink(&self, sink: Option<Arc<dyn TraceSink>>) {
        self.inner.tel.sink.set(sink);
    }

    /// Opens a maintenance span named `name` (e.g. `maintain_flush`),
    /// sampling the store counters so the close attributes I/O deltas.
    pub(crate) fn maint_span(&self, name: &'static str) -> MaintGuard {
        MaintGuard {
            name,
            start: Instant::now(),
            io: self.inner.db.store().stats(),
        }
    }

    /// Closes a maintenance span: counts the action in the registry
    /// and emits a [`Span`] carrying pages-written bytes and fsyncs.
    pub(crate) fn maint_finish(&self, guard: MaintGuard, items: u64) {
        let io = self.inner.db.store().stats().since(&guard.io);
        self.inner.tel.note_maintenance(
            guard.name,
            guard.start.elapsed(),
            io.disk_writes() * micronn_storage::PAGE_SIZE as u64,
            items,
            io.syncs,
        );
    }
}
