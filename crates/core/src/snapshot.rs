//! Pinned read snapshots: a [`Snapshot`] freezes one committed view of
//! the index and answers any number of queries against it.
//!
//! [`MicroNN::snapshot`] pins the current committed state (MVCC at the
//! store layer: the commit seq is registered in the reader registry,
//! which retains every page version the snapshot can see). Every query
//! issued through the handle resolves pages, centroid/quantization
//! caches, and planner statistics at that seq — concurrent upserts,
//! deletes, flushes, splits, merges, and retrains are invisible until
//! a fresh snapshot (or any plain [`MicroNN::search`], which pins its
//! own snapshot per call) observes them.
//!
//! Snapshots are cheap (no page copying — old page versions are kept
//! in the WAL/pool until the reader registry releases them) but pin
//! WAL space: the checkpointer cannot reclaim log segments a live
//! snapshot still reads. Drop the handle when done; dropping
//! deregisters the reader and lets version GC advance.

use micronn_rel::Expr;
use micronn_storage::{PageRead, ReadTxn};

use crate::db::MicroNN;
use crate::error::Result;
use crate::hybrid::{exact_at, search_with_at, SearchRequest};
use crate::integrity::{verify_integrity_at, IntegrityReport};
use crate::search::SearchResponse;

/// One frozen, committed view of the index (see the [module
/// docs](crate::snapshot)). Created by [`MicroNN::snapshot`]; holds a
/// registered reader at the store layer until dropped.
pub struct Snapshot {
    db: MicroNN,
    r: ReadTxn,
}

impl MicroNN {
    /// Pins the current committed state and returns a handle that
    /// answers queries against it, unaffected by concurrent writes and
    /// maintenance.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            db: self.clone(),
            r: self.inner.db.begin_read(),
        }
    }
}

impl Snapshot {
    /// The commit sequence number this snapshot is pinned at. Two
    /// snapshots with equal seqs see bit-identical data.
    pub fn seq(&self) -> u64 {
        self.r.committed_snapshot().unwrap_or(0)
    }

    /// [`MicroNN::search`] at this snapshot.
    pub fn search(&self, query: &[f32], k: usize) -> Result<SearchResponse> {
        self.search_with(&SearchRequest::new(query.to_vec(), k))
    }

    /// [`MicroNN::search_with`] at this snapshot.
    pub fn search_with(&self, req: &SearchRequest) -> Result<SearchResponse> {
        search_with_at(&self.db.inner, &self.r, req)
    }

    /// [`MicroNN::batch_search`] at this snapshot: every shared
    /// partition scan of the multi-query plan reads the same frozen
    /// commit seq.
    pub fn batch_search(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        probes: Option<usize>,
    ) -> Result<crate::batch::BatchResponse> {
        crate::batch::batch_search_at(&self.db.inner, &self.r, queries, k, probes)
    }

    /// [`MicroNN::exact`] at this snapshot.
    pub fn exact(&self, query: &[f32], k: usize, filter: Option<&Expr>) -> Result<SearchResponse> {
        exact_at(&self.db.inner, &self.r, query, k, filter)
    }

    /// [`MicroNN::verify_integrity`] at this snapshot: the fsck walk
    /// sees one frozen catalog even while maintenance churns.
    pub fn verify_integrity(&self) -> Result<IntegrityReport> {
        verify_integrity_at(&self.db.inner, &self.r)
    }

    /// Number of vectors visible at this snapshot.
    pub fn len(&self) -> Result<u64> {
        Ok(self.db.inner.tables.vectors.row_count(&self.r)?)
    }

    /// True when no vectors are visible at this snapshot.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("seq", &self.seq())
            .finish()
    }
}
