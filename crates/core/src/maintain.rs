//! Incremental index maintenance and the index monitor (§3.6).
//!
//! The delta store is scanned by every query, so "query latency can
//! grow if the delta-store grows too large". [`MicroNN::flush_delta`]
//! implements the paper's "simplified form of incremental index
//! maintenance that flushes vectors from the delta-store by assigning
//! them to the IVF index partition with the closest centroid and
//! updates the centroids to reflect the partition content" (a running
//! mean, after \[1\] / VLAD). Flushing touches only the delta rows plus
//! the centroid table — the tiny I/O footprint Figure 10d plots against
//! a full rebuild.
//!
//! The "IndexMonitor" half: partition sizes grow as deltas are folded
//! in, so [`MicroNN::maintenance_status`] tracks average partition
//! growth and requests a **full rebuild** once it exceeds the
//! configured limit (paper: +50%), exactly the trigger of Figure 10.

use micronn_rel::{f32_to_blob, Value};

use crate::db::{
    meta_int, set_meta_int, MicroNN, DELTA_PARTITION, M_BASELINE_AVG, M_DELTA_COUNT, M_EPOCH,
    M_PARTITIONS,
};
use crate::error::{Error, Result};
use crate::RebuildReport;

/// What the index monitor thinks should happen next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceStatus {
    /// Index is healthy.
    Healthy,
    /// The index has never been built and holds vectors.
    NeedsBuild,
    /// The delta store exceeds the flush threshold.
    NeedsFlush,
    /// Average partition size grew past `growth_limit ×` its post-build
    /// baseline: a full rebuild is due.
    NeedsRebuild,
}

/// What [`MicroNN::maybe_maintain`] did.
#[derive(Debug, Clone)]
pub enum MaintenanceAction {
    None,
    Flushed(FlushReport),
    Rebuilt(RebuildReport),
}

/// Outcome of one delta flush.
#[derive(Debug, Clone, PartialEq)]
pub struct FlushReport {
    /// Vectors moved out of the delta store.
    pub flushed: usize,
    /// Distinct partitions that received vectors (their centroids were
    /// updated).
    pub partitions_touched: usize,
    /// Wall-clock time.
    pub total_time: std::time::Duration,
}

impl MicroNN {
    /// Folds the delta store into the IVF index: each staged vector
    /// moves to the partition with the nearest centroid, whose centroid
    /// shifts by the running-mean update. One atomic transaction.
    pub fn flush_delta(&self) -> Result<FlushReport> {
        let start = std::time::Instant::now();
        let inner = &*self.inner;
        let mut txn = inner.db.begin_write()?;
        let Some(index) = inner.clustering(&txn)? else {
            return Err(Error::Config(
                "cannot flush delta: index has never been built".into(),
            ));
        };
        let partitions = index.partitions.clone();
        let mut clustering = (*index.clustering).clone();

        // Load current partition sizes.
        let mut sizes = vec![0i64; clustering.k()];
        for (ci, &pid) in partitions.iter().enumerate() {
            if let Some(row) = inner.tables.centroids.get(&txn, &[Value::Integer(pid)])? {
                sizes[ci] = row[2].as_integer().unwrap_or(0);
            }
        }

        // Materialize the (small) delta store.
        let staged =
            crate::db::read_partition_members(&txn, &inner.tables.vectors, DELTA_PARTITION)?;

        let mut touched = std::collections::HashSet::new();
        for (vid, asset, vec) in &staged {
            let (ci, _) = clustering.nearest(vec);
            let pid = partitions[ci];
            inner.tables.vectors.delete(
                &mut txn,
                &[Value::Integer(DELTA_PARTITION), Value::Integer(*vid)],
            )?;
            inner.tables.vectors.upsert(
                &mut txn,
                vec![
                    Value::Integer(pid),
                    Value::Integer(*vid),
                    Value::Integer(*asset),
                    Value::Blob(f32_to_blob(vec)),
                ],
            )?;
            inner.tables.assets.upsert(
                &mut txn,
                vec![
                    Value::Integer(*asset),
                    Value::Integer(pid),
                    Value::Integer(*vid),
                ],
            )?;
            inner
                .row_changes
                .fetch_add(3, std::sync::atomic::Ordering::Relaxed);
            // Running-mean centroid update [1]: c ← c + (x − c)/(m+1).
            let m = sizes[ci];
            let centroid = clustering.centroid_mut(ci);
            let eta = 1.0 / (m as f32 + 1.0);
            for (cv, xv) in centroid.iter_mut().zip(vec) {
                *cv += eta * (xv - *cv);
            }
            sizes[ci] = m + 1;
            touched.insert(ci);
        }

        // Persist the moved centroids and sizes.
        for &ci in &touched {
            inner.tables.centroids.upsert(
                &mut txn,
                vec![
                    Value::Integer(partitions[ci]),
                    Value::Blob(f32_to_blob(clustering.centroid(ci))),
                    Value::Integer(sizes[ci]),
                ],
            )?;
            inner
                .row_changes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        // Codec-aware epilogue: each touched partition's content
        // changed, so its quantization ranges are retrained and its
        // codes rewritten. Ranges always reflect the partition's
        // current members; stale-range drift cannot accumulate across
        // maintenance cycles.
        if inner.quantized() {
            let mut encoded = 0usize;
            for &ci in &touched {
                encoded += crate::codec::encode_partition(
                    &mut txn,
                    &inner.tables,
                    inner.dim,
                    partitions[ci],
                )?;
            }
            inner.row_changes.fetch_add(
                encoded as u64 + touched.len() as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
        }
        set_meta_int(&mut txn, &inner.tables.meta, M_DELTA_COUNT, 0)?;
        let epoch = meta_int(&txn, &inner.tables.meta, M_EPOCH)?;
        set_meta_int(&mut txn, &inner.tables.meta, M_EPOCH, epoch + 1)?;
        txn.commit()?;

        Ok(FlushReport {
            flushed: staged.len(),
            partitions_touched: touched.len(),
            total_time: start.elapsed(),
        })
    }

    /// The index monitor's verdict on the current index state.
    pub fn maintenance_status(&self) -> Result<MaintenanceStatus> {
        let inner = &*self.inner;
        let r = inner.db.begin_read();
        let k = meta_int(&r, &inner.tables.meta, M_PARTITIONS)?;
        let delta = meta_int(&r, &inner.tables.meta, M_DELTA_COUNT)? as u64;
        let total = inner.tables.vectors.row_count(&r)?;
        if k == 0 {
            return Ok(if total > 0 {
                MaintenanceStatus::NeedsBuild
            } else {
                MaintenanceStatus::Healthy
            });
        }
        let baseline = meta_int(&r, &inner.tables.meta, M_BASELINE_AVG)? as f64 / 1000.0;
        let current_avg = (total - delta.min(total)) as f64 / k as f64;
        if baseline > 0.0 && current_avg >= inner.cfg.growth_limit * baseline {
            return Ok(MaintenanceStatus::NeedsRebuild);
        }
        if delta as usize >= inner.cfg.delta_flush_threshold {
            return Ok(MaintenanceStatus::NeedsFlush);
        }
        Ok(MaintenanceStatus::Healthy)
    }

    /// Runs whatever maintenance the monitor requests: nothing, a delta
    /// flush, or a full rebuild.
    pub fn maybe_maintain(&self) -> Result<MaintenanceAction> {
        Ok(match self.maintenance_status()? {
            MaintenanceStatus::Healthy => MaintenanceAction::None,
            MaintenanceStatus::NeedsBuild | MaintenanceStatus::NeedsRebuild => {
                MaintenanceAction::Rebuilt(self.rebuild()?)
            }
            MaintenanceStatus::NeedsFlush => MaintenanceAction::Flushed(self.flush_delta()?),
        })
    }

    /// Rebuilds attribute statistics (`ANALYZE`) for the hybrid query
    /// optimizer without touching the index.
    pub fn analyze(&self) -> Result<()> {
        let inner = &*self.inner;
        let mut txn = inner.db.begin_write()?;
        micronn_rel::analyze_table(&mut txn, &inner.tables.attrs)?;
        let epoch = meta_int(&txn, &inner.tables.meta, M_EPOCH)?;
        set_meta_int(&mut txn, &inner.tables.meta, M_EPOCH, epoch + 1)?;
        txn.commit()?;
        Ok(())
    }

    /// Point-in-time statistics of the index.
    pub fn stats(&self) -> Result<crate::stats::DbStats> {
        let inner = &*self.inner;
        let r = inner.db.begin_read();
        let total = inner.tables.vectors.row_count(&r)?;
        let delta = meta_int(&r, &inner.tables.meta, M_DELTA_COUNT)? as u64;
        let k = meta_int(&r, &inner.tables.meta, M_PARTITIONS)? as u64;
        let epoch = meta_int(&r, &inner.tables.meta, M_EPOCH)?;
        let baseline = meta_int(&r, &inner.tables.meta, M_BASELINE_AVG)? as f64 / 1000.0;
        Ok(crate::stats::DbStats {
            total_vectors: total,
            delta_vectors: delta,
            partitions: k,
            avg_partition_size: if k > 0 {
                (total - delta.min(total)) as f64 / k as f64
            } else {
                0.0
            },
            baseline_partition_size: baseline,
            epoch,
            row_changes: inner.row_changes.load(std::sync::atomic::Ordering::Relaxed),
            store: inner.db.store().stats(),
            resident_bytes: inner.db.store().resident_bytes(),
        })
    }
}
