//! Batch query processing with multi-query optimization (§3.4).
//!
//! Given a batch of queries, MicroNN "first identifies the set of
//! clusters that each query needs to access, and groups queries per
//! partition. Then, instead of scanning a partition multiple times for
//! each query, distances between queries and the vectors in the
//! partition is calculated via a single matrix multiplication." Each
//! partition is therefore read from disk **once** for the whole batch
//! (the I/O amortization of Figure 9), and per-(partition, query)
//! results merge through the usual heap machinery.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use micronn_linalg::{batch_distances, merge_all, TopK};
use micronn_rel::{RowDecoder, Value};
use micronn_storage::ReadTxn;

use crate::db::{Inner, MicroNN, DELTA_PARTITION};
use crate::error::{Error, Result};
use crate::search::SearchResult;

/// Results of a batch search plus aggregate execution counters.
#[derive(Debug, Clone)]
pub struct BatchResponse {
    /// Per-query result lists, aligned with the input batch.
    pub results: Vec<Vec<SearchResult>>,
    /// Distinct partitions scanned for the whole batch (each exactly
    /// once — the MQO property).
    pub partitions_scanned: usize,
    /// Total `(query, vector)` distance computations.
    pub distance_computations: usize,
}

/// Rows per matrix-multiplication block while scanning a partition.
const BATCH_ROW_CHUNK: usize = 1024;

impl MicroNN {
    /// Executes a batch of ANN queries with multi-query optimization.
    pub fn batch_search(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        probes: Option<usize>,
    ) -> Result<BatchResponse> {
        let inner = &*self.inner;
        if queries.is_empty() {
            return Ok(BatchResponse {
                results: vec![],
                partitions_scanned: 0,
                distance_computations: 0,
            });
        }
        for q in queries {
            if q.len() != inner.dim {
                return Err(Error::DimensionMismatch {
                    expected: inner.dim,
                    got: q.len(),
                });
            }
        }
        let r = inner.db.begin_read();
        let probes = probes.unwrap_or(inner.cfg.default_probes);
        let nq = queries.len();
        let dim = inner.dim;
        let mut queries_flat = Vec::with_capacity(nq * dim);
        for q in queries {
            queries_flat.extend_from_slice(q);
        }

        // Phase 1: probe selection, per query, through the exact same
        // routine the single-query path uses (`nearest_partitions`,
        // including the two-level centroid index when present). Probe
        // sets must match the sequential path *bit for bit*: ranking
        // centroids with the batched GEMM instead would flip near-tied
        // centroids (the norm-identity L2 rounds differently from the
        // scalar kernel) and silently send a query to a different
        // partition than its sequential twin.
        let mut groups: HashMap<i64, Vec<u32>> = HashMap::new();
        if let Some(index) = inner.clustering(&r)? {
            for (qi, q) in queries.iter().enumerate() {
                for pid in index.nearest_partitions(q, probes) {
                    groups.entry(pid).or_default().push(qi as u32);
                }
            }
        }
        // The delta store serves every query.
        groups.insert(DELTA_PARTITION, (0..nq as u32).collect());

        let mut partitions: Vec<i64> = groups.keys().copied().collect();
        partitions.sort_unstable();

        // Phase 2: scan each partition once; per-partition GEMM against
        // its query group.
        let next = AtomicUsize::new(0);
        let partials: Mutex<Vec<(u32, TopK)>> = Mutex::new(Vec::new());
        let errors: Mutex<Vec<Error>> = Mutex::new(Vec::new());
        let distance_computations = AtomicUsize::new(0);
        let workers = inner.scan_pool.workers().min(partitions.len()).max(1);
        let jobs: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let partials = &partials;
                let errors = &errors;
                let groups = &groups;
                let partitions = &partitions;
                let queries_flat = &queries_flat;
                let distance_computations = &distance_computations;
                let r = &r;
                move || loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&pid) = partitions.get(idx) else {
                        return;
                    };
                    let group = &groups[&pid];
                    match scan_partition_for_group(inner, r, pid, group, queries_flat, dim, k) {
                        Ok(done) => {
                            distance_computations.fetch_add(done.1, Ordering::Relaxed);
                            partials.lock().extend(done.0);
                        }
                        Err(e) => {
                            errors.lock().push(e);
                            return;
                        }
                    }
                }
            })
            .collect();
        inner.scan_pool.run_scoped(jobs);
        if let Some(e) = errors.into_inner().into_iter().next() {
            return Err(e);
        }

        // Phase 3: merge per-partition heaps per query, then sort.
        let mut per_query: Vec<Vec<TopK>> = (0..nq).map(|_| Vec::new()).collect();
        for (qi, top) in partials.into_inner() {
            per_query[qi as usize].push(top);
        }
        let results = per_query
            .into_iter()
            .map(|heaps| {
                merge_all(heaps, k)
                    .into_iter()
                    .map(|n| SearchResult {
                        asset_id: n.id as i64,
                        distance: n.distance,
                    })
                    .collect()
            })
            .collect();
        Ok(BatchResponse {
            results,
            partitions_scanned: partitions.len(),
            distance_computations: distance_computations.load(Ordering::Relaxed),
        })
    }

    /// Naive baseline: the same batch processed one query at a time
    /// (used by the Figure 9 comparison).
    pub fn batch_search_sequential(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        probes: Option<usize>,
    ) -> Result<Vec<Vec<SearchResult>>> {
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            let mut req = crate::hybrid::SearchRequest::new(q.clone(), k);
            req.probes = probes;
            out.push(self.search_with(&req)?.results);
        }
        Ok(out)
    }
}

/// Scans one partition once, computing distances for every query in
/// `group` by blocked matrix multiplication. Returns the per-query
/// local heaps and the number of distance computations.
fn scan_partition_for_group(
    inner: &Inner,
    r: &ReadTxn,
    partition: i64,
    group: &[u32],
    queries_flat: &[f32],
    dim: usize,
    k: usize,
) -> Result<(Vec<(u32, TopK)>, usize)> {
    // Gather the group's query vectors into a contiguous sub-matrix.
    let gq = group.len();
    let mut sub = Vec::with_capacity(gq * dim);
    for &qi in group {
        let qi = qi as usize;
        sub.extend_from_slice(&queries_flat[qi * dim..(qi + 1) * dim]);
    }
    let mut heaps: Vec<TopK> = group.iter().map(|_| TopK::new(k)).collect();
    let mut ids: Vec<i64> = Vec::with_capacity(BATCH_ROW_CHUNK);
    let mut rows: Vec<f32> = Vec::with_capacity(BATCH_ROW_CHUNK * dim);
    let mut out: Vec<f32> = Vec::new();
    let mut computations = 0usize;
    let mut flush = |ids: &mut Vec<i64>, rows: &mut Vec<f32>, heaps: &mut [TopK]| {
        let nr = ids.len();
        if nr == 0 {
            return;
        }
        out.clear();
        out.resize(gq * nr, 0.0);
        batch_distances(inner.metric, &sub, gq, rows, nr, dim, &mut out);
        computations += gq * nr;
        for (local_q, heap) in heaps.iter_mut().enumerate() {
            let base = local_q * nr;
            for (j, &id) in ids.iter().enumerate() {
                heap.push(id as u64, out[base + j]);
            }
        }
        ids.clear();
        rows.clear();
    };
    for kv in inner
        .tables
        .vectors
        .scan_pk_prefix_raw(r, &[Value::Integer(partition)])?
    {
        let (_, row_bytes) = kv?;
        let mut dec = RowDecoder::new(&row_bytes)?;
        dec.skip()?;
        dec.skip()?;
        let asset = dec
            .next_value()?
            .as_integer()
            .ok_or_else(|| Error::Config("asset column is not an integer".into()))?;
        let blob = dec.next_blob()?;
        if blob.len() != dim * 4 {
            return Err(Error::Config(format!(
                "stored vector has {} bytes, expected {}",
                blob.len(),
                dim * 4
            )));
        }
        ids.push(asset);
        rows.extend(
            blob.chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap())),
        );
        if ids.len() == BATCH_ROW_CHUNK {
            flush(&mut ids, &mut rows, &mut heaps);
        }
    }
    flush(&mut ids, &mut rows, &mut heaps);
    drop(flush);
    Ok((group.iter().copied().zip(heaps).collect(), computations))
}
