//! Batch query processing with multi-query optimization (§3.4).
//!
//! Given a batch of queries, MicroNN "first identifies the set of
//! clusters that each query needs to access, and groups queries per
//! partition. Then, instead of scanning a partition multiple times for
//! each query, distances between queries and the vectors in the
//! partition is calculated via a single matrix multiplication." Each
//! partition is therefore read from disk **once** for the whole batch
//! (the I/O amortization of Figure 9), and per-(partition, query)
//! results merge through the usual heap machinery.
//!
//! Both MQO phases run on the persistent scan pool: phase 1 fans the
//! per-query probe selections out across workers (each query still
//! goes through the exact `nearest_partitions` routine of the
//! single-query path, so probe sets match it bit for bit), and phase 2
//! fans out the partition scans. Under the SQ8 codec phase 2 scans the
//! quantized codes payload and a per-query exact re-rank pass follows
//! the merge, mirroring the single-query pipeline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use micronn_linalg::{batch_distances, merge_all, Sq8Scorer, TopK};
use micronn_rel::{RowDecoder, Value};
use micronn_storage::ReadTxn;

use crate::db::{Inner, MicroNN, DELTA_PARTITION};
use crate::error::{Error, Result};
use crate::search::{rerank_exact, scan_pool_k, ScanCounters, SearchResult};

/// Results of a batch search plus aggregate execution counters.
#[derive(Debug, Clone)]
pub struct BatchResponse {
    /// Per-query result lists, aligned with the input batch.
    pub results: Vec<Vec<SearchResult>>,
    /// Distinct partitions scanned for the whole batch (each exactly
    /// once — the MQO property).
    pub partitions_scanned: usize,
    /// Total `(query, vector)` distance computations (quantized scores
    /// and re-rank recomputations included).
    pub distance_computations: usize,
    /// Total vector-payload bytes read for the whole batch (same
    /// accounting as [`crate::QueryInfo::bytes_scanned`]).
    pub bytes_scanned: usize,
}

/// Rows per matrix-multiplication block while scanning a partition.
const BATCH_ROW_CHUNK: usize = 1024;

impl MicroNN {
    /// Executes a batch of ANN queries with multi-query optimization.
    pub fn batch_search(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        probes: Option<usize>,
    ) -> Result<BatchResponse> {
        let inner = &*self.inner;
        if queries.is_empty() {
            return Ok(BatchResponse {
                results: vec![],
                partitions_scanned: 0,
                distance_computations: 0,
                bytes_scanned: 0,
            });
        }
        for q in queries {
            if q.len() != inner.dim {
                return Err(Error::DimensionMismatch {
                    expected: inner.dim,
                    got: q.len(),
                });
            }
        }
        let r = inner.db.begin_read();
        let probes = probes.unwrap_or(inner.cfg.default_probes);
        let nq = queries.len();
        let dim = inner.dim;
        let mut queries_flat = Vec::with_capacity(nq * dim);
        for q in queries {
            queries_flat.extend_from_slice(q);
        }

        // Phase 1: probe selection, per query, through the exact same
        // routine the single-query path uses (`nearest_partitions`,
        // including the two-level centroid index when present) — so
        // probe sets match the sequential path *bit for bit* — but
        // dispatched across the scan pool: each worker pulls query
        // indexes from a shared counter, and the per-query lists are
        // reassembled in query order afterwards, keeping the grouping
        // deterministic regardless of worker count.
        let mut groups: HashMap<i64, Vec<u32>> = HashMap::new();
        if let Some(index) = inner.clustering(&r)? {
            let mut probe_lists: Vec<Vec<i64>> = vec![Vec::new(); nq];
            let workers = inner.scan_pool.workers().min(nq).max(1);
            if workers <= 1 {
                for (qi, q) in queries.iter().enumerate() {
                    probe_lists[qi] = index.nearest_partitions(q, probes);
                }
            } else {
                let next = AtomicUsize::new(0);
                let selected: Mutex<Vec<(u32, Vec<i64>)>> = Mutex::new(Vec::with_capacity(nq));
                let index = &index;
                let jobs: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let selected = &selected;
                        let queries_flat = &queries_flat;
                        move || loop {
                            let qi = next.fetch_add(1, Ordering::Relaxed);
                            if qi >= nq {
                                return;
                            }
                            let list = index.nearest_partitions(
                                &queries_flat[qi * dim..(qi + 1) * dim],
                                probes,
                            );
                            selected.lock().push((qi as u32, list));
                        }
                    })
                    .collect();
                inner.scan_pool.run_scoped(jobs);
                for (qi, list) in selected.into_inner() {
                    probe_lists[qi as usize] = list;
                }
            }
            for (qi, list) in probe_lists.into_iter().enumerate() {
                for pid in list {
                    groups.entry(pid).or_default().push(qi as u32);
                }
            }
        }
        // The delta store serves every query.
        groups.insert(DELTA_PARTITION, (0..nq as u32).collect());

        let mut partitions: Vec<i64> = groups.keys().copied().collect();
        partitions.sort_unstable();

        // Phase 2: scan each partition once; per-partition GEMM (or
        // SQ8 code scoring) against its query group. Quantized scans
        // keep enlarged per-query pools for the re-rank pass.
        let scan_k = scan_pool_k(inner, k, true);
        let next = AtomicUsize::new(0);
        let partials: Mutex<Vec<(u32, TopK)>> = Mutex::new(Vec::new());
        let errors: Mutex<Vec<Error>> = Mutex::new(Vec::new());
        let distance_computations = AtomicUsize::new(0);
        let counters = ScanCounters::default();
        let workers = inner.scan_pool.workers().min(partitions.len()).max(1);
        let jobs: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let partials = &partials;
                let errors = &errors;
                let groups = &groups;
                let partitions = &partitions;
                let queries_flat = &queries_flat;
                let distance_computations = &distance_computations;
                let counters = &counters;
                let r = &r;
                move || loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&pid) = partitions.get(idx) else {
                        return;
                    };
                    let group = &groups[&pid];
                    match scan_partition_for_group(
                        inner,
                        r,
                        pid,
                        group,
                        queries_flat,
                        dim,
                        scan_k,
                        counters,
                    ) {
                        Ok(done) => {
                            distance_computations.fetch_add(done.1, Ordering::Relaxed);
                            partials.lock().extend(done.0);
                        }
                        Err(e) => {
                            errors.lock().push(e);
                            return;
                        }
                    }
                }
            })
            .collect();
        inner.scan_pool.run_scoped(jobs);
        if let Some(e) = errors.into_inner().into_iter().next() {
            return Err(e);
        }

        // Phase 3: merge per-partition heaps per query, then sort;
        // quantized catalogs re-rank each query's merged pool against
        // the exact f32 vectors (the same pass as single-query search),
        // fanned out across the scan pool like the other phases — the
        // per-query pools are independent.
        let mut per_query: Vec<Vec<TopK>> = (0..nq).map(|_| Vec::new()).collect();
        for (qi, top) in partials.into_inner() {
            per_query[qi as usize].push(top);
        }
        let quantized = inner.quantized();
        let mut merged: Vec<Vec<micronn_linalg::Neighbor>> = per_query
            .into_iter()
            .map(|heaps| merge_all(heaps, scan_k))
            .collect();
        if quantized {
            let pools = std::mem::take(&mut merged);
            let next = AtomicUsize::new(0);
            let reranked: Mutex<Vec<(usize, Vec<micronn_linalg::Neighbor>)>> =
                Mutex::new(Vec::with_capacity(nq));
            let errors: Mutex<Vec<Error>> = Mutex::new(Vec::new());
            let pools_ref = &pools;
            let workers = inner.scan_pool.workers().min(nq).max(1);
            let jobs: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let reranked = &reranked;
                    let errors = &errors;
                    let counters = &counters;
                    let queries_flat = &queries_flat;
                    let r = &r;
                    move || loop {
                        let qi = next.fetch_add(1, Ordering::Relaxed);
                        let Some(pool) = pools_ref.get(qi) else {
                            return;
                        };
                        match rerank_exact(
                            inner,
                            r,
                            &queries_flat[qi * dim..(qi + 1) * dim],
                            pool.clone(),
                            k,
                            counters,
                        ) {
                            Ok(top) => reranked.lock().push((qi, top)),
                            Err(e) => {
                                errors.lock().push(e);
                                return;
                            }
                        }
                    }
                })
                .collect();
            inner.scan_pool.run_scoped(jobs);
            if let Some(e) = errors.into_inner().into_iter().next() {
                return Err(e);
            }
            let mut out = reranked.into_inner();
            if out.len() != nq {
                return Err(Error::Config("batch re-rank lost a query".into()));
            }
            out.sort_unstable_by_key(|&(qi, _)| qi);
            merged = out.into_iter().map(|(_, top)| top).collect();
            // Exact re-rank recomputations count as distance work.
            distance_computations
                .fetch_add(counters.reranked.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        let results = merged
            .into_iter()
            .map(|top| {
                top.into_iter()
                    .map(|n| SearchResult {
                        asset_id: n.id as i64,
                        distance: n.distance,
                    })
                    .collect()
            })
            .collect();
        Ok(BatchResponse {
            results,
            partitions_scanned: partitions.len(),
            distance_computations: distance_computations.load(Ordering::Relaxed),
            bytes_scanned: counters.bytes_scanned.load(Ordering::Relaxed),
        })
    }

    /// Naive baseline: the same batch processed one query at a time
    /// (used by the Figure 9 comparison).
    pub fn batch_search_sequential(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        probes: Option<usize>,
    ) -> Result<Vec<Vec<SearchResult>>> {
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            let mut req = crate::hybrid::SearchRequest::new(q.clone(), k);
            req.probes = probes;
            out.push(self.search_with(&req)?.results);
        }
        Ok(out)
    }
}

/// Scans one partition once for every query in `group`. Returns the
/// per-query local heaps and the number of distance computations.
#[allow(clippy::too_many_arguments)]
fn scan_partition_for_group(
    inner: &Inner,
    r: &ReadTxn,
    partition: i64,
    group: &[u32],
    queries_flat: &[f32],
    dim: usize,
    k: usize,
    counters: &ScanCounters,
) -> Result<(Vec<(u32, TopK)>, usize)> {
    if inner.quantized() && partition != DELTA_PARTITION {
        if let Some(params) = inner.partition_params(r, partition)? {
            return scan_codes_for_group(
                inner,
                r,
                partition,
                group,
                queries_flat,
                dim,
                k,
                &params,
                counters,
            );
        }
    }
    // Gather the group's query vectors into a contiguous sub-matrix.
    let gq = group.len();
    let mut sub = Vec::with_capacity(gq * dim);
    for &qi in group {
        let qi = qi as usize;
        sub.extend_from_slice(&queries_flat[qi * dim..(qi + 1) * dim]);
    }
    let mut heaps: Vec<TopK> = group.iter().map(|_| TopK::new(k)).collect();
    let mut ids: Vec<i64> = Vec::with_capacity(BATCH_ROW_CHUNK);
    let mut rows: Vec<f32> = Vec::with_capacity(BATCH_ROW_CHUNK * dim);
    let mut out: Vec<f32> = Vec::new();
    let mut computations = 0usize;
    let mut flush = |ids: &mut Vec<i64>, rows: &mut Vec<f32>, heaps: &mut [TopK]| {
        let nr = ids.len();
        if nr == 0 {
            return;
        }
        out.clear();
        out.resize(gq * nr, 0.0);
        batch_distances(inner.metric, &sub, gq, rows, nr, dim, &mut out);
        computations += gq * nr;
        for (local_q, heap) in heaps.iter_mut().enumerate() {
            let base = local_q * nr;
            for (j, &id) in ids.iter().enumerate() {
                heap.push(id as u64, out[base + j]);
            }
        }
        ids.clear();
        rows.clear();
    };
    for kv in inner
        .tables
        .vectors
        .scan_pk_prefix_raw(r, &[Value::Integer(partition)])?
    {
        let (_, row_bytes) = kv?;
        let mut dec = RowDecoder::new(&row_bytes)?;
        dec.skip()?;
        dec.skip()?;
        let asset = dec
            .next_value()?
            .as_integer()
            .ok_or_else(|| Error::Config("asset column is not an integer".into()))?;
        let blob = dec.next_blob()?;
        if blob.len() != dim * 4 {
            return Err(Error::Config(format!(
                "stored vector has {} bytes, expected {}",
                blob.len(),
                dim * 4
            )));
        }
        ids.push(asset);
        rows.extend(
            blob.chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap())),
        );
        counters.bytes_scanned.fetch_add(dim * 4, Ordering::Relaxed);
        if ids.len() == BATCH_ROW_CHUNK {
            flush(&mut ids, &mut rows, &mut heaps);
        }
    }
    flush(&mut ids, &mut rows, &mut heaps);
    Ok((group.iter().copied().zip(heaps).collect(), computations))
}

/// Quantized variant of the group scan: reads the partition's u8
/// codes once and scores them against every query in the group with
/// per-query prepared scorers.
#[allow(clippy::too_many_arguments)]
fn scan_codes_for_group(
    inner: &Inner,
    r: &ReadTxn,
    partition: i64,
    group: &[u32],
    queries_flat: &[f32],
    dim: usize,
    k: usize,
    params: &micronn_linalg::Sq8Params,
    counters: &ScanCounters,
) -> Result<(Vec<(u32, TopK)>, usize)> {
    let codes = inner
        .tables
        .codes
        .as_ref()
        .ok_or_else(|| Error::Config("quantized scan without a codes table".into()))?;
    let scorers: Vec<Sq8Scorer> = group
        .iter()
        .map(|&qi| {
            let qi = qi as usize;
            Sq8Scorer::new(
                inner.metric,
                &queries_flat[qi * dim..(qi + 1) * dim],
                params,
            )
        })
        .collect();
    let mut heaps: Vec<TopK> = group.iter().map(|_| TopK::new(k)).collect();
    let mut computations = 0usize;
    for kv in codes.scan_pk_prefix_raw(r, &[Value::Integer(partition)])? {
        let (_, row_bytes) = kv?;
        let (asset, code) = crate::codec::decode_code_row(&row_bytes, dim)?;
        for (heap, scorer) in heaps.iter_mut().zip(&scorers) {
            heap.push(asset as u64, scorer.score(code));
        }
        computations += scorers.len();
        counters.bytes_scanned.fetch_add(dim, Ordering::Relaxed);
    }
    Ok((group.iter().copied().zip(heaps).collect(), computations))
}
