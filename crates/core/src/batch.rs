//! Batch query processing with multi-query optimization (§3.4).
//!
//! Given a batch of queries, MicroNN "first identifies the set of
//! clusters that each query needs to access, and groups queries per
//! partition. Then, instead of scanning a partition multiple times for
//! each query, distances between queries and the vectors in the
//! partition is calculated via a single matrix multiplication." Each
//! partition is therefore read from disk **once** for the whole batch
//! (the I/O amortization of Figure 9), and per-(partition, query)
//! results merge through the usual heap machinery.
//!
//! All three MQO phases are one-liners over the scan pool's typed
//! `parallel_indexed` primitive: phase 1 fans the per-query probe
//! selections out (each query still goes through the exact
//! `nearest_partitions` routine of the single-query path, so probe
//! sets match it bit for bit), phase 2 fans out the shared partition
//! scans through the executor's `PartitionScanner` frame, and phase 3
//! fans out the per-query exact re-rank under the SQ8 codec.
//! Results return in index order and the first error (by partition or
//! query index) is reported deterministically, whatever the worker
//! count.

use std::collections::HashMap;

use micronn_linalg::{merge_all, Neighbor, TopK};

use micronn_storage::ReadTxn;

use crate::db::{Inner, MicroNN, DELTA_PARTITION};
use crate::error::{Error, Result};
use crate::exec::{rerank_exact, scan_pool_k, PartitionScanner, Queries, ScanMetrics};
use crate::search::SearchResult;
use crate::telemetry::{stage, QueryTrace};

/// Results of a batch search plus aggregate execution counters.
#[derive(Debug, Clone)]
pub struct BatchResponse {
    /// Per-query result lists, aligned with the input batch.
    pub results: Vec<Vec<SearchResult>>,
    /// Distinct partitions scanned for the whole batch (each exactly
    /// once — the MQO property).
    pub partitions_scanned: usize,
    /// Total `(query, vector)` distance computations (quantized scores
    /// and re-rank recomputations included).
    pub distance_computations: usize,
    /// Total vector-payload bytes read for the whole batch (same
    /// accounting as [`crate::QueryInfo::bytes_scanned`]).
    pub bytes_scanned: usize,
}

impl MicroNN {
    /// Executes a batch of ANN queries with multi-query optimization.
    pub fn batch_search(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        probes: Option<usize>,
    ) -> Result<BatchResponse> {
        let r = self.inner.db.begin_read();
        batch_search_at(&self.inner, &r, queries, k, probes)
    }
}

/// [`MicroNN::batch_search`] against a caller-pinned snapshot: the
/// whole batch — probe selection, shared partition scans, re-rank —
/// resolves every page at `r`'s commit seq.
pub(crate) fn batch_search_at(
    inner: &Inner,
    r: &ReadTxn,
    queries: &[Vec<f32>],
    k: usize,
    probes: Option<usize>,
) -> Result<BatchResponse> {
    {
        if queries.is_empty() {
            return Ok(BatchResponse {
                results: vec![],
                partitions_scanned: 0,
                distance_computations: 0,
                bytes_scanned: 0,
            });
        }
        for q in queries {
            if q.len() != inner.dim {
                return Err(Error::DimensionMismatch {
                    expected: inner.dim,
                    got: q.len(),
                });
            }
        }
        let mut trace = QueryTrace::new(inner.tel.detailed());
        let probes = probes.unwrap_or(inner.cfg.default_probes);
        let nq = queries.len();
        let dim = inner.dim;
        let mut queries_flat = Vec::with_capacity(nq * dim);
        for q in queries {
            queries_flat.extend_from_slice(q);
        }

        // Phase 1: probe selection, per query, through the exact same
        // routine the single-query path uses (`nearest_partitions`,
        // including the two-level centroid index when present) — so
        // probe sets match the sequential path *bit for bit* — fanned
        // out across the scan pool with per-query lists returned in
        // query order, keeping the grouping deterministic regardless
        // of worker count.
        let mut groups: HashMap<i64, Vec<u32>> = HashMap::new();
        if let Some(index) = inner.clustering(r)? {
            let index = &index;
            let queries_flat = &queries_flat;
            let probe_lists: Vec<Vec<i64>> = inner.scan_pool.parallel_indexed(nq, |qi| {
                Ok(index.nearest_partitions(&queries_flat[qi * dim..(qi + 1) * dim], probes))
            })?;
            for (qi, list) in probe_lists.into_iter().enumerate() {
                for pid in list {
                    groups.entry(pid).or_default().push(qi as u32);
                }
            }
        }
        // The delta store serves every query.
        groups.insert(DELTA_PARTITION, (0..nq as u32).collect());

        let mut partitions: Vec<i64> = groups.keys().copied().collect();
        partitions.sort_unstable();
        trace.stage(stage::PROBE_SELECT);

        // Phase 2: scan each partition once; per-partition GEMM (or
        // batched SQ8 code scoring) against its query group through
        // the shared scan frame. Quantized scans keep enlarged
        // per-query pools for the re-rank pass.
        let scan_k = scan_pool_k(inner, k, true);
        let metrics = ScanMetrics::default();
        let scanner = PartitionScanner {
            inner,
            r,
            filter: None,
            metrics: &metrics,
            use_codec: true,
            time_filter: false,
        };
        let partials: Vec<Vec<TopK>> = {
            let groups = &groups;
            let partitions = &partitions;
            let queries_flat = &queries_flat;
            inner.scan_pool.parallel_indexed(partitions.len(), |i| {
                // Probe readahead: overlap the next partition's I/O
                // with this partition's GEMM / code scoring.
                if let Some(&next) = partitions.get(i + 1) {
                    scanner.prefetch(next);
                }
                let group = &groups[&partitions[i]];
                let mut heaps: Vec<TopK> = group.iter().map(|_| TopK::new(scan_k)).collect();
                scanner.scan(
                    partitions[i],
                    &Queries::Group {
                        flat: queries_flat,
                        members: group,
                    },
                    &mut heaps,
                )?;
                Ok(heaps)
            })?
        };
        trace.stage(stage::PARTITION_SCAN);

        // Phase 3: merge per-partition heaps per query, then sort;
        // quantized catalogs re-rank each query's merged pool against
        // the exact f32 vectors (the same pass as single-query
        // search), fanned out across the scan pool like the other
        // phases — the per-query pools are independent.
        let mut per_query: Vec<Vec<TopK>> = (0..nq).map(|_| Vec::new()).collect();
        for (i, heaps) in partials.into_iter().enumerate() {
            let group = &groups[&partitions[i]];
            for (&qi, top) in group.iter().zip(heaps) {
                per_query[qi as usize].push(top);
            }
        }
        let quantized = inner.quantized();
        let mut merged: Vec<Vec<Neighbor>> = per_query
            .into_iter()
            .map(|heaps| merge_all(heaps, scan_k))
            .collect();
        let mut distance_computations = metrics.distance_computations();
        if quantized {
            let pools = std::mem::take(&mut merged);
            let pools = &pools;
            let queries_flat = &queries_flat;
            let metrics = &metrics;
            merged = inner.scan_pool.parallel_indexed(nq, |qi| {
                rerank_exact(
                    inner,
                    r,
                    &queries_flat[qi * dim..(qi + 1) * dim],
                    pools[qi].clone(),
                    k,
                    metrics,
                )
            })?;
            // Exact re-rank recomputations count as distance work.
            distance_computations += metrics.reranked();
            trace.stage(stage::RERANK);
        }
        inner
            .tel
            .distance_computations
            .add(distance_computations as u64);
        inner.tel.finish_batch(
            &trace,
            nq,
            k,
            partitions.len(),
            metrics.vectors_scanned(),
            metrics.bytes_scanned(),
            metrics.reranked(),
        );
        let results = merged
            .into_iter()
            .map(|top| {
                top.into_iter()
                    .map(|n| SearchResult {
                        asset_id: n.id as i64,
                        distance: n.distance,
                    })
                    .collect()
            })
            .collect();
        Ok(BatchResponse {
            results,
            partitions_scanned: partitions.len(),
            distance_computations,
            bytes_scanned: metrics.bytes_scanned(),
        })
    }
}

impl MicroNN {
    /// Naive baseline: the same batch processed one query at a time
    /// (used by the Figure 9 comparison).
    pub fn batch_search_sequential(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        probes: Option<usize>,
    ) -> Result<Vec<Vec<SearchResult>>> {
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            let mut req = crate::hybrid::SearchRequest::new(q.clone(), k);
            req.probes = probes;
            out.push(self.search_with(&req)?.results);
        }
        Ok(out)
    }
}
