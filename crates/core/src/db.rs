//! The MicroNN database handle: schema management, streaming updates,
//! and shared caches.
//!
//! Storage schema (mirrors Figure 2 of the paper):
//!
//! | table       | primary key         | columns                         |
//! |-------------|---------------------|---------------------------------|
//! | `vectors`   | `(partition, vid)`  | `asset`, `vec` (f32 blob)       |
//! | `assets`    | `(asset)`           | `partition`, `vid`              |
//! | `centroids` | `(partition)`       | `centroid` (f32 blob), `size`   |
//! | `attrs`     | `(asset)`           | client-defined attribute columns|
//! | `meta`      | `(key)`             | `ival`, `tval`                  |
//! | `codes`*    | `(partition, vid)`  | `asset`, `code` (u8 blob)       |
//! | `codes`†    | `(partition, block)`| `members`, `packed` (blobs)     |
//! | `quants`*†  | `(partition)`       | `params` (f32 blob)             |
//!
//! `*` only with the [`VectorCodec::Sq8`] catalog, `†` only with
//! [`VectorCodec::Sq4`] (one row per 32-vector fastscan block):
//! quantized codes are a *separately clustered* payload so
//! compressed-domain scans touch ~4× (SQ8) / ~8× (SQ4) fewer bytes
//! than the f32 rows they mirror.
//!
//! The `vectors` table is clustered on `(partition, vid)`, so each IVF
//! partition is a contiguous key range on disk (§3.2). The delta store
//! is the reserved partition `0` (§3.6): upserts land there and are
//! folded into the index by [`crate::maintain`].

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use micronn_cluster::Clustering;
use micronn_linalg::{Metric, Sq8Params};
use micronn_rel::{
    blob_to_f32, f32_to_blob, ColumnDef, Database, RelError, Table, TableSchema, TableStats, Value,
    ValueType,
};
use micronn_storage::{PageRead, WriteTxn};

use crate::codec::VectorCodec;
use crate::config::{AttributeDef, Config};
use crate::error::{Error, Result};

/// The reserved partition id of the delta store (§3.6).
pub const DELTA_PARTITION: i64 = 0;

// Meta keys (crate-visible: build/maintain modules read and write them).
const M_DIM: &str = "dim";
const M_METRIC: &str = "metric";
const M_CODEC: &str = "codec";
pub(crate) const M_NEXT_VID: &str = "next_vid";
pub(crate) const M_EPOCH: &str = "epoch";
pub(crate) const M_PARTITIONS: &str = "k";
pub(crate) const M_DELTA_COUNT: &str = "delta_count";
pub(crate) const M_BASELINE_AVG: &str = "baseline_avg";
pub(crate) const M_TARGET: &str = "target_partition_size";
/// Next partition id to allocate for a split (monotone; rebuild resets
/// it to `k + 1`). `0` in pre-lifecycle files: consumers fall back to
/// `max(pid) + 1`.
pub(crate) const M_NEXT_PID: &str = "next_pid";

/// One vector record: the unit of ingestion.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorRecord {
    /// Client-assigned asset identifier (upsert key).
    pub asset_id: i64,
    /// The embedding; must match the index dimension.
    pub vector: Vec<f32>,
    /// Attribute values by name; attributes omitted here are NULL.
    pub attributes: Vec<(String, Value)>,
}

impl VectorRecord {
    /// A record with no attributes.
    pub fn new(asset_id: i64, vector: Vec<f32>) -> VectorRecord {
        VectorRecord {
            asset_id,
            vector,
            attributes: Vec::new(),
        }
    }

    /// Adds an attribute value.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<Value>) -> VectorRecord {
        self.attributes.push((name.into(), value.into()));
        self
    }
}

pub(crate) struct Tables {
    pub vectors: Table,
    pub assets: Table,
    pub centroids: Table,
    pub attrs: Table,
    pub meta: Table,
    /// Quantized vector codes, clustered like `vectors` — present only
    /// for quantized codecs.
    pub codes: Option<Table>,
    /// Per-partition quantization ranges — present only for quantized
    /// codecs.
    pub quants: Option<Table>,
}

/// The loaded IVF quantizer: centroids, their partition ids, and (for
/// large `k`) the two-level centroid index of §3.2's extension.
#[derive(Clone)]
pub(crate) struct LoadedIndex {
    pub clustering: Arc<Clustering>,
    /// Partition id per centroid index.
    pub partitions: Arc<Vec<i64>>,
    pub super_index: Option<Arc<crate::centroid_index::CentroidIndex>>,
}

impl LoadedIndex {
    /// The `n` nearest partitions to `x` (ascending by centroid
    /// distance), through the hierarchy when one exists.
    pub fn nearest_partitions(&self, x: &[f32], n: usize) -> Vec<i64> {
        let ranked = match &self.super_index {
            Some(idx) => idx.nearest_n(&self.clustering, x, n),
            None => self.clustering.nearest_n(x, n),
        };
        ranked
            .into_iter()
            .map(|(ci, _)| self.partitions[ci])
            .collect()
    }
}

pub(crate) struct CentroidCache {
    /// Index epoch (`M_EPOCH`) the entry was loaded under.
    pub epoch: i64,
    /// Commit seq of the snapshot the entry was loaded from. Publish
    /// policy: only committed snapshots may publish, and an older
    /// snapshot never clobbers a newer entry.
    pub seq: u64,
    pub index: LoadedIndex,
}

/// Per-partition quantization ranges (SQ8 catalogs), keyed like
/// [`CentroidCache`] on `(epoch, snapshot commit seq)`.
type QuantCache = Option<(i64, u64, HashMap<i64, Arc<Sq8Params>>)>;

pub(crate) struct Inner {
    pub db: Database,
    pub tables: Tables,
    pub dim: usize,
    pub metric: Metric,
    pub cfg: Config,
    pub centroid_cache: RwLock<Option<CentroidCache>>,
    /// Attribute statistics keyed on the *commit seq* of the snapshot
    /// they were loaded from — any committed write (upsert, delete,
    /// flush) can change them, so the epoch alone is not a valid key.
    pub stats_cache: RwLock<Option<(u64, Arc<TableStats>)>>,
    /// Per-partition quantization ranges: ranges change only under
    /// maintenance, which bumps the epoch in the same transaction.
    pub quant_cache: RwLock<QuantCache>,
    /// Persistent worker pool for parallel partition scans (Figure 3).
    /// Every query path fans out through its typed
    /// `parallel_indexed` primitive; no call site hand-rolls
    /// dispatch, error capture, or panic handling.
    pub scan_pool: crate::pool::ScanPool,
    /// Total row-level DB mutations (Figure 10d's "No. of DB row
    /// changes").
    pub row_changes: AtomicU64,
    /// Per-partition quantizer range-drift counters, `partition →
    /// (clamped rows, appended rows)`, fed by delta flushes that encode
    /// new rows under a partition's existing ranges. The maintainer
    /// reads [`Inner::drift_candidate`] to schedule retrains; every
    /// wholesale re-encode resets its partition's counter. In-process
    /// only (drift re-accumulates after reopen, which is fine — it is
    /// a heuristic, not an invariant).
    pub drift: Mutex<BTreeMap<i64, (u64, u64)>>,
    /// Telemetry hub: metrics registry, trace-sink mount point (shared
    /// with the store), and the slow-query log.
    pub tel: Arc<crate::telemetry::DbTelemetry>,
}

/// An embedded, disk-resident, updatable vector database (the paper's
/// MicroNN). Cheap to clone; safe to share across threads (one writer
/// at a time, any number of snapshot-isolated readers).
#[derive(Clone)]
pub struct MicroNN {
    pub(crate) inner: Arc<Inner>,
}

impl MicroNN {
    /// Creates a new index at `path`.
    pub fn create(path: impl AsRef<std::path::Path>, mut config: Config) -> Result<MicroNN> {
        config.validate()?;
        // One trace-sink cell spans the whole stack: mount the hub's
        // cell into the store options before the store opens, so WAL
        // group commits and checkpoints land in the same sink as
        // query stages and maintenance actions.
        let tel = Arc::new(crate::telemetry::DbTelemetry::new(&config));
        config.store.trace = Arc::clone(&tel.sink);
        let db = Database::create(path, config.store.clone())?;
        db.store()
            .io()
            .register_into(&tel.registry, "micronn_store_");
        let mut txn = db.begin_write()?;

        let meta = db.create_table(
            &mut txn,
            TableSchema::new(
                "meta",
                vec![
                    ColumnDef::new("key", ValueType::Text),
                    ColumnDef::nullable("ival", ValueType::Integer),
                    ColumnDef::nullable("tval", ValueType::Text),
                ],
                &["key"],
            )
            .map_err(Error::Rel)?,
        )?;
        let vectors = db.create_table(
            &mut txn,
            TableSchema::new(
                "vectors",
                vec![
                    ColumnDef::new("partition", ValueType::Integer),
                    ColumnDef::new("vid", ValueType::Integer),
                    ColumnDef::new("asset", ValueType::Integer),
                    ColumnDef::new("vec", ValueType::Blob),
                ],
                &["partition", "vid"],
            )
            .map_err(Error::Rel)?,
        )?;
        let assets = db.create_table(
            &mut txn,
            TableSchema::new(
                "assets",
                vec![
                    ColumnDef::new("asset", ValueType::Integer),
                    ColumnDef::new("partition", ValueType::Integer),
                    ColumnDef::new("vid", ValueType::Integer),
                ],
                &["asset"],
            )
            .map_err(Error::Rel)?,
        )?;
        let centroids = db.create_table(
            &mut txn,
            TableSchema::new(
                "centroids",
                vec![
                    ColumnDef::new("partition", ValueType::Integer),
                    ColumnDef::new("centroid", ValueType::Blob),
                    ColumnDef::new("size", ValueType::Integer),
                ],
                &["partition"],
            )
            .map_err(Error::Rel)?,
        )?;
        // Attributes table: asset pk + client-defined columns (all
        // nullable: a record may omit any attribute).
        let mut attr_cols = vec![ColumnDef::new("asset", ValueType::Integer)];
        for a in &config.attributes {
            attr_cols.push(ColumnDef::nullable(a.name.clone(), a.ty));
        }
        let mut attrs = db.create_table(
            &mut txn,
            TableSchema::new("attrs", attr_cols, &["asset"]).map_err(Error::Rel)?,
        )?;
        for a in &config.attributes {
            if a.indexed {
                attrs = db.create_index(&mut txn, &attrs, &format!("by_{}", a.name), &[&a.name])?;
            }
            if a.fts {
                attrs = db.create_fts_index(&mut txn, &attrs, &a.name)?;
            }
        }
        // Quantized catalogs keep codes as a separately clustered
        // payload plus per-partition quantization ranges. SQ8 stores
        // one code row per vector; SQ4 stores one row per 32-vector
        // fastscan block (a slot directory plus the packed nibbles).
        let (codes, quants) = if config.codec.is_quantized() {
            let codes_schema = if config.codec == VectorCodec::Sq4 {
                TableSchema::new(
                    "codes",
                    vec![
                        ColumnDef::new("partition", ValueType::Integer),
                        ColumnDef::new("block", ValueType::Integer),
                        ColumnDef::new("members", ValueType::Blob),
                        ColumnDef::new("packed", ValueType::Blob),
                    ],
                    &["partition", "block"],
                )
            } else {
                TableSchema::new(
                    "codes",
                    vec![
                        ColumnDef::new("partition", ValueType::Integer),
                        ColumnDef::new("vid", ValueType::Integer),
                        ColumnDef::new("asset", ValueType::Integer),
                        ColumnDef::new("code", ValueType::Blob),
                    ],
                    &["partition", "vid"],
                )
            };
            let codes = db.create_table(&mut txn, codes_schema.map_err(Error::Rel)?)?;
            let quants = db.create_table(
                &mut txn,
                TableSchema::new(
                    "quants",
                    vec![
                        ColumnDef::new("partition", ValueType::Integer),
                        ColumnDef::new("params", ValueType::Blob),
                    ],
                    &["partition"],
                )
                .map_err(Error::Rel)?,
            )?;
            (Some(codes), Some(quants))
        } else {
            (None, None)
        };

        // Persist immutable index parameters.
        let set =
            |txn: &mut WriteTxn, t: &Table, key: &str, ival: Option<i64>, tval: Option<&str>| {
                t.upsert(
                    txn,
                    vec![
                        Value::text(key),
                        ival.map(Value::Integer).unwrap_or(Value::Null),
                        tval.map(Value::text).unwrap_or(Value::Null),
                    ],
                )
                .map(|_| ())
            };
        set(&mut txn, &meta, M_DIM, Some(config.dim as i64), None)?;
        set(
            &mut txn,
            &meta,
            M_METRIC,
            None,
            Some(&config.metric.to_string()),
        )?;
        set(&mut txn, &meta, M_CODEC, None, Some(config.codec.name()))?;
        set(&mut txn, &meta, M_NEXT_VID, Some(1), None)?;
        set(&mut txn, &meta, M_EPOCH, Some(0), None)?;
        set(&mut txn, &meta, M_PARTITIONS, Some(0), None)?;
        set(&mut txn, &meta, M_DELTA_COUNT, Some(0), None)?;
        set(&mut txn, &meta, M_BASELINE_AVG, Some(0), None)?;
        set(&mut txn, &meta, M_NEXT_PID, Some(1), None)?;
        set(
            &mut txn,
            &meta,
            M_TARGET,
            Some(config.target_partition_size as i64),
            None,
        )?;
        txn.commit()?;

        Ok(MicroNN {
            inner: Arc::new(Inner {
                tables: Tables {
                    vectors,
                    assets,
                    centroids,
                    attrs,
                    meta,
                    codes,
                    quants,
                },
                dim: config.dim,
                metric: config.metric,
                scan_pool: crate::pool::ScanPool::new(config.effective_workers()),
                cfg: config,
                db,
                centroid_cache: RwLock::new(None),
                stats_cache: RwLock::new(None),
                quant_cache: RwLock::new(None),
                row_changes: AtomicU64::new(0),
                drift: Mutex::new(BTreeMap::new()),
                tel,
            }),
        })
    }

    /// Opens an existing index. Persisted parameters (dimension,
    /// metric, attribute schema) are loaded from the database; `config`
    /// supplies runtime knobs (probes, workers, thresholds, store
    /// options). A non-zero `config.dim` is validated against the file.
    pub fn open(path: impl AsRef<std::path::Path>, mut config: Config) -> Result<MicroNN> {
        // Same cell-sharing as `create`: the store must see the hub's
        // trace sink from the first page it touches.
        let tel = Arc::new(crate::telemetry::DbTelemetry::new(&config));
        config.store.trace = Arc::clone(&tel.sink);
        let db = Database::open(path, config.store.clone())?;
        db.store()
            .io()
            .register_into(&tel.registry, "micronn_store_");
        let r = db.begin_read();
        let meta = db.open_table(&r, "meta")?;
        let get_int = |key: &str| -> Result<i64> {
            meta.get(&r, &[Value::text(key)])?
                .and_then(|row| row[1].as_integer())
                .ok_or_else(|| Error::Config(format!("meta key {key} missing")))
        };
        let dim = get_int(M_DIM)? as usize;
        let metric_name = meta
            .get(&r, &[Value::text(M_METRIC)])?
            .and_then(|row| row[2].as_text().map(str::to_owned))
            .ok_or_else(|| Error::Config("meta key metric missing".into()))?;
        let metric = Metric::parse(&metric_name)
            .ok_or_else(|| Error::Config(format!("unknown metric {metric_name}")))?;
        if config.dim != 0 && config.dim != dim {
            return Err(Error::DimensionMismatch {
                expected: dim,
                got: config.dim,
            });
        }
        // Codec is part of the catalog: files created before the codec
        // column existed read as plain f32. Asking for a quantized
        // codec the file does not carry cannot be honoured — the codes
        // were never written, or were written in the other quantized
        // layout (SQ8 rows vs SQ4 blocks) — so it is an open-time
        // error rather than a silent downgrade.
        let codec = match meta
            .get(&r, &[Value::text(M_CODEC)])?
            .and_then(|row| row[2].as_text().map(str::to_owned))
        {
            Some(name) => VectorCodec::parse(&name)
                .ok_or_else(|| Error::Config(format!("unknown vector codec {name}")))?,
            None => VectorCodec::F32,
        };
        if config.codec.is_quantized() && codec != config.codec {
            return Err(Error::Config(format!(
                "index was created with codec {codec}; cannot open as {}",
                config.codec
            )));
        }
        let target = get_int(M_TARGET)? as usize;
        config.dim = dim;
        config.metric = metric;
        config.codec = codec;
        config.target_partition_size = target;
        // Reconstruct the attribute definitions from the stored schema.
        let attrs = db.open_table(&r, "attrs")?;
        config.attributes = attrs
            .schema()
            .columns
            .iter()
            .skip(1)
            .map(|c| {
                let idx = attrs.schema().column_index(&c.name).expect("own column");
                AttributeDef {
                    name: c.name.clone(),
                    ty: c.ty,
                    indexed: attrs.index_on(&[idx]).is_some(),
                    fts: attrs.fts_on(idx).is_some(),
                }
            })
            .collect();

        // Open-time validation: a quantized catalog must carry its
        // codes and quantization-range tables.
        let (codes, quants) = if codec.is_quantized() {
            let codes = db.open_table(&r, "codes").map_err(|_| {
                Error::Config(format!("{codec} catalog is missing its codes table"))
            })?;
            let quants = db.open_table(&r, "quants").map_err(|_| {
                Error::Config(format!("{codec} catalog is missing its quants table"))
            })?;
            (Some(codes), Some(quants))
        } else {
            (None, None)
        };
        let tables = Tables {
            vectors: db.open_table(&r, "vectors")?,
            assets: db.open_table(&r, "assets")?,
            centroids: db.open_table(&r, "centroids")?,
            attrs,
            meta,
            codes,
            quants,
        };
        drop(r);
        Ok(MicroNN {
            inner: Arc::new(Inner {
                tables,
                dim,
                metric,
                scan_pool: crate::pool::ScanPool::new(config.effective_workers()),
                cfg: config,
                db,
                centroid_cache: RwLock::new(None),
                stats_cache: RwLock::new(None),
                quant_cache: RwLock::new(None),
                row_changes: AtomicU64::new(0),
                drift: Mutex::new(BTreeMap::new()),
                tel,
            }),
        })
    }

    /// Opens `path`, creating it first if missing. Existence is probed
    /// through the configured [`micronn_storage::Vfs`], so this works
    /// under the simulated file system too.
    pub fn open_or_create(path: impl AsRef<std::path::Path>, config: Config) -> Result<MicroNN> {
        if config.store.vfs.exists(path.as_ref()) {
            MicroNN::open(path, config)
        } else {
            MicroNN::create(path, config)
        }
    }

    /// Index dimensionality.
    pub fn dim(&self) -> usize {
        self.inner.dim
    }

    /// Index metric.
    pub fn metric(&self) -> Metric {
        self.inner.metric
    }

    /// The vector codec this index was created with.
    pub fn codec(&self) -> VectorCodec {
        self.inner.cfg.codec
    }

    /// The underlying relational database (diagnostics, raw access).
    pub fn database(&self) -> &Database {
        &self.inner.db
    }

    // ------------------------------------------------------------------
    // Streaming updates (§3.6)
    // ------------------------------------------------------------------

    /// Inserts or replaces one record (upsert semantics on `asset_id`).
    pub fn upsert(&self, record: VectorRecord) -> Result<()> {
        self.upsert_batch(std::slice::from_ref(&record))
    }

    /// Inserts or replaces a batch of records in one transaction. New
    /// vectors land in the delta store, immediately visible to every
    /// subsequent search (Algorithm 2 always scans the delta
    /// partition).
    pub fn upsert_batch(&self, records: &[VectorRecord]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let inner = &*self.inner;
        let mut txn = inner.db.begin_write()?;
        let mut next_vid = meta_int(&txn, &inner.tables.meta, M_NEXT_VID)?;
        let mut delta = meta_int(&txn, &inner.tables.meta, M_DELTA_COUNT)?;
        for rec in records {
            if rec.vector.len() != inner.dim {
                return Err(Error::DimensionMismatch {
                    expected: inner.dim,
                    got: rec.vector.len(),
                });
            }
            // Replace: remove the previous vector row wherever it lives.
            if let Some(prev) = inner
                .tables
                .assets
                .get(&txn, &[Value::Integer(rec.asset_id)])?
            {
                let (p, v) = (prev[1].clone(), prev[2].clone());
                if p.as_integer() == Some(DELTA_PARTITION) {
                    delta -= 1;
                } else {
                    // The replaced vector lived in an indexed
                    // partition: its quantized code is stale too.
                    if crate::codec::remove_code(
                        &mut txn,
                        &inner.tables,
                        inner.cfg.codec,
                        inner.dim,
                        p.as_integer().unwrap_or(0),
                        v.as_integer().unwrap_or(0),
                    )? {
                        inner.row_changes.fetch_add(1, Ordering::Relaxed);
                    }
                    // Keep the per-partition size stats exact: the
                    // lifecycle policy reads them to pick split/merge
                    // candidates.
                    if adjust_partition_size(
                        &mut txn,
                        &inner.tables.centroids,
                        p.as_integer().unwrap_or(0),
                        -1,
                    )? {
                        inner.row_changes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                inner.tables.vectors.delete(&mut txn, &[p, v])?;
                inner.row_changes.fetch_add(1, Ordering::Relaxed);
            }
            let vid = next_vid;
            next_vid += 1;
            inner.tables.vectors.upsert(
                &mut txn,
                vec![
                    Value::Integer(DELTA_PARTITION),
                    Value::Integer(vid),
                    Value::Integer(rec.asset_id),
                    Value::Blob(f32_to_blob(&rec.vector)),
                ],
            )?;
            delta += 1;
            inner.tables.assets.upsert(
                &mut txn,
                vec![
                    Value::Integer(rec.asset_id),
                    Value::Integer(DELTA_PARTITION),
                    Value::Integer(vid),
                ],
            )?;
            let attr_row = self.build_attr_row(rec)?;
            inner.tables.attrs.upsert(&mut txn, attr_row)?;
            inner.row_changes.fetch_add(3, Ordering::Relaxed);
        }
        set_meta_int(&mut txn, &inner.tables.meta, M_NEXT_VID, next_vid)?;
        set_meta_int(&mut txn, &inner.tables.meta, M_DELTA_COUNT, delta)?;
        txn.commit()?;
        Ok(())
    }

    /// Deletes a single asset. Returns `true` if it existed.
    pub fn delete(&self, asset_id: i64) -> Result<bool> {
        Ok(self.delete_batch(&[asset_id])? == 1)
    }

    /// Deletes a batch of assets in one transaction; returns how many
    /// existed.
    pub fn delete_batch(&self, asset_ids: &[i64]) -> Result<usize> {
        if asset_ids.is_empty() {
            return Ok(0);
        }
        let inner = &*self.inner;
        let mut txn = inner.db.begin_write()?;
        let mut delta = meta_int(&txn, &inner.tables.meta, M_DELTA_COUNT)?;
        let mut removed = 0usize;
        for &asset in asset_ids {
            let Some(prev) = inner
                .tables
                .assets
                .delete(&mut txn, &[Value::Integer(asset)])?
            else {
                continue;
            };
            let (p, v) = (prev[1].clone(), prev[2].clone());
            if p.as_integer() == Some(DELTA_PARTITION) {
                delta -= 1;
            } else {
                if crate::codec::remove_code(
                    &mut txn,
                    &inner.tables,
                    inner.cfg.codec,
                    inner.dim,
                    p.as_integer().unwrap_or(0),
                    v.as_integer().unwrap_or(0),
                )? {
                    inner.row_changes.fetch_add(1, Ordering::Relaxed);
                }
                if adjust_partition_size(
                    &mut txn,
                    &inner.tables.centroids,
                    p.as_integer().unwrap_or(0),
                    -1,
                )? {
                    inner.row_changes.fetch_add(1, Ordering::Relaxed);
                }
            }
            inner.tables.vectors.delete(&mut txn, &[p, v])?;
            inner
                .tables
                .attrs
                .delete(&mut txn, &[Value::Integer(asset)])?;
            inner.row_changes.fetch_add(3, Ordering::Relaxed);
            removed += 1;
        }
        set_meta_int(&mut txn, &inner.tables.meta, M_DELTA_COUNT, delta)?;
        txn.commit()?;
        Ok(removed)
    }

    /// Fetches the stored vector of an asset.
    pub fn get_vector(&self, asset_id: i64) -> Result<Option<Vec<f32>>> {
        let inner = &*self.inner;
        let r = inner.db.begin_read();
        let Some(loc) = inner.tables.assets.get(&r, &[Value::Integer(asset_id)])? else {
            return Ok(None);
        };
        let row = inner
            .tables
            .vectors
            .get(&r, &[loc[1].clone(), loc[2].clone()])?
            .ok_or_else(|| {
                Error::Rel(RelError::Codec(format!(
                    "asset {asset_id}: dangling vector reference"
                )))
            })?;
        let blob = row[3]
            .as_blob()
            .ok_or_else(|| Error::Rel(RelError::Codec("vector column is not a blob".into())))?;
        Ok(Some(blob_to_f32(blob).map_err(Error::Rel)?))
    }

    /// Fetches the attributes of an asset as `(name, value)` pairs
    /// (NULLs omitted).
    pub fn get_attributes(&self, asset_id: i64) -> Result<Option<Vec<(String, Value)>>> {
        let inner = &*self.inner;
        let r = inner.db.begin_read();
        let Some(row) = inner.tables.attrs.get(&r, &[Value::Integer(asset_id)])? else {
            return Ok(None);
        };
        let schema = inner.tables.attrs.schema();
        Ok(Some(
            row.into_iter()
                .enumerate()
                .skip(1)
                .filter(|(_, v)| !v.is_null())
                .map(|(i, v)| (schema.columns[i].name.clone(), v))
                .collect(),
        ))
    }

    /// True if the asset exists.
    pub fn contains(&self, asset_id: i64) -> Result<bool> {
        let inner = &*self.inner;
        let r = inner.db.begin_read();
        Ok(inner
            .tables
            .assets
            .contains(&r, &[Value::Integer(asset_id)])?)
    }

    /// Number of stored vectors.
    pub fn len(&self) -> Result<u64> {
        let inner = &*self.inner;
        let r = inner.db.begin_read();
        Ok(inner.tables.vectors.row_count(&r)?)
    }

    /// True when no vectors are stored.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Vectors currently staged in the delta store.
    pub fn delta_len(&self) -> Result<u64> {
        let inner = &*self.inner;
        let r = inner.db.begin_read();
        Ok(meta_int(&r, &inner.tables.meta, M_DELTA_COUNT)? as u64)
    }

    /// Current `(partition id, vector count)` of every indexed
    /// partition, ascending by partition id. Sizes are maintained
    /// exactly across upserts, deletes, flushes, and lifecycle
    /// operations; the lifecycle policy and the `micronnctl status`
    /// histogram read them.
    pub fn partition_sizes(&self) -> Result<Vec<(i64, u64)>> {
        let inner = &*self.inner;
        let r = inner.db.begin_read();
        read_partition_sizes(&r, &inner.tables.centroids)
    }

    /// Cumulative storage-layer I/O counters (buffer-pool hit/miss,
    /// evictions, WAL/main reads and writes, fsyncs, prefetch
    /// activity). Benchmarks diff two snapshots via
    /// [`micronn_storage::StoreStats::since`] to report cache hit
    /// rates per phase.
    pub fn io_stats(&self) -> micronn_storage::StoreStats {
        self.inner.db.store().stats()
    }

    /// Drops all in-process and page caches: the paper's ColdStart
    /// scenario (§4.1.4).
    pub fn purge_caches(&self) {
        self.inner.db.store().purge_cache();
        *self.inner.centroid_cache.write() = None;
        *self.inner.stats_cache.write() = None;
        *self.inner.quant_cache.write() = None;
    }

    /// Checkpoints the WAL into the main database file.
    pub fn checkpoint(&self) -> Result<bool> {
        Ok(self.inner.db.store().checkpoint()?)
    }

    /// Online backup: checkpoints, then copies the main database file
    /// (plus the WAL if a pinned reader kept the checkpoint partial) to
    /// `dest`/`dest`-wal. The copy is taken under the writer lock via a
    /// brief write transaction, so it is a transactionally consistent
    /// snapshot; readers are never blocked. The copy itself goes
    /// through the configured [`micronn_storage::Vfs`], so backups work
    /// (and are crash-testable) under the simulated file system too.
    pub fn backup_to(&self, dest: impl AsRef<std::path::Path>) -> Result<()> {
        let dest = dest.as_ref();
        let store = self.inner.db.store();
        let vfs = &*self.inner.cfg.store.vfs;
        let _ = store.checkpoint()?;
        // Hold the writer lock (empty txn) while copying so no commit
        // lands mid-copy.
        let txn = self.inner.db.begin_write()?;
        vfs_copy(vfs, store.path(), dest)?;
        let wal_src = {
            let mut os = store.path().as_os_str().to_owned();
            os.push("-wal");
            std::path::PathBuf::from(os)
        };
        let wal_dest = {
            let mut os = dest.as_os_str().to_owned();
            os.push("-wal");
            std::path::PathBuf::from(os)
        };
        if vfs.exists(&wal_src) {
            vfs_copy(vfs, &wal_src, &wal_dest)?;
        } else if vfs.exists(&wal_dest) {
            // A stale WAL from an earlier backup at this destination
            // would replay over the fresh copy: truncate it to empty
            // (recovery treats a headerless WAL as absent).
            let f = vfs
                .open(&wal_dest, micronn_storage::OpenMode::CreateTruncate)
                .map_err(|e| Error::Config(format!("backup wal truncate failed: {e}")))?;
            f.sync()
                .map_err(|e| Error::Config(format!("backup wal truncate failed: {e}")))?;
        }
        txn.rollback();
        Ok(())
    }

    fn build_attr_row(&self, rec: &VectorRecord) -> Result<Vec<Value>> {
        let schema = self.inner.tables.attrs.schema();
        let mut row = vec![Value::Null; schema.arity()];
        row[0] = Value::Integer(rec.asset_id);
        for (name, value) in &rec.attributes {
            let idx = schema
                .column_index(name)
                .map_err(|_| Error::Config(format!("unknown attribute {name}")))?;
            row[idx] = value.clone();
        }
        Ok(row)
    }
}

impl std::fmt::Debug for MicroNN {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MicroNN")
            .field("dim", &self.inner.dim)
            .field("metric", &self.inner.metric)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Shared internal helpers
// ---------------------------------------------------------------------------

/// Copies `src` to `dest` (created/truncated) through the VFS, syncing
/// the destination before returning.
fn vfs_copy(
    vfs: &dyn micronn_storage::Vfs,
    src: &std::path::Path,
    dest: &std::path::Path,
) -> Result<()> {
    let fail = |e: std::io::Error| Error::Config(format!("backup copy failed: {e}"));
    let s = vfs
        .open(src, micronn_storage::OpenMode::Open)
        .map_err(fail)?;
    let d = vfs
        .open(dest, micronn_storage::OpenMode::CreateTruncate)
        .map_err(fail)?;
    let len = s.len().map_err(fail)?;
    let mut buf = vec![0u8; 1 << 20];
    let mut off = 0u64;
    while off < len {
        let n = ((len - off) as usize).min(buf.len());
        s.read_exact_at(&mut buf[..n], off).map_err(fail)?;
        d.write_all_at(&buf[..n], off).map_err(fail)?;
        off += n as u64;
    }
    d.sync().map_err(fail)?;
    Ok(())
}

/// Reads an integer meta value (0 when NULL).
pub(crate) fn meta_int<R: PageRead + ?Sized>(r: &R, meta: &Table, key: &str) -> Result<i64> {
    Ok(meta
        .get(r, &[Value::text(key)])?
        .and_then(|row| row[1].as_integer())
        .unwrap_or(0))
}

/// Writes an integer meta value.
pub(crate) fn set_meta_int(txn: &mut WriteTxn, meta: &Table, key: &str, v: i64) -> Result<()> {
    meta.upsert(txn, vec![Value::text(key), Value::Integer(v), Value::Null])?;
    Ok(())
}

/// Adjusts the stored size of one indexed partition by `delta`
/// (clamped at zero). Returns whether the centroid row existed.
pub(crate) fn adjust_partition_size(
    txn: &mut WriteTxn,
    centroids: &Table,
    partition: i64,
    delta: i64,
) -> Result<bool> {
    let Some(mut row) = centroids.get(txn, &[Value::Integer(partition)])? else {
        return Ok(false);
    };
    let size = row[2].as_integer().unwrap_or(0) + delta;
    row[2] = Value::Integer(size.max(0));
    centroids.upsert(txn, row)?;
    Ok(true)
}

/// Reads every indexed partition's `(id, size)` from the centroid
/// table, ascending by partition id (the table's key order).
pub(crate) fn read_partition_sizes<R: PageRead + ?Sized>(
    r: &R,
    centroids: &Table,
) -> Result<Vec<(i64, u64)>> {
    let mut sizes = Vec::new();
    for row in centroids.scan(r)? {
        let row = row?;
        sizes.push((
            row[0].as_integer().unwrap_or(0),
            row[2].as_integer().unwrap_or(0).max(0) as u64,
        ));
    }
    Ok(sizes)
}

/// Materializes one partition's rows as `(vid, asset, vector)` — the
/// shared read behind delta flushes and per-partition re-encoding.
/// Partitions are bounded (~`target_partition_size`), so buffering one
/// is cheap.
pub(crate) fn read_partition_members<R: PageRead + ?Sized>(
    r: &R,
    vectors: &Table,
    partition: i64,
) -> Result<Vec<(i64, i64, Vec<f32>)>> {
    use micronn_rel::RowDecoder;
    let mut members = Vec::new();
    for kv in vectors.scan_pk_prefix_raw(r, &[Value::Integer(partition)])? {
        let (_, row) = kv?;
        let mut dec = RowDecoder::new(&row)?;
        dec.skip()?; // partition
        let vid = dec
            .next_value()?
            .as_integer()
            .ok_or_else(|| Error::Config("vid column is not an integer".into()))?;
        let asset = dec
            .next_value()?
            .as_integer()
            .ok_or_else(|| Error::Config("asset column is not an integer".into()))?;
        let vec = blob_to_f32(dec.next_blob()?)?;
        members.push((vid, asset, vec));
    }
    Ok(members)
}

/// Minimum appended rows before a partition's clamped fraction is
/// trusted as a drift signal (tiny samples are all noise).
pub(crate) const MIN_DRIFT_SAMPLE: u64 = 16;

impl Inner {
    /// Whether scans should read quantized codes (SQ8 catalog).
    pub(crate) fn quantized(&self) -> bool {
        self.cfg.codec.is_quantized()
    }

    /// Accumulates a flush's clamped/appended counts for `partition`.
    pub(crate) fn note_drift(&self, partition: i64, clamped: u64, appended: u64) {
        if appended == 0 {
            return;
        }
        let mut map = self.drift.lock();
        let e = map.entry(partition).or_insert((0, 0));
        e.0 += clamped;
        e.1 += appended;
    }

    /// Forgets the drift counter of one partition (it was just
    /// re-encoded under fresh ranges, or retired).
    pub(crate) fn reset_drift(&self, partition: i64) {
        self.drift.lock().remove(&partition);
    }

    /// Forgets all drift counters (a rebuild re-encoded everything).
    pub(crate) fn clear_drift(&self) {
        self.drift.lock().clear();
    }

    /// The partition whose clamped-row fraction most exceeds `limit`
    /// (with at least [`MIN_DRIFT_SAMPLE`] appended rows), if any.
    pub(crate) fn drift_candidate(&self, limit: f64) -> Option<(i64, f64)> {
        let map = self.drift.lock();
        map.iter()
            .filter(|(_, (_, total))| *total >= MIN_DRIFT_SAMPLE)
            .map(|(pid, (clamped, total))| (*pid, *clamped as f64 / *total as f64))
            .filter(|(_, frac)| *frac > limit)
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Loads (or returns the cached) IVF quantizer: the centroid matrix
    /// plus the partition id per centroid, and — once `k` crosses the
    /// configured threshold — the two-level centroid index. `None`
    /// before the first index build.
    ///
    /// Cache protocol (shared by [`Inner::partition_params`]): the
    /// epoch is read *under the caller's snapshot*, and the cache is
    /// used only when the caller is a committed read snapshot
    /// ([`PageRead::committed_snapshot`] is `Some`) whose epoch matches
    /// the entry's. Epochs are monotone and every centroid/range
    /// change commits an epoch bump in the same transaction, so epoch
    /// equality between two snapshots implies identical centroid
    /// state. Write transactions never hit or publish the cache: a
    /// mid-transaction writer may have already changed centroid rows
    /// (before its epoch bump), and a rolled-back writer must not
    /// poison readers with data that never committed.
    pub(crate) fn clustering<R: PageRead + ?Sized>(&self, r: &R) -> Result<Option<LoadedIndex>> {
        let epoch = meta_int(r, &self.tables.meta, M_EPOCH)?;
        let snap = r.committed_snapshot();
        if snap.is_some() {
            if let Some(cache) = self.centroid_cache.read().as_ref() {
                if cache.epoch == epoch {
                    return Ok(Some(cache.index.clone()));
                }
            }
        }
        let mut partitions = Vec::new();
        let mut flat: Vec<f32> = Vec::new();
        for row in self.tables.centroids.scan(r)? {
            let row = row?;
            let pid = row[0].as_integer().unwrap_or(0);
            let blob = row[1]
                .as_blob()
                .ok_or_else(|| RelError::Codec("centroid column is not a blob".into()))?;
            let v = blob_to_f32(blob)?;
            if v.len() != self.dim {
                return Err(Error::Config(format!(
                    "centroid for partition {pid} has dim {}, index is {}",
                    v.len(),
                    self.dim
                )));
            }
            partitions.push(pid);
            flat.extend_from_slice(&v);
        }
        if partitions.is_empty() {
            return Ok(None);
        }
        let clustering = Arc::new(Clustering::new(flat, self.dim, self.metric));
        let super_index = if partitions.len() >= self.cfg.centroid_index_threshold {
            Some(Arc::new(crate::centroid_index::CentroidIndex::build(
                &clustering,
                self.cfg.seed,
            )))
        } else {
            None
        };
        let index = LoadedIndex {
            clustering,
            partitions: Arc::new(partitions),
            super_index,
        };
        if let Some(s) = snap {
            let mut guard = self.centroid_cache.write();
            // A reader on an older snapshot must not clobber an entry
            // published by a newer one.
            if !guard.as_ref().is_some_and(|c| c.seq > s) {
                *guard = Some(CentroidCache {
                    epoch,
                    seq: s,
                    index: index.clone(),
                });
            }
        }
        Ok(Some(index))
    }

    /// Loads (or returns the cached) quantization ranges of one
    /// partition (SQ8 catalogs; `None` for unquantized catalogs, the
    /// delta store, and never-encoded partitions). Ranges only change
    /// under maintenance — which bumps the epoch in the same
    /// transaction — so the cache follows the same
    /// `(epoch, snapshot seq)` protocol as [`Inner::clustering`]:
    /// committed snapshots with a matching epoch share one map, write
    /// transactions bypass the cache entirely.
    pub(crate) fn partition_params<R: PageRead + ?Sized>(
        &self,
        r: &R,
        partition: i64,
    ) -> Result<Option<Arc<Sq8Params>>> {
        if self.tables.quants.is_none() {
            return Ok(None);
        }
        let epoch = meta_int(r, &self.tables.meta, M_EPOCH)?;
        let snap = r.committed_snapshot();
        if snap.is_some() {
            if let Some((e, _, map)) = self.quant_cache.read().as_ref() {
                if *e == epoch {
                    if let Some(p) = map.get(&partition) {
                        return Ok(Some(p.clone()));
                    }
                }
            }
        }
        let loaded = crate::codec::load_params(r, &self.tables, partition, self.dim)?.map(Arc::new);
        if let (Some(p), Some(s)) = (&loaded, snap) {
            let mut guard = self.quant_cache.write();
            match guard.as_mut() {
                // Same epoch ⇒ same ranges (see `clustering`): merging
                // into the shared map is sound from any matching
                // committed snapshot; keep the newest seq as the key.
                Some((e, seq, map)) if *e == epoch => {
                    map.insert(partition, p.clone());
                    *seq = (*seq).max(s);
                }
                Some((_, seq, _)) if *seq > s => {} // newer entry wins
                _ => {
                    let mut map = HashMap::new();
                    map.insert(partition, p.clone());
                    *guard = Some((epoch, s, map));
                }
            }
        }
        Ok(loaded)
    }

    /// Loads (or returns the cached) attribute statistics.
    ///
    /// Unlike centroids and quantization ranges, attribute statistics
    /// change with *every* committed write (upserts and deletes touch
    /// `attrs` without bumping the epoch), so the cache is keyed on
    /// the snapshot's commit seq: a hit requires the reader to be
    /// pinned at exactly the seq the stats were loaded from. Write
    /// transactions always load fresh and never publish.
    pub(crate) fn table_stats<R: PageRead + ?Sized>(&self, r: &R) -> Result<Arc<TableStats>> {
        let snap = r.committed_snapshot();
        if let Some(s) = snap {
            if let Some((seq, stats)) = self.stats_cache.read().as_ref() {
                if *seq == s {
                    return Ok(stats.clone());
                }
            }
        }
        let stats = Arc::new(TableStats::load(r, &self.tables.attrs)?);
        if let Some(s) = snap {
            let mut guard = self.stats_cache.write();
            if !guard.as_ref().is_some_and(|(seq, _)| *seq > s) {
                *guard = Some((s, stats.clone()));
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronn_storage::SyncMode;

    fn test_config(dim: usize) -> Config {
        let mut c = Config::new(dim, Metric::L2);
        c.store.sync = SyncMode::Off;
        c.attributes = vec![
            AttributeDef::indexed("location", ValueType::Text),
            AttributeDef::new("taken_at", ValueType::Integer),
            AttributeDef::full_text("tags"),
        ];
        c
    }

    fn vecf(seed: u64, dim: usize) -> Vec<f32> {
        (0..dim)
            .map(|i| ((seed * 31 + i as u64) % 97) as f32 / 97.0)
            .collect()
    }

    #[test]
    fn create_upsert_get_delete() {
        let dir = tempfile::tempdir().unwrap();
        let db = MicroNN::create(dir.path().join("x.mnn"), test_config(16)).unwrap();
        assert!(db.is_empty().unwrap());
        db.upsert(
            VectorRecord::new(1, vecf(1, 16))
                .with_attr("location", "Seattle")
                .with_attr("tags", "black cat"),
        )
        .unwrap();
        db.upsert(VectorRecord::new(2, vecf(2, 16))).unwrap();
        assert_eq!(db.len().unwrap(), 2);
        assert_eq!(db.delta_len().unwrap(), 2);
        assert!(db.contains(1).unwrap());
        assert_eq!(db.get_vector(1).unwrap().unwrap(), vecf(1, 16));
        let attrs = db.get_attributes(1).unwrap().unwrap();
        assert!(attrs.contains(&("location".into(), Value::text("Seattle"))));
        assert_eq!(db.get_attributes(2).unwrap().unwrap(), vec![]);

        // Upsert replaces.
        db.upsert(VectorRecord::new(1, vecf(9, 16))).unwrap();
        assert_eq!(db.len().unwrap(), 2);
        assert_eq!(db.get_vector(1).unwrap().unwrap(), vecf(9, 16));

        assert!(db.delete(1).unwrap());
        assert!(!db.delete(1).unwrap());
        assert_eq!(db.len().unwrap(), 1);
        assert!(db.get_vector(1).unwrap().is_none());
        assert_eq!(db.delta_len().unwrap(), 1);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let dir = tempfile::tempdir().unwrap();
        let db = MicroNN::create(dir.path().join("x.mnn"), test_config(16)).unwrap();
        let err = db.upsert(VectorRecord::new(1, vecf(1, 8))).unwrap_err();
        assert!(matches!(
            err,
            Error::DimensionMismatch {
                expected: 16,
                got: 8
            }
        ));
        assert!(db.is_empty().unwrap(), "failed upsert leaves no residue");
    }

    #[test]
    fn unknown_attribute_rejected() {
        let dir = tempfile::tempdir().unwrap();
        let db = MicroNN::create(dir.path().join("x.mnn"), test_config(8)).unwrap();
        let err = db
            .upsert(VectorRecord::new(1, vecf(1, 8)).with_attr("nope", 1i64))
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn reopen_restores_schema_and_data() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("x.mnn");
        {
            let db = MicroNN::create(&path, test_config(16)).unwrap();
            db.upsert(VectorRecord::new(7, vecf(7, 16)).with_attr("location", "NYC"))
                .unwrap();
        }
        let mut cfg = Config::default();
        cfg.store.sync = SyncMode::Off;
        let db = MicroNN::open(&path, cfg).unwrap();
        assert_eq!(db.dim(), 16);
        assert_eq!(db.metric(), Metric::L2);
        assert_eq!(db.len().unwrap(), 1);
        assert_eq!(db.get_vector(7).unwrap().unwrap(), vecf(7, 16));
        // Attribute schema (incl. index flags) reconstructed.
        let attrs = &db.inner.cfg.attributes;
        assert_eq!(attrs.len(), 3);
        assert!(attrs.iter().any(|a| a.name == "location" && a.indexed));
        assert!(attrs.iter().any(|a| a.name == "tags" && a.fts));
        // Wrong-dim open is rejected.
        let bad = Config {
            dim: 99,
            store: micronn_storage::StoreOptions {
                sync: SyncMode::Off,
                ..Default::default()
            },
            ..Config::default()
        };
        assert!(MicroNN::open(&path, bad).is_err());
    }

    /// Writer-rollback poisoning regression: a write transaction must
    /// neither hit nor publish the centroid/quant/stats caches — a
    /// mid-transaction writer can see centroid rows from *before* its
    /// own epoch bump, and a rolled-back writer's view never existed.
    #[test]
    fn write_txn_bypasses_all_caches() {
        let dir = tempfile::tempdir().unwrap();
        let db = MicroNN::create(dir.path().join("x.mnn"), test_config(8)).unwrap();
        let records: Vec<VectorRecord> = (0..60)
            .map(|i| VectorRecord::new(i, vecf(i as u64, 8)).with_attr("location", "A"))
            .collect();
        db.upsert_batch(&records).unwrap();
        db.rebuild().unwrap();
        db.purge_caches();

        let txn = db.inner.db.begin_write().unwrap();
        assert!(db.inner.clustering(&txn).unwrap().is_some());
        let _ = db.inner.table_stats(&txn).unwrap();
        assert!(
            db.inner.centroid_cache.read().is_none(),
            "writer view must not publish the centroid cache"
        );
        assert!(
            db.inner.stats_cache.read().is_none(),
            "writer view must not publish the stats cache"
        );
        txn.rollback();

        // A committed read snapshot does publish.
        let r = db.inner.db.begin_read();
        assert!(db.inner.clustering(&r).unwrap().is_some());
        let cache = db.inner.centroid_cache.read();
        let cache = cache.as_ref().expect("reader publishes the cache");
        assert_eq!(Some(cache.seq), r.committed_snapshot());
    }

    /// Cache-invalidation race regression: a reader pinned *before* an
    /// epoch bump misses the post-bump cache entry (its epoch differs)
    /// and, after loading its own old view, must not clobber the entry
    /// published by a newer snapshot.
    #[test]
    fn older_snapshot_does_not_clobber_newer_cache_entry() {
        let dir = tempfile::tempdir().unwrap();
        let db = MicroNN::create(dir.path().join("x.mnn"), test_config(8)).unwrap();
        let records: Vec<VectorRecord> = (0..60)
            .map(|i| VectorRecord::new(i, vecf(i as u64, 8)))
            .collect();
        db.upsert_batch(&records).unwrap();
        db.rebuild().unwrap();

        let r_old = db.inner.db.begin_read(); // pinned before the bump
        db.rebuild().unwrap(); // bumps the epoch
        db.purge_caches();

        let r_new = db.inner.db.begin_read();
        assert!(db.inner.clustering(&r_new).unwrap().is_some());
        let (epoch_new, seq_new) = {
            let g = db.inner.centroid_cache.read();
            let c = g.as_ref().unwrap();
            (c.epoch, c.seq)
        };
        assert_eq!(Some(seq_new), r_new.committed_snapshot());

        // The old reader still gets a working (old-epoch) index…
        assert!(db.inner.clustering(&r_old).unwrap().is_some());
        // …but the shared cache still belongs to the newer snapshot.
        let g = db.inner.centroid_cache.read();
        let c = g.as_ref().unwrap();
        assert_eq!(
            (c.epoch, c.seq),
            (epoch_new, seq_new),
            "older snapshot clobbered the newer cache entry"
        );
    }

    /// Stats staleness regression (flush-then-search): attribute
    /// statistics change with every committed write without an epoch
    /// bump, so the cache is keyed on the exact commit seq — a
    /// snapshot taken after new upserts must see the new counts, not a
    /// stale cached copy.
    #[test]
    fn stats_cache_is_keyed_on_commit_seq() {
        let dir = tempfile::tempdir().unwrap();
        let db = MicroNN::create(dir.path().join("x.mnn"), test_config(8)).unwrap();
        let recs = |base: i64| -> Vec<VectorRecord> {
            (base..base + 20)
                .map(|i| VectorRecord::new(i, vecf(i as u64, 8)).with_attr("location", "A"))
                .collect()
        };
        db.upsert_batch(&recs(0)).unwrap();

        let r1 = db.inner.db.begin_read();
        let s1 = db.inner.table_stats(&r1).unwrap();
        assert_eq!(s1.row_count, 20);

        db.upsert_batch(&recs(100)).unwrap(); // no epoch bump

        let r2 = db.inner.db.begin_read();
        let s2 = db.inner.table_stats(&r2).unwrap();
        assert_eq!(s2.row_count, 40, "stale stats served after commit");

        // The old snapshot still resolves its own (older) view, and
        // doing so does not evict the newer entry.
        assert_eq!(db.inner.table_stats(&r1).unwrap().row_count, 20);
        let g = db.inner.stats_cache.read();
        let (seq, stats) = g.as_ref().unwrap();
        assert_eq!(Some(*seq), r2.committed_snapshot());
        assert_eq!(stats.row_count, 40);
    }

    #[test]
    fn batch_upsert_is_atomic_per_batch() {
        let dir = tempfile::tempdir().unwrap();
        let db = MicroNN::create(dir.path().join("x.mnn"), test_config(8)).unwrap();
        let records: Vec<VectorRecord> = (0..100)
            .map(|i| VectorRecord::new(i, vecf(i as u64, 8)))
            .collect();
        db.upsert_batch(&records).unwrap();
        assert_eq!(db.len().unwrap(), 100);
        assert_eq!(db.delta_len().unwrap(), 100);
        assert_eq!(db.delete_batch(&[5, 6, 7, 999]).unwrap(), 3);
        assert_eq!(db.len().unwrap(), 97);
    }
}
