//! The unified scan-executor layer.
//!
//! Every query path in the system — single-query ANN, exhaustive exact
//! KNN, batch-MQO group scans, and both hybrid plans — compiles down
//! to the machinery in this module:
//!
//! * [`PartitionScanner`] is the shared partition-scan frame. It owns
//!   row iteration over the clustered payload tables, header decode,
//!   the §3.5 post-filter join (rows failing the attribute predicate
//!   are dropped *before* any distance computation), and chunked
//!   scoring for every codec: f32 rows go through the batched
//!   one-to-many / GEMM kernels, SQ8 code rows through the batched
//!   [`Sq8Scorer::score_chunk`] kernel, and SQ4 fastscan blocks
//!   through [`micronn_linalg::Sq4Scorer::score_block`] (32 rows per
//!   in-register LUT pass) — block-at-a-time everywhere, never
//!   row-at-a-time.
//! * [`Queries`] selects the query side of a scan: one vector
//!   (single-query search, exact KNN) or a batch group addressing rows
//!   of a flat query matrix (MQO phase 2). The f32 kernels differ by
//!   design — `Queries::One` uses the direct one-to-many kernel,
//!   `Queries::Group` the norm-identity GEMM of §3.4 — so each path
//!   keeps its historical bit-exact behaviour.
//! * [`ScanMetrics`] is the one counter block every path feeds;
//!   [`ScanMetrics::apply_to`] flows it into
//!   [`QueryInfo`](crate::stats::QueryInfo), and the accessors feed
//!   [`BatchResponse`](crate::batch::BatchResponse).
//! * [`rerank_exact`] and [`score_candidates`] are the two
//!   fetch-by-key scoring tails: the exact re-rank pass of the
//!   quantized pipeline and the brute-force tail of the pre-filtering
//!   plan.
//!
//! Fan-out across partitions or queries is *not* handled here: call
//! sites pass per-index jobs to
//! [`ScanPool::parallel_indexed`](crate::pool::ScanPool), which owns
//! the work-stealing cursor, panic propagation, and deterministic
//! first-error capture.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use micronn_linalg::{
    batch_distances, distances_one_to_many, Neighbor, Sq4Scorer, Sq8Scorer, TopK, SQ4_BLOCK,
};
use micronn_rel::{blob_into_f32, Compiled, RowDecoder, Table, Value};
use micronn_storage::ReadTxn;

use crate::codec::VectorCodec;
use crate::db::{Inner, DELTA_PARTITION};
use crate::error::{Error, Result};
use crate::stats::QueryInfo;

/// Rows per batched distance computation in single-query scans.
pub(crate) const SCAN_CHUNK: usize = 256;

/// Rows per matrix-multiplication block in batch group scans.
pub(crate) const BATCH_ROW_CHUNK: usize = 1024;

/// Attribute-filter context applied during partition scans: the §3.5
/// post-filter join evaluates `compiled` against each row's attributes
/// before the vector is decoded or scored.
pub(crate) struct FilterCtx<'a> {
    pub attrs: &'a Table,
    pub compiled: Compiled,
}

/// The unified scan counters: one atomic block shared by every worker
/// of a scan (single-query, batch, hybrid), replacing the per-path
/// counter structs that used to live in `search` and `batch`.
#[derive(Default)]
pub(crate) struct ScanMetrics {
    /// Vectors whose distance was computed.
    pub vectors_scanned: AtomicUsize,
    /// Rows dropped by the post-filter join before scoring.
    pub filtered_out: AtomicUsize,
    /// Vector-payload bytes read (`4·dim` per f32 row, `dim` per SQ8
    /// code row, `16·dim` per scanned SQ4 block, plus `4·dim` per
    /// re-ranked candidate).
    pub bytes_scanned: AtomicUsize,
    /// Candidates re-ranked against exact f32 vectors.
    pub reranked: AtomicUsize,
    /// `(query, vector)` distance computations (quantized scores
    /// included, re-rank recomputations excluded — callers add
    /// [`ScanMetrics::reranked`] when they want them counted).
    pub distance_computations: AtomicUsize,
    /// Nanoseconds spent in the post-filter join, summed across scan
    /// workers. Only populated when the scanner's `time_filter` is set
    /// (a trace sink is listening or the slow-query log is armed);
    /// otherwise stays zero so the filter hot path never reads a clock.
    pub filter_nanos: AtomicU64,
}

impl ScanMetrics {
    /// Flows the counters into a query's [`QueryInfo`].
    pub fn apply_to(&self, info: &mut QueryInfo) {
        info.vectors_scanned = self.vectors_scanned.load(Ordering::Relaxed);
        info.filtered_out = self.filtered_out.load(Ordering::Relaxed);
        info.bytes_scanned = self.bytes_scanned.load(Ordering::Relaxed);
        info.reranked = self.reranked.load(Ordering::Relaxed);
    }

    /// Total distance computations so far.
    pub fn distance_computations(&self) -> usize {
        self.distance_computations.load(Ordering::Relaxed)
    }

    /// Total payload bytes read so far.
    pub fn bytes_scanned(&self) -> usize {
        self.bytes_scanned.load(Ordering::Relaxed)
    }

    /// Total vectors whose distance was computed so far.
    pub fn vectors_scanned(&self) -> usize {
        self.vectors_scanned.load(Ordering::Relaxed)
    }

    /// Total exactly re-ranked candidates so far.
    pub fn reranked(&self) -> usize {
        self.reranked.load(Ordering::Relaxed)
    }

    /// Total nanoseconds spent in the post-filter join so far.
    pub fn filter_nanos(&self) -> u64 {
        self.filter_nanos.load(Ordering::Relaxed)
    }
}

/// The query side of one partition scan.
pub(crate) enum Queries<'a> {
    /// A single query vector (single-query search, exact KNN).
    One(&'a [f32]),
    /// A batch group: `members` are query indexes into the row-major
    /// `flat` matrix (`nq × dim`) — MQO phase 2 scans a partition once
    /// for its whole group.
    Group { flat: &'a [f32], members: &'a [u32] },
}

impl Queries<'_> {
    /// Number of queries scored by this scan (= result heaps needed).
    pub fn len(&self) -> usize {
        match self {
            Queries::One(_) => 1,
            Queries::Group { members, .. } => members.len(),
        }
    }
}

/// The shared chunked partition-scan frame (Algorithm 2 lines 3–11,
/// §3.4's shared group scan, and the §3.5 post-filter join). One
/// scanner is built per scan operation and its [`PartitionScanner::scan`]
/// is called once per partition — typically from
/// [`ScanPool::parallel_indexed`](crate::pool::ScanPool) jobs, so the
/// scanner holds only shared state (`&self`), and all counters are the
/// atomics in [`ScanMetrics`].
pub(crate) struct PartitionScanner<'a> {
    pub inner: &'a Inner,
    pub r: &'a ReadTxn,
    /// Optional §3.5 post-filter; `None` scans every row.
    pub filter: Option<&'a FilterCtx<'a>>,
    pub metrics: &'a ScanMetrics,
    /// Score quantized codes where the catalog has them. Exact KNN
    /// passes `false`: exact semantics are codec-independent.
    pub use_codec: bool,
    /// Clock the post-filter join into [`ScanMetrics::filter_nanos`].
    /// Callers set it from `tel.detailed()` so the disabled path keeps
    /// the filter loop free of `Instant::now` calls.
    pub time_filter: bool,
}

impl PartitionScanner<'_> {
    /// Scans one partition, offering every qualifying row to the
    /// query-aligned `heaps` (`heaps.len() == queries.len()`).
    ///
    /// Quantized catalogs scan the partition's u8 codes when it has
    /// trained ranges; the delta store (and any partition not yet
    /// encoded by maintenance) falls through to full precision.
    pub fn scan(&self, partition: i64, queries: &Queries<'_>, heaps: &mut [TopK]) -> Result<()> {
        debug_assert_eq!(queries.len(), heaps.len());
        if self.use_codec && self.inner.quantized() && partition != DELTA_PARTITION {
            if let Some(params) = self.inner.partition_params(self.r, partition)? {
                return if self.inner.cfg.codec == VectorCodec::Sq4 {
                    self.scan_codes4(partition, queries, &params, heaps)
                } else {
                    self.scan_codes(partition, queries, &params, heaps)
                };
            }
        }
        self.scan_vectors(partition, queries, heaps)
    }

    /// Queues background readahead of the leaf pages [`scan`] would
    /// read for `partition` — the codes table when the quantized path
    /// would run, the f32 vectors table otherwise. Probe fan-out jobs
    /// call this for the *next* partition before scoring the current
    /// one, overlapping the next probe's I/O with this probe's
    /// distance computations. Best-effort and infallible: readahead
    /// must never fail or reorder a query.
    ///
    /// [`scan`]: PartitionScanner::scan
    pub fn prefetch(&self, partition: i64) {
        let prefix = [Value::Integer(partition)];
        if self.use_codec && self.inner.quantized() && partition != DELTA_PARTITION {
            if let (Some(codes), Ok(Some(_))) = (
                self.inner.tables.codes.as_ref(),
                self.inner.partition_params(self.r, partition),
            ) {
                codes.prefetch_pk_prefix(self.r, &prefix);
                return;
            }
        }
        self.inner
            .tables
            .vectors
            .prefetch_pk_prefix(self.r, &prefix);
    }

    /// The post-filter join of §3.5: evaluates the predicate on the
    /// row's attributes (a missing attributes row never matches) and
    /// counts rejections.
    fn passes_filter(&self, asset: i64) -> Result<bool> {
        let Some(f) = self.filter else {
            return Ok(true);
        };
        let t0 = self.time_filter.then(Instant::now);
        let row = f.attrs.get(self.r, &[Value::Integer(asset)])?;
        let matches = match &row {
            Some(attr_row) => f.compiled.eval(attr_row),
            None => false,
        };
        if !matches {
            self.metrics.filtered_out.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(t0) = t0 {
            self.metrics
                .filter_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        Ok(matches)
    }

    /// Full-precision scan frame: decodes f32 rows into `chunk`-row
    /// blocks and scores each block with one batched kernel call.
    fn scan_vectors(
        &self,
        partition: i64,
        queries: &Queries<'_>,
        heaps: &mut [TopK],
    ) -> Result<()> {
        let dim = self.inner.dim;
        // The group path gathers its queries into a contiguous
        // sub-matrix once per scan, then runs the §3.4 GEMM per block.
        let gathered: Vec<f32>;
        let (qmat, chunk) = match queries {
            Queries::One(q) => (*q, SCAN_CHUNK),
            Queries::Group { flat, members } => {
                let mut sub = Vec::with_capacity(members.len() * dim);
                for &qi in *members {
                    let qi = qi as usize;
                    sub.extend_from_slice(&flat[qi * dim..(qi + 1) * dim]);
                }
                gathered = sub;
                (&gathered[..], BATCH_ROW_CHUNK)
            }
        };
        let grouped = matches!(queries, Queries::Group { .. });
        let mut ids: Vec<i64> = Vec::with_capacity(chunk);
        let mut rows: Vec<f32> = Vec::with_capacity(chunk * dim);
        let mut scores: Vec<f32> = Vec::new();
        for kv in self
            .inner
            .tables
            .vectors
            .scan_pk_prefix_raw(self.r, &[Value::Integer(partition)])?
        {
            let (_, row_bytes) = kv?;
            let mut dec = RowDecoder::new(&row_bytes)?;
            dec.skip()?; // partition
            dec.skip()?; // vid
            let asset = dec
                .next_value()?
                .as_integer()
                .ok_or_else(|| Error::Config("asset column is not an integer".into()))?;
            // Post-filter join: evaluate the predicate before the
            // vector is even decoded, skipping disqualified rows
            // (their payload is never touched, not even validated).
            if !self.passes_filter(asset)? {
                continue;
            }
            let blob = dec.next_blob()?;
            if blob.len() != dim * 4 {
                return Err(Error::Config(format!(
                    "stored vector has {} bytes, expected {}",
                    blob.len(),
                    dim * 4
                )));
            }
            ids.push(asset);
            rows.extend(
                blob.chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().unwrap())),
            );
            self.metrics.vectors_scanned.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .bytes_scanned
                .fetch_add(dim * 4, Ordering::Relaxed);
            if ids.len() == chunk {
                self.flush_f32(qmat, grouped, &mut ids, &mut rows, &mut scores, heaps);
            }
        }
        self.flush_f32(qmat, grouped, &mut ids, &mut rows, &mut scores, heaps);
        Ok(())
    }

    /// Scores one accumulated f32 block and drains the buffers.
    fn flush_f32(
        &self,
        qmat: &[f32],
        grouped: bool,
        ids: &mut Vec<i64>,
        rows: &mut Vec<f32>,
        scores: &mut Vec<f32>,
        heaps: &mut [TopK],
    ) {
        let nr = ids.len();
        if nr == 0 {
            return;
        }
        let dim = self.inner.dim;
        let nq = heaps.len();
        scores.clear();
        if grouped {
            // §3.4: one matrix multiplication per (partition block,
            // query group) — the norm-identity kernel.
            scores.resize(nq * nr, 0.0);
            batch_distances(self.inner.metric, qmat, nq, rows, nr, dim, scores);
            for (local_q, heap) in heaps.iter_mut().enumerate() {
                let base = local_q * nr;
                for (j, &id) in ids.iter().enumerate() {
                    heap.push(id as u64, scores[base + j]);
                }
            }
        } else {
            // Single query: the direct one-to-many kernel (bit-exact
            // with the scalar `Metric::distance` used by re-ranking).
            distances_one_to_many(self.inner.metric, qmat, rows, dim, scores);
            for (j, &id) in ids.iter().enumerate() {
                heaps[0].push(id as u64, scores[j]);
            }
        }
        self.metrics
            .distance_computations
            .fetch_add(nq * nr, Ordering::Relaxed);
        ids.clear();
        rows.clear();
    }

    /// Compressed-domain scan frame: scores `SCAN_CHUNK`-row blocks of
    /// u8 codes with the batched asymmetric SQ8 kernel, never touching
    /// the f32 payload.
    fn scan_codes(
        &self,
        partition: i64,
        queries: &Queries<'_>,
        params: &micronn_linalg::Sq8Params,
        heaps: &mut [TopK],
    ) -> Result<()> {
        let dim = self.inner.dim;
        let codes = self
            .inner
            .tables
            .codes
            .as_ref()
            .ok_or_else(|| Error::Config("quantized scan without a codes table".into()))?;
        let scorers: Vec<Sq8Scorer> = match queries {
            Queries::One(q) => vec![Sq8Scorer::new(self.inner.metric, q, params)],
            Queries::Group { flat, members } => members
                .iter()
                .map(|&qi| {
                    let qi = qi as usize;
                    Sq8Scorer::new(self.inner.metric, &flat[qi * dim..(qi + 1) * dim], params)
                })
                .collect(),
        };
        let mut ids: Vec<i64> = Vec::with_capacity(SCAN_CHUNK);
        let mut block: Vec<u8> = Vec::with_capacity(SCAN_CHUNK * dim);
        let mut scores: Vec<f32> = Vec::with_capacity(SCAN_CHUNK);
        for kv in codes.scan_pk_prefix_raw(self.r, &[Value::Integer(partition)])? {
            let (_, row_bytes) = kv?;
            let (asset, code) = crate::codec::decode_code_row(&row_bytes, dim)?;
            // Same post-filter join as the f32 frame: disqualified
            // rows are dropped before any scoring.
            if !self.passes_filter(asset)? {
                continue;
            }
            ids.push(asset);
            block.extend_from_slice(code);
            self.metrics.vectors_scanned.fetch_add(1, Ordering::Relaxed);
            self.metrics.bytes_scanned.fetch_add(dim, Ordering::Relaxed);
            if ids.len() == SCAN_CHUNK {
                flush_codes(&scorers, &mut ids, &mut block, &mut scores, heaps);
                self.metrics
                    .distance_computations
                    .fetch_add(scorers.len() * SCAN_CHUNK, Ordering::Relaxed);
            }
        }
        let tail = ids.len();
        flush_codes(&scorers, &mut ids, &mut block, &mut scores, heaps);
        self.metrics
            .distance_computations
            .fetch_add(scorers.len() * tail, Ordering::Relaxed);
        Ok(())
    }

    /// SQ4 fastscan frame: each `codes` row is one packed 32-vector
    /// block; a single in-register LUT pass scores every slot, then the
    /// block's directory masks tombstoned slots (their scores are
    /// computed but discarded — that is the fastscan trade-off).
    fn scan_codes4(
        &self,
        partition: i64,
        queries: &Queries<'_>,
        params: &micronn_linalg::Sq8Params,
        heaps: &mut [TopK],
    ) -> Result<()> {
        let dim = self.inner.dim;
        let codes = self
            .inner
            .tables
            .codes
            .as_ref()
            .ok_or_else(|| Error::Config("quantized scan without a codes table".into()))?;
        let scorers: Vec<Sq4Scorer> = match queries {
            Queries::One(q) => vec![Sq4Scorer::new(self.inner.metric, q, params)],
            Queries::Group { flat, members } => members
                .iter()
                .map(|&qi| {
                    let qi = qi as usize;
                    Sq4Scorer::new(self.inner.metric, &flat[qi * dim..(qi + 1) * dim], params)
                })
                .collect(),
        };
        let mut block_scores = [0.0f32; SQ4_BLOCK];
        let mut live: Vec<(usize, i64)> = Vec::with_capacity(SQ4_BLOCK);
        for kv in codes.scan_pk_prefix_raw(self.r, &[Value::Integer(partition)])? {
            let (_, row_bytes) = kv?;
            let (_, members, packed) = crate::codec::decode_block_row(&row_bytes, dim)?;
            self.metrics
                .bytes_scanned
                .fetch_add(packed.len(), Ordering::Relaxed);
            // Same post-filter join as the other frames, evaluated per
            // live slot before any scoring.
            live.clear();
            for j in 0..SQ4_BLOCK {
                let (vid, asset) = crate::codec::sq4_slot(members, j);
                if vid == 0 {
                    continue; // empty or tombstoned slot
                }
                if !self.passes_filter(asset)? {
                    continue;
                }
                live.push((j, asset));
            }
            if live.is_empty() {
                continue;
            }
            self.metrics
                .vectors_scanned
                .fetch_add(live.len(), Ordering::Relaxed);
            for (scorer, heap) in scorers.iter().zip(heaps.iter_mut()) {
                scorer.score_block(packed, &mut block_scores);
                for &(j, asset) in &live {
                    heap.push(asset as u64, block_scores[j]);
                }
            }
            self.metrics
                .distance_computations
                .fetch_add(scorers.len() * live.len(), Ordering::Relaxed);
        }
        Ok(())
    }
}

/// Scores one accumulated code block against every prepared scorer and
/// drains the buffers.
fn flush_codes(
    scorers: &[Sq8Scorer],
    ids: &mut Vec<i64>,
    block: &mut Vec<u8>,
    scores: &mut Vec<f32>,
    heaps: &mut [TopK],
) {
    if ids.is_empty() {
        return;
    }
    for (scorer, heap) in scorers.iter().zip(heaps.iter_mut()) {
        scores.clear();
        scorer.score_chunk(block, scores);
        for (j, &id) in ids.iter().enumerate() {
            heap.push(id as u64, scores[j]);
        }
    }
    ids.clear();
    block.clear();
}

/// Candidate-pool size per scan: `k` for exact payloads,
/// `rerank_factor·k` when scoring quantized codes.
pub(crate) fn scan_pool_k(inner: &Inner, k: usize, use_codec: bool) -> usize {
    if use_codec && inner.quantized() {
        k.saturating_mul(inner.cfg.rerank_factor).max(k)
    } else {
        k
    }
}

/// Exact re-rank pass of the quantized pipeline: recomputes full f32
/// distances for the approximate candidate pool and keeps the best
/// `k`. Uses the same scalar kernel as the exact scan, so F32-codec
/// results and re-ranked results agree bit-for-bit on shared
/// candidates.
pub(crate) fn rerank_exact(
    inner: &Inner,
    r: &ReadTxn,
    query: &[f32],
    candidates: Vec<Neighbor>,
    k: usize,
    metrics: &ScanMetrics,
) -> Result<Vec<Neighbor>> {
    let mut top = TopK::new(k);
    let mut v: Vec<f32> = Vec::with_capacity(inner.dim);
    for n in candidates {
        let asset = n.id as i64;
        let Some(loc) = inner.tables.assets.get(r, &[Value::Integer(asset)])? else {
            continue;
        };
        // Delta-store candidates were scanned in full precision with
        // the same kernels: their distances are already exact, so
        // re-fetching the vector would only repeat work (and
        // double-count its bytes).
        if loc[1].as_integer() == Some(DELTA_PARTITION) {
            top.push(asset as u64, n.distance);
            continue;
        }
        let Some(raw) = inner
            .tables
            .vectors
            .get_raw(r, &[loc[1].clone(), loc[2].clone()])?
        else {
            continue;
        };
        let mut dec = RowDecoder::new(&raw)?;
        dec.skip()?;
        dec.skip()?;
        dec.skip()?;
        blob_into_f32(dec.next_blob()?, &mut v)?;
        top.push(asset as u64, inner.metric.distance(query, &v));
        metrics.reranked.fetch_add(1, Ordering::Relaxed);
        metrics
            .bytes_scanned
            .fetch_add(inner.dim * 4, Ordering::Relaxed);
    }
    Ok(top.into_sorted())
}

/// Brute-force tail of the pre-filtering plan (§3.5): fetches each
/// qualifying asset's vector by key and scores `SCAN_CHUNK`-row blocks
/// through the same chunked kernel as the partition frame. 100% recall
/// within the candidate list.
pub(crate) fn score_candidates(
    inner: &Inner,
    r: &ReadTxn,
    query: &[f32],
    assets: &[i64],
    k: usize,
    metrics: &ScanMetrics,
) -> Result<Vec<Neighbor>> {
    let dim = inner.dim;
    let mut top = TopK::new(k);
    let mut ids: Vec<i64> = Vec::with_capacity(SCAN_CHUNK);
    let mut rows: Vec<f32> = Vec::with_capacity(SCAN_CHUNK * dim);
    let mut scores: Vec<f32> = Vec::new();
    let mut v: Vec<f32> = Vec::with_capacity(dim);
    let mut scored = 0usize;
    let mut flush = |ids: &mut Vec<i64>, rows: &mut Vec<f32>, top: &mut TopK| {
        scores.clear();
        distances_one_to_many(inner.metric, query, rows, dim, &mut scores);
        for (j, &id) in ids.iter().enumerate() {
            top.push(id as u64, scores[j]);
        }
        scored += ids.len();
        ids.clear();
        rows.clear();
    };
    for &asset in assets {
        let Some(loc) = inner.tables.assets.get(r, &[Value::Integer(asset)])? else {
            continue; // attribute row without a vector
        };
        let Some(raw) = inner
            .tables
            .vectors
            .get_raw(r, &[loc[1].clone(), loc[2].clone()])?
        else {
            continue;
        };
        let mut dec = RowDecoder::new(&raw)?;
        dec.skip()?;
        dec.skip()?;
        dec.skip()?;
        blob_into_f32(dec.next_blob()?, &mut v)?;
        ids.push(asset);
        rows.extend_from_slice(&v);
        metrics.vectors_scanned.fetch_add(1, Ordering::Relaxed);
        metrics.bytes_scanned.fetch_add(dim * 4, Ordering::Relaxed);
        if ids.len() == SCAN_CHUNK {
            flush(&mut ids, &mut rows, &mut top);
        }
    }
    flush(&mut ids, &mut rows, &mut top);
    metrics
        .distance_computations
        .fetch_add(scored, Ordering::Relaxed);
    Ok(top.into_sorted())
}
