//! ANN and exact KNN search — the paper's Algorithm 2, expressed as
//! orchestration over the unified scan-executor layer.
//!
//! A search (1) scans the centroid table for the `n` nearest
//! partitions, (2) always adds the delta partition, (3) fans the
//! selected partitions out across the persistent worker pool with the
//! typed `parallel_indexed` primitive — each job runs the executor's
//! shared `PartitionScanner` frame into a private bounded `TopK` heap
//! — and (4) merges the per-partition heaps and sorts ("Parallel
//! Sort" in Figure 3).
//!
//! Under [`crate::codec::VectorCodec::F32`] (the default) the frame
//! decodes raw f32 rows, exactly as before. Under
//! [`crate::codec::VectorCodec::Sq8`] it scans the separately
//! clustered `codes` table — ~4× fewer payload bytes — scoring u8
//! codes with the batched asymmetric kernels, keeps an enlarged
//! `rerank_factor·k` candidate pool, and a final re-rank pass
//! recomputes exact f32 distances for the survivors. The delta
//! partition never has codes and is always scanned in full precision.
//!
//! The post-filtering join of §3.5 happens *inside* the scan frame:
//! rows whose attributes fail the predicate are dropped before any
//! distance computation, exactly as the paper describes ("vectors in
//! the requested partitions that don't satisfy the predicate filter
//! are therefore filtered before being considered in the top-K").

use micronn_linalg::{merge_all, Neighbor, TopK};
use micronn_storage::ReadTxn;

use crate::db::{Inner, DELTA_PARTITION};
use crate::error::{Error, Result};
use crate::exec::{rerank_exact, scan_pool_k, FilterCtx, PartitionScanner, Queries, ScanMetrics};
use crate::stats::{PlanUsed, QueryInfo};
use crate::telemetry::{stage, QueryTrace};

/// One search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// Client asset id.
    pub asset_id: i64,
    /// Distance to the query under the index metric.
    pub distance: f32,
}

/// A search's results plus its execution statistics.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    pub results: Vec<SearchResult>,
    pub info: QueryInfo,
}

/// Scans `partitions` in parallel at snapshot `r`, returning the
/// per-codec candidate list (Algorithm 2 lines 3–11). `use_codec`
/// selects the compressed-domain scan for quantized catalogs; callers
/// needing exact semantics (exhaustive KNN) pass `false`. With the
/// codec path active the returned list holds `rerank_factor·k`
/// *approximate* candidates that must go through
/// [`rerank_exact`](crate::exec::rerank_exact).
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_partitions(
    inner: &Inner,
    r: &ReadTxn,
    partitions: &[i64],
    query: &[f32],
    k: usize,
    use_codec: bool,
    filter: Option<&FilterCtx<'_>>,
    metrics: &ScanMetrics,
    time_filter: bool,
) -> Result<Vec<Neighbor>> {
    let scan_k = scan_pool_k(inner, k, use_codec);
    let scanner = PartitionScanner {
        inner,
        r,
        filter,
        metrics,
        use_codec,
        time_filter,
    };
    let queries = Queries::One(query);
    let heaps = inner.scan_pool.parallel_indexed(partitions.len(), |i| {
        // Probe readahead: queue the next partition's leaves before
        // scoring this one, so its I/O overlaps our compute.
        if let Some(&next) = partitions.get(i + 1) {
            scanner.prefetch(next);
        }
        let mut top = TopK::new(scan_k);
        scanner.scan(partitions[i], &queries, std::slice::from_mut(&mut top))?;
        Ok(top)
    })?;
    Ok(merge_all(heaps, scan_k))
}

/// ANN search (Algorithm 2): probe the `n` nearest partitions plus the
/// delta store.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ann_search(
    inner: &Inner,
    r: &ReadTxn,
    query: &[f32],
    k: usize,
    probes: usize,
    filter: Option<&FilterCtx<'_>>,
    plan: PlanUsed,
    trace: &mut QueryTrace,
) -> Result<SearchResponse> {
    if query.len() != inner.dim {
        return Err(Error::DimensionMismatch {
            expected: inner.dim,
            got: query.len(),
        });
    }
    let mut partitions: Vec<i64> = match inner.clustering(r)? {
        Some(index) => index.nearest_partitions(query, probes),
        // Unbuilt index: everything lives in the delta store.
        None => Vec::new(),
    };
    partitions.push(DELTA_PARTITION);
    trace.stage(stage::PROBE_SELECT);
    run_scan(
        inner,
        r,
        &partitions,
        query,
        k,
        inner.quantized(),
        filter,
        plan,
        trace,
    )
}

/// Exact KNN: exhaustive scan over every partition (§3.3 "trivial but
/// resource intensive"). Always reads full-precision vectors — exact
/// semantics are codec-independent.
pub(crate) fn exact_search(
    inner: &Inner,
    r: &ReadTxn,
    query: &[f32],
    k: usize,
    filter: Option<&FilterCtx<'_>>,
    trace: &mut QueryTrace,
) -> Result<SearchResponse> {
    if query.len() != inner.dim {
        return Err(Error::DimensionMismatch {
            expected: inner.dim,
            got: query.len(),
        });
    }
    let mut partitions: Vec<i64> = match inner.clustering(r)? {
        Some(index) => index.partitions.as_ref().clone(),
        None => Vec::new(),
    };
    partitions.push(DELTA_PARTITION);
    trace.stage(stage::PROBE_SELECT);
    run_scan(
        inner,
        r,
        &partitions,
        query,
        k,
        false,
        filter,
        PlanUsed::Exact,
        trace,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_scan(
    inner: &Inner,
    r: &ReadTxn,
    partitions: &[i64],
    query: &[f32],
    k: usize,
    use_codec: bool,
    filter: Option<&FilterCtx<'_>>,
    plan: PlanUsed,
    trace: &mut QueryTrace,
) -> Result<SearchResponse> {
    let metrics = ScanMetrics::default();
    let time_filter = trace.detailed && filter.is_some();
    let mut neighbors = scan_partitions(
        inner,
        r,
        partitions,
        query,
        k,
        use_codec,
        filter,
        &metrics,
        time_filter,
    )?;
    trace.stage(stage::PARTITION_SCAN);
    if use_codec && inner.quantized() {
        neighbors = rerank_exact(inner, r, query, neighbors, k, &metrics)?;
        trace.stage(stage::RERANK);
    }
    // The filter share is nested inside the parallel partition scan;
    // report it as its own stage without subtracting (wall-clock vs
    // summed-across-workers differ anyway).
    trace.stage_external(
        stage::FILTER_JOIN,
        std::time::Duration::from_nanos(metrics.filter_nanos()),
    );
    inner
        .tel
        .distance_computations
        .add(metrics.distance_computations() as u64);
    let mut info = QueryInfo::new(plan);
    info.partitions_scanned = partitions.len();
    metrics.apply_to(&mut info);
    Ok(SearchResponse {
        results: neighbors
            .into_iter()
            .map(|n| SearchResult {
                asset_id: n.id as i64,
                distance: n.distance,
            })
            .collect(),
        info,
    })
}
