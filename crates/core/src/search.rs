//! ANN and exact KNN search — the paper's Algorithm 2, behind the
//! pluggable vector-codec scan pipeline.
//!
//! A search (1) scans the centroid table for the `n` nearest
//! partitions, (2) always adds the delta partition, (3) scans the
//! selected partitions in parallel worker threads — each worker keeps a
//! private bounded [`TopK`] heap and computes distances over batched
//! row chunks with the SIMD-friendly kernels — and (4) merges the
//! per-thread heaps and sorts ("Parallel Sort" in Figure 3).
//!
//! Under [`crate::codec::VectorCodec::F32`] (the default) workers
//! decode raw f32 rows, exactly as before. Under
//! [`crate::codec::VectorCodec::Sq8`] workers scan the separately
//! clustered `codes` table — ~4× fewer payload bytes — scoring u8
//! codes with the asymmetric kernels, keep an enlarged
//! `rerank_factor·k` candidate pool, and a final re-rank pass
//! recomputes exact f32 distances for the survivors. The delta
//! partition never has codes and is always scanned in full precision.
//!
//! The post-filtering join of §3.5 happens *inside* the scan: rows
//! whose attributes fail the predicate are dropped before any distance
//! computation, exactly as the paper describes ("vectors in the
//! requested partitions that don't satisfy the predicate filter are
//! therefore filtered before being considered in the top-K").

use std::sync::atomic::{AtomicUsize, Ordering};

use micronn_linalg::{distances_one_to_many, merge_all, Neighbor, Sq8Scorer, TopK};
use micronn_rel::{blob_into_f32, Compiled, RowDecoder, Table, Value};
use micronn_storage::ReadTxn;

use crate::db::{Inner, DELTA_PARTITION};
use crate::error::{Error, Result};
use crate::stats::{PlanUsed, QueryInfo};

/// One search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// Client asset id.
    pub asset_id: i64,
    /// Distance to the query under the index metric.
    pub distance: f32,
}

/// A search's results plus its execution statistics.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    pub results: Vec<SearchResult>,
    pub info: QueryInfo,
}

/// Attribute-filter context applied during partition scans.
pub(crate) struct FilterCtx<'a> {
    pub attrs: &'a Table,
    pub compiled: Compiled,
}

#[derive(Default)]
pub(crate) struct ScanCounters {
    pub vectors_scanned: AtomicUsize,
    pub filtered_out: AtomicUsize,
    pub bytes_scanned: AtomicUsize,
    pub reranked: AtomicUsize,
}

/// Scans `partitions` in parallel at snapshot `r`, returning the
/// per-codec candidate list (Algorithm 2 lines 3–11). `use_codec`
/// selects the compressed-domain scan for quantized catalogs; callers
/// needing exact semantics (exhaustive KNN) pass `false`. With the
/// codec path active the returned list holds `rerank_factor·k`
/// *approximate* candidates that must go through [`rerank_exact`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_partitions(
    inner: &Inner,
    r: &ReadTxn,
    partitions: &[i64],
    query: &[f32],
    k: usize,
    use_codec: bool,
    filter: Option<&FilterCtx<'_>>,
    counters: &ScanCounters,
) -> Result<Vec<Neighbor>> {
    let scan_k = scan_pool_k(inner, k, use_codec);
    let workers = inner.scan_pool.workers().min(partitions.len()).max(1);
    if workers <= 1 || partitions.len() <= 1 {
        // Single-threaded fast path (also used by tiny probe sets).
        let mut top = TopK::new(scan_k);
        for &p in partitions {
            scan_one_partition(inner, r, p, query, &mut top, use_codec, filter, counters)?;
        }
        return Ok(top.into_sorted());
    }
    // Fan out over the persistent pool: workers pull partition indexes
    // from a shared counter and keep private heaps (Algorithm 2).
    let next = AtomicUsize::new(0);
    let heaps: parking_lot::Mutex<Vec<Result<TopK>>> =
        parking_lot::Mutex::new(Vec::with_capacity(workers));
    let jobs: Vec<_> = (0..workers)
        .map(|_| {
            let next = &next;
            let heaps = &heaps;
            move || {
                let mut top = TopK::new(scan_k);
                let outcome = loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&p) = partitions.get(idx) else {
                        break Ok(());
                    };
                    if let Err(e) = scan_one_partition(
                        inner, r, p, query, &mut top, use_codec, filter, counters,
                    ) {
                        break Err(e);
                    }
                };
                heaps.lock().push(outcome.map(|()| top));
            }
        })
        .collect();
    inner.scan_pool.run_scoped(jobs);
    let mut collected = Vec::with_capacity(workers);
    for h in heaps.into_inner() {
        collected.push(h?);
    }
    Ok(merge_all(collected, scan_k))
}

/// Candidate-pool size per scan: `k` for exact payloads,
/// `rerank_factor·k` when scoring quantized codes.
pub(crate) fn scan_pool_k(inner: &Inner, k: usize, use_codec: bool) -> usize {
    if use_codec && inner.quantized() {
        k.saturating_mul(inner.cfg.rerank_factor).max(k)
    } else {
        k
    }
}

/// Rows per batched distance computation.
const SCAN_CHUNK: usize = 256;

/// The post-filter join of §3.5, shared by the f32 and quantized scan
/// loops: evaluates the predicate on the row's attributes (a missing
/// attributes row never matches) and counts rejections.
fn passes_filter(
    r: &ReadTxn,
    filter: Option<&FilterCtx<'_>>,
    asset: i64,
    counters: &ScanCounters,
) -> Result<bool> {
    let Some(f) = filter else {
        return Ok(true);
    };
    let row = f.attrs.get(r, &[Value::Integer(asset)])?;
    let matches = match &row {
        Some(attr_row) => f.compiled.eval(attr_row),
        None => false,
    };
    if !matches {
        counters.filtered_out.fetch_add(1, Ordering::Relaxed);
    }
    Ok(matches)
}

#[allow(clippy::too_many_arguments)]
fn scan_one_partition(
    inner: &Inner,
    r: &ReadTxn,
    partition: i64,
    query: &[f32],
    top: &mut TopK,
    use_codec: bool,
    filter: Option<&FilterCtx<'_>>,
    counters: &ScanCounters,
) -> Result<()> {
    // Quantized catalogs scan the codes payload when the partition has
    // trained ranges; the delta store (and any partition encoded
    // before its first maintenance) falls through to full precision.
    if use_codec && inner.quantized() && partition != DELTA_PARTITION {
        if let Some(params) = inner.partition_params(r, partition)? {
            return scan_one_partition_sq8(
                inner, r, partition, query, &params, top, filter, counters,
            );
        }
    }
    let dim = inner.dim;
    let mut ids: Vec<i64> = Vec::with_capacity(SCAN_CHUNK);
    let mut flat: Vec<f32> = Vec::with_capacity(SCAN_CHUNK * dim);
    let mut dists: Vec<f32> = Vec::with_capacity(SCAN_CHUNK);
    let mut flush = |ids: &mut Vec<i64>, flat: &mut Vec<f32>, top: &mut TopK| {
        dists.clear();
        distances_one_to_many(inner.metric, query, flat, dim, &mut dists);
        for (i, &d) in dists.iter().enumerate() {
            top.push(ids[i] as u64, d);
        }
        ids.clear();
        flat.clear();
    };
    for kv in inner
        .tables
        .vectors
        .scan_pk_prefix_raw(r, &[Value::Integer(partition)])?
    {
        let (_, row_bytes) = kv?;
        let mut dec = RowDecoder::new(&row_bytes)?;
        dec.skip()?; // partition
        dec.skip()?; // vid
        let asset = dec
            .next_value()?
            .as_integer()
            .ok_or_else(|| Error::Config("asset column is not an integer".into()))?;
        // Post-filter join: evaluate the predicate before the vector is
        // even decoded, skipping disqualified rows entirely.
        if !passes_filter(r, filter, asset, counters)? {
            continue;
        }
        let blob = dec.next_blob()?;
        if blob.len() != dim * 4 {
            return Err(Error::Config(format!(
                "stored vector has {} bytes, expected {}",
                blob.len(),
                dim * 4
            )));
        }
        ids.push(asset);
        flat.extend(
            blob.chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap())),
        );
        counters.vectors_scanned.fetch_add(1, Ordering::Relaxed);
        counters.bytes_scanned.fetch_add(dim * 4, Ordering::Relaxed);
        if ids.len() == SCAN_CHUNK {
            flush(&mut ids, &mut flat, top);
        }
    }
    if !ids.is_empty() {
        flush(&mut ids, &mut flat, top);
    }
    Ok(())
}

/// Compressed-domain partition scan: scores u8 codes with the
/// asymmetric SQ8 kernels, never touching the f32 payload.
#[allow(clippy::too_many_arguments)]
fn scan_one_partition_sq8(
    inner: &Inner,
    r: &ReadTxn,
    partition: i64,
    query: &[f32],
    params: &micronn_linalg::Sq8Params,
    top: &mut TopK,
    filter: Option<&FilterCtx<'_>>,
    counters: &ScanCounters,
) -> Result<()> {
    let dim = inner.dim;
    let codes = inner
        .tables
        .codes
        .as_ref()
        .ok_or_else(|| Error::Config("quantized scan without a codes table".into()))?;
    let scorer = Sq8Scorer::new(inner.metric, query, params);
    for kv in codes.scan_pk_prefix_raw(r, &[Value::Integer(partition)])? {
        let (_, row_bytes) = kv?;
        let (asset, code) = crate::codec::decode_code_row(&row_bytes, dim)?;
        // Same post-filter join as the f32 path: disqualified rows are
        // dropped before any scoring.
        if !passes_filter(r, filter, asset, counters)? {
            continue;
        }
        top.push(asset as u64, scorer.score(code));
        counters.vectors_scanned.fetch_add(1, Ordering::Relaxed);
        counters.bytes_scanned.fetch_add(dim, Ordering::Relaxed);
    }
    Ok(())
}

/// Exact re-rank pass of the quantized pipeline: recomputes full f32
/// distances for the approximate candidate pool and keeps the best
/// `k`. Uses the same scalar kernel as the exact scan, so F32-codec
/// results and re-ranked results agree bit-for-bit on shared
/// candidates.
pub(crate) fn rerank_exact(
    inner: &Inner,
    r: &ReadTxn,
    query: &[f32],
    candidates: Vec<Neighbor>,
    k: usize,
    counters: &ScanCounters,
) -> Result<Vec<Neighbor>> {
    let mut top = TopK::new(k);
    let mut v: Vec<f32> = Vec::with_capacity(inner.dim);
    for n in candidates {
        let asset = n.id as i64;
        let Some(loc) = inner.tables.assets.get(r, &[Value::Integer(asset)])? else {
            continue;
        };
        // Delta-store candidates were scanned in full precision with
        // the same kernels: their distances are already exact, so
        // re-fetching the vector would only repeat work (and
        // double-count its bytes).
        if loc[1].as_integer() == Some(DELTA_PARTITION) {
            top.push(asset as u64, n.distance);
            continue;
        }
        let Some(raw) = inner
            .tables
            .vectors
            .get_raw(r, &[loc[1].clone(), loc[2].clone()])?
        else {
            continue;
        };
        let mut dec = RowDecoder::new(&raw)?;
        dec.skip()?;
        dec.skip()?;
        dec.skip()?;
        blob_into_f32(dec.next_blob()?, &mut v)?;
        top.push(asset as u64, inner.metric.distance(query, &v));
        counters.reranked.fetch_add(1, Ordering::Relaxed);
        counters
            .bytes_scanned
            .fetch_add(inner.dim * 4, Ordering::Relaxed);
    }
    Ok(top.into_sorted())
}

/// ANN search (Algorithm 2): probe the `n` nearest partitions plus the
/// delta store.
pub(crate) fn ann_search(
    inner: &Inner,
    r: &ReadTxn,
    query: &[f32],
    k: usize,
    probes: usize,
    filter: Option<&FilterCtx<'_>>,
    plan: PlanUsed,
) -> Result<SearchResponse> {
    if query.len() != inner.dim {
        return Err(Error::DimensionMismatch {
            expected: inner.dim,
            got: query.len(),
        });
    }
    let mut partitions: Vec<i64> = match inner.clustering(r)? {
        Some(index) => index.nearest_partitions(query, probes),
        // Unbuilt index: everything lives in the delta store.
        None => Vec::new(),
    };
    partitions.push(DELTA_PARTITION);
    run_scan(
        inner,
        r,
        &partitions,
        query,
        k,
        inner.quantized(),
        filter,
        plan,
    )
}

/// Exact KNN: exhaustive scan over every partition (§3.3 "trivial but
/// resource intensive"). Always reads full-precision vectors — exact
/// semantics are codec-independent.
pub(crate) fn exact_search(
    inner: &Inner,
    r: &ReadTxn,
    query: &[f32],
    k: usize,
    filter: Option<&FilterCtx<'_>>,
) -> Result<SearchResponse> {
    if query.len() != inner.dim {
        return Err(Error::DimensionMismatch {
            expected: inner.dim,
            got: query.len(),
        });
    }
    let mut partitions: Vec<i64> = match inner.clustering(r)? {
        Some(index) => index.partitions.as_ref().clone(),
        None => Vec::new(),
    };
    partitions.push(DELTA_PARTITION);
    run_scan(
        inner,
        r,
        &partitions,
        query,
        k,
        false,
        filter,
        PlanUsed::Exact,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_scan(
    inner: &Inner,
    r: &ReadTxn,
    partitions: &[i64],
    query: &[f32],
    k: usize,
    use_codec: bool,
    filter: Option<&FilterCtx<'_>>,
    plan: PlanUsed,
) -> Result<SearchResponse> {
    let counters = ScanCounters::default();
    let mut neighbors =
        scan_partitions(inner, r, partitions, query, k, use_codec, filter, &counters)?;
    if use_codec && inner.quantized() {
        neighbors = rerank_exact(inner, r, query, neighbors, k, &counters)?;
    }
    let mut info = QueryInfo::new(plan);
    info.partitions_scanned = partitions.len();
    info.vectors_scanned = counters.vectors_scanned.load(Ordering::Relaxed);
    info.filtered_out = counters.filtered_out.load(Ordering::Relaxed);
    info.bytes_scanned = counters.bytes_scanned.load(Ordering::Relaxed);
    info.reranked = counters.reranked.load(Ordering::Relaxed);
    Ok(SearchResponse {
        results: neighbors
            .into_iter()
            .map(|n| SearchResult {
                asset_id: n.id as i64,
                distance: n.distance,
            })
            .collect(),
        info,
    })
}
