//! # MicroNN — an on-device, disk-resident, updatable vector database
//!
//! A from-scratch reproduction of *"MicroNN: An On-device Disk-resident
//! Updatable Vector Database"* (Pound et al., SIGMOD 2025). MicroNN is
//! an embedded nearest-neighbour search engine for memory-constrained
//! environments:
//!
//! * **Disk-resident IVF index** over relational storage: vectors live
//!   in a table clustered on `(partition, vid)` so each partition is
//!   contiguous on disk; queries run in bounded memory through a page
//!   cache (§3.1–3.3).
//! * **Streaming updates** with upsert/delete semantics through a delta
//!   store that every query scans, plus incremental maintenance: delta
//!   flushes, local partition splits/merges (the [`maintain::lifecycle`]
//!   subsystem with its background [`IndexMaintainer`]), and a
//!   growth-triggered full rebuild as a rare fallback (§3.6).
//! * **ACID semantics**: single serialized writer, snapshot-isolated
//!   readers, WAL crash recovery — provided by the bundled storage
//!   engine (the paper uses SQLite). The claims are enforced by a
//!   crash-injection harness that cuts power at every write/fsync and
//!   by [`MicroNN::verify_integrity`] (`micronnctl fsck`), which
//!   cross-checks every inter-table invariant (see [`integrity`]).
//! * **Hybrid queries**: attribute filters (comparisons + full-text
//!   `MATCH`) combined with vector search, with a selectivity-based
//!   optimizer choosing pre- vs post-filtering (§3.5).
//! * **Batch multi-query optimization**: partition scans shared across
//!   a query batch via blocked matrix multiplication (§3.4).
//! * **Pluggable vector codecs**: the default [`VectorCodec::F32`]
//!   scans full-precision vectors; [`VectorCodec::Sq8`] scans
//!   per-partition scalar-quantized u8 codes (~4× fewer payload bytes)
//!   and re-ranks the top `rerank_factor·k` candidates exactly.
//!
//! ## Quickstart
//!
//! ```
//! use micronn::{AttributeDef, Config, Expr, MicroNN, Metric, Value, ValueType, VectorRecord};
//!
//! let dir = tempfile::tempdir().unwrap();
//! let mut config = Config::new(4, Metric::L2);
//! config.attributes = vec![AttributeDef::indexed("location", ValueType::Text)];
//! let db = MicroNN::create(dir.path().join("photos.mnn"), config).unwrap();
//!
//! // Ingest (upserts land in the delta store, searchable immediately).
//! for i in 0..500i64 {
//!     let v = vec![i as f32, (i % 7) as f32, 0.0, 1.0];
//!     let loc = if i % 10 == 0 { "Seattle" } else { "NYC" };
//!     db.upsert(VectorRecord::new(i, v).with_attr("location", loc)).unwrap();
//! }
//! // Build the IVF index (atomic; readers never block).
//! db.rebuild().unwrap();
//!
//! // Plain ANN.
//! let hits = db.search(&[42.0, 0.0, 0.0, 1.0], 5).unwrap();
//! assert_eq!(hits.results.len(), 5);
//!
//! // Hybrid: nearest neighbours in Seattle (optimizer picks the plan).
//! let req = micronn::SearchRequest::new(vec![42.0, 0.0, 0.0, 1.0], 5)
//!     .with_filter(Expr::eq("location", "Seattle"));
//! let hits = db.search_with(&req).unwrap();
//! assert!(!hits.results.is_empty());
//! # let _ = Value::Null;
//! ```

pub mod batch;
pub mod build;
mod centroid_index;
pub mod codec;
pub mod config;
pub mod db;
pub mod error;
mod exec;
pub mod hybrid;
pub mod inmemory;
pub mod integrity;
pub mod maintain;
mod pool;
pub mod search;
pub mod snapshot;
pub mod stats;
pub(crate) mod telemetry;

pub use batch::BatchResponse;
pub use build::{RebuildOptions, RebuildReport};
pub use codec::VectorCodec;
pub use config::{AttributeDef, Config, DeviceProfile};
pub use db::{MicroNN, VectorRecord, DELTA_PARTITION};
pub use error::{Error, Result};
pub use hybrid::{PlanPreference, SearchRequest};
pub use inmemory::InMemoryIndex;
pub use integrity::IntegrityReport;
pub use maintain::{
    FlushReport, IndexMaintainer, MaintainerOptions, MaintainerStats, MaintenanceAction,
    MaintenanceReport, MaintenanceStatus, MergeReport, RetrainReport, SplitReport,
};
pub use search::{SearchResponse, SearchResult};
pub use snapshot::Snapshot;
pub use stats::{DbStats, PlanUsed, QueryInfo};

// Re-export the vocabulary types callers need from the substrates.
pub use micronn_linalg::Metric;
pub use micronn_rel::{Expr, Value, ValueType};
pub use micronn_storage::{StoreOptions, SyncMode};
pub use micronn_telemetry::{
    CollectingSink, HistogramSnapshot, MetricSnapshot, RegistrySnapshot, SlowQueryRecord, Span,
    TraceSink,
};
