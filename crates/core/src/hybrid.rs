//! Hybrid queries: vector similarity search with structured attribute
//! filters (§3.5), and the selectivity-based query optimizer (§3.5.1).
//!
//! Two physical plans exist:
//!
//! * **Pre-filtering** evaluates the predicate first (through attribute
//!   b-tree indexes / the FTS index when possible) and brute-forces the
//!   qualifying vectors — 100% recall, latency proportional to the
//!   qualifying set.
//! * **Post-filtering** runs the ANN scan with the predicate applied
//!   during partition scans — fast, but recall suffers when the
//!   predicate is highly selective.
//!
//! The optimizer compares the estimated filter selectivity `F̂_filters`
//! (Eq. 3, from per-column histograms and FTS document frequencies)
//! against the IVF scan's own "selectivity" `F̂_IVF = n·t/|R|` (Eq. 2)
//! and picks pre-filtering iff `F̂_filters < F̂_IVF`.

use micronn_rel::{estimate_selectivity, CmpOp, Expr, Value};
use micronn_storage::ReadTxn;

use crate::db::{Inner, MicroNN};
use crate::error::{Error, Result};
use crate::exec::{score_candidates, FilterCtx, ScanMetrics};
use crate::search::{ann_search, exact_search, SearchResponse, SearchResult};
use crate::stats::{PlanUsed, QueryInfo};
use crate::telemetry::{stage, QueryTrace};

/// Plan preference for hybrid queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanPreference {
    /// Let the optimizer choose (the paper's default behaviour).
    #[default]
    Auto,
    /// Always pre-filter.
    ForcePreFilter,
    /// Always post-filter.
    ForcePostFilter,
}

/// A full search request.
#[derive(Debug, Clone)]
pub struct SearchRequest {
    /// The query embedding.
    pub query: Vec<f32>,
    /// Number of neighbours to return.
    pub k: usize,
    /// Partitions to probe (`None` = the index default).
    pub probes: Option<usize>,
    /// Optional attribute filter.
    pub filter: Option<Expr>,
    /// Plan preference (benchmarks force plans; applications use Auto).
    pub plan: PlanPreference,
}

impl SearchRequest {
    /// A plain ANN request.
    pub fn new(query: Vec<f32>, k: usize) -> SearchRequest {
        SearchRequest {
            query,
            k,
            probes: None,
            filter: None,
            plan: PlanPreference::Auto,
        }
    }

    /// Sets the number of partitions to probe.
    pub fn with_probes(mut self, probes: usize) -> SearchRequest {
        self.probes = Some(probes);
        self
    }

    /// Adds an attribute filter.
    pub fn with_filter(mut self, filter: Expr) -> SearchRequest {
        self.filter = Some(filter);
        self
    }

    /// Forces a plan.
    pub fn with_plan(mut self, plan: PlanPreference) -> SearchRequest {
        self.plan = plan;
        self
    }
}

impl MicroNN {
    /// Top-`k` approximate nearest neighbours with default parameters.
    pub fn search(&self, query: &[f32], k: usize) -> Result<SearchResponse> {
        self.search_with(&SearchRequest::new(query.to_vec(), k))
    }

    /// Executes a full [`SearchRequest`] (ANN, hybrid, plan control).
    pub fn search_with(&self, req: &SearchRequest) -> Result<SearchResponse> {
        let r = self.inner.db.begin_read();
        search_with_at(&self.inner, &r, req)
    }

    /// Exact (exhaustive) K-nearest-neighbour search, optionally
    /// filtered.
    pub fn exact(&self, query: &[f32], k: usize, filter: Option<&Expr>) -> Result<SearchResponse> {
        let r = self.inner.db.begin_read();
        exact_at(&self.inner, &r, query, k, filter)
    }

    /// The plan the optimizer would choose for `filter` at `probes`
    /// partitions (exposed for inspection and benchmarks).
    pub fn explain_plan(&self, filter: &Expr, probes: Option<usize>) -> Result<PlanUsed> {
        let inner = &*self.inner;
        let r = inner.db.begin_read();
        choose_plan(
            inner,
            &r,
            filter,
            probes.unwrap_or(inner.cfg.default_probes),
        )
    }

    /// The optimizer's current selectivity estimate for `filter`
    /// (Eq. 3).
    pub fn estimate_filter_selectivity(&self, filter: &Expr) -> Result<f64> {
        let inner = &*self.inner;
        let r = inner.db.begin_read();
        let stats = inner.table_stats(&r)?;
        Ok(estimate_selectivity(
            &r,
            &inner.tables.attrs,
            &stats,
            filter,
        ))
    }
}

/// [`MicroNN::search_with`] against an explicit pinned snapshot: every
/// page read, cache lookup, and plan decision resolves at `r`'s commit
/// seq, so the query sees one consistent index no matter what commits
/// underneath it. [`crate::Snapshot`] calls this with a long-lived
/// read transaction.
pub(crate) fn search_with_at(
    inner: &Inner,
    r: &ReadTxn,
    req: &SearchRequest,
) -> Result<SearchResponse> {
    let mut trace = QueryTrace::new(inner.tel.detailed());
    let probes = req.probes.unwrap_or(inner.cfg.default_probes);
    let resp = match &req.filter {
        None => ann_search(
            inner,
            r,
            &req.query,
            req.k,
            probes,
            None,
            PlanUsed::Ann,
            &mut trace,
        )?,
        Some(expr) => {
            let plan = match req.plan {
                PlanPreference::ForcePreFilter => PlanUsed::PreFilter,
                PlanPreference::ForcePostFilter => PlanUsed::PostFilter,
                PlanPreference::Auto => choose_plan(inner, r, expr, probes)?,
            };
            match plan {
                PlanUsed::PreFilter => pre_filter_search(inner, r, req, expr, &mut trace)?,
                _ => {
                    let compiled = expr
                        .compile(inner.tables.attrs.schema())
                        .map_err(Error::Rel)?;
                    let ctx = FilterCtx {
                        attrs: &inner.tables.attrs,
                        compiled,
                    };
                    ann_search(
                        inner,
                        r,
                        &req.query,
                        req.k,
                        probes,
                        Some(&ctx),
                        PlanUsed::PostFilter,
                        &mut trace,
                    )?
                }
            }
        }
    };
    inner.tel.finish_query(&trace, &resp.info, req.k);
    Ok(resp)
}

/// [`MicroNN::exact`] against an explicit pinned snapshot.
pub(crate) fn exact_at(
    inner: &Inner,
    r: &ReadTxn,
    query: &[f32],
    k: usize,
    filter: Option<&Expr>,
) -> Result<SearchResponse> {
    let mut trace = QueryTrace::new(inner.tel.detailed());
    let resp = match filter {
        None => exact_search(inner, r, query, k, None, &mut trace)?,
        Some(expr) => {
            let compiled = expr
                .compile(inner.tables.attrs.schema())
                .map_err(Error::Rel)?;
            let ctx = FilterCtx {
                attrs: &inner.tables.attrs,
                compiled,
            };
            exact_search(inner, r, query, k, Some(&ctx), &mut trace)?
        }
    };
    inner.tel.finish_query(&trace, &resp.info, k);
    Ok(resp)
}

/// The optimizer of §3.5.1.
fn choose_plan(inner: &Inner, r: &ReadTxn, expr: &Expr, probes: usize) -> Result<PlanUsed> {
    let total = inner.tables.vectors.row_count(r)? as f64;
    if total <= 0.0 {
        return Ok(PlanUsed::PostFilter);
    }
    // Eq. 2: the IVF scan itself qualifies roughly n·t rows.
    let f_ivf = (probes as f64 * inner.cfg.target_partition_size as f64 / total).min(1.0);
    // Eq. 3: histogram/FTS estimate of the attribute filter.
    let stats = inner.table_stats(r)?;
    let f_filters = estimate_selectivity(r, &inner.tables.attrs, &stats, expr);
    Ok(if f_filters < f_ivf {
        PlanUsed::PreFilter
    } else {
        PlanUsed::PostFilter
    })
}

/// Pre-filtering plan: evaluate the predicate, then brute-force the
/// qualifying vectors through the executor's chunked fetch-by-key
/// scoring tail. Guarantees 100% recall within the filter.
fn pre_filter_search(
    inner: &Inner,
    r: &ReadTxn,
    req: &SearchRequest,
    expr: &Expr,
    trace: &mut QueryTrace,
) -> Result<SearchResponse> {
    if req.query.len() != inner.dim {
        return Err(Error::DimensionMismatch {
            expected: inner.dim,
            got: req.query.len(),
        });
    }
    let attrs = &inner.tables.attrs;
    let compiled = expr.compile(attrs.schema()).map_err(Error::Rel)?;
    let mut info = QueryInfo::new(PlanUsed::PreFilter);

    // Access path: an index-backed candidate list when one exists,
    // otherwise a full attribute-table scan. Candidates still go
    // through the full (residual) predicate.
    let candidates = index_candidates(inner, r, expr)?;
    let mut qualifying: Vec<i64> = Vec::new();
    match candidates {
        Some(assets) => {
            info.candidates = assets.len();
            for asset in assets {
                let Some(row) = attrs.get(r, &[Value::Integer(asset)])? else {
                    continue;
                };
                if compiled.eval(&row) {
                    qualifying.push(asset);
                }
            }
        }
        None => {
            for row in attrs.scan(r)? {
                let row = row?;
                info.candidates += 1;
                if compiled.eval(&row) {
                    qualifying.push(row[0].as_integer().unwrap_or(0));
                }
            }
        }
    }

    trace.stage(stage::FILTER_JOIN);

    // Brute-force NN over the qualifying set (chunked, same kernels as
    // the partition scan frame).
    let metrics = ScanMetrics::default();
    let neighbors = score_candidates(inner, r, &req.query, &qualifying, req.k, &metrics)?;
    trace.stage(stage::PARTITION_SCAN);
    inner
        .tel
        .distance_computations
        .add(metrics.distance_computations() as u64);
    metrics.apply_to(&mut info);
    Ok(SearchResponse {
        results: neighbors
            .into_iter()
            .map(|n| SearchResult {
                asset_id: n.id as i64,
                distance: n.distance,
            })
            .collect(),
        info,
    })
}

/// Collects candidate asset ids from indexed access paths, or `None`
/// when the predicate has no usable index. Conjunctions pick their most
/// selective indexed side; disjunctions union both sides (both must be
/// indexable).
fn index_candidates(inner: &Inner, r: &ReadTxn, expr: &Expr) -> Result<Option<Vec<i64>>> {
    let attrs = &inner.tables.attrs;
    match expr {
        Expr::Cmp { column, op, value } => {
            let Ok(col) = attrs.schema().column_index(column) else {
                return Ok(None);
            };
            let Some(index) = attrs.index_on(&[col]) else {
                return Ok(None);
            };
            let pks = match op {
                CmpOp::Eq => index.lookup_eq(r, std::slice::from_ref(value))?,
                CmpOp::Lt => index.lookup_range(r, None, Some(value), false, true)?,
                CmpOp::Le => index.lookup_range(r, None, Some(value), false, false)?,
                CmpOp::Gt => index.lookup_range(r, Some(value), None, true, false)?,
                CmpOp::Ge => index.lookup_range(r, Some(value), None, false, false)?,
                CmpOp::Ne => return Ok(None),
            };
            Ok(Some(pks_to_assets(pks)))
        }
        Expr::Match { column, query } => {
            let Ok(col) = attrs.schema().column_index(column) else {
                return Ok(None);
            };
            let Some(fts) = attrs.fts_on(col) else {
                return Ok(None);
            };
            Ok(Some(pks_to_assets(fts.match_pks(r, query)?)))
        }
        Expr::And(a, b) => {
            // Prefer the side the estimator believes is rarer.
            let stats = inner.table_stats(r)?;
            let sa = estimate_selectivity(r, attrs, &stats, a);
            let sb = estimate_selectivity(r, attrs, &stats, b);
            let (first, second) = if sa <= sb { (a, b) } else { (b, a) };
            if let Some(c) = index_candidates(inner, r, first)? {
                return Ok(Some(c));
            }
            index_candidates(inner, r, second)
        }
        Expr::Or(a, b) => {
            let (Some(ca), Some(cb)) = (
                index_candidates(inner, r, a)?,
                index_candidates(inner, r, b)?,
            ) else {
                return Ok(None);
            };
            let mut set: std::collections::HashSet<i64> = ca.into_iter().collect();
            set.extend(cb);
            Ok(Some(set.into_iter().collect()))
        }
        Expr::True | Expr::Not(_) => Ok(None),
    }
}

fn pks_to_assets(pks: Vec<Vec<Value>>) -> Vec<i64> {
    pks.into_iter()
        .filter_map(|pk| pk.first().and_then(|v| v.as_integer()))
        .collect()
}
