//! `micronnctl` — command-line administration for MicroNN databases.
//!
//! ```text
//! micronnctl create  <db> --dim <D> [--metric l2|cosine|dot] [--codec f32|sq8|sq4]
//!                    [--attr name:type[:indexed][:fts]]...
//! micronnctl import  <db> <csv>            # rows: asset_id,v1,...,vD[,name=value...]
//! micronnctl search  <db> --query "v1,..,vD" [-k N] [--probes N] [--filter EXPR] [--exact]
//! micronnctl trace   <db> --query "v1,..,vD" [-k N] [--probes N] [--filter EXPR] [--exact]
//! micronnctl stats   <db> [--format table|json|prometheus]
//! micronnctl status  <db>                   # monitor verdict + partition histogram
//! micronnctl maintain <db>                  # run the maintenance ladder to Healthy
//! micronnctl fsck    <db>                   # cross-check all tables; exit 1 on corruption
//! micronnctl rebuild <db>
//! micronnctl flush   <db>
//! micronnctl analyze <db>
//! micronnctl backup  <db> <dest>
//! micronnctl checkpoint <db>
//! ```
//!
//! Every command that opens an existing database accepts
//! `--workers N` (plumbed to `Config::workers`) to size the scan
//! pool; `0`/omitted uses one worker per available core (capped at 8).
//!
//! Filter expressions are single comparisons: `col=value`, `col!=v`,
//! `col<v`, `col<=v`, `col>v`, `col>=v`, or `col~"full text query"`;
//! combine with ` AND ` / ` OR `.

use std::process::ExitCode;

use micronn::{
    AttributeDef, CollectingSink, Config, Expr, Metric, MetricSnapshot, MicroNN, SearchRequest,
    Value, ValueType, VectorCodec, VectorRecord,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("usage: micronnctl <create|import|search|trace|stats|status|maintain|fsck|rebuild|flush|analyze|backup|checkpoint> ...".into());
    };
    match cmd.as_str() {
        "create" => cmd_create(&args[1..]),
        "import" => cmd_import(&args[1..]),
        "search" => cmd_search(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "status" => cmd_status(&args[1..]),
        "maintain" => cmd_maintain(&args[1..]),
        "fsck" => cmd_fsck(&args[1..]),
        "rebuild" => cmd_simple(&args[1..], |db| {
            let r = db.rebuild().map_err(stringify)?;
            println!(
                "rebuilt: {} vectors -> {} partitions ({} rows moved) in {:?}",
                r.vectors, r.partitions, r.moved_rows, r.total_time
            );
            Ok(())
        }),
        "flush" => cmd_simple(&args[1..], |db| {
            let r = db.flush_delta().map_err(stringify)?;
            println!(
                "flushed {} delta vectors into {} partitions in {:?}",
                r.flushed, r.partitions_touched, r.total_time
            );
            Ok(())
        }),
        "analyze" => cmd_simple(&args[1..], |db| {
            db.analyze().map_err(stringify)?;
            println!("statistics refreshed");
            Ok(())
        }),
        "checkpoint" => cmd_simple(&args[1..], |db| {
            let done = db.checkpoint().map_err(stringify)?;
            println!(
                "{}",
                if done {
                    "checkpoint complete"
                } else {
                    "checkpoint skipped (pinned readers or empty WAL)"
                }
            );
            Ok(())
        }),
        "backup" => {
            let (db_path, rest) = take_path(&args[1..])?;
            let dest = rest.first().ok_or("backup: missing destination path")?;
            let db = open(&db_path, rest)?;
            db.backup_to(dest).map_err(stringify)?;
            println!("backup written to {dest}");
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    }
}

/// `micronnctl status`: the monitor's verdict, the lifecycle
/// thresholds it applies, and a per-partition size histogram so an
/// operator can see split/merge pressure at a glance.
fn cmd_status(args: &[String]) -> Result<(), String> {
    let (path, rest) = take_path(args)?;
    let db = open(&path, rest)?;
    let s = db.stats().map_err(stringify)?;
    println!(
        "status:              {:?}",
        db.maintenance_status().map_err(stringify)?
    );
    println!("partitions:          {}", s.partitions);
    println!("delta vectors:       {}", s.delta_vectors);
    println!(
        "partition sizes:     min {} / avg {:.1} / max {}",
        s.min_partition_size, s.avg_partition_size, s.max_partition_size
    );
    // Maintenance counters from the telemetry registry. A freshly
    // opened handle starts at zero; nonzero counts mean maintenance ran
    // in *this* process (e.g. `micronnctl maintain`, or an embedded
    // maintainer) — the registry is per-handle, not persisted.
    let tel = db.telemetry();
    let maint: Vec<(&String, u64)> = tel
        .metrics
        .iter()
        .filter_map(|(name, m)| match m {
            MetricSnapshot::Counter(v)
                if name.starts_with("micronn_mainten")
                    || name.starts_with("micronn_maintainer") =>
            {
                Some((name, *v))
            }
            _ => None,
        })
        .collect();
    if !maint.is_empty() {
        println!("maintenance counters (this process):");
        for (name, v) in maint {
            println!("  {name:<44} {v}");
        }
    }
    let sizes = db.partition_sizes().map_err(stringify)?;
    if sizes.is_empty() {
        println!("histogram:           (index not built)");
        return Ok(());
    }
    // Fixed-width histogram over eight size buckets.
    let max = sizes.iter().map(|&(_, s)| s).max().unwrap_or(0).max(1);
    let buckets = 8usize;
    let width = max.div_ceil(buckets as u64).max(1);
    let mut counts = vec![0usize; buckets];
    for &(_, s) in &sizes {
        counts[((s / width) as usize).min(buckets - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    println!("histogram (vectors per partition):");
    for (b, &c) in counts.iter().enumerate() {
        let lo = b as u64 * width;
        let bar = "#".repeat((c * 40).div_ceil(peak).min(40));
        // The last bucket also absorbs everything above its range.
        if b == buckets - 1 {
            println!("  {:>6}+{:<6} {c:>5}  {bar}", lo, "");
        } else {
            let hi = (b as u64 + 1) * width - 1;
            println!("  {lo:>6}-{hi:<6} {c:>5}  {bar}");
        }
    }
    Ok(())
}

/// `micronnctl maintain`: runs the full maintenance ladder (flush →
/// split/merge → rebuild fallback) and prints every action taken.
fn cmd_maintain(args: &[String]) -> Result<(), String> {
    use micronn::MaintenanceAction;
    let (path, rest) = take_path(args)?;
    let db = open(&path, rest)?;
    let report = db.maybe_maintain().map_err(stringify)?;
    if report.actions.is_empty() {
        println!("healthy; nothing to do");
    }
    for action in &report.actions {
        match action {
            MaintenanceAction::Flushed(f) => println!(
                "flushed {} delta vectors into {} partitions in {:?}",
                f.flushed, f.partitions_touched, f.total_time
            ),
            MaintenanceAction::Split(s) => println!(
                "split partition {} -> +{:?} ({} rows moved) in {:?}",
                s.partition, s.new_partitions, s.rows_moved, s.total_time
            ),
            MaintenanceAction::Merged(m) => println!(
                "merged partition {} into {} ({} rows moved) in {:?}",
                m.partition, m.target, m.rows_moved, m.total_time
            ),
            MaintenanceAction::Rebuilt(r) => println!(
                "full rebuild: {} vectors -> {} partitions in {:?}",
                r.vectors, r.partitions, r.total_time
            ),
            MaintenanceAction::Retrained(t) => println!(
                "retrained quantizer ranges of partition {} ({} vectors re-encoded) in {:?}",
                t.partition, t.encoded, t.total_time
            ),
        }
    }
    println!(
        "final status: {:?} ({} actions in {:?})",
        report.status,
        report.actions.len(),
        report.total_time
    );
    Ok(())
}

/// `micronnctl fsck`: runs [`MicroNN::verify_integrity`] — the same
/// walker the crash-recovery harness asserts on — printing per-check
/// counts and every violation, and failing (non-zero exit) on any
/// corruption so scripts and operators share one code path.
fn cmd_fsck(args: &[String]) -> Result<(), String> {
    let (path, rest) = take_path(args)?;
    let db = open(&path, rest)?;
    let report = db.verify_integrity().map_err(stringify)?;
    println!("partitions walked:   {}", report.partitions_walked);
    println!("vectors checked:     {}", report.vectors_checked);
    println!("assets cross-checked:{:>5}", report.assets_checked);
    println!("codes checked:       {}", report.codes_checked);
    println!("orphans:             {}", report.orphans);
    if report.is_clean() {
        println!("ok: no corruption found");
        Ok(())
    } else {
        for e in &report.errors {
            eprintln!("corrupt: {e}");
        }
        Err(format!(
            "fsck found {} violation(s) in {path}",
            report.errors.len()
        ))
    }
}

fn stringify(e: micronn::Error) -> String {
    e.to_string()
}

fn take_path(args: &[String]) -> Result<(String, &[String]), String> {
    let path = args.first().ok_or("missing database path")?.clone();
    Ok((path, &args[1..]))
}

/// Opens `path` with runtime knobs (currently `--workers`) parsed from
/// the remaining arguments.
fn open(path: &str, rest: &[String]) -> Result<MicroNN, String> {
    let mut config = Config::default();
    if let Some(w) = flag_value(rest, "--workers") {
        config.workers = w.parse().map_err(|_| "bad --workers")?;
    }
    MicroNN::open(path, config).map_err(stringify)
}

fn cmd_simple(
    args: &[String],
    f: impl FnOnce(&MicroNN) -> Result<(), String>,
) -> Result<(), String> {
    let (path, rest) = take_path(args)?;
    f(&open(&path, rest)?)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (path, rest) = take_path(args)?;
    let db = open(&path, rest)?;
    match flag_value(rest, "--format").unwrap_or("table") {
        "table" => {}
        // Machine formats dump the telemetry registry: query/batch
        // latency histograms, scan and maintenance counters, and the
        // storage engine's live I/O counters (`micronn_store_*`).
        "json" => {
            println!("{}", db.telemetry().to_json());
            return Ok(());
        }
        "prometheus" => {
            print!("{}", db.telemetry().to_prometheus());
            return Ok(());
        }
        other => {
            return Err(format!(
                "stats: unknown --format {other} (table|json|prometheus)"
            ))
        }
    }
    let s = db.stats().map_err(stringify)?;
    println!("path:                {path}");
    println!("dimension:           {}", db.dim());
    println!("metric:              {}", db.metric());
    println!("codec:               {}", db.codec());
    println!("total vectors:       {}", s.total_vectors);
    println!("delta vectors:       {}", s.delta_vectors);
    println!("partitions:          {}", s.partitions);
    println!("avg partition size:  {:.1}", s.avg_partition_size);
    println!("baseline size:       {:.1}", s.baseline_partition_size);
    println!("index epoch:         {}", s.epoch);
    println!("pool resident:       {} KiB", s.resident_bytes / 1024);
    println!(
        "maintenance status:  {:?}",
        db.maintenance_status().map_err(stringify)?
    );
    Ok(())
}

fn cmd_create(args: &[String]) -> Result<(), String> {
    let (path, rest) = take_path(args)?;
    let dim: usize = flag_value(rest, "--dim")
        .ok_or("create: --dim is required")?
        .parse()
        .map_err(|_| "create: --dim must be a number")?;
    let metric = match flag_value(rest, "--metric") {
        None => Metric::L2,
        Some(m) => Metric::parse(m).ok_or(format!("unknown metric {m}"))?,
    };
    let mut config = Config::new(dim, metric);
    if let Some(c) = flag_value(rest, "--codec") {
        config.codec = VectorCodec::parse(c).ok_or(format!("unknown codec {c}"))?;
    }
    let mut i = 0;
    while i < rest.len() {
        if rest[i] == "--attr" {
            let spec = rest
                .get(i + 1)
                .ok_or("create: --attr needs name:type[:indexed][:fts]")?;
            config.attributes.push(parse_attr(spec)?);
            i += 2;
        } else {
            i += 1;
        }
    }
    let codec = config.codec;
    MicroNN::create(&path, config).map_err(stringify)?;
    println!("created {path} ({dim}-d, {metric}, codec {codec})");
    Ok(())
}

fn parse_attr(spec: &str) -> Result<AttributeDef, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() < 2 {
        return Err(format!("bad attribute spec {spec}"));
    }
    let ty = match parts[1] {
        "int" | "integer" => ValueType::Integer,
        "real" | "float" => ValueType::Real,
        "text" | "string" => ValueType::Text,
        t => return Err(format!("unknown attribute type {t}")),
    };
    let mut def = AttributeDef::new(parts[0], ty);
    for p in &parts[2..] {
        match *p {
            "indexed" => def.indexed = true,
            "fts" => def.fts = true,
            other => return Err(format!("unknown attribute modifier {other}")),
        }
    }
    Ok(def)
}

fn cmd_import(args: &[String]) -> Result<(), String> {
    let (path, rest) = take_path(args)?;
    let csv = rest.first().ok_or("import: missing csv path")?;
    let db = open(&path, rest)?;
    let dim = db.dim();
    let content = std::fs::read_to_string(csv).map_err(|e| format!("read {csv}: {e}"))?;
    let mut batch = Vec::with_capacity(1024);
    let mut imported = 0usize;
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 1 + dim {
            return Err(format!("line {}: expected id + {dim} floats", lineno + 1));
        }
        let asset_id: i64 = fields[0]
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad asset id {}", lineno + 1, fields[0]))?;
        let mut vector = Vec::with_capacity(dim);
        for f in &fields[1..=dim] {
            vector.push(
                f.trim()
                    .parse::<f32>()
                    .map_err(|_| format!("line {}: bad float {f}", lineno + 1))?,
            );
        }
        let mut rec = VectorRecord::new(asset_id, vector);
        // Optional trailing name=value attribute pairs.
        for extra in &fields[1 + dim..] {
            let (name, value) = extra
                .split_once('=')
                .ok_or(format!("line {}: bad attribute {extra}", lineno + 1))?;
            rec = rec.with_attr(name.trim(), parse_value(value.trim()));
        }
        batch.push(rec);
        if batch.len() == 1024 {
            db.upsert_batch(&batch).map_err(stringify)?;
            imported += batch.len();
            batch.clear();
        }
    }
    db.upsert_batch(&batch).map_err(stringify)?;
    imported += batch.len();
    println!("imported {imported} vectors into {path} (staged in the delta store; run `micronnctl rebuild` to index)");
    Ok(())
}

fn parse_value(s: &str) -> Value {
    if let Ok(i) = s.parse::<i64>() {
        return Value::Integer(i);
    }
    if let Ok(r) = s.parse::<f64>() {
        return Value::Real(r);
    }
    Value::text(s)
}

/// Query-shaped arguments shared by `search` and `trace`.
struct QueryArgs {
    query: Vec<f32>,
    k: usize,
    exact: bool,
    filter: Option<Expr>,
    req: SearchRequest,
}

fn parse_query_args(rest: &[String]) -> Result<QueryArgs, String> {
    let query_str = flag_value(rest, "--query").ok_or("--query is required")?;
    let query: Vec<f32> = query_str
        .split(',')
        .map(|t| t.trim().parse::<f32>())
        .collect::<Result<_, _>>()
        .map_err(|_| "--query must be comma-separated floats")?;
    let k: usize = flag_value(rest, "-k")
        .unwrap_or("10")
        .parse()
        .map_err(|_| "bad -k")?;
    let exact = rest.iter().any(|a| a == "--exact");
    let mut req = SearchRequest::new(query.clone(), k);
    if let Some(p) = flag_value(rest, "--probes") {
        req = req.with_probes(p.parse().map_err(|_| "bad --probes")?);
    }
    let filter = match flag_value(rest, "--filter") {
        Some(f) => Some(parse_filter(f)?),
        None => None,
    };
    if let (false, Some(f)) = (exact, &filter) {
        req = req.with_filter(f.clone());
    }
    Ok(QueryArgs {
        query,
        k,
        exact,
        filter,
        req,
    })
}

fn run_query(db: &MicroNN, q: &QueryArgs) -> Result<micronn::SearchResponse, String> {
    if q.exact {
        db.exact(&q.query, q.k, q.filter.as_ref())
            .map_err(stringify)
    } else {
        db.search_with(&q.req).map_err(stringify)
    }
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let (path, rest) = take_path(args)?;
    let db = open(&path, rest)?;
    let q = parse_query_args(rest).map_err(|e| format!("search: {e}"))?;
    let t = std::time::Instant::now();
    let resp = run_query(&db, &q)?;
    let elapsed = t.elapsed();
    // The full execution counters, so codec and executor behaviour is
    // inspectable from the CLI (bytes scanned shrink under SQ8/SQ4; the
    // re-rank and filter counters expose the pipeline's extra passes).
    println!(
        "plan={} partitions={} vectors_scanned={} bytes_scanned={} reranked={} \
         filtered_out={} candidates={} time={elapsed:?}",
        resp.info.plan,
        resp.info.partitions_scanned,
        resp.info.vectors_scanned,
        resp.info.bytes_scanned,
        resp.info.reranked,
        resp.info.filtered_out,
        resp.info.candidates
    );
    for r in &resp.results {
        println!("{:>20}  {:.6}", r.asset_id, r.distance);
    }
    Ok(())
}

/// `micronnctl trace`: runs one query with a collecting trace sink
/// installed and prints a flamegraph-style per-stage breakdown —
/// each stage's share of the whole query, plus the byte/fsync-carrying
/// spans (WAL group commits, checkpoints) the query triggered.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let (path, rest) = take_path(args)?;
    let db = open(&path, rest)?;
    let q = parse_query_args(rest).map_err(|e| format!("trace: {e}"))?;
    let sink = std::sync::Arc::new(CollectingSink::new());
    db.set_trace_sink(Some(sink.clone()));
    let resp = run_query(&db, &q);
    db.set_trace_sink(None);
    let resp = resp?;
    let spans = sink.take();
    let total = spans
        .iter()
        .find(|s| s.name == "query")
        .map(|s| s.duration)
        .unwrap_or_else(|| spans.iter().map(|s| s.duration).sum());
    println!(
        "plan={} k={} total={:?} ({} results)",
        resp.info.plan,
        q.k,
        total,
        resp.results.len()
    );
    let total_ns = total.as_nanos().max(1);
    for s in &spans {
        if s.name == "query" {
            continue;
        }
        let share = s.duration.as_nanos() as f64 / total_ns as f64;
        let bar = "#".repeat(((share * 40.0).round() as usize).min(40));
        let mut extras = String::new();
        if s.bytes > 0 {
            extras.push_str(&format!("  bytes={}", s.bytes));
        }
        if s.fsyncs > 0 {
            extras.push_str(&format!("  fsyncs={}", s.fsyncs));
        }
        println!(
            "  {:<18} {:>12?} {:>6.1}%  {bar}{extras}",
            s.name,
            s.duration,
            share * 100.0
        );
    }
    println!(
        "  counters: partitions={} vectors_scanned={} bytes_scanned={} reranked={} filtered_out={}",
        resp.info.partitions_scanned,
        resp.info.vectors_scanned,
        resp.info.bytes_scanned,
        resp.info.reranked,
        resp.info.filtered_out
    );
    Ok(())
}

/// Parses `col=v`, `col!=v`, `col<(=)v`, `col>(=)v`, `col~"text"`,
/// combined with ` AND ` / ` OR ` (left-associative, AND binds first
/// within each OR arm because we split on OR first).
fn parse_filter(s: &str) -> Result<Expr, String> {
    let or_arms: Vec<&str> = s.split(" OR ").collect();
    let mut or_expr: Option<Expr> = None;
    for arm in or_arms {
        let mut and_expr: Option<Expr> = None;
        for leaf in arm.split(" AND ") {
            let e = parse_leaf(leaf.trim())?;
            and_expr = Some(match and_expr {
                None => e,
                Some(prev) => prev.and(e),
            });
        }
        let arm_expr = and_expr.ok_or("empty filter arm")?;
        or_expr = Some(match or_expr {
            None => arm_expr,
            Some(prev) => prev.or(arm_expr),
        });
    }
    or_expr.ok_or_else(|| "empty filter".into())
}

fn parse_leaf(leaf: &str) -> Result<Expr, String> {
    for (op_str, build) in [
        ("!=", Expr::ne as fn(String, Value) -> Expr),
        ("<=", Expr::le as fn(String, Value) -> Expr),
        (">=", Expr::ge as fn(String, Value) -> Expr),
        ("=", Expr::eq as fn(String, Value) -> Expr),
        ("<", Expr::lt as fn(String, Value) -> Expr),
        (">", Expr::gt as fn(String, Value) -> Expr),
    ] {
        if let Some((col, val)) = leaf.split_once(op_str) {
            // Ensure we didn't split `<=` at `<` etc.: the longer
            // operators are tried first, so a remaining exact match is
            // safe unless the value starts with '=' (e.g. "<=").
            if op_str.len() == 1 && val.starts_with('=') {
                continue;
            }
            return Ok(build(
                col.trim().to_string(),
                parse_value(val.trim().trim_matches('"')),
            ));
        }
    }
    if let Some((col, q)) = leaf.split_once('~') {
        return Ok(Expr::matches(col.trim(), q.trim().trim_matches('"')));
    }
    Err(format!("cannot parse filter leaf {leaf:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parsing() {
        assert_eq!(
            parse_filter("location=Seattle").unwrap(),
            Expr::eq("location", "Seattle")
        );
        assert_eq!(
            parse_filter("n<=5 AND tag~\"black cat\"").unwrap(),
            Expr::le("n", Value::Integer(5)).and(Expr::matches("tag", "black cat"))
        );
        assert_eq!(
            parse_filter("a=1 OR b!=x").unwrap(),
            Expr::eq("a", Value::Integer(1)).or(Expr::ne("b", "x"))
        );
        assert!(parse_filter("garbage").is_err());
    }

    #[test]
    fn value_parsing() {
        assert_eq!(parse_value("42"), Value::Integer(42));
        assert_eq!(parse_value("4.5"), Value::Real(4.5));
        assert_eq!(parse_value("hello"), Value::text("hello"));
    }

    #[test]
    fn attr_spec_parsing() {
        let a = parse_attr("location:text:indexed").unwrap();
        assert!(a.indexed && !a.fts);
        assert_eq!(a.ty, ValueType::Text);
        let a = parse_attr("caption:text:fts").unwrap();
        assert!(a.fts);
        assert!(parse_attr("bad").is_err());
        assert!(parse_attr("x:unknown").is_err());
    }
}
