//! Two-level centroid index — the extension the paper sketches in
//! §3.2: "To scale to even larger collections, the centroid table
//! itself could also be indexed."
//!
//! With `k = |X|/t` partitions, `FindNearestCentroids` scans `k`
//! centroids per query — ~100k for DEEPImage-scale data, which §4.3.3
//! observes starting to dominate batch latency. This module clusters
//! the centroids themselves (≈`√k` super-clusters via Lloyd's, cheap:
//! the centroid matrix is small) so probe selection inspects the
//! nearest super-clusters' members only: `O(√k + candidates)` instead
//! of `O(k)` distance computations.
//!
//! Probe quality is preserved by over-expansion: super-clusters are
//! visited nearest-first until the candidate pool reaches a multiple
//! of the requested probe count, then exact centroid distances rank
//! the pool. The index is derived data — rebuilt in memory whenever
//! the cached quantizer reloads — so it needs no persistence and can
//! never drift from the centroid table.

use micronn_cluster::{lloyd, Clustering, LloydConfig};
use micronn_linalg::TopK;

/// Over-expansion factor: candidate pool size relative to `n` probes.
const EXPANSION: usize = 4;
/// Minimum candidate pool regardless of `n`.
const MIN_POOL: usize = 64;

/// A super-clustering over the IVF centroids.
#[derive(Clone)]
pub(crate) struct CentroidIndex {
    supers: Clustering,
    /// Member centroid indexes per super-cluster.
    members: Vec<Vec<u32>>,
    /// Per-super-cluster radius: the largest metric distance from the
    /// super centroid to any member centroid. Lets probe selection
    /// lower-bound the best distance reachable inside an unvisited
    /// super-cluster.
    radii: Vec<f32>,
}

impl CentroidIndex {
    /// Builds the two-level index over `clustering`'s centroids.
    pub fn build(clustering: &Clustering, seed: u64) -> CentroidIndex {
        let k = clustering.k();
        // Target ≈ √k members per super-cluster → ≈ √k super-clusters.
        let target = (k as f64).sqrt().ceil().max(1.0) as usize;
        let supers = lloyd::train(
            clustering.centroids(),
            clustering.dim(),
            &LloydConfig {
                target_cluster_size: target,
                seed,
                metric: clustering.metric(),
                max_iterations: 15,
                ..Default::default()
            },
        );
        let assignments = lloyd::assign_all(clustering.centroids(), clustering.dim(), &supers);
        let mut members = vec![Vec::new(); supers.k()];
        let mut radii = vec![0f32; supers.k()];
        for (ci, &s) in assignments.iter().enumerate() {
            members[s as usize].push(ci as u32);
            let d = supers
                .metric()
                .distance(supers.centroid(s as usize), clustering.centroid(ci));
            radii[s as usize] = radii[s as usize].max(d);
        }
        CentroidIndex {
            supers,
            members,
            radii,
        }
    }

    /// Number of super-clusters.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn super_count(&self) -> usize {
        self.supers.k()
    }

    /// Incrementally registers a brand-new centroid `ci` (appended at
    /// the end of `clustering`) without retraining the super-clusters:
    /// the centroid joins its nearest super-cluster and the cluster's
    /// radius grows to cover it. Used by lifecycle splits so a
    /// maintenance op costs `O(√k)` super-index work instead of a full
    /// `O(k√k)` retrain; pruning stays sound because radii only grow.
    pub fn insert(&mut self, clustering: &Clustering, ci: usize) {
        let (si, d) = self.supers.nearest(clustering.centroid(ci));
        self.members[si].push(ci as u32);
        self.radii[si] = self.radii[si].max(d);
    }

    /// Re-covers an existing centroid `ci` after maintenance moved it
    /// (e.g. a split re-centred the surviving partition). The centroid
    /// keeps its super-cluster membership; the radius grows so the
    /// pruning bound still upper-bounds its distance. Radii never
    /// shrink here — a conservative (larger) radius only costs pruning
    /// opportunities, never correctness.
    pub fn note_moved(&mut self, clustering: &Clustering, ci: usize) {
        let target = ci as u32;
        for (si, members) in self.members.iter().enumerate() {
            if members.contains(&target) {
                let d = self
                    .supers
                    .metric()
                    .distance(self.supers.centroid(si), clustering.centroid(ci));
                self.radii[si] = self.radii[si].max(d);
                return;
            }
        }
    }

    /// The `n` nearest centroids to `x`, ascending by distance,
    /// searched through the hierarchy. Returns the same format as
    /// [`Clustering::nearest_n`]; may differ from the exact answer only
    /// when a near centroid hides in a far super-cluster (bounded by
    /// the over-expansion policy).
    pub fn nearest_n(&self, clustering: &Clustering, x: &[f32], n: usize) -> Vec<(usize, f32)> {
        let pool_target = (n * EXPANSION).max(MIN_POOL);
        let super_order = self.supers.nearest_n(x, self.supers.k());
        let mut top = TopK::new(n.min(clustering.k()));
        let mut pooled = 0usize;
        // Metrics without a triangle inequality (raw inner products)
        // admit no sound radius bound: for those, fall back to the
        // plain candidate-count cutoff (approximate, like the original
        // over-expansion policy) instead of degenerating into a full
        // O(k) scan that would defeat the two-level index.
        let prunable = matches!(
            clustering.metric(),
            micronn_linalg::Metric::L2 | micronn_linalg::Metric::Cosine
        );
        for (si, ds) in super_order {
            if pooled >= pool_target && top.len() >= top.k() {
                if !prunable {
                    break;
                }
                // Skip any super-cluster that cannot improve the current
                // result set. This matters when a query is
                // near-equidistant from several super-clusters: the
                // nearest-first order is then arbitrary among ties and a
                // bare candidate-count cutoff would drop half the true
                // neighbours. `continue`, not `break`: the bound depends
                // on each super-cluster's own radius, so it is not
                // monotone in visit order — a later, slightly farther
                // super-cluster with a larger radius may still reach
                // inside the current top-n.
                if !Self::may_contain_closer(
                    clustering.metric(),
                    ds,
                    self.radii[si],
                    top.threshold(),
                ) {
                    continue;
                }
            }
            for &ci in &self.members[si] {
                let d = clustering
                    .metric()
                    .distance(x, clustering.centroid(ci as usize));
                top.push(ci as u64, d);
            }
            pooled += self.members[si].len();
        }
        top.into_sorted()
            .into_iter()
            .map(|nb| (nb.id as usize, nb.distance))
            .collect()
    }

    /// Whether a super-cluster at distance `ds` with member radius `r`
    /// could hold a centroid that improves on `worst`.
    ///
    /// For L2 (squared distances) the triangle inequality gives the
    /// exact lower bound `(√ds − √r)²` on any member's distance. For
    /// cosine the angular triangle inequality gives the equivalent
    /// bound `1 − cos(θ_super − θ_radius)`. Raw inner products bound
    /// nothing (member norms are unconstrained), so dot never prunes.
    ///
    /// The comparison is `<=` (tie-conservative): a member at exactly
    /// `worst` can still displace the current k-th candidate through
    /// the deterministic smaller-id tie-break, so exact f32 ties agree
    /// with the flat index across the super-index threshold.
    fn may_contain_closer(metric: micronn_linalg::Metric, ds: f32, r: f32, worst: f32) -> bool {
        match metric {
            micronn_linalg::Metric::L2 => {
                let gap = ds.max(0.0).sqrt() - r.max(0.0).sqrt();
                if gap <= 0.0 {
                    return true;
                }
                gap * gap <= worst
            }
            micronn_linalg::Metric::Cosine => {
                // Cosine distance 1 − cos θ is monotone in the angle,
                // and angles obey the triangle inequality regardless of
                // vector norms.
                let theta_s = (1.0 - ds).clamp(-1.0, 1.0).acos();
                let theta_r = (1.0 - r).clamp(-1.0, 1.0).acos();
                let lower = 1.0 - (theta_s - theta_r).max(0.0).cos();
                lower <= worst
            }
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronn_linalg::Metric;

    /// A clustering of `k` centroids laid out as blobs so the two-level
    /// structure is meaningful.
    fn big_clustering(k: usize, dim: usize) -> Clustering {
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let mut data = Vec::with_capacity(k * dim);
        for i in 0..k {
            let blob = (i % 16) as f32 * 8.0;
            for _ in 0..dim {
                data.push(blob + next());
            }
        }
        Clustering::new(data, dim, Metric::L2)
    }

    #[test]
    fn builds_sqrt_scaled_hierarchy() {
        let c = big_clustering(1024, 8);
        let idx = CentroidIndex::build(&c, 1);
        // ≈ √1024 = 32 super-clusters.
        assert!(
            idx.super_count() >= 16 && idx.super_count() <= 64,
            "got {}",
            idx.super_count()
        );
        // Every centroid appears exactly once.
        let total: usize = idx.members.iter().map(Vec::len).sum();
        assert_eq!(total, 1024);
    }

    #[test]
    fn hierarchical_probe_selection_matches_exact_closely() {
        let c = big_clustering(1024, 8);
        let idx = CentroidIndex::build(&c, 1);
        let mut agree = 0usize;
        let mut total = 0usize;
        for qi in 0..20 {
            let q: Vec<f32> = (0..8).map(|j| ((qi * 16 + j) % 16) as f32 * 8.0).collect();
            let exact: std::collections::HashSet<usize> =
                c.nearest_n(&q, 8).into_iter().map(|(i, _)| i).collect();
            let approx = idx.nearest_n(&c, &q, 8);
            assert_eq!(approx.len(), 8);
            // Sorted ascending.
            for w in approx.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
            agree += approx.iter().filter(|(i, _)| exact.contains(i)).count();
            total += 8;
        }
        let overlap = agree as f64 / total as f64;
        assert!(overlap >= 0.9, "probe overlap with exact: {overlap}");
    }

    #[test]
    fn pruning_is_tie_conservative() {
        // A super-cluster whose best reachable distance exactly equals
        // the current worst must NOT be pruned: its member could win
        // the deterministic id tie-break.
        let worst = 4.0;
        // gap² == worst exactly: ds = (2 + 1)² = 9, r = 1 → gap = 2.
        assert!(CentroidIndex::may_contain_closer(
            Metric::L2,
            9.0,
            1.0,
            worst
        ));
        // Strictly farther super-clusters still prune.
        assert!(!CentroidIndex::may_contain_closer(
            Metric::L2,
            16.0,
            0.25,
            worst
        ));
        // Cosine: θ_s − θ_r == θ_worst boundary is kept.
        let worst = 1.0 - (0.5f32).cos();
        let ds = 1.0 - (0.75f32).cos();
        let r = 1.0 - (0.25f32).cos();
        assert!(CentroidIndex::may_contain_closer(
            Metric::Cosine,
            ds,
            r,
            worst
        ));
        // Dot never prunes.
        assert!(CentroidIndex::may_contain_closer(
            Metric::Dot,
            100.0,
            0.0,
            0.0
        ));
    }

    #[test]
    fn incremental_insert_finds_new_centroid() {
        let c = big_clustering(256, 8);
        let mut idx = CentroidIndex::build(&c, 1);
        // Append a brand-new centroid far from every blob and register
        // it incrementally, as a lifecycle split does.
        let mut flat = c.centroids().to_vec();
        flat.extend(std::iter::repeat(500.0f32).take(8));
        let grown = Clustering::new(flat, 8, Metric::L2);
        idx.insert(&grown, 256);
        let total: usize = idx.members.iter().map(Vec::len).sum();
        assert_eq!(total, 257);
        let got = idx.nearest_n(&grown, &[500.0; 8], 3);
        assert_eq!(got[0].0, 256, "inserted centroid must be reachable");
        assert_eq!(got[0].1, 0.0);
    }

    #[test]
    fn note_moved_grows_radius_to_cover_drift() {
        let c = big_clustering(256, 8);
        let mut idx = CentroidIndex::build(&c, 1);
        // Move centroid 0 a long way and re-cover it: a query at the
        // new position must still find it through the hierarchy.
        let mut flat = c.centroids().to_vec();
        for x in &mut flat[0..8] {
            *x += 40.0;
        }
        let moved = Clustering::new(flat, 8, Metric::L2);
        idx.note_moved(&moved, 0);
        let q: Vec<f32> = moved.centroid(0).to_vec();
        let got = idx.nearest_n(&moved, &q, 4);
        assert_eq!(got[0].0, 0, "moved centroid must stay reachable");
        assert_eq!(got[0].1, 0.0);
    }

    #[test]
    fn small_clustering_degenerates_gracefully() {
        let c = big_clustering(4, 8);
        let idx = CentroidIndex::build(&c, 1);
        let got = idx.nearest_n(&c, &[0.0; 8], 10);
        assert_eq!(got.len(), 4, "clamped to k");
    }

    #[test]
    fn nearest_first_super_visit_finds_own_centroid() {
        let c = big_clustering(256, 8);
        let idx = CentroidIndex::build(&c, 1);
        // Query at an exact centroid: it must be the first result.
        for ci in [0usize, 100, 255] {
            let q = c.centroid(ci).to_vec();
            let got = idx.nearest_n(&c, &q, 4);
            assert_eq!(got[0].0, ci, "centroid {ci} not found first");
            assert_eq!(got[0].1, 0.0);
        }
    }
}
