//! Database and query statistics.
//!
//! Figure 10d of the paper plots the number of database row changes of
//! incremental vs full rebuilds; Figures 5/6b plot memory; the
//! microbenchmarks rely on partition/vector scan counts. These types
//! expose all of that.

use micronn_storage::StoreStats;

/// Which hybrid-query plan executed (§3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanUsed {
    /// Plain ANN scan (no attribute filter).
    Ann,
    /// Exhaustive exact scan.
    Exact,
    /// Predicate evaluated first; brute-force search over qualifying
    /// vectors (100% recall).
    PreFilter,
    /// ANN scan with the predicate applied during partition scans.
    PostFilter,
}

impl std::fmt::Display for PlanUsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PlanUsed::Ann => "ann",
            PlanUsed::Exact => "exact",
            PlanUsed::PreFilter => "pre-filter",
            PlanUsed::PostFilter => "post-filter",
        })
    }
}

/// Per-query execution statistics, populated from the unified
/// executor's scan counters (one atomic block shared by every scan
/// worker, whatever the path — single-query, batch, or hybrid).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryInfo {
    /// The plan that executed.
    pub plan: PlanUsed,
    /// Partitions scanned (including the delta store).
    pub partitions_scanned: usize,
    /// Vectors whose distance was computed.
    pub vectors_scanned: usize,
    /// Vectors skipped by the attribute filter before distance
    /// computation (post-filtering path).
    pub filtered_out: usize,
    /// Candidate set size evaluated by a pre-filtering plan.
    pub candidates: usize,
    /// Vector-payload bytes read by the scan: `4·dim` per f32 row,
    /// `dim` per SQ8 code row, `16·dim` per scanned SQ4 interleaved
    /// block (32 packed rows at `dim/2` bytes each, counted whole —
    /// fastscan reads the block even for partially-dead slots), plus
    /// `4·dim` per re-ranked candidate — the Figure-5 "bytes scanned"
    /// axis. Asserted per codec by `tests/telemetry.rs`.
    pub bytes_scanned: usize,
    /// Candidates re-ranked against exact f32 vectors (quantized
    /// scans only).
    pub reranked: usize,
}

impl QueryInfo {
    pub(crate) fn new(plan: PlanUsed) -> QueryInfo {
        QueryInfo {
            plan,
            partitions_scanned: 0,
            vectors_scanned: 0,
            filtered_out: 0,
            candidates: 0,
            bytes_scanned: 0,
            reranked: 0,
        }
    }
}

/// Point-in-time state of a MicroNN index.
#[derive(Debug, Clone)]
pub struct DbStats {
    /// Total stored vectors (main index + delta).
    pub total_vectors: u64,
    /// Vectors in the delta store.
    pub delta_vectors: u64,
    /// IVF partitions (0 before the first build).
    pub partitions: u64,
    /// Mean vectors per main-index partition.
    pub avg_partition_size: f64,
    /// Smallest indexed partition (0 before the first build). The
    /// lifecycle monitor merges partitions below `merge_limit ×
    /// target_partition_size`.
    pub min_partition_size: u64,
    /// Largest indexed partition (0 before the first build). The
    /// lifecycle monitor splits partitions above `split_limit ×
    /// target_partition_size`.
    pub max_partition_size: u64,
    /// Mean partition size recorded right after the last full rebuild.
    pub baseline_partition_size: f64,
    /// Index epoch (bumped by rebuilds, flushes, analyze).
    pub epoch: i64,
    /// Cumulative row-level mutations performed by this handle
    /// (Figure 10d).
    pub row_changes: u64,
    /// Storage-engine counters.
    pub store: StoreStats,
    /// Bytes of page images resident in the buffer pool.
    pub resident_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_display() {
        assert_eq!(PlanUsed::PreFilter.to_string(), "pre-filter");
        assert_eq!(PlanUsed::Ann.to_string(), "ann");
    }

    #[test]
    fn query_info_starts_zeroed() {
        let q = QueryInfo::new(PlanUsed::Exact);
        assert_eq!(q.vectors_scanned, 0);
        assert_eq!(q.plan, PlanUsed::Exact);
    }
}
