//! Whole-database consistency checking (`fsck`).
//!
//! Every mutating operation in MicroNN — upsert, delete, delta flush,
//! partition split/merge, full rebuild — is one write transaction over
//! *several* tables (`vectors`, `assets`, `attrs`, `centroids`, `meta`,
//! and for SQ8 catalogs `codes` + `quants`). The WAL makes each such
//! transaction atomic; [`MicroNN::verify_integrity`] is the other half
//! of that durability claim: it walks the whole catalog from one read
//! snapshot and cross-checks every inter-table invariant, so a crash
//! test (or an operator via `micronnctl fsck`) can prove no partial
//! transaction is ever observable.
//!
//! Checked invariants:
//!
//! * `assets` ↔ `vectors` is a bijection: every asset row points at a
//!   live vector row whose `asset` column points back, and no vector
//!   row is unreferenced.
//! * Every asset has exactly one `attrs` row and vice versa.
//! * Vector blobs decode to exactly the index dimension.
//! * Every non-delta partition appearing in `vectors` has a centroid
//!   row of the right dimension, and each centroid's persisted `size`
//!   equals the partition's actual row count (the lifecycle policy
//!   reads these sizes).
//! * `meta` agrees with the data: `delta_count` equals the delta
//!   store's row count, `k` equals the centroid row count, `next_pid`
//!   exceeds every allocated partition id, `next_vid` exceeds every
//!   stored vid.
//! * Quantized catalogs: the code storage mirrors the non-delta half
//!   of `vectors` exactly and every code re-encodes bit-identically
//!   from its f32 row under the partition's stored quantization
//!   ranges, and every encoded partition has a well-formed `quants`
//!   row for an existing centroid. For SQ8 the mirror is row-for-row
//!   (same `(partition, vid)` keys, same asset); for SQ4 every
//!   indexed vector occupies exactly one *live* slot across the
//!   partition's blocked `(partition, block)` rows — tombstoned slots
//!   (vid 0) are skipped, and their stale nibbles are ignored.

use std::collections::{BTreeMap, BTreeSet};

use micronn_rel::blob_to_f32;

use micronn_storage::ReadTxn;

use crate::db::{
    meta_int, Inner, MicroNN, DELTA_PARTITION, M_DELTA_COUNT, M_NEXT_PID, M_NEXT_VID, M_PARTITIONS,
};
use crate::error::Result;

/// Outcome of [`MicroNN::verify_integrity`]: per-check counters plus
/// every violation found. `micronnctl fsck` prints it and exits
/// non-zero unless [`IntegrityReport::is_clean`].
#[derive(Debug, Clone, Default)]
pub struct IntegrityReport {
    /// Centroid rows walked (indexed partitions).
    pub partitions_walked: u64,
    /// Vector rows checked (delta store included).
    pub vectors_checked: u64,
    /// Asset rows cross-checked against their vector rows.
    pub assets_checked: u64,
    /// Quantized codes cross-checked — SQ8 code rows or live SQ4
    /// block slots (`0` for F32 catalogs).
    pub codes_checked: u64,
    /// Dangling or missing cross-references (each also appends to
    /// [`IntegrityReport::errors`]).
    pub orphans: u64,
    /// Human-readable description of every violation, in walk order.
    pub errors: Vec<String>,
}

impl IntegrityReport {
    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    fn error(&mut self, msg: String) {
        self.errors.push(msg);
    }

    fn orphan(&mut self, msg: String) {
        self.orphans += 1;
        self.errors.push(msg);
    }
}

impl std::fmt::Display for IntegrityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "partitions walked: {}, vectors checked: {}, assets cross-checked: {}, \
             codes checked: {}, orphans: {}, errors: {}",
            self.partitions_walked,
            self.vectors_checked,
            self.assets_checked,
            self.codes_checked,
            self.orphans,
            self.errors.len()
        )
    }
}

impl MicroNN {
    /// Walks the whole catalog from one read snapshot and cross-checks
    /// every inter-table invariant (see the [module docs](crate::integrity)
    /// for the list). Returns the counters and violations; errors only
    /// on I/O or row-decoding failures that prevent the walk itself.
    pub fn verify_integrity(&self) -> Result<IntegrityReport> {
        let r = self.inner.db.begin_read();
        verify_integrity_at(&self.inner, &r)
    }
}

/// [`MicroNN::verify_integrity`] against an explicit pinned snapshot
/// ([`crate::Snapshot::verify_integrity`]): every table is walked at
/// `r`'s commit seq, so fsck sees one frozen catalog even while
/// writers and maintenance commit underneath.
pub(crate) fn verify_integrity_at(inner: &Inner, r: &ReadTxn) -> Result<IntegrityReport> {
    {
        let dim = inner.dim;
        let mut rep = IntegrityReport::default();

        // Pass 1 — vectors: decode every row, index (partition, vid) →
        // asset, count rows per partition. SQ8 catalogs also keep the
        // decoded f32s for the code re-encoding check below.
        let mut by_key: BTreeMap<(i64, i64), i64> = BTreeMap::new();
        let mut f32s: BTreeMap<(i64, i64), Vec<f32>> = BTreeMap::new();
        let mut part_counts: BTreeMap<i64, i64> = BTreeMap::new();
        let mut max_vid = 0i64;
        for row in inner.tables.vectors.scan(&r)? {
            let row = row?;
            rep.vectors_checked += 1;
            let p = row[0].as_integer().unwrap_or(0);
            let vid = row[1].as_integer().unwrap_or(0);
            let asset = row[2].as_integer().unwrap_or(0);
            max_vid = max_vid.max(vid);
            *part_counts.entry(p).or_insert(0) += 1;
            match row[3].as_blob().map(blob_to_f32) {
                Some(Ok(v)) if v.len() == dim => {
                    if inner.quantized() {
                        f32s.insert((p, vid), v);
                    }
                }
                Some(Ok(v)) => rep.error(format!(
                    "vector ({p},{vid}): dimension {} != index dimension {dim}",
                    v.len()
                )),
                _ => rep.error(format!("vector ({p},{vid}): payload is not an f32 blob")),
            }
            if by_key.insert((p, vid), asset).is_some() {
                rep.error(format!("vector ({p},{vid}): duplicate primary key"));
            }
        }

        // Pass 2 — assets ↔ vectors bijection, and assets ↔ attrs.
        let mut referenced: BTreeSet<(i64, i64)> = BTreeSet::new();
        let mut asset_ids: BTreeSet<i64> = BTreeSet::new();
        for row in inner.tables.assets.scan(&r)? {
            let row = row?;
            rep.assets_checked += 1;
            let asset = row[0].as_integer().unwrap_or(0);
            let p = row[1].as_integer().unwrap_or(0);
            let vid = row[2].as_integer().unwrap_or(0);
            asset_ids.insert(asset);
            match by_key.get(&(p, vid)) {
                Some(&a) if a == asset => {
                    referenced.insert((p, vid));
                }
                Some(&a) => rep.orphan(format!(
                    "asset {asset} points at vector ({p},{vid}) which belongs to asset {a}"
                )),
                None => rep.orphan(format!(
                    "asset {asset} points at missing vector ({p},{vid})"
                )),
            }
        }
        for (&(p, vid), &asset) in &by_key {
            if !referenced.contains(&(p, vid)) {
                rep.orphan(format!(
                    "vector ({p},{vid}) of asset {asset} has no asset row pointing at it"
                ));
            }
        }
        let mut attr_ids: BTreeSet<i64> = BTreeSet::new();
        for row in inner.tables.attrs.scan(&r)? {
            let row = row?;
            attr_ids.insert(row[0].as_integer().unwrap_or(0));
        }
        for &asset in &asset_ids {
            if !attr_ids.contains(&asset) {
                rep.orphan(format!("asset {asset} has no attributes row"));
            }
        }
        for &asset in &attr_ids {
            if !asset_ids.contains(&asset) {
                rep.orphan(format!("attributes row for {asset} has no asset row"));
            }
        }

        // Pass 3 — centroids: dimensions, exact sizes, id coverage.
        let mut centroid_pids: BTreeSet<i64> = BTreeSet::new();
        let mut max_pid = 0i64;
        for row in inner.tables.centroids.scan(&r)? {
            let row = row?;
            rep.partitions_walked += 1;
            let pid = row[0].as_integer().unwrap_or(0);
            centroid_pids.insert(pid);
            max_pid = max_pid.max(pid);
            if pid == DELTA_PARTITION {
                rep.error("centroid row for the reserved delta partition 0".into());
            }
            match row[1].as_blob().map(blob_to_f32) {
                Some(Ok(c)) if c.len() == dim => {}
                _ => rep.error(format!("centroid {pid}: payload is not a {dim}-d f32 blob")),
            }
            let stored = row[2].as_integer().unwrap_or(0);
            let actual = part_counts.get(&pid).copied().unwrap_or(0);
            if stored != actual {
                rep.error(format!(
                    "centroid {pid}: persisted size {stored} != actual row count {actual}"
                ));
            }
        }
        for (&p, &n) in &part_counts {
            if p != DELTA_PARTITION && !centroid_pids.contains(&p) {
                rep.orphan(format!(
                    "{n} vector rows in partition {p} without a centroid"
                ));
            }
        }

        // Pass 4 — meta consistency.
        let delta_meta = meta_int(&r, &inner.tables.meta, M_DELTA_COUNT)?;
        let delta_actual = part_counts.get(&DELTA_PARTITION).copied().unwrap_or(0);
        if delta_meta != delta_actual {
            rep.error(format!(
                "meta delta_count {delta_meta} != delta store row count {delta_actual}"
            ));
        }
        let k_meta = meta_int(&r, &inner.tables.meta, M_PARTITIONS)?;
        if k_meta != centroid_pids.len() as i64 {
            rep.error(format!(
                "meta k {k_meta} != centroid row count {}",
                centroid_pids.len()
            ));
        }
        let next_pid = meta_int(&r, &inner.tables.meta, M_NEXT_PID)?;
        if next_pid != 0 && next_pid <= max_pid {
            rep.error(format!(
                "meta next_pid {next_pid} is not past the largest partition id {max_pid}"
            ));
        }
        let next_vid = meta_int(&r, &inner.tables.meta, M_NEXT_VID)?;
        if next_vid <= max_vid {
            rep.error(format!(
                "meta next_vid {next_vid} is not past the largest stored vid {max_vid}"
            ));
        }

        // Pass 5 — quantized catalogs: the code storage mirrors the
        // indexed vectors bit-for-bit under each partition's stored
        // ranges (SQ8 row-per-vid, SQ4 blocked slots).
        if let (Some(codes), Some(quants)) = (&inner.tables.codes, &inner.tables.quants) {
            let mut params: BTreeMap<i64, micronn_linalg::Sq8Params> = BTreeMap::new();
            for row in quants.scan(&r)? {
                let row = row?;
                let pid = row[0].as_integer().unwrap_or(0);
                if !centroid_pids.contains(&pid) {
                    rep.orphan(format!("quantization ranges for unknown partition {pid}"));
                }
                match row[1]
                    .as_blob()
                    .map(|b| crate::codec::params_from_blob(b, dim))
                {
                    Some(Ok(p)) => {
                        params.insert(pid, p);
                    }
                    _ => rep.error(format!("quants {pid}: malformed ranges blob")),
                }
            }
            let mut code_keys: BTreeSet<(i64, i64)> = BTreeSet::new();
            let mut code_buf = Vec::with_capacity(dim);
            if inner.cfg.codec == crate::VectorCodec::Sq4 {
                use crate::codec::{sq4_slot, SQ4_MEMBERS_BYTES};
                use micronn_linalg::{get_block_code, sq4_block_bytes, SQ4_BLOCK, SQ4_LEVELS};
                // One encoder per encoded partition; re-encoding must
                // reproduce every live slot's nibbles exactly.
                let encoders: BTreeMap<i64, micronn_linalg::Sq8Encoder> = params
                    .iter()
                    .map(|(&p, pr)| (p, pr.encoder(SQ4_LEVELS)))
                    .collect();
                for row in codes.scan(&r)? {
                    let row = row?;
                    let p = row[0].as_integer().unwrap_or(0);
                    let block = row[1].as_integer().unwrap_or(0);
                    if p == DELTA_PARTITION {
                        rep.error(format!("sq4 block ({p},{block}) in the delta store"));
                        continue;
                    }
                    let (Some(members), Some(packed)) = (row[2].as_blob(), row[3].as_blob()) else {
                        rep.error(format!(
                            "sq4 block ({p},{block}): members/packed is not a blob"
                        ));
                        continue;
                    };
                    if members.len() != SQ4_MEMBERS_BYTES || packed.len() != sq4_block_bytes(dim) {
                        rep.error(format!(
                            "sq4 block ({p},{block}): {} members bytes / {} packed bytes, \
                             expected {SQ4_MEMBERS_BYTES} / {}",
                            members.len(),
                            packed.len(),
                            sq4_block_bytes(dim)
                        ));
                        continue;
                    }
                    for slot in 0..SQ4_BLOCK {
                        let (vid, asset) = sq4_slot(members, slot);
                        if vid == 0 {
                            continue; // empty or tombstoned slot
                        }
                        rep.codes_checked += 1;
                        if !code_keys.insert((p, vid)) {
                            rep.error(format!(
                                "vector ({p},{vid}) occupies more than one live sq4 slot"
                            ));
                            continue;
                        }
                        match by_key.get(&(p, vid)) {
                            Some(&a) if a == asset => {}
                            Some(&a) => rep.orphan(format!(
                                "sq4 slot of ({p},{vid}) carries asset {asset}, \
                                 vector row says {a}"
                            )),
                            None => {
                                rep.orphan(format!("live sq4 slot ({p},{vid}) has no vector row"));
                                continue;
                            }
                        }
                        match (encoders.get(&p), f32s.get(&(p, vid))) {
                            (Some(enc), Some(v)) => {
                                code_buf.clear();
                                enc.encode_row(v, &mut code_buf);
                                if (0..dim).any(|d| get_block_code(packed, d, slot) != code_buf[d])
                                {
                                    rep.error(format!(
                                        "sq4 code of ({p},{vid}) does not re-encode from \
                                         its f32 row under partition {p}'s stored ranges"
                                    ));
                                }
                            }
                            (None, _) => rep.orphan(format!(
                                "sq4 slot ({p},{vid}) in partition without quantization ranges"
                            )),
                            _ => {} // undecodable vector already reported
                        }
                    }
                }
            } else {
                for row in codes.scan(&r)? {
                    let row = row?;
                    rep.codes_checked += 1;
                    let p = row[0].as_integer().unwrap_or(0);
                    let vid = row[1].as_integer().unwrap_or(0);
                    let asset = row[2].as_integer().unwrap_or(0);
                    code_keys.insert((p, vid));
                    if p == DELTA_PARTITION {
                        rep.error(format!("code row ({p},{vid}) in the delta store"));
                        continue;
                    }
                    match by_key.get(&(p, vid)) {
                        Some(&a) if a == asset => {}
                        Some(&a) => rep.orphan(format!(
                            "code ({p},{vid}) carries asset {asset}, vector row says {a}"
                        )),
                        None => {
                            rep.orphan(format!("code ({p},{vid}) has no vector row"));
                            continue;
                        }
                    }
                    let Some(code) = row[3].as_blob() else {
                        rep.error(format!("code ({p},{vid}): payload is not a blob"));
                        continue;
                    };
                    if code.len() != dim {
                        rep.error(format!(
                            "code ({p},{vid}): {} bytes, expected {dim}",
                            code.len()
                        ));
                        continue;
                    }
                    match (params.get(&p), f32s.get(&(p, vid))) {
                        (Some(pr), Some(v)) => {
                            code_buf.clear();
                            pr.encode_into(v, &mut code_buf);
                            if code_buf != code {
                                rep.error(format!(
                                    "code ({p},{vid}) does not re-encode from its f32 row \
                                     under partition {p}'s stored ranges"
                                ));
                            }
                        }
                        (None, _) => rep.orphan(format!(
                            "code ({p},{vid}) in partition without quantization ranges"
                        )),
                        _ => {} // undecodable vector already reported
                    }
                }
            }
            for &(p, vid) in by_key.keys() {
                if p != DELTA_PARTITION && !code_keys.contains(&(p, vid)) {
                    rep.orphan(format!("indexed vector ({p},{vid}) has no code row"));
                }
            }
        }

        Ok(rep)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::Config;
    use crate::db::{set_meta_int, MicroNN, VectorRecord, M_DELTA_COUNT};
    use micronn_linalg::Metric;
    use micronn_rel::Value;
    use micronn_storage::SyncMode;

    fn build(dir: &std::path::Path, codec: crate::VectorCodec) -> MicroNN {
        let mut cfg = Config::new(8, Metric::L2);
        cfg.store.sync = SyncMode::Off;
        cfg.target_partition_size = 8;
        cfg.codec = codec;
        let db = MicroNN::create(dir.join("i.mnn"), cfg).unwrap();
        for i in 0..40i64 {
            db.upsert(VectorRecord::new(i, vec![(i % 5) as f32; 8]))
                .unwrap();
        }
        db.rebuild().unwrap();
        db
    }

    #[test]
    fn clean_database_passes_with_counts() {
        let dir = tempfile::tempdir().unwrap();
        for codec in [
            crate::VectorCodec::F32,
            crate::VectorCodec::Sq8,
            crate::VectorCodec::Sq4,
        ] {
            let d = dir.path().join(codec.name());
            std::fs::create_dir(&d).unwrap();
            let db = build(&d, codec);
            let rep = db.verify_integrity().unwrap();
            assert!(rep.is_clean(), "{codec}: {:?}", rep.errors);
            assert_eq!(rep.vectors_checked, 40);
            assert_eq!(rep.assets_checked, 40);
            assert!(rep.partitions_walked > 0);
            assert_eq!(rep.orphans, 0);
            if codec.is_quantized() {
                assert_eq!(rep.codes_checked, 40, "every indexed row has a code");
            } else {
                assert_eq!(rep.codes_checked, 0);
            }
        }
    }

    #[test]
    fn dangling_asset_row_is_reported() {
        let dir = tempfile::tempdir().unwrap();
        let db = build(dir.path(), crate::VectorCodec::F32);
        // Hand-corrupt: delete one vector row without its asset row.
        let inner = &*db.inner;
        let mut txn = inner.db.begin_write().unwrap();
        let loc = inner
            .tables
            .assets
            .get(&txn, &[Value::Integer(7)])
            .unwrap()
            .unwrap();
        inner
            .tables
            .vectors
            .delete(&mut txn, &[loc[1].clone(), loc[2].clone()])
            .unwrap();
        txn.commit().unwrap();

        let rep = db.verify_integrity().unwrap();
        assert!(!rep.is_clean());
        assert!(rep.orphans >= 1);
        assert!(
            rep.errors.iter().any(|e| e.contains("asset 7")),
            "{:?}",
            rep.errors
        );
    }

    #[test]
    fn wrong_partition_size_and_meta_drift_are_reported() {
        let dir = tempfile::tempdir().unwrap();
        let db = build(dir.path(), crate::VectorCodec::F32);
        let inner = &*db.inner;
        let mut txn = inner.db.begin_write().unwrap();
        // Drift one centroid's persisted size and the delta counter.
        let mut row = inner
            .tables
            .centroids
            .scan(&txn)
            .unwrap()
            .next()
            .unwrap()
            .unwrap();
        row[2] = Value::Integer(row[2].as_integer().unwrap() + 3);
        inner.tables.centroids.upsert(&mut txn, row).unwrap();
        set_meta_int(&mut txn, &inner.tables.meta, M_DELTA_COUNT, 99).unwrap();
        txn.commit().unwrap();

        let rep = db.verify_integrity().unwrap();
        assert!(!rep.is_clean());
        assert!(
            rep.errors.iter().any(|e| e.contains("persisted size")),
            "{:?}",
            rep.errors
        );
        assert!(
            rep.errors.iter().any(|e| e.contains("delta_count")),
            "{:?}",
            rep.errors
        );
    }

    #[test]
    fn tombstoned_sq4_slot_with_live_vector_is_reported() {
        let dir = tempfile::tempdir().unwrap();
        let db = build(dir.path(), crate::VectorCodec::Sq4);
        let inner = &*db.inner;
        let mut txn = inner.db.begin_write().unwrap();
        // Hand-corrupt: tombstone one live slot while its vector row
        // stays — the mirror check must flag the missing code.
        let codes = inner.tables.codes.as_ref().unwrap();
        let mut row = codes.scan(&txn).unwrap().next().unwrap().unwrap();
        let mut members = row[2].as_blob().unwrap().to_vec();
        let slot = (0..micronn_linalg::SQ4_BLOCK)
            .find(|&j| crate::codec::sq4_slot(&members, j).0 != 0)
            .expect("block has a live slot");
        crate::codec::sq4_set_slot(&mut members, slot, 0, 0);
        row[2] = Value::Blob(members);
        codes.upsert(&mut txn, row).unwrap();
        txn.commit().unwrap();

        let rep = db.verify_integrity().unwrap();
        assert!(!rep.is_clean());
        assert!(
            rep.errors.iter().any(|e| e.contains("no code row")),
            "{:?}",
            rep.errors
        );
    }

    #[test]
    fn stale_code_row_is_reported() {
        let dir = tempfile::tempdir().unwrap();
        let db = build(dir.path(), crate::VectorCodec::Sq8);
        let inner = &*db.inner;
        let mut txn = inner.db.begin_write().unwrap();
        // Remove one code row: the mirrored tables now disagree.
        let codes = inner.tables.codes.as_ref().unwrap();
        let key = {
            let row = codes.scan(&txn).unwrap().next().unwrap().unwrap();
            [row[0].clone(), row[1].clone()]
        };
        codes.delete(&mut txn, &key).unwrap();
        txn.commit().unwrap();

        let rep = db.verify_integrity().unwrap();
        assert!(!rep.is_clean());
        assert!(
            rep.errors.iter().any(|e| e.contains("no code row")),
            "{:?}",
            rep.errors
        );
    }
}
