//! Configuration: index parameters, attribute schema, and device
//! profiles.

use micronn_linalg::Metric;
use micronn_rel::ValueType;
use micronn_storage::{StoreOptions, SyncMode};

use crate::codec::VectorCodec;

/// A client-defined filterable attribute (§3.5): a typed column in the
/// attributes table, optionally b-tree indexed and/or full-text
/// indexed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    pub name: String,
    pub ty: ValueType,
    /// Create a secondary b-tree index over this attribute.
    pub indexed: bool,
    /// Create a full-text index over this attribute (TEXT only).
    pub fts: bool,
}

impl AttributeDef {
    /// A plain (unindexed) attribute.
    pub fn new(name: impl Into<String>, ty: ValueType) -> AttributeDef {
        AttributeDef {
            name: name.into(),
            ty,
            indexed: false,
            fts: false,
        }
    }

    /// A b-tree indexed attribute.
    pub fn indexed(name: impl Into<String>, ty: ValueType) -> AttributeDef {
        AttributeDef {
            name: name.into(),
            ty,
            indexed: true,
            fts: false,
        }
    }

    /// A full-text indexed TEXT attribute.
    pub fn full_text(name: impl Into<String>) -> AttributeDef {
        AttributeDef {
            name: name.into(),
            ty: ValueType::Text,
            indexed: false,
            fts: true,
        }
    }
}

/// Configuration for creating a MicroNN index.
#[derive(Debug, Clone)]
pub struct Config {
    /// Vector dimensionality (fixed at creation).
    pub dim: usize,
    /// Distance metric (fixed at creation).
    pub metric: Metric,
    /// How vector payloads are stored and scanned (fixed at creation):
    /// full-precision [`VectorCodec::F32`] or quantized
    /// [`VectorCodec::Sq8`] with exact re-ranking.
    pub codec: VectorCodec,
    /// Quantized scans keep `rerank_factor × k` candidates and re-rank
    /// them against exact f32 vectors (ignored by [`VectorCodec::F32`];
    /// paper-style default: 4).
    pub rerank_factor: usize,
    /// Quantizer range-drift threshold for quantized codecs: once the
    /// fraction of flushed rows that clamped against a partition's
    /// stored ranges exceeds this limit, the maintainer retrains that
    /// partition's ranges (in `(0, 1]`; default 0.1). Ignored by
    /// [`VectorCodec::F32`].
    pub range_drift_limit: f64,
    /// Target vectors per IVF partition `t` (paper default: 100).
    pub target_partition_size: usize,
    /// Default number of partitions probed per ANN query `n`.
    pub default_probes: usize,
    /// Worker threads for parallel partition scans; `0` = one per
    /// available core (capped at 8, an on-device-friendly bound).
    pub workers: usize,
    /// Flush the delta store into the IVF index once it holds this many
    /// vectors (`maybe_maintain`).
    pub delta_flush_threshold: usize,
    /// Trigger a full rebuild when the average partition size exceeds
    /// this multiple of its post-build baseline (paper: 1.5 = +50%).
    /// With [`Config::lifecycle`] enabled this becomes a rare fallback:
    /// local splits keep partition growth in check first.
    pub growth_limit: f64,
    /// Enable local partition lifecycle maintenance (§3.6 extended):
    /// oversized partitions are split by local re-clustering and
    /// undersized partitions merged into their nearest neighbour, so
    /// growth rarely escalates to a full rebuild.
    pub lifecycle: bool,
    /// Split a partition once it holds more than
    /// `split_limit × target_partition_size` vectors (must exceed 1.0).
    pub split_limit: f64,
    /// Merge a partition once it holds fewer than
    /// `merge_limit × target_partition_size` vectors (in `[0, 1)`;
    /// `0` disables merging).
    pub merge_limit: f64,
    /// Mini-batch size for index-construction clustering.
    pub clustering_batch_size: usize,
    /// Clustering iterations; `0` = auto.
    pub clustering_iterations: usize,
    /// Balance-constraint weight λ of Algorithm 1.
    pub balance_lambda: f32,
    /// RNG seed for clustering.
    pub seed: u64,
    /// Build a two-level index over the centroids once the partition
    /// count reaches this threshold (§3.2's "the centroid table itself
    /// could also be indexed"); probe selection then costs `O(√k)`
    /// instead of `O(k)` centroid distances.
    pub centroid_index_threshold: usize,
    /// Client-defined filterable attributes.
    pub attributes: Vec<AttributeDef>,
    /// Queries slower than this many milliseconds are captured (with
    /// their full per-stage breakdown) in the slow-query ring log;
    /// `Some(0)` logs every query, `None` (the default) disables the
    /// log. Setting a threshold also enables stage timing.
    pub slow_query_ms: Option<u64>,
    /// Route spans (query stages, WAL group commits, checkpoints,
    /// maintenance actions) into the telemetry registry from the
    /// moment the index opens. Defaults to the `MICRONN_TRACE`
    /// environment variable (any value but `0` enables); a custom
    /// sink can be installed later via `MicroNN::set_trace_sink`.
    pub trace: bool,
    /// Storage engine tuning (buffer-pool bytes, sync mode, ...).
    pub store: StoreOptions,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            dim: 0,
            metric: Metric::L2,
            codec: VectorCodec::F32,
            rerank_factor: 4,
            range_drift_limit: 0.1,
            target_partition_size: 100,
            default_probes: 8,
            workers: 0,
            delta_flush_threshold: 1024,
            growth_limit: 1.5,
            lifecycle: true,
            split_limit: 1.5,
            merge_limit: 0.25,
            clustering_batch_size: 1024,
            clustering_iterations: 0,
            balance_lambda: 0.5,
            seed: 0x5EED,
            centroid_index_threshold: 2048,
            attributes: Vec::new(),
            slow_query_ms: None,
            trace: std::env::var("MICRONN_TRACE").is_ok_and(|v| !v.is_empty() && v != "0"),
            store: StoreOptions::default(),
        }
    }
}

impl Config {
    /// A config with the required fields set.
    pub fn new(dim: usize, metric: Metric) -> Config {
        Config {
            dim,
            metric,
            ..Default::default()
        }
    }

    /// Validates creation-time invariants.
    pub fn validate(&self) -> crate::error::Result<()> {
        if self.dim == 0 {
            return Err(crate::error::Error::Config("dim must be positive".into()));
        }
        if self.target_partition_size == 0 {
            return Err(crate::error::Error::Config(
                "target_partition_size must be positive".into(),
            ));
        }
        if self.growth_limit <= 1.0 {
            return Err(crate::error::Error::Config(
                "growth_limit must exceed 1.0".into(),
            ));
        }
        if self.rerank_factor == 0 {
            return Err(crate::error::Error::Config(
                "rerank_factor must be positive".into(),
            ));
        }
        if !(self.range_drift_limit > 0.0 && self.range_drift_limit <= 1.0) {
            return Err(crate::error::Error::Config(
                "range_drift_limit must be in (0, 1]".into(),
            ));
        }
        if self.split_limit <= 1.0 {
            return Err(crate::error::Error::Config(
                "split_limit must exceed 1.0".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.merge_limit) {
            return Err(crate::error::Error::Config(
                "merge_limit must be in [0, 1)".into(),
            ));
        }
        let mut names = std::collections::HashSet::new();
        for a in &self.attributes {
            if !names.insert(a.name.as_str()) {
                return Err(crate::error::Error::Config(format!(
                    "duplicate attribute {}",
                    a.name
                )));
            }
            if a.fts && a.ty != ValueType::Text {
                return Err(crate::error::Error::Config(format!(
                    "attribute {}: fts requires TEXT",
                    a.name
                )));
            }
            if a.name == "asset" {
                return Err(crate::error::Error::Config(
                    "attribute name 'asset' is reserved".into(),
                ));
            }
        }
        Ok(())
    }

    /// Effective worker-thread count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(2)
                .min(8)
        }
    }
}

/// Device profiles used throughout the evaluation: the paper's "Small
/// DUT" (single-digit GiB of RAM) and "Large DUT" (tens of GiB) differ,
/// for our purposes, in how much page cache the store may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceProfile {
    /// Memory-constrained device: 4 MiB page cache, 2 workers.
    Small,
    /// Roomier device: 32 MiB page cache, 4 workers.
    Large,
}

impl DeviceProfile {
    /// Store options for this profile (sync off: benchmarks measure
    /// compute + cache behaviour, not fsync latency).
    pub fn store_options(self) -> StoreOptions {
        match self {
            DeviceProfile::Small => StoreOptions {
                pool_bytes: 4 * 1024 * 1024,
                sync: SyncMode::Off,
                // Spill write transactions early: 2 MiB of dirty pages.
                spill_after_pages: 512,
                ..Default::default()
            },
            DeviceProfile::Large => StoreOptions {
                pool_bytes: 32 * 1024 * 1024,
                sync: SyncMode::Off,
                spill_after_pages: 2048,
                ..Default::default()
            },
        }
    }

    /// Worker threads for this profile.
    pub fn workers(self) -> usize {
        match self {
            DeviceProfile::Small => 2,
            DeviceProfile::Large => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates_with_dim() {
        assert!(Config::new(128, Metric::L2).validate().is_ok());
        assert!(Config::default().validate().is_err(), "dim 0 rejected");
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = Config::new(8, Metric::L2);
        c.target_partition_size = 0;
        assert!(c.validate().is_err());
        let mut c = Config::new(8, Metric::L2);
        c.growth_limit = 1.0;
        assert!(c.validate().is_err());
        let mut c = Config::new(8, Metric::L2);
        c.attributes = vec![
            AttributeDef::new("a", ValueType::Integer),
            AttributeDef::new("a", ValueType::Text),
        ];
        assert!(c.validate().is_err(), "duplicate attr");
        let mut c = Config::new(8, Metric::L2);
        c.attributes = vec![AttributeDef {
            name: "x".into(),
            ty: ValueType::Integer,
            indexed: false,
            fts: true,
        }];
        assert!(c.validate().is_err(), "fts on non-text");
        let mut c = Config::new(8, Metric::L2);
        c.attributes = vec![AttributeDef::new("asset", ValueType::Integer)];
        assert!(c.validate().is_err(), "reserved name");
        let mut c = Config::new(8, Metric::L2);
        c.rerank_factor = 0;
        assert!(c.validate().is_err(), "rerank_factor 0");
        let mut c = Config::new(8, Metric::L2);
        c.split_limit = 1.0;
        assert!(c.validate().is_err(), "split_limit <= 1");
        let mut c = Config::new(8, Metric::L2);
        c.merge_limit = 1.0;
        assert!(c.validate().is_err(), "merge_limit >= 1");
        let mut c = Config::new(8, Metric::L2);
        c.range_drift_limit = 0.0;
        assert!(c.validate().is_err(), "range_drift_limit 0");
        let mut c = Config::new(8, Metric::L2);
        c.range_drift_limit = 1.5;
        assert!(c.validate().is_err(), "range_drift_limit > 1");
    }

    #[test]
    fn lifecycle_defaults() {
        let c = Config::new(8, Metric::L2);
        assert!(c.lifecycle);
        assert!(c.split_limit > 1.0);
        assert!((0.0..1.0).contains(&c.merge_limit));
        let mut c = Config::new(8, Metric::L2);
        c.merge_limit = 0.0; // merging disabled
        assert!(c.validate().is_ok());
    }

    #[test]
    fn codec_defaults_and_sq8_config() {
        let c = Config::new(8, Metric::L2);
        assert_eq!(c.codec, VectorCodec::F32);
        assert_eq!(c.rerank_factor, 4);
        let mut c = Config::new(8, Metric::L2);
        c.codec = VectorCodec::Sq8;
        assert!(c.validate().is_ok());
        c.codec = VectorCodec::Sq4;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn telemetry_defaults() {
        let c = Config::new(8, Metric::L2);
        assert_eq!(c.slow_query_ms, None, "slow-query log off by default");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn attribute_constructors() {
        let a = AttributeDef::indexed("loc", ValueType::Text);
        assert!(a.indexed && !a.fts);
        let a = AttributeDef::full_text("tags");
        assert!(a.fts && a.ty == ValueType::Text);
    }

    #[test]
    fn workers_defaulting() {
        let c = Config::new(4, Metric::L2);
        assert!(c.effective_workers() >= 1);
        let c = Config {
            workers: 3,
            ..Config::new(4, Metric::L2)
        };
        assert_eq!(c.effective_workers(), 3);
    }

    #[test]
    fn device_profiles_differ() {
        let s = DeviceProfile::Small.store_options();
        let l = DeviceProfile::Large.store_options();
        assert!(s.pool_bytes < l.pool_bytes);
        assert!(DeviceProfile::Small.workers() <= DeviceProfile::Large.workers());
    }
}
