//! Error types for the MicroNN vector database.

use std::fmt;

use micronn_cluster::SourceError;
use micronn_rel::RelError;
use micronn_storage::StorageError;

/// Convenience alias used across the core crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the MicroNN vector database.
#[derive(Debug)]
pub enum Error {
    /// The relational layer failed.
    Rel(RelError),
    /// Clustering failed (usually a storage error surfaced through the
    /// streaming vector source).
    Cluster(SourceError),
    /// Invalid configuration (bad dimension, unknown attribute, ...).
    Config(String),
    /// A query or record vector did not match the index dimension.
    DimensionMismatch { expected: usize, got: usize },
    /// The referenced asset does not exist.
    AssetNotFound(i64),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Rel(e) => write!(f, "relational error: {e}"),
            Error::Cluster(e) => write!(f, "clustering error: {e}"),
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "vector dimension mismatch: index is {expected}-d, got {got}-d"
                )
            }
            Error::AssetNotFound(id) => write!(f, "asset {id} not found"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Rel(e) => Some(e),
            Error::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for Error {
    fn from(e: RelError) -> Self {
        Error::Rel(e)
    }
}

impl From<StorageError> for Error {
    fn from(e: StorageError) -> Self {
        Error::Rel(RelError::Storage(e))
    }
}

impl From<SourceError> for Error {
    fn from(e: SourceError) -> Self {
        Error::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = RelError::NotFound("vectors".into()).into();
        assert!(e.to_string().contains("vectors"));
        let e: Error = StorageError::TxnClosed.into();
        assert!(matches!(e, Error::Rel(_)));
        let e = Error::DimensionMismatch {
            expected: 128,
            got: 64,
        };
        assert!(e.to_string().contains("128"));
        assert!(e.to_string().contains("64"));
        let e: Error = SourceError::msg("gather failed").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
