//! The catalog: persistent metadata for tables, indexes, full-text
//! indexes, and column statistics, plus the [`Database`] handle that
//! ties the relational layer to a [`micronn_storage::Store`].
//!
//! Catalog entries live in a dedicated B+tree (header root slot 0),
//! keyed by memcomparable tuples:
//!
//! | key                           | payload                           |
//! |-------------------------------|-----------------------------------|
//! | `("t", table)`                | schema, data-tree root            |
//! | `("c", table)`                | row count                         |
//! | `("i", table, index)`         | column list, index-tree root      |
//! | `("f", table, column)`        | postings root, counts root        |
//! | `("s", table, column)`        | serialized histogram              |

use micronn_storage::{BTree, PageRead, ReadTxn, Store, StoreOptions, WriteTxn};

use crate::error::{RelError, Result};
use crate::keys::encode_key;
use crate::row::{decode_row, encode_row};
use crate::schema::{ColumnDef, TableSchema};
use crate::table::{FtsDef, IndexDef, Table};
use crate::value::{Value, ValueType};

/// Header root slot holding the catalog tree.
const CATALOG_ROOT_SLOT: usize = 0;

fn table_key(name: &str) -> Vec<u8> {
    encode_key(&[Value::text("t"), Value::text(name)])
}

pub(crate) fn count_key(name: &str) -> Vec<u8> {
    encode_key(&[Value::text("c"), Value::text(name)])
}

fn index_key(table: &str, index: &str) -> Vec<u8> {
    encode_key(&[Value::text("i"), Value::text(table), Value::text(index)])
}

fn fts_key(table: &str, column: &str) -> Vec<u8> {
    encode_key(&[Value::text("f"), Value::text(table), Value::text(column)])
}

pub(crate) fn stats_key(table: &str, column: &str) -> Vec<u8> {
    encode_key(&[Value::text("s"), Value::text(table), Value::text(column)])
}

fn encode_schema(schema: &TableSchema, data_root: u32) -> Vec<u8> {
    let mut vals = vec![
        Value::text(schema.name.clone()),
        Value::Integer(data_root as i64),
        Value::Integer(schema.columns.len() as i64),
    ];
    for c in &schema.columns {
        vals.push(Value::text(c.name.clone()));
        vals.push(Value::Integer(c.ty.tag() as i64));
        vals.push(Value::Integer(c.nullable as i64));
    }
    vals.push(Value::Integer(schema.pk.len() as i64));
    for &i in &schema.pk {
        vals.push(Value::Integer(i as i64));
    }
    encode_row(&vals)
}

fn decode_schema(bytes: &[u8]) -> Result<(TableSchema, u32)> {
    let vals = decode_row(bytes)?;
    let mut it = vals.into_iter();
    let bad = || RelError::Codec("malformed table catalog entry".into());
    let name = match it.next().ok_or_else(bad)? {
        Value::Text(s) => s,
        _ => return Err(bad()),
    };
    let root = it.next().and_then(|v| v.as_integer()).ok_or_else(bad)? as u32;
    let ncols = it.next().and_then(|v| v.as_integer()).ok_or_else(bad)? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let cname = match it.next().ok_or_else(bad)? {
            Value::Text(s) => s,
            _ => return Err(bad()),
        };
        let tag = it.next().and_then(|v| v.as_integer()).ok_or_else(bad)? as u8;
        let nullable = it.next().and_then(|v| v.as_integer()).ok_or_else(bad)? != 0;
        columns.push(ColumnDef {
            name: cname,
            ty: ValueType::from_tag(tag).ok_or_else(bad)?,
            nullable,
        });
    }
    let npk = it.next().and_then(|v| v.as_integer()).ok_or_else(bad)? as usize;
    let mut pk = Vec::with_capacity(npk);
    for _ in 0..npk {
        pk.push(it.next().and_then(|v| v.as_integer()).ok_or_else(bad)? as usize);
    }
    Ok((TableSchema { name, columns, pk }, root))
}

/// A relational database over a single [`Store`] file. Cheap to clone.
#[derive(Clone)]
pub struct Database {
    store: Store,
}

impl Database {
    /// Creates a new database file with an empty catalog.
    pub fn create(path: impl AsRef<std::path::Path>, opts: StoreOptions) -> Result<Database> {
        let store = Store::create(path, opts)?;
        let mut txn = store.begin_write()?;
        let catalog = BTree::create(&mut txn)?;
        txn.set_root(CATALOG_ROOT_SLOT, catalog.root());
        txn.commit()?;
        Ok(Database { store })
    }

    /// Opens an existing database (with WAL crash recovery).
    pub fn open(path: impl AsRef<std::path::Path>, opts: StoreOptions) -> Result<Database> {
        let store = Store::open(path, opts)?;
        Ok(Database { store })
    }

    /// Opens `path`, creating it if missing.
    pub fn open_or_create(
        path: impl AsRef<std::path::Path>,
        opts: StoreOptions,
    ) -> Result<Database> {
        if path.as_ref().exists() {
            Database::open(path, opts)
        } else {
            Database::create(path, opts)
        }
    }

    /// The underlying page store (stats, checkpointing, cache purge).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Begins a snapshot-isolated read transaction.
    pub fn begin_read(&self) -> ReadTxn {
        self.store.begin_read()
    }

    /// Begins the exclusive write transaction.
    pub fn begin_write(&self) -> Result<WriteTxn> {
        Ok(self.store.begin_write()?)
    }

    fn catalog<R: PageRead + ?Sized>(r: &R) -> BTree {
        BTree::open(r.root(CATALOG_ROOT_SLOT))
    }

    /// Creates a table; fails if one with the same name exists.
    pub fn create_table(&self, txn: &mut WriteTxn, schema: TableSchema) -> Result<Table> {
        let catalog = Self::catalog(txn);
        let tkey = table_key(&schema.name);
        if catalog.get(txn, &tkey)?.is_some() {
            return Err(RelError::AlreadyExists(format!("table {}", schema.name)));
        }
        let data = BTree::create(txn)?;
        catalog.insert(txn, &tkey, &encode_schema(&schema, data.root()))?;
        catalog.insert(
            txn,
            &count_key(&schema.name),
            &encode_row(&[Value::Integer(0)]),
        )?;
        Ok(Table::assemble(schema, data, catalog, vec![], vec![]))
    }

    /// Opens a table and its indexes.
    pub fn open_table<R: PageRead + ?Sized>(&self, r: &R, name: &str) -> Result<Table> {
        let catalog = Self::catalog(r);
        let bytes = catalog
            .get(r, &table_key(name))?
            .ok_or_else(|| RelError::NotFound(format!("table {name}")))?;
        let (schema, root) = decode_schema(&bytes)?;
        // Load secondary indexes.
        let mut indexes = Vec::new();
        let iprefix = encode_key(&[Value::text("i"), Value::text(name)]);
        for kv in catalog.scan_prefix(r, &iprefix)? {
            let (k, v) = kv?;
            let key_vals = crate::keys::decode_key(&k)?;
            let index_name = match key_vals.get(2) {
                Some(Value::Text(s)) => s.clone(),
                _ => return Err(RelError::Codec("malformed index catalog key".into())),
            };
            let vals = decode_row(&v)?;
            let bad = || RelError::Codec("malformed index catalog entry".into());
            let root = vals.first().and_then(|v| v.as_integer()).ok_or_else(bad)? as u32;
            let ncols = vals.get(1).and_then(|v| v.as_integer()).ok_or_else(bad)? as usize;
            let mut cols = Vec::with_capacity(ncols);
            for i in 0..ncols {
                cols.push(
                    vals.get(2 + i)
                        .and_then(|v| v.as_integer())
                        .ok_or_else(bad)? as usize,
                );
            }
            indexes.push(IndexDef {
                name: index_name,
                cols,
                tree: BTree::open(root),
            });
        }
        // Load FTS indexes.
        let mut fts = Vec::new();
        let fprefix = encode_key(&[Value::text("f"), Value::text(name)]);
        for kv in catalog.scan_prefix(r, &fprefix)? {
            let (k, v) = kv?;
            let key_vals = crate::keys::decode_key(&k)?;
            let column_name = match key_vals.get(2) {
                Some(Value::Text(s)) => s.clone(),
                _ => return Err(RelError::Codec("malformed fts catalog key".into())),
            };
            let vals = decode_row(&v)?;
            let bad = || RelError::Codec("malformed fts catalog entry".into());
            let postings = vals.first().and_then(|v| v.as_integer()).ok_or_else(bad)? as u32;
            let counts = vals.get(1).and_then(|v| v.as_integer()).ok_or_else(bad)? as u32;
            fts.push(FtsDef {
                column: schema.column_index(&column_name)?,
                postings: BTree::open(postings),
                counts: BTree::open(counts),
            });
        }
        Ok(Table::assemble(
            schema,
            BTree::open(root),
            catalog,
            indexes,
            fts,
        ))
    }

    /// Drops a table, its indexes, and its statistics, freeing all
    /// their pages.
    pub fn drop_table(&self, txn: &mut WriteTxn, name: &str) -> Result<()> {
        let table = self.open_table(txn, name)?;
        let catalog = Self::catalog(txn);
        table.data_tree().destroy(txn)?;
        for idx in table.indexes() {
            idx.tree.destroy(txn)?;
        }
        for f in table.fts_indexes() {
            f.postings.destroy(txn)?;
            f.counts.destroy(txn)?;
        }
        // Remove every catalog entry mentioning the table.
        for kind in ["t", "c", "i", "f", "s"] {
            let prefix = encode_key(&[Value::text(kind), Value::text(name)]);
            let keys: Vec<Vec<u8>> = catalog
                .scan_prefix(txn, &prefix)?
                .map(|kv| kv.map(|(k, _)| k))
                .collect::<micronn_storage::Result<_>>()?;
            for k in keys {
                catalog.delete(txn, &k)?;
            }
        }
        Ok(())
    }

    /// Creates a secondary index on `cols` and backfills it from
    /// existing rows. Returns the refreshed table handle.
    pub fn create_index(
        &self,
        txn: &mut WriteTxn,
        table: &Table,
        index_name: &str,
        cols: &[&str],
    ) -> Result<Table> {
        let catalog = Self::catalog(txn);
        let schema = table.schema();
        let ikey = index_key(&schema.name, index_name);
        if catalog.get(txn, &ikey)?.is_some() {
            return Err(RelError::AlreadyExists(format!("index {index_name}")));
        }
        let col_indexes: Vec<usize> = cols
            .iter()
            .map(|c| schema.column_index(c))
            .collect::<Result<_>>()?;
        let tree = BTree::create(txn)?;
        let mut vals = vec![
            Value::Integer(tree.root() as i64),
            Value::Integer(col_indexes.len() as i64),
        ];
        for &c in &col_indexes {
            vals.push(Value::Integer(c as i64));
        }
        catalog.insert(txn, &ikey, &encode_row(&vals))?;
        let def = IndexDef {
            name: index_name.to_owned(),
            cols: col_indexes,
            tree,
        };
        // Backfill: every existing row gets an index entry.
        let rows: Vec<Vec<Value>> = table.scan(txn)?.collect::<Result<Vec<_>>>()?;
        for row in rows {
            def.insert_entry(txn, &row, &schema.pk_values(&row))?;
        }
        self.open_table(txn, &schema.name)
    }

    /// Creates a full-text index over a TEXT column and backfills it.
    /// Returns the refreshed table handle.
    pub fn create_fts_index(
        &self,
        txn: &mut WriteTxn,
        table: &Table,
        column: &str,
    ) -> Result<Table> {
        let catalog = Self::catalog(txn);
        let schema = table.schema();
        let col = schema.column_index(column)?;
        if schema.columns[col].ty != ValueType::Text {
            return Err(RelError::Schema(format!(
                "fts index requires a TEXT column, {column} is {}",
                schema.columns[col].ty
            )));
        }
        let fkey = fts_key(&schema.name, column);
        if catalog.get(txn, &fkey)?.is_some() {
            return Err(RelError::AlreadyExists(format!("fts index on {column}")));
        }
        let postings = BTree::create(txn)?;
        let counts = BTree::create(txn)?;
        catalog.insert(
            txn,
            &fkey,
            &encode_row(&[
                Value::Integer(postings.root() as i64),
                Value::Integer(counts.root() as i64),
            ]),
        )?;
        let def = FtsDef {
            column: col,
            postings,
            counts,
        };
        let rows: Vec<Vec<Value>> = table.scan(txn)?.collect::<Result<Vec<_>>>()?;
        for row in rows {
            def.add_doc(txn, &row, &schema.pk_values(&row))?;
        }
        self.open_table(txn, &schema.name)
    }

    /// Names of all tables.
    pub fn list_tables<R: PageRead + ?Sized>(&self, r: &R) -> Result<Vec<String>> {
        let catalog = Self::catalog(r);
        let prefix = encode_key(&[Value::text("t")]);
        let mut out = Vec::new();
        for kv in catalog.scan_prefix(r, &prefix)? {
            let (k, _) = kv?;
            if let Some(Value::Text(name)) = crate::keys::decode_key(&k)?.into_iter().nth(1) {
                out.push(name);
            }
        }
        Ok(out)
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("store", &self.store)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronn_storage::SyncMode;

    fn db() -> (tempfile::TempDir, Database) {
        let dir = tempfile::tempdir().unwrap();
        let db = Database::create(
            dir.path().join("db"),
            StoreOptions {
                sync: SyncMode::Off,
                ..Default::default()
            },
        )
        .unwrap();
        (dir, db)
    }

    fn photos_schema() -> TableSchema {
        TableSchema::new(
            "photos",
            vec![
                ColumnDef::new("id", ValueType::Integer),
                ColumnDef::new("location", ValueType::Text),
                ColumnDef::nullable("taken_at", ValueType::Integer),
            ],
            &["id"],
        )
        .unwrap()
    }

    #[test]
    fn create_open_table_roundtrip() {
        let (_d, db) = db();
        let mut txn = db.begin_write().unwrap();
        let t = db.create_table(&mut txn, photos_schema()).unwrap();
        assert_eq!(t.schema().name, "photos");
        txn.commit().unwrap();

        let r = db.begin_read();
        let t = db.open_table(&r, "photos").unwrap();
        assert_eq!(t.schema(), &photos_schema());
        assert_eq!(t.row_count(&r).unwrap(), 0);
        assert!(db.open_table(&r, "nope").is_err());
        assert_eq!(db.list_tables(&r).unwrap(), vec!["photos".to_string()]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let (_d, db) = db();
        let mut txn = db.begin_write().unwrap();
        db.create_table(&mut txn, photos_schema()).unwrap();
        assert!(matches!(
            db.create_table(&mut txn, photos_schema()),
            Err(RelError::AlreadyExists(_))
        ));
    }

    #[test]
    fn schema_codec_roundtrip() {
        let s = photos_schema();
        let bytes = encode_schema(&s, 42);
        let (s2, root) = decode_schema(&bytes).unwrap();
        assert_eq!(s, s2);
        assert_eq!(root, 42);
    }

    #[test]
    fn drop_table_frees_pages_and_catalog() {
        let (_d, db) = db();
        let mut txn = db.begin_write().unwrap();
        let t = db.create_table(&mut txn, photos_schema()).unwrap();
        for i in 0..500 {
            t.upsert(
                &mut txn,
                vec![
                    Value::Integer(i),
                    Value::text(format!("loc{}", i % 7)),
                    Value::Null,
                ],
            )
            .unwrap();
        }
        txn.commit().unwrap();
        let mut txn = db.begin_write().unwrap();
        db.drop_table(&mut txn, "photos").unwrap();
        txn.commit().unwrap();
        let r = db.begin_read();
        assert!(db.open_table(&r, "photos").is_err());
        assert!(db.list_tables(&r).unwrap().is_empty());
        assert!(db.store().freelist_len() > 0);
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db");
        {
            let db = Database::create(
                &path,
                StoreOptions {
                    sync: SyncMode::Off,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut txn = db.begin_write().unwrap();
            let t = db.create_table(&mut txn, photos_schema()).unwrap();
            t.upsert(
                &mut txn,
                vec![Value::Integer(1), Value::text("Seattle"), Value::Null],
            )
            .unwrap();
            txn.commit().unwrap();
        }
        let db = Database::open(
            &path,
            StoreOptions {
                sync: SyncMode::Off,
                ..Default::default()
            },
        )
        .unwrap();
        let r = db.begin_read();
        let t = db.open_table(&r, "photos").unwrap();
        let row = t.get(&r, &[Value::Integer(1)]).unwrap().unwrap();
        assert_eq!(row[1], Value::text("Seattle"));
        assert_eq!(t.row_count(&r).unwrap(), 1);
    }
}
