//! Full-text tokenization.
//!
//! MicroNN "allows a full-text index (FTS) to be created over
//! filterable attributes. Clients can combine nearest neighbour search
//! with text search" (§3.5). This mirrors FTS5's default `unicode61`
//! behaviour in simplified form: lowercase, split on anything that is
//! not alphanumeric.

/// Normalizes a single token (lowercasing).
pub fn normalize(token: &str) -> String {
    token.to_lowercase()
}

/// Splits `text` into normalized tokens, in order, with duplicates.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(normalize)
        .collect()
}

/// Splits `text` into the *set* of normalized tokens (sorted, deduped):
/// document frequency counts each document once per token.
pub fn tokenize_unique(text: &str) -> Vec<String> {
    let mut tokens = tokenize(text);
    tokens.sort_unstable();
    tokens.dedup();
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        assert_eq!(
            tokenize("Black cat, playing; yarn!"),
            vec!["black", "cat", "playing", "yarn"]
        );
        assert_eq!(tokenize("  multiple   spaces "), vec!["multiple", "spaces"]);
        assert!(tokenize("").is_empty());
        assert!(tokenize("?!,.").is_empty());
    }

    #[test]
    fn numbers_and_unicode() {
        assert_eq!(tokenize("photo123 IMG_456"), vec!["photo123", "img", "456"]);
        assert_eq!(tokenize("Café Ñandú"), vec!["café", "ñandú"]);
    }

    #[test]
    fn unique_dedupes_and_sorts() {
        assert_eq!(
            tokenize_unique("cat dog cat CAT bird"),
            vec!["bird", "cat", "dog"]
        );
    }
}
