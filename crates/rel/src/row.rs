//! Compact row (record) encoding.
//!
//! Rows store every column (including primary-key columns, for
//! simplicity of decoding) as `tag | payload`:
//!
//! ```text
//! row     := ncols:u16 (value)*
//! value   := 0x00                      NULL
//!          | 0x01 i64:le               INTEGER
//!          | 0x02 f64:le               REAL
//!          | 0x03 len:u32 utf8-bytes   TEXT
//!          | 0x04 len:u32 bytes        BLOB
//! ```
//!
//! Unlike keys, rows need no ordering property — only compactness and
//! cheap decode. Vector blobs are stored as raw little-endian `f32`
//! bytes inside a BLOB so the query engine can reinterpret them without
//! a marshalling copy (the paper's "format expected by the matrix
//! multiplication library", §3.3).

use crate::error::{RelError, Result};
use crate::value::Value;

/// Encodes a row of values.
pub fn encode_row(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + values.len() * 9);
    out.extend_from_slice(&(values.len() as u16).to_le_bytes());
    for v in values {
        match v {
            Value::Null => out.push(0x00),
            Value::Integer(i) => {
                out.push(0x01);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Real(r) => {
                out.push(0x02);
                out.extend_from_slice(&r.to_le_bytes());
            }
            Value::Text(s) => {
                out.push(0x03);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Blob(b) => {
                out.push(0x04);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
        }
    }
    out
}

/// Decodes a row produced by [`encode_row`].
pub fn decode_row(data: &[u8]) -> Result<Vec<Value>> {
    let mut dec = RowDecoder::new(data)?;
    let mut out = Vec::with_capacity(dec.remaining());
    while dec.remaining() > 0 {
        out.push(dec.next_value()?);
    }
    Ok(out)
}

/// Streaming row decoder; lets callers pull only the columns they need
/// (e.g. just the vector blob during a partition scan).
pub struct RowDecoder<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: usize,
}

impl<'a> RowDecoder<'a> {
    /// Starts decoding `data`.
    pub fn new(data: &'a [u8]) -> Result<RowDecoder<'a>> {
        if data.len() < 2 {
            return Err(RelError::Codec("row too short".into()));
        }
        let n = u16::from_le_bytes(data[..2].try_into().unwrap()) as usize;
        Ok(RowDecoder {
            data,
            pos: 2,
            remaining: n,
        })
    }

    /// Columns not yet decoded.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(RelError::Codec("row truncated".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decodes the next column as an owned [`Value`].
    pub fn next_value(&mut self) -> Result<Value> {
        if self.remaining == 0 {
            return Err(RelError::Codec("row exhausted".into()));
        }
        self.remaining -= 1;
        let tag = self.take(1)?[0];
        Ok(match tag {
            0x00 => Value::Null,
            0x01 => Value::Integer(i64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            0x02 => Value::Real(f64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            0x03 => {
                let len = u32::from_le_bytes(self.take(4)?.try_into().unwrap()) as usize;
                let bytes = self.take(len)?;
                Value::Text(
                    std::str::from_utf8(bytes)
                        .map_err(|_| RelError::Codec("invalid utf-8 in row".into()))?
                        .to_owned(),
                )
            }
            0x04 => {
                let len = u32::from_le_bytes(self.take(4)?.try_into().unwrap()) as usize;
                Value::Blob(self.take(len)?.to_vec())
            }
            t => return Err(RelError::Codec(format!("unknown row tag {t:#x}"))),
        })
    }

    /// Decodes the next column as a borrowed blob slice, avoiding the
    /// copy. Errors if the column is not a BLOB.
    pub fn next_blob(&mut self) -> Result<&'a [u8]> {
        if self.remaining == 0 {
            return Err(RelError::Codec("row exhausted".into()));
        }
        self.remaining -= 1;
        let tag = self.take(1)?[0];
        if tag != 0x04 {
            return Err(RelError::Codec(format!(
                "expected blob column, found tag {tag:#x}"
            )));
        }
        let len = u32::from_le_bytes(self.take(4)?.try_into().unwrap()) as usize;
        self.take(len)
    }

    /// Skips the next column without materializing it.
    pub fn skip(&mut self) -> Result<()> {
        if self.remaining == 0 {
            return Err(RelError::Codec("row exhausted".into()));
        }
        self.remaining -= 1;
        let tag = self.take(1)?[0];
        match tag {
            0x00 => {}
            0x01 | 0x02 => {
                self.take(8)?;
            }
            0x03 | 0x04 => {
                let len = u32::from_le_bytes(self.take(4)?.try_into().unwrap()) as usize;
                self.take(len)?;
            }
            t => return Err(RelError::Codec(format!("unknown row tag {t:#x}"))),
        }
        Ok(())
    }
}

/// Reinterprets a little-endian `f32` blob as a float vector. Copies
/// (alignment-safe) but performs no per-element marshalling.
pub fn blob_to_f32(blob: &[u8]) -> Result<Vec<f32>> {
    if blob.len() % 4 != 0 {
        return Err(RelError::Codec(format!(
            "vector blob length {} not a multiple of 4",
            blob.len()
        )));
    }
    Ok(blob
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Encodes a float vector as a little-endian `f32` blob.
pub fn f32_to_blob(v: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Decodes a little-endian `f32` blob directly into `out` (reuses the
/// caller's buffer: the scan hot path avoids per-row allocation).
pub fn blob_into_f32(blob: &[u8], out: &mut Vec<f32>) -> Result<()> {
    if blob.len() % 4 != 0 {
        return Err(RelError::Codec(format!(
            "vector blob length {} not a multiple of 4",
            blob.len()
        )));
    }
    out.clear();
    out.extend(
        blob.chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap())),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let row = vec![
            Value::Null,
            Value::Integer(i64::MIN),
            Value::Real(-2.5e77),
            Value::text("héllo"),
            Value::blob(vec![0u8, 1, 255]),
            Value::text(""),
            Value::blob(vec![]),
        ];
        assert_eq!(decode_row(&encode_row(&row)).unwrap(), row);
    }

    #[test]
    fn streaming_decoder_skip_and_blob() {
        let row = vec![
            Value::Integer(7),
            Value::blob(vec![9u8; 64]),
            Value::text("tail"),
        ];
        let bytes = encode_row(&row);
        let mut dec = RowDecoder::new(&bytes).unwrap();
        assert_eq!(dec.remaining(), 3);
        dec.skip().unwrap();
        let blob = dec.next_blob().unwrap();
        assert_eq!(blob, &[9u8; 64][..]);
        assert_eq!(dec.next_value().unwrap(), Value::text("tail"));
        assert_eq!(dec.remaining(), 0);
        assert!(dec.next_value().is_err());
    }

    #[test]
    fn next_blob_rejects_non_blob() {
        let bytes = encode_row(&[Value::Integer(1)]);
        let mut dec = RowDecoder::new(&bytes).unwrap();
        assert!(dec.next_blob().is_err());
    }

    #[test]
    fn truncated_rows_error() {
        let bytes = encode_row(&[Value::text("hello world")]);
        for cut in [0, 1, 3, bytes.len() - 1] {
            assert!(decode_row(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn f32_blob_roundtrip() {
        let v = vec![0.0f32, -1.5, f32::MAX, 1e-30];
        let blob = f32_to_blob(&v);
        assert_eq!(blob.len(), 16);
        assert_eq!(blob_to_f32(&blob).unwrap(), v);
        let mut out = vec![99.0f32; 2];
        blob_into_f32(&blob, &mut out).unwrap();
        assert_eq!(out, v);
        assert!(blob_to_f32(&blob[..3]).is_err());
    }
}
