//! Table schemas: column definitions and primary keys.

use crate::error::{RelError, Result};
use crate::value::{Value, ValueType};

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ValueType,
    pub nullable: bool,
}

impl ColumnDef {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, ty: ValueType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: true,
        }
    }
}

/// A table schema: ordered columns plus the primary-key column set.
/// Rows are clustered on the encoded primary key, so the choice of PK
/// determines on-disk locality — MicroNN keys its vector table by
/// `(partition_id, vector_id)` precisely to cluster partitions (§3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Indexes into `columns` forming the primary key, in key order.
    pub pk: Vec<usize>,
}

impl TableSchema {
    /// Builds and validates a schema. `pk_cols` are column names.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        pk_cols: &[&str],
    ) -> Result<TableSchema> {
        let name = name.into();
        if columns.is_empty() {
            return Err(RelError::Schema(format!("table {name}: no columns")));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.as_str()) {
                return Err(RelError::Schema(format!(
                    "table {name}: duplicate column {}",
                    c.name
                )));
            }
        }
        if pk_cols.is_empty() {
            return Err(RelError::Schema(format!("table {name}: empty primary key")));
        }
        let mut pk = Vec::with_capacity(pk_cols.len());
        for pc in pk_cols {
            let idx = columns
                .iter()
                .position(|c| c.name == *pc)
                .ok_or_else(|| RelError::Schema(format!("table {name}: pk column {pc} unknown")))?;
            if columns[idx].nullable {
                return Err(RelError::Schema(format!(
                    "table {name}: pk column {pc} must not be nullable"
                )));
            }
            if pk.contains(&idx) {
                return Err(RelError::Schema(format!(
                    "table {name}: pk column {pc} repeated"
                )));
            }
            pk.push(idx);
        }
        Ok(TableSchema { name, columns, pk })
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| RelError::Schema(format!("table {}: unknown column {name}", self.name)))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Extracts the primary-key values from a full row.
    pub fn pk_values(&self, row: &[Value]) -> Vec<Value> {
        self.pk.iter().map(|&i| row[i].clone()).collect()
    }

    /// Validates a row against the schema (arity, types, nullability).
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(RelError::Schema(format!(
                "table {}: expected {} columns, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if v.is_null() {
                if !c.nullable {
                    return Err(RelError::Schema(format!(
                        "table {}: column {} is not nullable",
                        self.name, c.name
                    )));
                }
                continue;
            }
            // INTEGER widens into REAL columns (SQLite-style affinity).
            let ok = v.value_type() == c.ty
                || (c.ty == ValueType::Real && v.value_type() == ValueType::Integer);
            if !ok {
                return Err(RelError::Schema(format!(
                    "table {}: column {} expects {}, got {}",
                    self.name,
                    c.name,
                    c.ty,
                    v.value_type()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "photos",
            vec![
                ColumnDef::new("id", ValueType::Integer),
                ColumnDef::new("location", ValueType::Text),
                ColumnDef::nullable("score", ValueType::Real),
            ],
            &["id"],
        )
        .unwrap()
    }

    #[test]
    fn valid_schema_and_lookups() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column_index("location").unwrap(), 1);
        assert!(s.column_index("nope").is_err());
        assert_eq!(s.pk, vec![0]);
        let row = vec![Value::Integer(7), Value::text("x"), Value::Null];
        assert_eq!(s.pk_values(&row), vec![Value::Integer(7)]);
    }

    #[test]
    fn schema_validation_errors() {
        assert!(TableSchema::new("t", vec![], &["id"]).is_err());
        assert!(TableSchema::new("t", vec![ColumnDef::new("a", ValueType::Integer)], &[]).is_err());
        assert!(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ValueType::Integer),
                ColumnDef::new("a", ValueType::Text)
            ],
            &["a"]
        )
        .is_err());
        assert!(
            TableSchema::new("t", vec![ColumnDef::new("a", ValueType::Integer)], &["b"]).is_err()
        );
        assert!(TableSchema::new(
            "t",
            vec![ColumnDef::nullable("a", ValueType::Integer)],
            &["a"]
        )
        .is_err());
        assert!(TableSchema::new(
            "t",
            vec![ColumnDef::new("a", ValueType::Integer)],
            &["a", "a"]
        )
        .is_err());
    }

    #[test]
    fn row_checks() {
        let s = schema();
        s.check_row(&[Value::Integer(1), Value::text("x"), Value::Real(0.5)])
            .unwrap();
        // Nullable column accepts NULL.
        s.check_row(&[Value::Integer(1), Value::text("x"), Value::Null])
            .unwrap();
        // Integer widens into REAL.
        s.check_row(&[Value::Integer(1), Value::text("x"), Value::Integer(3)])
            .unwrap();
        // Arity mismatch.
        assert!(s.check_row(&[Value::Integer(1)]).is_err());
        // NULL in non-nullable.
        assert!(s
            .check_row(&[Value::Null, Value::text("x"), Value::Null])
            .is_err());
        // Type mismatch.
        assert!(s
            .check_row(&[Value::Integer(1), Value::Integer(2), Value::Null])
            .is_err());
    }
}
