//! Tables: clustered row storage with secondary-index and full-text
//! maintenance.
//!
//! Rows are stored in a B+tree keyed by the memcomparable encoding of
//! the primary key, so a table keyed `(partition_id, vector_id)` lays
//! its partitions out contiguously on disk — the clustered-index
//! property MicroNN relies on for partition-scan locality (§3.2).
//! Every mutation keeps all secondary and full-text indexes and the
//! persistent row counter transactionally consistent.

use micronn_storage::{BTree, PageRead, WriteTxn};

use crate::catalog::count_key as table_count_key;
use crate::error::{RelError, Result};
use crate::fts;
use crate::keys::{decode_key, encode_key};
use crate::row::{decode_row, encode_row};
use crate::schema::TableSchema;
use crate::value::Value;

/// A secondary index: `encode_key(cols ++ pk) -> ()`.
#[derive(Debug, Clone)]
pub struct IndexDef {
    pub name: String,
    /// Column indexes (into the table schema) this index covers.
    pub cols: Vec<usize>,
    pub tree: BTree,
}

impl IndexDef {
    fn entry_key(&self, row: &[Value], pk_vals: &[Value]) -> Vec<u8> {
        let mut vals: Vec<Value> = self.cols.iter().map(|&c| row[c].clone()).collect();
        vals.extend(pk_vals.iter().cloned());
        encode_key(&vals)
    }

    pub(crate) fn insert_entry(
        &self,
        txn: &mut WriteTxn,
        row: &[Value],
        pk_vals: &[Value],
    ) -> Result<()> {
        self.tree.insert(txn, &self.entry_key(row, pk_vals), &[])?;
        Ok(())
    }

    fn remove_entry(&self, txn: &mut WriteTxn, row: &[Value], pk_vals: &[Value]) -> Result<()> {
        self.tree.delete(txn, &self.entry_key(row, pk_vals))?;
        Ok(())
    }

    /// Scans index entries whose indexed columns equal `vals`,
    /// yielding decoded primary keys.
    pub fn lookup_eq<R: PageRead + ?Sized>(
        &self,
        r: &R,
        vals: &[Value],
    ) -> Result<Vec<Vec<Value>>> {
        debug_assert_eq!(vals.len(), self.cols.len());
        let prefix = encode_key(vals);
        let mut out = Vec::new();
        for kv in self.tree.scan_prefix(r, &prefix)? {
            let (k, _) = kv?;
            let mut decoded = decode_key(&k)?;
            let pk = decoded.split_off(self.cols.len());
            out.push(pk);
        }
        Ok(out)
    }

    /// Scans index entries with indexed column values in
    /// `[lo, hi]` (single-column indexes), yielding primary keys.
    pub fn lookup_range<R: PageRead + ?Sized>(
        &self,
        r: &R,
        lo: Option<&Value>,
        hi: Option<&Value>,
        lo_strict: bool,
        hi_strict: bool,
    ) -> Result<Vec<Vec<Value>>> {
        let start = match lo {
            Some(v) => std::ops::Bound::Included(encode_key(std::slice::from_ref(v))),
            None => std::ops::Bound::Unbounded,
        };
        let mut out = Vec::new();
        for kv in self.tree.range(r, start, std::ops::Bound::Unbounded)? {
            let (k, _) = kv?;
            let mut decoded = decode_key(&k)?;
            let pk = decoded.split_off(self.cols.len());
            let v = &decoded[0];
            if let Some(lo) = lo {
                if lo_strict && v.total_cmp(lo) == std::cmp::Ordering::Equal {
                    continue;
                }
            }
            if let Some(hi) = hi {
                match v.total_cmp(hi) {
                    std::cmp::Ordering::Greater => break,
                    std::cmp::Ordering::Equal if hi_strict => break,
                    _ => {}
                }
            }
            out.push(pk);
        }
        Ok(out)
    }
}

/// A full-text index over one TEXT column: a postings tree
/// `(token, pk) -> ()` plus a document-frequency tree `token -> df`.
#[derive(Debug, Clone)]
pub struct FtsDef {
    pub column: usize,
    pub postings: BTree,
    pub counts: BTree,
}

impl FtsDef {
    pub(crate) fn add_doc(
        &self,
        txn: &mut WriteTxn,
        row: &[Value],
        pk_vals: &[Value],
    ) -> Result<()> {
        let Some(text) = row[self.column].as_text() else {
            return Ok(());
        };
        for token in fts::tokenize_unique(text) {
            let mut key = encode_key(&[Value::text(token.clone())]);
            key.extend_from_slice(&encode_key(pk_vals));
            if self.postings.insert(txn, &key, &[])?.is_none() {
                self.bump_df(txn, &token, 1)?;
            }
        }
        Ok(())
    }

    pub(crate) fn remove_doc(
        &self,
        txn: &mut WriteTxn,
        row: &[Value],
        pk_vals: &[Value],
    ) -> Result<()> {
        let Some(text) = row[self.column].as_text() else {
            return Ok(());
        };
        for token in fts::tokenize_unique(text) {
            let mut key = encode_key(&[Value::text(token.clone())]);
            key.extend_from_slice(&encode_key(pk_vals));
            if self.postings.delete(txn, &key)?.is_some() {
                self.bump_df(txn, &token, -1)?;
            }
        }
        Ok(())
    }

    fn bump_df(&self, txn: &mut WriteTxn, token: &str, delta: i64) -> Result<()> {
        let key = encode_key(&[Value::text(token)]);
        let current = match self.counts.get(txn, &key)? {
            Some(bytes) => decode_row(&bytes)?
                .first()
                .and_then(|v| v.as_integer())
                .unwrap_or(0),
            None => 0,
        };
        let next = current + delta;
        if next <= 0 {
            self.counts.delete(txn, &key)?;
        } else {
            self.counts
                .insert(txn, &key, &encode_row(&[Value::Integer(next)]))?;
        }
        Ok(())
    }

    /// Document frequency of `token`.
    pub fn df<R: PageRead + ?Sized>(&self, r: &R, token: &str) -> Result<u64> {
        let key = encode_key(&[Value::text(fts::normalize(token))]);
        Ok(match self.counts.get(r, &key)? {
            Some(bytes) => decode_row(&bytes)?
                .first()
                .and_then(|v| v.as_integer())
                .unwrap_or(0) as u64,
            None => 0,
        })
    }

    /// Primary keys of documents containing *all* tokens of `query`
    /// (conjunctive match, like FTS5's implicit AND).
    pub fn match_pks<R: PageRead + ?Sized>(&self, r: &R, query: &str) -> Result<Vec<Vec<Value>>> {
        let tokens = fts::tokenize_unique(query);
        if tokens.is_empty() {
            return Ok(vec![]);
        }
        // Start from the rarest token to keep the candidate set small.
        let mut with_df: Vec<(u64, &String)> = Vec::with_capacity(tokens.len());
        for t in &tokens {
            with_df.push((self.df(r, t)?, t));
        }
        with_df.sort();
        if with_df[0].0 == 0 {
            return Ok(vec![]);
        }
        let mut candidates: Option<Vec<Vec<u8>>> = None;
        for (_, token) in with_df {
            let prefix = encode_key(&[Value::text(token.clone())]);
            match &mut candidates {
                None => {
                    let mut set = Vec::new();
                    for kv in self.postings.scan_prefix(r, &prefix)? {
                        let (k, _) = kv?;
                        set.push(k[prefix.len()..].to_vec());
                    }
                    candidates = Some(set);
                }
                Some(set) => {
                    // Keep only candidates present under this token.
                    let mut kept = Vec::with_capacity(set.len());
                    for pk_bytes in set.drain(..) {
                        let mut key = prefix.clone();
                        key.extend_from_slice(&pk_bytes);
                        if self.postings.contains_key(r, &key)? {
                            kept.push(pk_bytes);
                        }
                    }
                    *set = kept;
                    if set.is_empty() {
                        break;
                    }
                }
            }
        }
        candidates
            .unwrap_or_default()
            .into_iter()
            .map(|bytes| decode_key(&bytes))
            .collect()
    }
}

/// A handle to a table: schema plus the roots of its trees. Handles are
/// cheap to clone and remain valid for the life of the database file
/// (tree roots are stable), but index *lists* are fixed at open time —
/// re-open the table after creating an index.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    data: BTree,
    catalog: BTree,
    count_key: Vec<u8>,
    indexes: Vec<IndexDef>,
    fts: Vec<FtsDef>,
}

impl Table {
    pub(crate) fn assemble(
        schema: TableSchema,
        data: BTree,
        catalog: BTree,
        indexes: Vec<IndexDef>,
        fts: Vec<FtsDef>,
    ) -> Table {
        let count_key = table_count_key(&schema.name);
        Table {
            schema,
            data,
            catalog,
            count_key,
            indexes,
            fts,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The clustered data tree (for advanced scans by the vector layer).
    pub fn data_tree(&self) -> BTree {
        self.data
    }

    /// The catalog tree this table's metadata lives in.
    pub(crate) fn catalog_tree(&self) -> BTree {
        self.catalog
    }

    /// Secondary indexes loaded with this handle.
    pub fn indexes(&self) -> &[IndexDef] {
        &self.indexes
    }

    /// Full-text indexes loaded with this handle.
    pub fn fts_indexes(&self) -> &[FtsDef] {
        &self.fts
    }

    /// The index covering exactly `cols`, if any.
    pub fn index_on(&self, cols: &[usize]) -> Option<&IndexDef> {
        self.indexes.iter().find(|i| i.cols == cols)
    }

    /// The FTS index on `column`, if any.
    pub fn fts_on(&self, column: usize) -> Option<&FtsDef> {
        self.fts.iter().find(|f| f.column == column)
    }

    /// Encodes a primary key tuple for this table.
    pub fn encode_pk(&self, pk: &[Value]) -> Vec<u8> {
        encode_key(pk)
    }

    /// Inserts or replaces the row with the same primary key; returns
    /// the previous row if any. Maintains all indexes and the counter.
    pub fn upsert(&self, txn: &mut WriteTxn, row: Vec<Value>) -> Result<Option<Vec<Value>>> {
        self.schema.check_row(&row)?;
        let pk_vals = self.schema.pk_values(&row);
        let key = encode_key(&pk_vals);
        let old_bytes = self.data.insert(txn, &key, &encode_row(&row))?;
        let old_row = match old_bytes {
            Some(b) => Some(decode_row(&b)?),
            None => None,
        };
        if let Some(old) = &old_row {
            for idx in &self.indexes {
                idx.remove_entry(txn, old, &pk_vals)?;
            }
            for f in &self.fts {
                f.remove_doc(txn, old, &pk_vals)?;
            }
        } else {
            self.bump_count(txn, 1)?;
        }
        for idx in &self.indexes {
            idx.insert_entry(txn, &row, &pk_vals)?;
        }
        for f in &self.fts {
            f.add_doc(txn, &row, &pk_vals)?;
        }
        Ok(old_row)
    }

    /// Deletes by primary key; returns the removed row if it existed.
    pub fn delete(&self, txn: &mut WriteTxn, pk: &[Value]) -> Result<Option<Vec<Value>>> {
        let key = encode_key(pk);
        let Some(old_bytes) = self.data.delete(txn, &key)? else {
            return Ok(None);
        };
        let old = decode_row(&old_bytes)?;
        let pk_vals = self.schema.pk_values(&old);
        for idx in &self.indexes {
            idx.remove_entry(txn, &old, &pk_vals)?;
        }
        for f in &self.fts {
            f.remove_doc(txn, &old, &pk_vals)?;
        }
        self.bump_count(txn, -1)?;
        Ok(Some(old))
    }

    /// Point lookup by primary key.
    pub fn get<R: PageRead + ?Sized>(&self, r: &R, pk: &[Value]) -> Result<Option<Vec<Value>>> {
        match self.data.get(r, &encode_key(pk))? {
            Some(bytes) => Ok(Some(decode_row(&bytes)?)),
            None => Ok(None),
        }
    }

    /// Raw point lookup (undecoded row bytes) — vector hot path.
    pub fn get_raw<R: PageRead + ?Sized>(&self, r: &R, pk: &[Value]) -> Result<Option<Vec<u8>>> {
        Ok(self.data.get(r, &encode_key(pk))?)
    }

    /// Whether a row with this primary key exists.
    pub fn contains<R: PageRead + ?Sized>(&self, r: &R, pk: &[Value]) -> Result<bool> {
        Ok(self.data.contains_key(r, &encode_key(pk))?)
    }

    /// Full scan in primary-key order, decoding rows.
    pub fn scan<'r, R: PageRead + ?Sized>(
        &self,
        r: &'r R,
    ) -> Result<impl Iterator<Item = Result<Vec<Value>>> + 'r> {
        Ok(self.data.scan_all(r)?.map(|kv| {
            let (_, v) = kv?;
            decode_row(&v)
        }))
    }

    /// Scan of rows whose primary key starts with `prefix` (e.g. all
    /// vectors of one partition), yielding raw `(key, row)` bytes.
    pub fn scan_pk_prefix_raw<'r, R: PageRead + ?Sized>(
        &self,
        r: &'r R,
        prefix: &[Value],
    ) -> Result<impl Iterator<Item = Result<(Vec<u8>, Vec<u8>)>> + 'r> {
        Ok(self
            .data
            .scan_prefix(r, &encode_key(prefix))?
            .map(|kv| kv.map_err(RelError::from)))
    }

    /// Decoded variant of [`Table::scan_pk_prefix_raw`].
    pub fn scan_pk_prefix<'r, R: PageRead + ?Sized>(
        &self,
        r: &'r R,
        prefix: &[Value],
    ) -> Result<impl Iterator<Item = Result<Vec<Value>>> + 'r> {
        Ok(self.scan_pk_prefix_raw(r, prefix)?.map(|kv| {
            let (_, v) = kv?;
            decode_row(&v)
        }))
    }

    /// Queues background readahead of the leaf pages holding rows
    /// whose primary key starts with `prefix`. Discovery touches
    /// interior pages only; the leaves themselves are fetched by the
    /// store's prefetch worker with the scan admission hint, so a
    /// subsequent [`Table::scan_pk_prefix_raw`] of the same prefix hits
    /// the buffer pool instead of the disk. Best-effort: errors are
    /// swallowed (readahead must never fail a query).
    pub fn prefetch_pk_prefix<R: PageRead + ?Sized>(&self, r: &R, prefix: &[Value]) {
        // Bounds the discovery walk; the store additionally caps its
        // own prefetch backlog.
        const MAX_LEAVES: usize = 1024;
        if let Ok(ids) = self
            .data
            .prefix_leaf_pages(r, &encode_key(prefix), MAX_LEAVES)
        {
            r.prefetch_pages(&ids);
        }
    }

    /// Persistent row count (O(1): reads the catalog counter).
    pub fn row_count<R: PageRead + ?Sized>(&self, r: &R) -> Result<u64> {
        Ok(match self.catalog.get(r, &self.count_key)? {
            Some(bytes) => decode_row(&bytes)?
                .first()
                .and_then(|v| v.as_integer())
                .unwrap_or(0) as u64,
            None => 0,
        })
    }

    fn bump_count(&self, txn: &mut WriteTxn, delta: i64) -> Result<()> {
        let current = self.row_count(txn)? as i64;
        self.catalog.insert(
            txn,
            &self.count_key,
            &encode_row(&[Value::Integer(current + delta)]),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;
    use micronn_storage::{StoreOptions, SyncMode};

    fn db() -> (tempfile::TempDir, Database) {
        let dir = tempfile::tempdir().unwrap();
        let db = Database::create(
            dir.path().join("db"),
            StoreOptions {
                sync: SyncMode::Off,
                ..Default::default()
            },
        )
        .unwrap();
        (dir, db)
    }

    fn photos(db: &Database) -> Table {
        let mut txn = db.begin_write().unwrap();
        let t = db
            .create_table(
                &mut txn,
                TableSchema::new(
                    "photos",
                    vec![
                        ColumnDef::new("id", ValueType::Integer),
                        ColumnDef::new("location", ValueType::Text),
                        ColumnDef::nullable("taken_at", ValueType::Integer),
                        ColumnDef::nullable("tags", ValueType::Text),
                    ],
                    &["id"],
                )
                .unwrap(),
            )
            .unwrap();
        let t = db
            .create_index(&mut txn, &t, "by_location", &["location"])
            .unwrap();
        let t = db
            .create_index(&mut txn, &t, "by_taken", &["taken_at"])
            .unwrap();
        let t = db.create_fts_index(&mut txn, &t, "tags").unwrap();
        txn.commit().unwrap();
        t
    }

    fn row(id: i64, loc: &str, at: i64, tags: &str) -> Vec<Value> {
        vec![
            Value::Integer(id),
            Value::text(loc),
            Value::Integer(at),
            Value::text(tags),
        ]
    }

    #[test]
    fn upsert_get_delete_with_count() {
        let (_d, db) = db();
        let t = photos(&db);
        let mut txn = db.begin_write().unwrap();
        assert!(t
            .upsert(&mut txn, row(1, "Seattle", 100, "cat yarn"))
            .unwrap()
            .is_none());
        assert!(t
            .upsert(&mut txn, row(2, "NYC", 200, "dog park"))
            .unwrap()
            .is_none());
        assert_eq!(t.row_count(&txn).unwrap(), 2);
        // Upsert replaces without changing the count.
        let old = t.upsert(&mut txn, row(1, "Tacoma", 101, "cat")).unwrap();
        assert_eq!(old.unwrap()[1], Value::text("Seattle"));
        assert_eq!(t.row_count(&txn).unwrap(), 2);
        let got = t.get(&txn, &[Value::Integer(1)]).unwrap().unwrap();
        assert_eq!(got[1], Value::text("Tacoma"));
        // Delete updates count and returns the row.
        let gone = t.delete(&mut txn, &[Value::Integer(2)]).unwrap().unwrap();
        assert_eq!(gone[1], Value::text("NYC"));
        assert!(t.delete(&mut txn, &[Value::Integer(2)]).unwrap().is_none());
        assert_eq!(t.row_count(&txn).unwrap(), 1);
        txn.commit().unwrap();
    }

    #[test]
    fn secondary_index_follows_updates() {
        let (_d, db) = db();
        let t = photos(&db);
        let mut txn = db.begin_write().unwrap();
        for i in 0..20 {
            let loc = if i % 3 == 0 { "Seattle" } else { "NYC" };
            t.upsert(&mut txn, row(i, loc, i * 10, "x")).unwrap();
        }
        txn.commit().unwrap();
        let r = db.begin_read();
        let idx = t.index_on(&[1]).unwrap();
        let seattle = idx.lookup_eq(&r, &[Value::text("Seattle")]).unwrap();
        assert_eq!(seattle.len(), 7); // 0,3,6,9,12,15,18
        assert!(seattle.contains(&vec![Value::Integer(0)]));

        // Move photo 0 to NYC: index entries migrate.
        let mut txn = db.begin_write().unwrap();
        t.upsert(&mut txn, row(0, "NYC", 0, "x")).unwrap();
        txn.commit().unwrap();
        let r = db.begin_read();
        let seattle = idx.lookup_eq(&r, &[Value::text("Seattle")]).unwrap();
        assert_eq!(seattle.len(), 6);
        assert!(!seattle.contains(&vec![Value::Integer(0)]));

        // Delete removes index entries.
        let mut txn = db.begin_write().unwrap();
        t.delete(&mut txn, &[Value::Integer(3)]).unwrap();
        txn.commit().unwrap();
        let r = db.begin_read();
        assert_eq!(
            idx.lookup_eq(&r, &[Value::text("Seattle")]).unwrap().len(),
            5
        );
    }

    #[test]
    fn index_range_lookup() {
        let (_d, db) = db();
        let t = photos(&db);
        let mut txn = db.begin_write().unwrap();
        for i in 0..50 {
            t.upsert(&mut txn, row(i, "x", i * 10, "x")).unwrap();
        }
        txn.commit().unwrap();
        let r = db.begin_read();
        let idx = t.index_on(&[2]).unwrap();
        let got = idx
            .lookup_range(
                &r,
                Some(&Value::Integer(100)),
                Some(&Value::Integer(150)),
                false,
                false,
            )
            .unwrap();
        // taken_at in [100, 150] -> ids 10..=15
        assert_eq!(got.len(), 6);
        let got = idx
            .lookup_range(
                &r,
                Some(&Value::Integer(100)),
                Some(&Value::Integer(150)),
                true,
                true,
            )
            .unwrap();
        assert_eq!(got.len(), 4); // strict: 110..140
        let got = idx
            .lookup_range(&r, None, Some(&Value::Integer(40)), false, false)
            .unwrap();
        assert_eq!(got.len(), 5); // 0,10,20,30,40
    }

    #[test]
    fn fts_match_conjunction() {
        let (_d, db) = db();
        let t = photos(&db);
        let mut txn = db.begin_write().unwrap();
        t.upsert(&mut txn, row(1, "a", 0, "black cat playing yarn"))
            .unwrap();
        t.upsert(&mut txn, row(2, "a", 0, "black dog")).unwrap();
        t.upsert(&mut txn, row(3, "a", 0, "white CAT sleeping"))
            .unwrap();
        txn.commit().unwrap();
        let r = db.begin_read();
        let f = t.fts_on(3).unwrap();
        assert_eq!(f.df(&r, "black").unwrap(), 2);
        assert_eq!(f.df(&r, "cat").unwrap(), 2, "case-insensitive");
        let hits = f.match_pks(&r, "black cat").unwrap();
        assert_eq!(hits, vec![vec![Value::Integer(1)]]);
        let hits = f.match_pks(&r, "cat").unwrap();
        assert_eq!(hits.len(), 2);
        assert!(f.match_pks(&r, "purple").unwrap().is_empty());
        assert!(f.match_pks(&r, "").unwrap().is_empty());

        // Updating a doc's text updates postings and dfs.
        let mut txn = db.begin_write().unwrap();
        t.upsert(&mut txn, row(1, "a", 0, "sunset beach")).unwrap();
        txn.commit().unwrap();
        let r = db.begin_read();
        assert_eq!(f.df(&r, "black").unwrap(), 1);
        assert_eq!(f.df(&r, "yarn").unwrap(), 0);
        assert_eq!(
            f.match_pks(&r, "sunset").unwrap(),
            vec![vec![Value::Integer(1)]]
        );
    }

    #[test]
    fn composite_pk_clusters_scans() {
        let (_d, db) = db();
        let mut txn = db.begin_write().unwrap();
        let t = db
            .create_table(
                &mut txn,
                TableSchema::new(
                    "vectors",
                    vec![
                        ColumnDef::new("partition_id", ValueType::Integer),
                        ColumnDef::new("vector_id", ValueType::Integer),
                        ColumnDef::new("embedding", ValueType::Blob),
                    ],
                    &["partition_id", "vector_id"],
                )
                .unwrap(),
            )
            .unwrap();
        for p in 0..5i64 {
            for v in 0..30i64 {
                t.upsert(
                    &mut txn,
                    vec![
                        Value::Integer(p),
                        Value::Integer(v),
                        Value::blob(vec![p as u8; 16]),
                    ],
                )
                .unwrap();
            }
        }
        txn.commit().unwrap();
        let r = db.begin_read();
        // A partition prefix scan yields exactly that partition's rows,
        // in vector_id order.
        let rows: Vec<_> = t
            .scan_pk_prefix(&r, &[Value::Integer(3)])
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(rows.len(), 30);
        assert!(rows.iter().all(|row| row[0] == Value::Integer(3)));
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[1], Value::Integer(i as i64));
        }
        assert_eq!(t.row_count(&r).unwrap(), 150);
    }

    #[test]
    fn schema_violation_rejected_before_any_write() {
        let (_d, db) = db();
        let t = photos(&db);
        let mut txn = db.begin_write().unwrap();
        assert!(t
            .upsert(
                &mut txn,
                vec![
                    Value::text("oops"),
                    Value::text("x"),
                    Value::Null,
                    Value::Null
                ]
            )
            .is_err());
        assert_eq!(t.row_count(&txn).unwrap(), 0);
    }
}
