//! Error types for the relational layer.

use std::fmt;

use micronn_storage::StorageError;

/// Convenience alias used across the relational crate.
pub type Result<T> = std::result::Result<T, RelError>;

/// Errors produced by the relational layer.
#[derive(Debug)]
pub enum RelError {
    /// The underlying storage engine failed.
    Storage(StorageError),
    /// A key or row could not be decoded.
    Codec(String),
    /// Schema violation: wrong arity, type mismatch, unknown column...
    Schema(String),
    /// A referenced table or index does not exist.
    NotFound(String),
    /// An object with this name already exists.
    AlreadyExists(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::Storage(e) => write!(f, "storage error: {e}"),
            RelError::Codec(m) => write!(f, "codec error: {m}"),
            RelError::Schema(m) => write!(f, "schema error: {m}"),
            RelError::NotFound(m) => write!(f, "not found: {m}"),
            RelError::AlreadyExists(m) => write!(f, "already exists: {m}"),
        }
    }
}

impl std::error::Error for RelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RelError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for RelError {
    fn from(e: StorageError) -> Self {
        RelError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: RelError = StorageError::TxnClosed.into();
        assert!(e.to_string().contains("storage error"));
        assert!(std::error::Error::source(&e).is_some());
        let e = RelError::NotFound("photos".into());
        assert!(e.to_string().contains("photos"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
