//! Column statistics and selectivity estimation.
//!
//! The paper's hybrid query optimizer "can find an efficient execution
//! plan by estimating predicate cardinality using per-column
//! histograms" (§4 highlights) and combines per-predicate estimates
//! assuming independence, taking "the minimum over conjunctions and a
//! sum over disjunctions" (§3.5.1). This module implements:
//!
//! * equi-depth per-column histograms with distinct counts, built by an
//!   `ANALYZE`-style sweep ([`analyze_table`]) and persisted in the
//!   catalog;
//! * string selectivity for `MATCH` predicates from the FTS index's
//!   token document frequencies;
//! * the combination rules of §3.5.1 ([`estimate_selectivity`]).

use micronn_storage::{PageRead, WriteTxn};

use crate::catalog::stats_key;
use crate::error::{RelError, Result};
use crate::predicate::{CmpOp, Expr};
use crate::row::{decode_row, encode_row};
use crate::table::Table;
use crate::value::{Value, ValueType};

/// Default number of histogram buckets.
pub const DEFAULT_BUCKETS: usize = 64;
/// `ANALYZE` samples at most this many rows per column.
pub const SAMPLE_LIMIT: usize = 100_000;

/// One equi-depth bucket: rows with values in `(previous upper, upper]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    pub upper: Value,
    pub count: u64,
}

/// Most-common-value entries kept per column.
pub const MCV_LIMIT: usize = 16;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Rows observed (sampled), including NULLs.
    pub total: u64,
    pub nulls: u64,
    pub distinct: u64,
    pub min: Value,
    pub max: Value,
    pub buckets: Vec<Bucket>,
    /// Most common values with their exact sample counts — crucial for
    /// equality selectivity on skewed low-cardinality columns (the
    /// paper's `location = "Seattle"` vs `"NewYork"` example, where
    /// `1/ndv` would be off by orders of magnitude).
    pub mcv: Vec<(Value, u64)>,
    /// Scale factor from sample to full table (1.0 = not sampled).
    pub scale: f64,
}

impl ColumnStats {
    /// Builds stats from raw (unsorted) column values.
    pub fn build(mut values: Vec<Value>, target_buckets: usize) -> ColumnStats {
        let total = values.len() as u64;
        values.retain(|v| !v.is_null());
        let nulls = total - values.len() as u64;
        values.sort_by(|a, b| a.total_cmp(b));
        // One pass over the sorted values counts distincts and collects
        // value frequencies for the MCV list.
        let mut distinct = 0u64;
        let mut freqs: Vec<(usize, u64)> = Vec::new(); // (first index, count)
        for i in 0..values.len() {
            if i == 0 || values[i].total_cmp(&values[i - 1]) != std::cmp::Ordering::Equal {
                distinct += 1;
                freqs.push((i, 1));
            } else if let Some(last) = freqs.last_mut() {
                last.1 += 1;
            }
        }
        freqs.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        let mcv: Vec<(Value, u64)> = freqs
            .iter()
            .take(MCV_LIMIT)
            .map(|&(idx, count)| (values[idx].clone(), count))
            .collect();
        let (min, max) = match (values.first(), values.last()) {
            (Some(a), Some(b)) => (a.clone(), b.clone()),
            _ => (Value::Null, Value::Null),
        };
        let mut buckets = Vec::new();
        if !values.is_empty() {
            let per = values.len().div_ceil(target_buckets.max(1)).max(1);
            let mut i = 0;
            while i < values.len() {
                let end = (i + per).min(values.len());
                buckets.push(Bucket {
                    upper: values[end - 1].clone(),
                    count: (end - i) as u64,
                });
                i = end;
            }
        }
        ColumnStats {
            total,
            nulls,
            distinct,
            min,
            max,
            buckets,
            mcv,
            scale: 1.0,
        }
    }

    fn non_null(&self) -> u64 {
        self.total - self.nulls
    }

    /// Fraction of *all* rows with `column <op> value`, in `[0, 1]`.
    pub fn estimate_cmp(&self, op: CmpOp, value: &Value) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let nn = self.non_null() as f64;
        if nn == 0.0 {
            return 0.0;
        }
        let frac_nn = match op {
            CmpOp::Eq => self.eq_fraction(value),
            CmpOp::Ne => 1.0 - self.eq_fraction(value),
            CmpOp::Lt => self.less_fraction(value, false),
            CmpOp::Le => self.less_fraction(value, true),
            CmpOp::Gt => 1.0 - self.less_fraction(value, true),
            CmpOp::Ge => 1.0 - self.less_fraction(value, false),
        };
        (frac_nn.clamp(0.0, 1.0) * nn / self.total as f64).clamp(0.0, 1.0)
    }

    /// Fraction of non-null rows equal to `value`: exact from the MCV
    /// list when possible, else the flat `1/ndv` over the non-MCV
    /// remainder.
    fn eq_fraction(&self, value: &Value) -> f64 {
        if self.distinct == 0 {
            return 0.0;
        }
        if !self.min.is_null() {
            use std::cmp::Ordering::*;
            if matches!(value.total_cmp(&self.min), Less)
                || matches!(value.total_cmp(&self.max), Greater)
            {
                return 0.0;
            }
        }
        let nn = self.non_null() as f64;
        if let Some((_, count)) = self
            .mcv
            .iter()
            .find(|(v, _)| v.total_cmp(value) == std::cmp::Ordering::Equal)
        {
            return *count as f64 / nn;
        }
        let mcv_rows: u64 = self.mcv.iter().map(|(_, c)| c).sum();
        let rest_distinct = self.distinct.saturating_sub(self.mcv.len() as u64);
        if rest_distinct == 0 {
            // Every distinct value is in the MCV list and `value` is
            // not among them: it does not occur.
            return 0.0;
        }
        let rest_rows = (self.non_null().saturating_sub(mcv_rows)) as f64;
        (rest_rows / rest_distinct as f64 / nn).clamp(0.0, 1.0)
    }

    /// Fraction of non-null rows `< value` (or `<= value`).
    fn less_fraction(&self, value: &Value, inclusive: bool) -> f64 {
        let nn = self.non_null() as f64;
        if nn == 0.0 || self.buckets.is_empty() {
            return 0.0;
        }
        let mut below = 0.0f64;
        let mut lower: Option<&Value> = None;
        for b in &self.buckets {
            use std::cmp::Ordering::*;
            match b.upper.total_cmp(value) {
                Less => {
                    below += b.count as f64;
                    lower = Some(&b.upper);
                }
                Equal => {
                    // The boundary value ends this bucket; with
                    // inclusive we take it all, otherwise most of it.
                    below += b.count as f64 * if inclusive { 1.0 } else { 0.8 };
                    break;
                }
                Greater => {
                    // Value falls inside this bucket: interpolate.
                    below += b.count as f64 * interpolate(lower, &b.upper, value);
                    break;
                }
            }
        }
        (below / nn).clamp(0.0, 1.0)
    }
}

/// Linear interpolation of `value`'s position within a bucket
/// `(lower, upper]`; 0.5 when the values are not numeric.
fn interpolate(lower: Option<&Value>, upper: &Value, value: &Value) -> f64 {
    let (Some(u), Some(v)) = (upper.as_real(), value.as_real()) else {
        return 0.5;
    };
    let l = lower.and_then(|l| l.as_real()).unwrap_or(v.min(u));
    if u <= l {
        return 0.5;
    }
    ((v - l) / (u - l)).clamp(0.0, 1.0)
}

fn encode_stats(s: &ColumnStats) -> Vec<u8> {
    let mut vals = vec![
        Value::Integer(s.total as i64),
        Value::Integer(s.nulls as i64),
        Value::Integer(s.distinct as i64),
        Value::Real(s.scale),
        s.min.clone(),
        s.max.clone(),
        Value::Integer(s.buckets.len() as i64),
    ];
    for b in &s.buckets {
        vals.push(b.upper.clone());
        vals.push(Value::Integer(b.count as i64));
    }
    vals.push(Value::Integer(s.mcv.len() as i64));
    for (v, c) in &s.mcv {
        vals.push(v.clone());
        vals.push(Value::Integer(*c as i64));
    }
    encode_row(&vals)
}

fn decode_stats(bytes: &[u8]) -> Result<ColumnStats> {
    let vals = decode_row(bytes)?;
    let bad = || RelError::Codec("malformed column stats".into());
    let mut it = vals.into_iter();
    let total = it.next().and_then(|v| v.as_integer()).ok_or_else(bad)? as u64;
    let nulls = it.next().and_then(|v| v.as_integer()).ok_or_else(bad)? as u64;
    let distinct = it.next().and_then(|v| v.as_integer()).ok_or_else(bad)? as u64;
    let scale = it.next().and_then(|v| v.as_real()).ok_or_else(bad)?;
    let min = it.next().ok_or_else(bad)?;
    let max = it.next().ok_or_else(bad)?;
    let nbuckets = it.next().and_then(|v| v.as_integer()).ok_or_else(bad)? as usize;
    let mut buckets = Vec::with_capacity(nbuckets);
    for _ in 0..nbuckets {
        let upper = it.next().ok_or_else(bad)?;
        let count = it.next().and_then(|v| v.as_integer()).ok_or_else(bad)? as u64;
        buckets.push(Bucket { upper, count });
    }
    let nmcv = it.next().and_then(|v| v.as_integer()).ok_or_else(bad)? as usize;
    let mut mcv = Vec::with_capacity(nmcv);
    for _ in 0..nmcv {
        let v = it.next().ok_or_else(bad)?;
        let c = it.next().and_then(|v| v.as_integer()).ok_or_else(bad)? as u64;
        mcv.push((v, c));
    }
    Ok(ColumnStats {
        total,
        nulls,
        distinct,
        min,
        max,
        buckets,
        mcv,
        scale,
    })
}

/// All per-column statistics of one table.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    pub columns: std::collections::HashMap<String, ColumnStats>,
    /// Row count at analyze time.
    pub row_count: u64,
}

impl TableStats {
    /// Loads persisted statistics for `table` (empty if never analyzed).
    pub fn load<R: PageRead + ?Sized>(r: &R, table: &Table) -> Result<TableStats> {
        let catalog = table.catalog_tree();
        let mut columns = std::collections::HashMap::new();
        for c in &table.schema().columns {
            if let Some(bytes) = catalog.get(r, &stats_key(&table.schema().name, &c.name))? {
                columns.insert(c.name.clone(), decode_stats(&bytes)?);
            }
        }
        let row_count = table.row_count(r)?;
        Ok(TableStats { columns, row_count })
    }
}

/// `ANALYZE table`: sweeps the table once, building an equi-depth
/// histogram for every non-BLOB column, and persists them. Samples
/// uniformly above [`SAMPLE_LIMIT`] rows to bound memory.
pub fn analyze_table(txn: &mut WriteTxn, table: &Table) -> Result<TableStats> {
    let schema = table.schema().clone();
    let cols: Vec<usize> = (0..schema.arity())
        .filter(|&i| schema.columns[i].ty != ValueType::Blob)
        .collect();
    let row_count = table.row_count(txn)? as usize;
    let step = (row_count / SAMPLE_LIMIT).max(1);
    let mut samples: Vec<Vec<Value>> = cols.iter().map(|_| Vec::new()).collect();
    for (i, row) in table.scan(txn)?.enumerate() {
        let row = row?;
        if i % step != 0 {
            continue;
        }
        for (slot, &c) in cols.iter().enumerate() {
            samples[slot].push(row[c].clone());
        }
    }
    let catalog = table.catalog_tree();
    let mut out = TableStats {
        columns: std::collections::HashMap::new(),
        row_count: row_count as u64,
    };
    for (slot, &c) in cols.iter().enumerate() {
        let mut stats = ColumnStats::build(std::mem::take(&mut samples[slot]), DEFAULT_BUCKETS);
        stats.scale = step as f64;
        catalog.insert(
            txn,
            &stats_key(&schema.name, &schema.columns[c].name),
            &encode_stats(&stats),
        )?;
        out.columns.insert(schema.columns[c].name.clone(), stats);
    }
    Ok(out)
}

/// Default selectivities when a column has never been analyzed,
/// mirroring the classic System R constants.
const DEFAULT_EQ: f64 = 0.1;
const DEFAULT_RANGE: f64 = 1.0 / 3.0;
const DEFAULT_MATCH_TOKEN: f64 = 0.05;

/// Estimates the selectivity factor `F` (Eq. 1 of the paper) of `expr`
/// over `table`: the fraction of rows the filter qualifies, combined
/// per §3.5.1 — independence assumed, `min` over conjunctions, sum over
/// disjunctions.
pub fn estimate_selectivity<R: PageRead + ?Sized>(
    r: &R,
    table: &Table,
    stats: &TableStats,
    expr: &Expr,
) -> f64 {
    match expr {
        Expr::True => 1.0,
        Expr::Cmp { column, op, value } => match stats.columns.get(column) {
            Some(cs) => cs.estimate_cmp(*op, value),
            None => match op {
                CmpOp::Eq => DEFAULT_EQ,
                CmpOp::Ne => 1.0 - DEFAULT_EQ,
                _ => DEFAULT_RANGE,
            },
        },
        Expr::Match { column, query } => {
            let tokens = crate::fts::tokenize_unique(query);
            if tokens.is_empty() {
                return 0.0;
            }
            let n = stats.row_count.max(1) as f64;
            let col = match table.schema().column_index(column) {
                Ok(c) => c,
                Err(_) => return DEFAULT_MATCH_TOKEN,
            };
            match table.fts_on(col) {
                // Conjunction over tokens -> min of per-token
                // selectivities (§3.5.1).
                Some(f) => tokens
                    .iter()
                    .map(|t| {
                        f.df(r, t)
                            .map(|df| df as f64 / n)
                            .unwrap_or(DEFAULT_MATCH_TOKEN)
                    })
                    .fold(1.0, f64::min),
                None => DEFAULT_MATCH_TOKEN.powi(tokens.len().min(3) as i32),
            }
        }
        Expr::And(a, b) => {
            estimate_selectivity(r, table, stats, a).min(estimate_selectivity(r, table, stats, b))
        }
        Expr::Or(a, b) => (estimate_selectivity(r, table, stats, a)
            + estimate_selectivity(r, table, stats, b))
        .min(1.0),
        Expr::Not(a) => 1.0 - estimate_selectivity(r, table, stats, a),
    }
}

/// Estimated cardinality `|σ_filter(R)|` (Eq. 3 numerator).
pub fn estimate_cardinality<R: PageRead + ?Sized>(
    r: &R,
    table: &Table,
    stats: &TableStats,
    expr: &Expr,
) -> f64 {
    let total = stats.row_count as f64;
    (estimate_selectivity(r, table, stats, expr) * total).min(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::schema::{ColumnDef, TableSchema};
    use micronn_storage::{StoreOptions, SyncMode};

    #[test]
    fn histogram_build_basics() {
        let values: Vec<Value> = (0..1000).map(|i| Value::Integer(i % 100)).collect();
        let s = ColumnStats::build(values, 10);
        assert_eq!(s.total, 1000);
        assert_eq!(s.nulls, 0);
        assert_eq!(s.distinct, 100);
        assert_eq!(s.min, Value::Integer(0));
        assert_eq!(s.max, Value::Integer(99));
        let bucket_sum: u64 = s.buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucket_sum, 1000);
    }

    #[test]
    fn estimate_eq_uses_distinct() {
        let values: Vec<Value> = (0..1000).map(|i| Value::Integer(i % 10)).collect();
        let s = ColumnStats::build(values, 8);
        let est = s.estimate_cmp(CmpOp::Eq, &Value::Integer(3));
        assert!((est - 0.1).abs() < 0.02, "got {est}");
        // Out of range -> 0.
        assert_eq!(s.estimate_cmp(CmpOp::Eq, &Value::Integer(50)), 0.0);
        assert!(s.estimate_cmp(CmpOp::Ne, &Value::Integer(3)) > 0.85);
    }

    #[test]
    fn mcv_makes_skewed_equality_exact() {
        // The paper's running example: 95% Seattle, a handful NewYork.
        let mut values: Vec<Value> = (0..9500).map(|_| Value::text("Seattle")).collect();
        values.extend((0..15).map(|_| Value::text("NewYork")));
        values.extend((0..485).map(|i| Value::text(format!("other{}", i % 5))));
        let s = ColumnStats::build(values, 8);
        let seattle = s.estimate_cmp(CmpOp::Eq, &Value::text("Seattle"));
        let newyork = s.estimate_cmp(CmpOp::Eq, &Value::text("NewYork"));
        assert!((seattle - 0.95).abs() < 0.01, "Seattle: {seattle}");
        assert!((newyork - 0.0015).abs() < 0.001, "NewYork: {newyork}");
        // A value inside [min, max] whose distinct universe is fully
        // covered by the MCV list estimates to zero.
        assert_eq!(s.estimate_cmp(CmpOp::Eq, &Value::text("Rome")), 0.0);
    }

    #[test]
    fn estimate_range_tracks_distribution() {
        // Uniform 0..1000.
        let values: Vec<Value> = (0..1000).map(Value::Integer).collect();
        let s = ColumnStats::build(values, 20);
        let lt250 = s.estimate_cmp(CmpOp::Lt, &Value::Integer(250));
        assert!((lt250 - 0.25).abs() < 0.08, "got {lt250}");
        let ge900 = s.estimate_cmp(CmpOp::Ge, &Value::Integer(900));
        assert!((ge900 - 0.10).abs() < 0.08, "got {ge900}");
        assert!(s.estimate_cmp(CmpOp::Lt, &Value::Integer(-5)) < 0.02);
        assert!(s.estimate_cmp(CmpOp::Gt, &Value::Integer(2000)) < 0.02);
    }

    #[test]
    fn nulls_reduce_match_fraction() {
        let mut values: Vec<Value> = (0..500).map(Value::Integer).collect();
        values.extend((0..500).map(|_| Value::Null));
        let s = ColumnStats::build(values, 10);
        assert_eq!(s.nulls, 500);
        // Half the rows are NULL, so even `< max` qualifies < 0.55.
        let est = s.estimate_cmp(CmpOp::Le, &Value::Integer(499));
        assert!((0.45..=0.55).contains(&est), "got {est}");
    }

    #[test]
    fn stats_roundtrip_encoding() {
        let values: Vec<Value> = (0..100).map(|i| Value::text(format!("v{i:03}"))).collect();
        let s = ColumnStats::build(values, 7);
        let decoded = decode_stats(&encode_stats(&s)).unwrap();
        assert_eq!(s, decoded);
    }

    #[test]
    fn analyze_and_estimate_end_to_end() {
        let dir = tempfile::tempdir().unwrap();
        let db = Database::create(
            dir.path().join("db"),
            StoreOptions {
                sync: SyncMode::Off,
                ..Default::default()
            },
        )
        .unwrap();
        let mut txn = db.begin_write().unwrap();
        let t = db
            .create_table(
                &mut txn,
                TableSchema::new(
                    "photos",
                    vec![
                        ColumnDef::new("id", ValueType::Integer),
                        ColumnDef::new("location", ValueType::Text),
                        ColumnDef::nullable("tags", ValueType::Text),
                    ],
                    &["id"],
                )
                .unwrap(),
            )
            .unwrap();
        let t = db.create_fts_index(&mut txn, &t, "tags").unwrap();
        // 95% Seattle, 5% elsewhere (the paper's running example).
        for i in 0..2000i64 {
            let loc = if i % 20 == 0 { "Portland" } else { "Seattle" };
            let tags = if i % 100 == 0 {
                "rare cat"
            } else {
                "common dog"
            };
            t.upsert(
                &mut txn,
                vec![Value::Integer(i), Value::text(loc), Value::text(tags)],
            )
            .unwrap();
        }
        let stats = analyze_table(&mut txn, &t).unwrap();
        txn.commit().unwrap();

        let r = db.begin_read();
        let seattle = estimate_selectivity(&r, &t, &stats, &Expr::eq("location", "Seattle"));
        let portland = estimate_selectivity(&r, &t, &stats, &Expr::eq("location", "Portland"));
        // Equality uses 1/ndv = 0.5 for a two-value column; both sides
        // get the same estimate — what matters for the optimizer is the
        // order of magnitude, and that MATCH estimates are sharper:
        assert!(seattle > 0.0 && portland > 0.0);
        let rare = estimate_selectivity(&r, &t, &stats, &Expr::matches("tags", "rare"));
        let common = estimate_selectivity(&r, &t, &stats, &Expr::matches("tags", "common"));
        assert!((rare - 0.01).abs() < 0.005, "rare: {rare}");
        assert!((common - 0.99).abs() < 0.01, "common: {common}");
        // Conjunction -> min; disjunction -> capped sum (§3.5.1).
        let conj = estimate_selectivity(
            &r,
            &t,
            &stats,
            &Expr::matches("tags", "common").and(Expr::matches("tags", "rare")),
        );
        assert!((conj - rare).abs() < 1e-9);
        let disj = estimate_selectivity(
            &r,
            &t,
            &stats,
            &Expr::matches("tags", "common").or(Expr::matches("tags", "rare")),
        );
        assert!((disj - 1.0).abs() < 1e-9);
        // Multi-token MATCH takes the min over tokens.
        let multi = estimate_selectivity(&r, &t, &stats, &Expr::matches("tags", "common rare"));
        assert!((multi - rare).abs() < 1e-9);
        // Cardinality scales by row count.
        let card = estimate_cardinality(&r, &t, &stats, &Expr::matches("tags", "rare"));
        assert!((card - 20.0).abs() < 6.0, "card: {card}");
    }
}
