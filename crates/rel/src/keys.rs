//! Order-preserving ("memcomparable") key encoding.
//!
//! Clustered primary keys and secondary-index keys are composite value
//! tuples that must compare correctly as raw byte strings inside the
//! B+tree. The encoding guarantees
//! `encode(a) < encode(b)  ⟺  a <ₜ b` under the total value order
//! ([`crate::Value::total_cmp`]) extended lexicographically to tuples:
//!
//! * each value starts with its type tag (NULL < numerics < TEXT < BLOB);
//! * integers and reals share a tag and are encoded as an
//!   order-preserving `u64` transform of their `f64`/`i64` value
//!   (integers beyond 2^53 fall back to a separate exact path);
//! * text and blobs use `0x00`-escaping with a `0x00 0x01` terminator
//!   so that a tuple prefix always sorts before its extensions.

use crate::error::{RelError, Result};
use crate::value::Value;

// Type tags, ordered to match `Value::total_cmp`'s class order.
const TAG_NULL: u8 = 0x10;
const TAG_NUMERIC: u8 = 0x20;
const TAG_TEXT: u8 = 0x30;
const TAG_BLOB: u8 = 0x40;

/// Encodes a tuple of values into a memcomparable byte string.
pub fn encode_key(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 12);
    for v in values {
        encode_value(v, &mut out);
    }
    out
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Integer(i) => {
            out.push(TAG_NUMERIC);
            out.extend_from_slice(&numeric_sortable_integer(*i).to_be_bytes());
        }
        Value::Real(r) => {
            out.push(TAG_NUMERIC);
            out.extend_from_slice(&numeric_sortable_real(*r).to_be_bytes());
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            escape_into(s.as_bytes(), out);
        }
        Value::Blob(b) => {
            out.push(TAG_BLOB);
            escape_into(b, out);
        }
    }
}

/// Numerics (INTEGER and REAL) share one sort key domain so that
/// `Integer(2) < Real(2.5) < Integer(3)` holds byte-wise, matching the
/// comparison semantics used by predicates. The mapping is a
/// 16-byte pair: the order-preserving f64 transform followed by an
/// exact i64 tiebreak for integers too large for f64.
fn numeric_sortable_real(r: f64) -> u128 {
    let bits = r.to_bits();
    let hi: u64 = if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    };
    // Low half: midpoint tiebreak so a real sorts between the integers
    // it separates; exact integers use their own low half below.
    ((hi as u128) << 64) | (1u128 << 63)
}

fn numeric_sortable_integer(i: i64) -> u128 {
    let as_real = i as f64;
    let hi_bits = {
        let bits = as_real.to_bits();
        if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        }
    };
    // Tiebreak: exact position of the integer relative to the rounded
    // f64. Offset by 1<<63 so it is unsigned-comparable; integers that
    // round down get a high tiebreak, those that round up a low one.
    let rounded = as_real as i64; // saturating for |i| near i64::MAX is fine: same bucket
    let delta = i.wrapping_sub(rounded);
    let lo = (delta as u64).wrapping_add(1 << 63);
    ((hi_bits as u128) << 64) | lo as u128
}

/// Escapes `0x00` as `0x00 0xFF` and terminates with `0x00 0x01`, the
/// classic order-preserving variable-length encoding.
fn escape_into(data: &[u8], out: &mut Vec<u8>) {
    for &b in data {
        if b == 0 {
            out.push(0x00);
            out.push(0xFF);
        } else {
            out.push(b);
        }
    }
    out.push(0x00);
    out.push(0x01);
}

/// Decodes a key produced by [`encode_key`]. Integers encoded via the
/// numeric path decode as `Real` when they originated as `Real`, and as
/// `Integer` when the tiebreak marks an exact integer; round-tripping
/// `encode_key(decode_key(k)) == k` holds for all valid keys.
pub fn decode_key(mut data: &[u8]) -> Result<Vec<Value>> {
    let mut out = Vec::new();
    while !data.is_empty() {
        let (v, rest) = decode_value(data)?;
        out.push(v);
        data = rest;
    }
    Ok(out)
}

fn decode_value(data: &[u8]) -> Result<(Value, &[u8])> {
    let tag = data[0];
    let rest = &data[1..];
    match tag {
        TAG_NULL => Ok((Value::Null, rest)),
        TAG_NUMERIC => {
            if rest.len() < 16 {
                return Err(RelError::Codec("truncated numeric key".into()));
            }
            let hi = u64::from_be_bytes(rest[..8].try_into().unwrap());
            let lo = u64::from_be_bytes(rest[8..16].try_into().unwrap());
            let bits = if hi >> 63 == 1 { hi & !(1 << 63) } else { !hi };
            let r = f64::from_bits(bits);
            let delta = lo.wrapping_sub(1 << 63) as i64;
            // Canonicalization: an integer-valued key with zero tiebreak
            // decodes as Integer (so `Real(2.0)` and `Integer(2)` share
            // one canonical form — they are equal under SQL semantics).
            let v = if delta == 0 {
                if is_exact_i64(r) {
                    Value::Integer(r as i64)
                } else {
                    Value::Real(r)
                }
            } else {
                Value::Integer((r as i64).wrapping_add(delta))
            };
            Ok((v, &rest[16..]))
        }
        TAG_TEXT | TAG_BLOB => {
            let mut bytes = Vec::new();
            let mut i = 0;
            loop {
                if i >= rest.len() {
                    return Err(RelError::Codec("unterminated string key".into()));
                }
                match rest[i] {
                    0x00 => {
                        if i + 1 >= rest.len() {
                            return Err(RelError::Codec("truncated escape".into()));
                        }
                        match rest[i + 1] {
                            0xFF => {
                                bytes.push(0x00);
                                i += 2;
                            }
                            0x01 => {
                                i += 2;
                                break;
                            }
                            b => {
                                return Err(RelError::Codec(format!("bad escape byte {b:#x}")));
                            }
                        }
                    }
                    b => {
                        bytes.push(b);
                        i += 1;
                    }
                }
            }
            let v = if tag == TAG_TEXT {
                Value::Text(
                    String::from_utf8(bytes)
                        .map_err(|_| RelError::Codec("invalid utf-8 in text key".into()))?,
                )
            } else {
                Value::Blob(bytes)
            };
            Ok((v, &rest[i..]))
        }
        t => Err(RelError::Codec(format!("unknown key tag {t:#x}"))),
    }
}

fn is_exact_i64(r: f64) -> bool {
    r.fract() == 0.0 && r >= i64::MIN as f64 && r <= i64::MAX as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    fn enc1(v: Value) -> Vec<u8> {
        encode_key(std::slice::from_ref(&v))
    }

    #[test]
    fn integer_order_preserved() {
        let samples = [
            i64::MIN,
            i64::MIN + 1,
            -1_000_000_007,
            -256,
            -1,
            0,
            1,
            42,
            255,
            1 << 40,
            (1 << 53) + 1,
            i64::MAX - 1,
            i64::MAX,
        ];
        for &a in &samples {
            for &b in &samples {
                let ka = enc1(Value::Integer(a));
                let kb = enc1(Value::Integer(b));
                assert_eq!(ka.cmp(&kb), a.cmp(&b), "ints {a} vs {b}");
            }
        }
    }

    #[test]
    fn real_order_preserved() {
        let samples = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            0.5,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for &a in &samples {
            for &b in &samples {
                let ka = enc1(Value::Real(a));
                let kb = enc1(Value::Real(b));
                let want = a.partial_cmp(&b).unwrap_or(Ordering::Equal);
                let got = ka.cmp(&kb);
                if want != Ordering::Equal {
                    assert_eq!(got, want, "reals {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn mixed_numeric_order() {
        // Integer(2) < Real(2.5) < Integer(3); Real(2.0) ties Integer(2)
        // on the hi half and the tiebreak keeps them adjacent.
        let i2 = enc1(Value::Integer(2));
        let r25 = enc1(Value::Real(2.5));
        let i3 = enc1(Value::Integer(3));
        assert!(i2 < r25 && r25 < i3);
        let rm = enc1(Value::Real(-0.5));
        let i0 = enc1(Value::Integer(0));
        let im1 = enc1(Value::Integer(-1));
        assert!(im1 < rm && rm < i0);
    }

    #[test]
    fn text_order_and_prefix_rule() {
        let pairs = [
            ("", "a"),
            ("a", "ab"),
            ("ab", "b"),
            ("abc", "abd"),
            ("Zebra", "apple"), // byte order, capital first
        ];
        for (a, b) in pairs {
            assert!(enc1(Value::text(a)) < enc1(Value::text(b)), "{a:?} < {b:?}");
        }
    }

    #[test]
    fn embedded_nul_bytes() {
        let a = Value::blob(vec![1, 0, 2]);
        let b = Value::blob(vec![1, 0, 3]);
        let c = Value::blob(vec![1, 1]);
        assert!(enc1(a.clone()) < enc1(b.clone()));
        assert!(enc1(b.clone()) < enc1(c.clone()));
        // Roundtrip through decode.
        for v in [a, b, c, Value::blob(vec![0, 0, 0])] {
            let k = enc1(v.clone());
            assert_eq!(decode_key(&k).unwrap(), vec![v]);
        }
    }

    #[test]
    fn tuple_prefix_orders_before_extension() {
        let short = encode_key(&[Value::Integer(7)]);
        let long = encode_key(&[Value::Integer(7), Value::text("x")]);
        assert!(short < long);
        let t1 = encode_key(&[Value::text("a"), Value::Integer(2)]);
        let t2 = encode_key(&[Value::text("ab")]);
        assert!(t1 < t2, "first component dominates");
    }

    #[test]
    fn cross_type_class_order() {
        let null = enc1(Value::Null);
        let int = enc1(Value::Integer(i64::MIN));
        let text = enc1(Value::text(""));
        let blob = enc1(Value::blob(vec![]));
        assert!(null < int && int < text && text < blob);
    }

    #[test]
    fn decode_roundtrip() {
        let tuples: Vec<Vec<Value>> = vec![
            vec![Value::Null],
            vec![Value::Integer(-42), Value::text("hello"), Value::Null],
            vec![Value::blob(vec![0, 255, 0]), Value::Integer(i64::MAX)],
            vec![Value::text("πß")],
            vec![Value::Real(2.5)],
        ];
        for t in tuples {
            let k = encode_key(&t);
            assert_eq!(decode_key(&k).unwrap(), t);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_key(&[0x99]).is_err());
        assert!(decode_key(&[TAG_NUMERIC, 1, 2]).is_err());
        assert!(decode_key(&[TAG_TEXT, b'a']).is_err(), "unterminated");
        assert!(decode_key(&[TAG_TEXT, 0x00, 0x55]).is_err(), "bad escape");
    }

    #[test]
    fn large_integers_beyond_f64_precision_stay_ordered() {
        let base = (1i64 << 53) + 10;
        let mut prev = enc1(Value::Integer(base - 5));
        for i in (base - 4)..(base + 5) {
            let cur = enc1(Value::Integer(i));
            assert!(prev < cur, "ordering broken at {i}");
            assert_eq!(decode_key(&cur).unwrap(), vec![Value::Integer(i)]);
            prev = cur;
        }
    }
}
