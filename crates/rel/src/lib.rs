//! `micronn-rel`: the relational layer of the MicroNN reproduction.
//!
//! MicroNN "adopts a relational storage architecture and leverages a
//! SQLite relational database for efficient storage of vectors and
//! their associated metadata" (§3). This crate is that relational
//! database, built on the [`micronn_storage`] page store:
//!
//! * typed [`Value`]s and [`TableSchema`]s;
//! * order-preserving composite-key encoding ([`keys`]) so rows cluster
//!   on their primary key inside the B+tree — the mechanism behind the
//!   paper's partition data locality (§3.2);
//! * a persistent [`catalog`] of tables, secondary indexes, full-text
//!   indexes and column statistics;
//! * [`Table`] operations (upsert/delete/get/scan) that keep every
//!   index transactionally consistent;
//! * filter [`predicate`]s (comparisons, AND/OR/NOT, FTS `MATCH`);
//! * per-column histograms and the selectivity estimator of §3.5.1
//!   ([`stats`]), which the hybrid query optimizer builds on.
//!
//! # Example
//!
//! ```
//! use micronn_rel::{Database, TableSchema, ColumnDef, Value, ValueType, Expr};
//! use micronn_storage::StoreOptions;
//!
//! let dir = tempfile::tempdir().unwrap();
//! let db = Database::create(dir.path().join("app.db"), StoreOptions::default()).unwrap();
//!
//! let mut txn = db.begin_write().unwrap();
//! let photos = db.create_table(&mut txn, TableSchema::new(
//!     "photos",
//!     vec![
//!         ColumnDef::new("id", ValueType::Integer),
//!         ColumnDef::new("location", ValueType::Text),
//!     ],
//!     &["id"],
//! ).unwrap()).unwrap();
//! photos.upsert(&mut txn, vec![Value::Integer(1), Value::text("Seattle")]).unwrap();
//! txn.commit().unwrap();
//!
//! let r = db.begin_read();
//! let pred = Expr::eq("location", "Seattle").compile(photos.schema()).unwrap();
//! let hits: Vec<_> = photos.scan(&r).unwrap()
//!     .filter(|row| row.as_ref().map(|r| pred.eval(r)).unwrap_or(false))
//!     .collect();
//! assert_eq!(hits.len(), 1);
//! ```

pub mod catalog;
pub mod error;
pub mod fts;
pub mod keys;
pub mod predicate;
pub mod row;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use catalog::Database;
pub use error::{RelError, Result};
pub use keys::{decode_key, encode_key};
pub use predicate::{CmpOp, Compiled, Expr};
pub use row::{blob_into_f32, blob_to_f32, decode_row, encode_row, f32_to_blob, RowDecoder};
pub use schema::{ColumnDef, TableSchema};
pub use stats::{
    analyze_table, estimate_cardinality, estimate_selectivity, ColumnStats, TableStats,
};
pub use table::{FtsDef, IndexDef, Table};
pub use value::{Value, ValueType};
