//! Typed values: the cells of attribute rows.
//!
//! MicroNN stores "use-case specific attributes … in a separate
//! attribute table. Each vector can have its own attribute values, and
//! nearest neighbour queries can include relational constraints over
//! these attributes" (§3.2). The type system mirrors SQLite's storage
//! classes: NULL, INTEGER, REAL, TEXT, BLOB.

use std::cmp::Ordering;
use std::fmt;

/// The storage class of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    Null,
    Integer,
    Real,
    Text,
    Blob,
}

impl ValueType {
    /// Stable one-byte tag used by the row and key codecs.
    pub fn tag(self) -> u8 {
        match self {
            ValueType::Null => 0,
            ValueType::Integer => 1,
            ValueType::Real => 2,
            ValueType::Text => 3,
            ValueType::Blob => 4,
        }
    }

    /// Inverse of [`ValueType::tag`].
    pub fn from_tag(t: u8) -> Option<ValueType> {
        Some(match t {
            0 => ValueType::Null,
            1 => ValueType::Integer,
            2 => ValueType::Real,
            3 => ValueType::Text,
            4 => ValueType::Blob,
            _ => return None,
        })
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Null => "NULL",
            ValueType::Integer => "INTEGER",
            ValueType::Real => "REAL",
            ValueType::Text => "TEXT",
            ValueType::Blob => "BLOB",
        };
        f.write_str(s)
    }
}

/// A dynamically typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Integer(i64),
    Real(f64),
    Text(String),
    Blob(Vec<u8>),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Convenience constructor for blob values.
    pub fn blob(b: impl Into<Vec<u8>>) -> Value {
        Value::Blob(b.into())
    }

    /// The value's storage class.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Null,
            Value::Integer(_) => ValueType::Integer,
            Value::Real(_) => ValueType::Real,
            Value::Text(_) => ValueType::Text,
            Value::Blob(_) => ValueType::Blob,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer content, if this is an integer.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric content with INTEGER→REAL widening.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            Value::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Text content, if this is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Blob content, if this is a blob.
    pub fn as_blob(&self) -> Option<&[u8]> {
        match self {
            Value::Blob(b) => Some(b),
            _ => None,
        }
    }

    /// SQL-style three-valued comparison: `None` when either side is
    /// NULL or the types are incomparable. INTEGER and REAL compare
    /// numerically with each other.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Integer(a), Integer(b)) => Some(a.cmp(b)),
            (Real(a), Real(b)) => a.partial_cmp(b),
            (Integer(a), Real(b)) => (*a as f64).partial_cmp(b),
            (Real(a), Integer(b)) => a.partial_cmp(&(*b as f64)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Blob(a), Blob(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order used for sorting and histogram construction:
    /// NULL < numerics < TEXT < BLOB, with NaN greatest among reals.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Integer(_) | Value::Real(_) => 1,
                Value::Text(_) => 2,
                Value::Blob(_) => 3,
            }
        }
        match class(self).cmp(&class(other)) {
            Ordering::Equal => {}
            o => return o,
        }
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Integer(a), Integer(b)) => a.cmp(b),
            (Real(a), Real(b)) => a.total_cmp(b),
            (Integer(a), Real(b)) => (*a as f64).total_cmp(b),
            (Real(a), Integer(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Blob(a), Blob(b)) => a.cmp(b),
            _ => unreachable!("classes matched above"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Blob(b) => write!(f, "blob({} bytes)", b.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Integer(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Value {
        Value::Blob(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for t in [
            ValueType::Null,
            ValueType::Integer,
            ValueType::Real,
            ValueType::Text,
            ValueType::Blob,
        ] {
            assert_eq!(ValueType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(ValueType::from_tag(99), None);
    }

    #[test]
    fn sql_comparison_semantics() {
        assert_eq!(
            Value::Integer(3).compare(&Value::Integer(5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Integer(3).compare(&Value::Real(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Real(2.5).compare(&Value::Integer(2)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Null.compare(&Value::Integer(1)), None);
        assert_eq!(Value::text("a").compare(&Value::Integer(1)), None);
        assert_eq!(
            Value::text("abc").compare(&Value::text("abd")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn total_order_is_total() {
        let vals = [
            Value::Null,
            Value::Integer(-5),
            Value::Real(f64::NAN),
            Value::Real(1.5),
            Value::text("z"),
            Value::blob(vec![1, 2]),
        ];
        for a in &vals {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &vals {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse());
            }
        }
        // Class ordering.
        assert_eq!(
            Value::Null.total_cmp(&Value::Integer(i64::MIN)),
            Ordering::Less
        );
        assert_eq!(
            Value::Integer(i64::MAX).total_cmp(&Value::text("")),
            Ordering::Less
        );
        assert_eq!(
            Value::text("zzz").total_cmp(&Value::blob(vec![])),
            Ordering::Less
        );
    }

    #[test]
    fn accessors_and_conversions() {
        let v: Value = 42i64.into();
        assert_eq!(v.as_integer(), Some(42));
        assert_eq!(v.as_real(), Some(42.0));
        let v: Value = "hello".into();
        assert_eq!(v.as_text(), Some("hello"));
        assert!(v.as_integer().is_none());
        let v: Value = vec![1u8, 2].into();
        assert_eq!(v.as_blob(), Some(&[1u8, 2][..]));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Real(0.5).as_real(), Some(0.5));
    }
}
