//! Attribute filter predicates.
//!
//! MicroNN "supports standard relational operators over the defined
//! attributes (>, <, =, !=)" plus FTS `MATCH`, combined with AND/OR
//! (§3.5). Predicates are built as an AST, compiled against a table
//! schema (resolving column names to indexes once), and then evaluated
//! per row on the scan hot path.
//!
//! Evaluation is two-valued: a comparison involving NULL or mismatched
//! types is `false` (and so is its negation's operand), which matches
//! how filters behave in the paper's setting — a row either qualifies
//! or it does not.

use crate::error::Result;
use crate::fts;
use crate::schema::TableSchema;
use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Applies the operator to an ordering result.
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// A filter expression over a table's attribute columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Matches every row.
    True,
    /// `column <op> literal`.
    Cmp {
        column: String,
        op: CmpOp,
        value: Value,
    },
    /// Full-text `column MATCH query` (conjunctive over query tokens).
    Match {
        column: String,
        query: String,
    },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
}

impl Expr {
    /// `column = value`
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Expr {
        Expr::Cmp {
            column: column.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `column != value`
    pub fn ne(column: impl Into<String>, value: impl Into<Value>) -> Expr {
        Expr::Cmp {
            column: column.into(),
            op: CmpOp::Ne,
            value: value.into(),
        }
    }

    /// `column < value`
    pub fn lt(column: impl Into<String>, value: impl Into<Value>) -> Expr {
        Expr::Cmp {
            column: column.into(),
            op: CmpOp::Lt,
            value: value.into(),
        }
    }

    /// `column <= value`
    pub fn le(column: impl Into<String>, value: impl Into<Value>) -> Expr {
        Expr::Cmp {
            column: column.into(),
            op: CmpOp::Le,
            value: value.into(),
        }
    }

    /// `column > value`
    pub fn gt(column: impl Into<String>, value: impl Into<Value>) -> Expr {
        Expr::Cmp {
            column: column.into(),
            op: CmpOp::Gt,
            value: value.into(),
        }
    }

    /// `column >= value`
    pub fn ge(column: impl Into<String>, value: impl Into<Value>) -> Expr {
        Expr::Cmp {
            column: column.into(),
            op: CmpOp::Ge,
            value: value.into(),
        }
    }

    /// `column MATCH query`
    pub fn matches(column: impl Into<String>, query: impl Into<String>) -> Expr {
        Expr::Match {
            column: column.into(),
            query: query.into(),
        }
    }

    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Resolves column names against `schema`, producing an evaluable
    /// predicate. Fails on unknown columns.
    pub fn compile(&self, schema: &TableSchema) -> Result<Compiled> {
        Ok(Compiled {
            node: self.compile_node(schema)?,
        })
    }

    fn compile_node(&self, schema: &TableSchema) -> Result<Node> {
        Ok(match self {
            Expr::True => Node::True,
            Expr::Cmp { column, op, value } => Node::Cmp {
                col: schema.column_index(column)?,
                op: *op,
                value: value.clone(),
            },
            Expr::Match { column, query } => {
                let tokens = fts::tokenize_unique(query);
                Node::Match {
                    col: schema.column_index(column)?,
                    tokens,
                }
            }
            Expr::And(a, b) => Node::And(
                Box::new(a.compile_node(schema)?),
                Box::new(b.compile_node(schema)?),
            ),
            Expr::Or(a, b) => Node::Or(
                Box::new(a.compile_node(schema)?),
                Box::new(b.compile_node(schema)?),
            ),
            Expr::Not(a) => Node::Not(Box::new(a.compile_node(schema)?)),
        })
    }

    /// All `(column, token)` pairs appearing in MATCH leaves —
    /// used by the optimizer's selectivity estimator.
    pub fn match_leaves(&self) -> Vec<(&str, &str)> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Match { column, query } = e {
                out.push((column.as_str(), query.as_str()));
            }
        });
        out
    }

    /// Walks the tree, calling `f` on every node.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Not(a) => a.visit(f),
            _ => {}
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    True,
    Cmp { col: usize, op: CmpOp, value: Value },
    Match { col: usize, tokens: Vec<String> },
    And(Box<Node>, Box<Node>),
    Or(Box<Node>, Box<Node>),
    Not(Box<Node>),
}

/// A predicate compiled against a schema; evaluation is infallible.
#[derive(Debug, Clone)]
pub struct Compiled {
    node: Node,
}

impl Compiled {
    /// Evaluates the predicate against a decoded row.
    pub fn eval(&self, row: &[Value]) -> bool {
        eval_node(&self.node, row)
    }
}

fn eval_node(node: &Node, row: &[Value]) -> bool {
    match node {
        Node::True => true,
        Node::Cmp { col, op, value } => match row[*col].compare(value) {
            Some(ord) => op.matches(ord),
            None => false,
        },
        Node::Match { col, tokens } => match row[*col].as_text() {
            Some(text) => {
                if tokens.is_empty() {
                    return false;
                }
                let doc = fts::tokenize_unique(text);
                tokens.iter().all(|t| doc.binary_search(t).is_ok())
            }
            None => false,
        },
        Node::And(a, b) => eval_node(a, row) && eval_node(b, row),
        Node::Or(a, b) => eval_node(a, row) || eval_node(b, row),
        Node::Not(a) => !eval_node(a, row),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;

    fn schema() -> TableSchema {
        TableSchema::new(
            "photos",
            vec![
                ColumnDef::new("id", ValueType::Integer),
                ColumnDef::new("location", ValueType::Text),
                ColumnDef::nullable("taken_at", ValueType::Integer),
                ColumnDef::nullable("tags", ValueType::Text),
            ],
            &["id"],
        )
        .unwrap()
    }

    fn row(id: i64, loc: &str, at: Option<i64>, tags: &str) -> Vec<Value> {
        vec![
            Value::Integer(id),
            Value::text(loc),
            at.map(Value::Integer).unwrap_or(Value::Null),
            Value::text(tags),
        ]
    }

    #[test]
    fn comparison_operators() {
        let s = schema();
        let r = row(1, "Seattle", Some(100), "");
        let cases = [
            (Expr::eq("location", "Seattle"), true),
            (Expr::eq("location", "NYC"), false),
            (Expr::ne("location", "NYC"), true),
            (Expr::lt("taken_at", 200i64), true),
            (Expr::le("taken_at", 100i64), true),
            (Expr::gt("taken_at", 100i64), false),
            (Expr::ge("taken_at", 100i64), true),
        ];
        for (e, want) in cases {
            assert_eq!(e.compile(&s).unwrap().eval(&r), want, "{e:?}");
        }
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = schema();
        let r = row(1, "x", None, "");
        for op in [
            Expr::eq("taken_at", 5i64),
            Expr::ne("taken_at", 5i64),
            Expr::lt("taken_at", 5i64),
        ] {
            assert!(!op.compile(&s).unwrap().eval(&r));
        }
        // But NOT(cmp-with-null) is true under two-valued semantics.
        assert!(Expr::eq("taken_at", 5i64)
            .not()
            .compile(&s)
            .unwrap()
            .eval(&r));
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let r = row(1, "Seattle", Some(100), "");
        let e = Expr::eq("location", "Seattle").and(Expr::lt("taken_at", 200i64));
        assert!(e.compile(&s).unwrap().eval(&r));
        let e = Expr::eq("location", "NYC").or(Expr::lt("taken_at", 200i64));
        assert!(e.compile(&s).unwrap().eval(&r));
        let e = Expr::eq("location", "NYC").or(Expr::gt("taken_at", 200i64));
        assert!(!e.compile(&s).unwrap().eval(&r));
        assert!(Expr::True.compile(&s).unwrap().eval(&r));
        assert!(!Expr::True.not().compile(&s).unwrap().eval(&r));
    }

    #[test]
    fn match_semantics() {
        let s = schema();
        let r = row(1, "x", None, "Black cat playing with yarn");
        let hit = Expr::matches("tags", "black CAT");
        assert!(hit.compile(&s).unwrap().eval(&r));
        let miss = Expr::matches("tags", "black dog");
        assert!(!miss.compile(&s).unwrap().eval(&r));
        // Empty query matches nothing.
        assert!(!Expr::matches("tags", "").compile(&s).unwrap().eval(&r));
        // MATCH on a NULL column is false.
        let r2 = vec![
            Value::Integer(1),
            Value::text("x"),
            Value::Null,
            Value::Null,
        ];
        assert!(!Expr::matches("tags", "cat").compile(&s).unwrap().eval(&r2));
    }

    #[test]
    fn unknown_column_fails_at_compile_time() {
        let s = schema();
        assert!(Expr::eq("nope", 1i64).compile(&s).is_err());
        assert!(Expr::matches("nope", "x").compile(&s).is_err());
    }

    #[test]
    fn numeric_widening_in_comparisons() {
        let s = schema();
        let r = row(1, "x", Some(100), "");
        assert!(Expr::eq("taken_at", Value::Real(100.0))
            .compile(&s)
            .unwrap()
            .eval(&r));
        assert!(Expr::lt("taken_at", Value::Real(100.5))
            .compile(&s)
            .unwrap()
            .eval(&r));
    }

    #[test]
    fn match_leaves_collected() {
        let e = Expr::matches("tags", "cat")
            .and(Expr::eq("location", "x").or(Expr::matches("tags", "dog")));
        let leaves = e.match_leaves();
        assert_eq!(leaves, vec![("tags", "cat"), ("tags", "dog")]);
    }
}
