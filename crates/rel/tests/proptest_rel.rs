//! Property-based tests for the relational codecs and table layer:
//! key-encoding order preservation, row roundtrips, and table/index
//! consistency under random workloads.

use proptest::prelude::*;

use micronn_rel::{
    decode_key, decode_row, encode_key, encode_row, ColumnDef, Database, TableSchema, Value,
    ValueType,
};
use micronn_storage::{StoreOptions, SyncMode};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Integer),
        // Finite reals only: NaN has no semantic order to check against.
        (-1e100f64..1e100).prop_map(Value::Real),
        "[a-z0-9 ]{0,12}".prop_map(Value::text),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::blob),
    ]
}

fn tuple_strategy() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(value_strategy(), 1..4)
}

fn tuple_cmp(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Equal => continue,
            o => return o,
        }
    }
    a.len().cmp(&b.len())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn key_encoding_preserves_tuple_order(a in tuple_strategy(), b in tuple_strategy()) {
        let ka = encode_key(&a);
        let kb = encode_key(&b);
        let semantic = tuple_cmp(&a, &b);
        // Equal-sorting distinct values (Integer(2) vs Real(2.0)) are
        // permitted to collide; strict orders must be preserved.
        if semantic != std::cmp::Ordering::Equal && ka != kb {
            prop_assert_eq!(ka.cmp(&kb), semantic, "{:?} vs {:?}", a, b);
        }
    }

    #[test]
    fn key_decode_is_inverse_up_to_canonical_form(t in tuple_strategy()) {
        let k = encode_key(&t);
        let decoded = decode_key(&k).unwrap();
        // Canonical form may turn Real(2.0) into Integer(2); re-encoding
        // must reproduce the identical key bytes.
        prop_assert_eq!(encode_key(&decoded), k);
        prop_assert_eq!(decoded.len(), t.len());
    }

    #[test]
    fn row_roundtrip(t in proptest::collection::vec(value_strategy(), 0..8)) {
        prop_assert_eq!(decode_row(&encode_row(&t)).unwrap(), t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn table_and_index_stay_consistent(
        ops in proptest::collection::vec(
            (0u8..3, 0i64..60, "[a-c]{1}", proptest::option::of(0i64..5)),
            1..120,
        )
    ) {
        let dir = tempfile::tempdir().unwrap();
        let db = Database::create(
            dir.path().join("db"),
            StoreOptions { sync: SyncMode::Off, ..Default::default() },
        ).unwrap();
        let mut txn = db.begin_write().unwrap();
        let t = db.create_table(&mut txn, TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ValueType::Integer),
                ColumnDef::new("cat", ValueType::Text),
                ColumnDef::nullable("n", ValueType::Integer),
            ],
            &["id"],
        ).unwrap()).unwrap();
        let t = db.create_index(&mut txn, &t, "by_cat", &["cat"]).unwrap();

        let mut model: std::collections::BTreeMap<i64, (String, Option<i64>)> =
            std::collections::BTreeMap::new();
        for (op, id, cat, n) in ops {
            match op {
                0 | 1 => {
                    let row = vec![
                        Value::Integer(id),
                        Value::text(cat.clone()),
                        n.map(Value::Integer).unwrap_or(Value::Null),
                    ];
                    let old = t.upsert(&mut txn, row).unwrap();
                    let model_old = model.insert(id, (cat, n));
                    prop_assert_eq!(old.is_some(), model_old.is_some());
                }
                _ => {
                    let old = t.delete(&mut txn, &[Value::Integer(id)]).unwrap();
                    prop_assert_eq!(old.is_some(), model.remove(&id).is_some());
                }
            }
        }
        // Row count, full scan, and index contents all match the model.
        prop_assert_eq!(t.row_count(&txn).unwrap(), model.len() as u64);
        let rows: Vec<Vec<Value>> = t.scan(&txn).unwrap().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(rows.len(), model.len());
        for row in &rows {
            let id = row[0].as_integer().unwrap();
            let (cat, n) = model.get(&id).unwrap();
            prop_assert_eq!(row[1].as_text().unwrap(), cat);
            prop_assert_eq!(row[2].as_integer(), *n);
        }
        // Index agrees per category.
        let idx = t.index_on(&[1]).unwrap();
        for cat in ["a", "b", "c"] {
            let got = idx.lookup_eq(&txn, &[Value::text(cat)]).unwrap();
            let want = model.iter().filter(|(_, (c, _))| c == cat).count();
            prop_assert_eq!(got.len(), want, "category {}", cat);
        }
        txn.commit().unwrap();
    }
}
