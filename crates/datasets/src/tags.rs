//! The filtered-search workload behind Figure 7.
//!
//! The paper evaluates its hybrid optimizer on the Big-ANN Filtered
//! Search track: 10M CLIP embeddings of Flickr images, each with a bag
//! of tags; a query is an embedding plus tags that results must all
//! carry. The workload's relevant structure is (a) a heavy-tailed
//! (Zipfian) tag frequency distribution, which produces query
//! selectivities spanning many orders of magnitude, and (b) correlation
//! between tags and vector position (a "cat" photo embeds near other
//! cat photos). This generator reproduces both: each asset's anchor tag
//! picks its mixture component, queries combine 1–3 tags, and true
//! selectivities are *measured* (not estimated) so queries can be
//! binned by selectivity decade exactly as §4.3.1 does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use micronn_linalg::{normalize, Metric};

use crate::synthetic::gaussian;

/// One asset: a vector and its whitespace-joined tag bag (the paper
/// encodes tags "as a whitespace separated string" in one column).
#[derive(Debug, Clone)]
pub struct TaggedAsset {
    pub asset_id: i64,
    pub vector: Vec<f32>,
    pub tags: String,
}

/// One hybrid query: an embedding plus a tag conjunction, with its
/// *measured* selectivity factor.
#[derive(Debug, Clone)]
pub struct TagQuery {
    pub vector: Vec<f32>,
    /// Query tags (results must carry all of them).
    pub tags: Vec<String>,
    /// True selectivity factor `F` (qualifying fraction), measured over
    /// the generated corpus.
    pub selectivity: f64,
}

/// The generated workload.
#[derive(Debug, Clone)]
pub struct TagWorkload {
    pub dim: usize,
    pub metric: Metric,
    pub assets: Vec<TaggedAsset>,
    /// Queries grouped by selectivity decade: `bins[d]` holds queries
    /// with `10^-(d+1) <= F < 10^-d`... i.e. index 0 = [1e-1, 1), 1 =
    /// [1e-2, 1e-1), etc.
    pub bins: Vec<Vec<TagQuery>>,
}

/// Tag-universe token for tag index `i`.
fn tag_name(i: usize) -> String {
    format!("tag{i:04}")
}

/// Generates the workload: `n` assets of dimension `dim`, a Zipfian
/// universe of `n_tags` tags, queries binned by measured selectivity
/// decade with up to `per_bin` queries per decade (paper: 10).
pub fn filtered_tags(
    n: usize,
    dim: usize,
    n_tags: usize,
    per_bin: usize,
    max_decades: usize,
    seed: u64,
) -> TagWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let metric = Metric::Cosine;

    // Zipf weights over the tag universe.
    let weights: Vec<f64> = (1..=n_tags).map(|r| 1.0 / (r as f64)).collect();
    let total_w: f64 = weights.iter().sum();
    let sample_tag = |rng: &mut StdRng| -> usize {
        let mut t = rng.gen_range(0.0..total_w);
        for (i, w) in weights.iter().enumerate() {
            if t < *w {
                return i;
            }
            t -= w;
        }
        n_tags - 1
    };

    // Each tag anchors a direction in vector space: tag/vector
    // correlation. (The paper's CLIP embeddings cluster by content,
    // and tags describe content.)
    let mut anchors = vec![0f32; n_tags * dim];
    for a in anchors.iter_mut() {
        *a = rng.gen_range(-1.0f32..1.0);
    }

    // Assets: an anchor tag (drives the vector) + a few extra tags.
    let mut assets = Vec::with_capacity(n);
    let mut tag_members: Vec<Vec<u32>> = vec![Vec::new(); n_tags];
    for i in 0..n {
        let anchor = sample_tag(&mut rng);
        let mut tag_ids = vec![anchor];
        let extra = rng.gen_range(2..6);
        for _ in 0..extra {
            let t = sample_tag(&mut rng);
            if !tag_ids.contains(&t) {
                tag_ids.push(t);
            }
        }
        let mut vector = Vec::with_capacity(dim);
        let base = &anchors[anchor * dim..(anchor + 1) * dim];
        for &b in base {
            vector.push(b + 0.25 * gaussian(&mut rng));
        }
        normalize(&mut vector);
        for &t in &tag_ids {
            tag_members[t].push(i as u32);
        }
        let tags = tag_ids
            .iter()
            .map(|&t| tag_name(t))
            .collect::<Vec<_>>()
            .join(" ");
        assets.push(TaggedAsset {
            asset_id: i as i64,
            vector,
            tags,
        });
    }

    // Candidate queries: single tags and conjunctions of 2–3 tags whose
    // measured selectivity lands across the decades. Selectivity of a
    // conjunction is measured exactly by intersecting member lists.
    let mut bins: Vec<Vec<TagQuery>> = vec![Vec::new(); max_decades];
    let try_add = |tag_ids: &[usize], rng: &mut StdRng, bins: &mut Vec<Vec<TagQuery>>| {
        let mut members: Option<Vec<u32>> = None;
        for &t in tag_ids {
            let list = &tag_members[t];
            members = Some(match members {
                None => list.clone(),
                Some(prev) => {
                    let set: std::collections::HashSet<u32> = list.iter().copied().collect();
                    prev.into_iter().filter(|m| set.contains(m)).collect()
                }
            });
        }
        let members = members.unwrap_or_default();
        if members.is_empty() {
            return;
        }
        let f = members.len() as f64 / n as f64;
        // Decade bin: [1e-1, 1) -> 0, [1e-2, 1e-1) -> 1, ... An exact
        // power of ten (F = 0.01) belongs to the bin it lower-bounds.
        let decade = (-f.log10() - 1e-9).floor().max(0.0) as usize;
        if decade >= bins.len() || bins[decade].len() >= per_bin {
            return;
        }
        // Query vector: near a random qualifying member (queries with
        // the tag look like assets with the tag).
        let m = members[rng.gen_range(0..members.len())] as usize;
        let mut vector = assets[m].vector.clone();
        for v in vector.iter_mut() {
            *v += 0.05 * gaussian(rng);
        }
        normalize(&mut vector);
        bins[decade].push(TagQuery {
            vector,
            tags: tag_ids.iter().map(|&t| tag_name(t)).collect(),
            selectivity: f,
        });
    };

    // Sweep the tag universe head-to-tail for singles, then random
    // conjunctions until bins stop filling.
    for t in 0..n_tags {
        try_add(&[t], &mut rng, &mut bins);
    }
    for _ in 0..(per_bin * max_decades * 200) {
        let a = sample_tag(&mut rng);
        let b = rng.gen_range(0..n_tags);
        if a == b {
            continue;
        }
        if rng.gen_bool(0.3) {
            let c = rng.gen_range(0..n_tags);
            try_add(&[a, b, c], &mut rng, &mut bins);
        } else {
            try_add(&[a, b], &mut rng, &mut bins);
        }
        if bins.iter().all(|b| b.len() >= per_bin) {
            break;
        }
    }

    TagWorkload {
        dim,
        metric,
        assets,
        bins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> TagWorkload {
        filtered_tags(5000, 16, 200, 5, 4, 99)
    }

    #[test]
    fn assets_shaped_and_tagged() {
        let w = workload();
        assert_eq!(w.assets.len(), 5000);
        for a in w.assets.iter().take(50) {
            assert_eq!(a.vector.len(), 16);
            assert!((micronn_linalg::norm(&a.vector) - 1.0).abs() < 1e-4);
            assert!(!a.tags.is_empty());
            assert!(a.tags.split(' ').count() >= 1);
        }
    }

    #[test]
    fn selectivities_are_exact_counts() {
        let w = workload();
        for bin in &w.bins {
            for q in bin {
                // Recount: every query tag must be present.
                let count = w
                    .assets
                    .iter()
                    .filter(|a| {
                        let set: std::collections::HashSet<&str> = a.tags.split(' ').collect();
                        q.tags.iter().all(|t| set.contains(t.as_str()))
                    })
                    .count();
                let f = count as f64 / w.assets.len() as f64;
                assert!(
                    (f - q.selectivity).abs() < 1e-12,
                    "stored {} vs recount {f}",
                    q.selectivity
                );
            }
        }
    }

    #[test]
    fn bins_span_decades() {
        let w = workload();
        // The head of a Zipf distribution gives common tags (decade 0
        // or 1); conjunctions give rare ones. At least three decades
        // should be populated at this corpus size.
        let populated = w.bins.iter().filter(|b| !b.is_empty()).count();
        assert!(populated >= 3, "only {populated} decades populated");
        for (d, bin) in w.bins.iter().enumerate() {
            for q in bin {
                let lo = 10f64.powi(-(d as i32 + 1));
                let hi = 10f64.powi(-(d as i32));
                assert!(
                    q.selectivity >= lo && q.selectivity < hi,
                    "decade {d}: F={}",
                    q.selectivity
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = filtered_tags(1000, 8, 50, 3, 3, 1);
        let b = filtered_tags(1000, 8, 50, 3, 3, 1);
        assert_eq!(a.assets.len(), b.assets.len());
        assert_eq!(a.assets[5].tags, b.assets[5].tags);
        assert_eq!(a.assets[5].vector, b.assets[5].vector);
    }

    #[test]
    fn tag_vector_correlation_exists() {
        // Assets sharing an anchor tag should be closer on average than
        // random pairs (cosine distance).
        let w = workload();
        let tag0 = tag_name(0);
        let members: Vec<&TaggedAsset> = w
            .assets
            .iter()
            .filter(|a| a.tags.split(' ').next() == Some(tag0.as_str()))
            .take(30)
            .collect();
        if members.len() < 10 {
            return; // extremely unlikely with Zipf head, but guard
        }
        let mut within = 0.0f64;
        let mut cross = 0.0f64;
        let mut pairs = 0;
        for i in 0..members.len() - 1 {
            within +=
                micronn_linalg::cosine_distance(&members[i].vector, &members[i + 1].vector) as f64;
            cross += micronn_linalg::cosine_distance(
                &members[i].vector,
                &w.assets[(i * 997 + 13) % w.assets.len()].vector,
            ) as f64;
            pairs += 1;
        }
        assert!(
            within / pairs as f64 * 1.5 < cross / pairs as f64 + 0.5,
            "anchored assets should cluster: within {within} cross {cross}"
        );
    }
}
