//! `micronn-datasets`: synthetic evaluation workloads for the MicroNN
//! reproduction.
//!
//! The paper evaluates on public benchmarks (MNIST, NYTimes, SIFT,
//! GLOVE, GIST, DEEPImage — Table 2), one Apple-internal corpus
//! (InternalA), and the Big-ANN Filtered Search track (Figure 7). None
//! of those can ship here, so this crate provides seeded synthetic
//! stand-ins with matching dimensionality, metric and (scalable) row
//! counts, plus exact ground truth and recall computation. DESIGN.md §3
//! documents why each substitution preserves the behaviour under test.

pub mod ground_truth;
pub mod synthetic;
pub mod tags;

pub use ground_truth::{exact_topk, ground_truth, mean_recall, recall};
pub use synthetic::{gaussian, generate, internal_a, table2_specs, Dataset, DatasetSpec};
pub use tags::{filtered_tags, TagQuery, TagWorkload, TaggedAsset};
