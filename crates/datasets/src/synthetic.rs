//! Synthetic stand-ins for the paper's evaluation datasets (Table 2).
//!
//! The real corpora (MNIST, NYTimes, SIFT, GLOVE, GIST, DEEPImage and
//! Apple's InternalA) cannot ship with this reproduction, so each is
//! replaced by a seeded Gaussian-mixture generator with the same
//! dimensionality and metric and a configurable row count. IVF
//! behaviour — recall vs probes, partition locality, batch scaling —
//! is driven by dimension, metric and clusterability, all of which the
//! generator reproduces; absolute latencies differ from the paper's
//! hardware anyway. See DESIGN.md §3 for the substitution rationale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use micronn_linalg::{normalize, Metric};

/// Description of one benchmark dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Name used in tables and reports (mirrors Table 2).
    pub name: &'static str,
    /// Vector dimensionality (exactly the paper's).
    pub dim: usize,
    /// Number of base vectors.
    pub n_vectors: usize,
    /// Number of query vectors.
    pub n_queries: usize,
    /// Distance metric (exactly the paper's).
    pub metric: Metric,
    /// Latent mixture components (clusterability knob).
    pub clusters: usize,
    /// Within-cluster standard deviation relative to the unit cube.
    pub spread: f32,
    /// Generator seed.
    pub seed: u64,
}

/// A generated dataset: base vectors plus query vectors, row-major.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub spec: DatasetSpec,
    pub vectors: Vec<f32>,
    pub queries: Vec<f32>,
}

impl Dataset {
    /// Base vector `i`.
    pub fn vector(&self, i: usize) -> &[f32] {
        &self.vectors[i * self.spec.dim..(i + 1) * self.spec.dim]
    }

    /// Query vector `i`.
    pub fn query(&self, i: usize) -> &[f32] {
        &self.queries[i * self.spec.dim..(i + 1) * self.spec.dim]
    }

    /// Number of base vectors.
    pub fn len(&self) -> usize {
        self.spec.n_vectors
    }

    /// True when the dataset has no base vectors.
    pub fn is_empty(&self) -> bool {
        self.spec.n_vectors == 0
    }
}

/// The seven datasets of Table 2. `scale` multiplies the paper's row
/// counts (1.0 = paper scale; the bench harness defaults to a laptop
///-friendly fraction). Dimensions, metrics and query counts are the
/// paper's own.
pub fn table2_specs(scale: f64) -> Vec<DatasetSpec> {
    let n = |paper: usize| ((paper as f64 * scale) as usize).max(1000);
    let q = |paper: usize| ((paper as f64 * scale.max(0.02)) as usize).clamp(50, paper);
    vec![
        DatasetSpec {
            name: "MNIST",
            dim: 784,
            n_vectors: n(60_000),
            n_queries: q(10_000),
            metric: Metric::L2,
            clusters: 10,
            spread: 0.18,
            seed: 0xA001,
        },
        DatasetSpec {
            name: "NYTimes",
            dim: 256,
            n_vectors: n(290_000),
            n_queries: q(10_000),
            metric: Metric::Cosine,
            clusters: 60,
            spread: 0.12,
            seed: 0xA002,
        },
        DatasetSpec {
            name: "SIFT",
            dim: 128,
            n_vectors: n(1_000_000),
            n_queries: q(10_000),
            metric: Metric::L2,
            clusters: 120,
            spread: 0.10,
            seed: 0xA003,
        },
        DatasetSpec {
            name: "GLOVE",
            dim: 200,
            n_vectors: n(1_183_514),
            n_queries: q(10_000),
            metric: Metric::L2,
            clusters: 100,
            spread: 0.12,
            seed: 0xA004,
        },
        DatasetSpec {
            name: "GIST",
            dim: 960,
            n_vectors: n(1_000_000),
            n_queries: q(1_000),
            metric: Metric::L2,
            clusters: 80,
            spread: 0.15,
            seed: 0xA005,
        },
        DatasetSpec {
            name: "DEEPImage",
            dim: 96,
            n_vectors: n(10_000_000),
            n_queries: q(10_000),
            metric: Metric::Cosine,
            clusters: 150,
            spread: 0.10,
            seed: 0xA006,
        },
        DatasetSpec {
            name: "InternalA",
            dim: 512,
            n_vectors: n(150_000),
            n_queries: q(1_000),
            metric: Metric::Cosine,
            clusters: 40,
            spread: 0.13,
            seed: 0xA007,
        },
    ]
}

/// The InternalA stand-in at a chosen scale (Figures 8–10 use it).
pub fn internal_a(scale: f64) -> DatasetSpec {
    table2_specs(scale).into_iter().last().expect("seven specs")
}

/// Samples a standard normal via Box–Muller (keeps the dependency set
/// to plain `rand`).
pub fn gaussian(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Generates the dataset for a spec: a Gaussian mixture with
/// `spec.clusters` components; queries are drawn from the same mixture
/// (so query difficulty matches the base distribution, like the real
/// benchmarks' held-out queries). Cosine-metric datasets are
/// L2-normalized, mirroring embedding-model output.
pub fn generate(spec: &DatasetSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let dim = spec.dim;
    // Mixture centers spread over the unit cube.
    let mut centers = vec![0f32; spec.clusters * dim];
    for c in centers.iter_mut() {
        *c = rng.gen_range(-1.0..1.0);
    }
    let draw = |rng: &mut StdRng, out: &mut Vec<f32>| {
        let c = rng.gen_range(0..spec.clusters);
        let base = &centers[c * dim..(c + 1) * dim];
        let start = out.len();
        for &b in base {
            out.push(b + spec.spread * gaussian(rng));
        }
        if spec.metric == Metric::Cosine {
            normalize(&mut out[start..start + dim]);
        }
    };
    let mut vectors = Vec::with_capacity(spec.n_vectors * dim);
    for _ in 0..spec.n_vectors {
        draw(&mut rng, &mut vectors);
    }
    let mut queries = Vec::with_capacity(spec.n_queries * dim);
    for _ in 0..spec.n_queries {
        draw(&mut rng, &mut queries);
    }
    Dataset {
        spec: spec.clone(),
        vectors,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronn_linalg::norm;

    #[test]
    fn table2_mirrors_paper_shapes() {
        let specs = table2_specs(1.0);
        assert_eq!(specs.len(), 7);
        let by_name = |n: &str| specs.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("MNIST").dim, 784);
        assert_eq!(by_name("MNIST").n_vectors, 60_000);
        assert_eq!(by_name("SIFT").dim, 128);
        assert_eq!(by_name("SIFT").n_vectors, 1_000_000);
        assert_eq!(by_name("GIST").dim, 960);
        assert_eq!(by_name("GIST").n_queries, 1_000);
        assert_eq!(by_name("DEEPImage").n_vectors, 10_000_000);
        assert_eq!(by_name("NYTimes").metric, Metric::Cosine);
        assert_eq!(by_name("InternalA").dim, 512);
        assert_eq!(by_name("InternalA").n_vectors, 150_000);
    }

    #[test]
    fn scaling_shrinks_rows_not_dims() {
        let full = table2_specs(1.0);
        let small = table2_specs(0.01);
        for (f, s) in full.iter().zip(&small) {
            assert_eq!(f.dim, s.dim);
            assert_eq!(f.metric, s.metric);
            assert!(s.n_vectors <= f.n_vectors);
            assert!(s.n_vectors >= 1000, "floor applies");
        }
    }

    #[test]
    fn generation_is_deterministic_and_shaped() {
        let spec = DatasetSpec {
            name: "test",
            dim: 24,
            n_vectors: 500,
            n_queries: 20,
            metric: Metric::L2,
            clusters: 5,
            spread: 0.1,
            seed: 42,
        };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.vectors, b.vectors);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.vectors.len(), 500 * 24);
        assert_eq!(a.queries.len(), 20 * 24);
        assert_eq!(a.vector(3).len(), 24);
    }

    #[test]
    fn cosine_datasets_are_normalized() {
        let spec = DatasetSpec {
            name: "test",
            dim: 32,
            n_vectors: 100,
            n_queries: 10,
            metric: Metric::Cosine,
            clusters: 4,
            spread: 0.1,
            seed: 7,
        };
        let d = generate(&spec);
        for i in 0..100 {
            let n = norm(d.vector(i));
            assert!((n - 1.0).abs() < 1e-4, "row {i}: |v| = {n}");
        }
    }

    #[test]
    fn mixture_is_clusterable() {
        // Points from the same component are closer to each other than
        // to other components on average — the property IVF exploits.
        let spec = DatasetSpec {
            name: "test",
            dim: 16,
            n_vectors: 400,
            n_queries: 1,
            metric: Metric::L2,
            clusters: 4,
            spread: 0.05,
            seed: 9,
        };
        let d = generate(&spec);
        // Nearest neighbour of each point should be much closer than a
        // random pair.
        let mut nn_sum = 0.0f64;
        let mut rand_sum = 0.0f64;
        for i in 0..50 {
            let q = d.vector(i);
            let mut best = f32::INFINITY;
            for j in 0..d.len() {
                if j == i {
                    continue;
                }
                best = best.min(micronn_linalg::l2_sq(q, d.vector(j)));
            }
            nn_sum += best as f64;
            rand_sum += micronn_linalg::l2_sq(q, d.vector((i * 37 + 101) % d.len())) as f64;
        }
        assert!(nn_sum * 4.0 < rand_sum, "nn {nn_sum} vs random {rand_sum}");
    }

    #[test]
    fn gaussian_moments_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let (mut sum, mut sq) = (0f64, 0f64);
        for _ in 0..n {
            let g = gaussian(&mut rng) as f64;
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
