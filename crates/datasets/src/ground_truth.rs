//! Exact ground truth and recall computation.
//!
//! Every recall number in the paper is "the percentage of vectors in
//! the approximate top-K present in the exact top-K vectors" (§3.3).
//! Ground truth is computed by parallel brute force over the base
//! vectors.

use micronn_linalg::{distances_one_to_many, merge_all, Metric, TopK};

use crate::synthetic::Dataset;

/// Exact top-`k` ids for one query over a flat row-major matrix.
pub fn exact_topk(metric: Metric, query: &[f32], data: &[f32], dim: usize, k: usize) -> Vec<i64> {
    let mut top = TopK::new(k);
    let mut dists = Vec::with_capacity(data.len() / dim.max(1));
    distances_one_to_many(metric, query, data, dim, &mut dists);
    for (i, &d) in dists.iter().enumerate() {
        top.push(i as u64, d);
    }
    top.into_sorted().into_iter().map(|n| n.id as i64).collect()
}

/// Exact top-`k` ids for every dataset query, brute-forced in parallel
/// across `workers` threads (each worker owns a strip of the base
/// matrix; per-query strips merge through the heap machinery).
pub fn ground_truth(dataset: &Dataset, k: usize, workers: usize) -> Vec<Vec<i64>> {
    let dim = dataset.spec.dim;
    let n = dataset.len();
    let nq = dataset.spec.n_queries;
    let metric = dataset.spec.metric;
    let workers = workers.max(1).min(nq.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut out: Vec<Vec<i64>> = vec![Vec::new(); nq];
    let results: Vec<(usize, Vec<i64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let qi = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if qi >= nq {
                            return local;
                        }
                        let q = dataset.query(qi);
                        // Strip the scan into chunks to bound the
                        // distance buffer.
                        let mut top = TopK::new(k);
                        let chunk = 8192;
                        let mut dists = Vec::with_capacity(chunk);
                        let mut start = 0usize;
                        while start < n {
                            let end = (start + chunk).min(n);
                            dists.clear();
                            distances_one_to_many(
                                metric,
                                q,
                                &dataset.vectors[start * dim..end * dim],
                                dim,
                                &mut dists,
                            );
                            for (j, &d) in dists.iter().enumerate() {
                                top.push((start + j) as u64, d);
                            }
                            start = end;
                        }
                        local.push((
                            qi,
                            merge_all(vec![top], k)
                                .into_iter()
                                .map(|nb| nb.id as i64)
                                .collect(),
                        ));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("ground-truth worker panicked"))
            .collect()
    });
    for (qi, ids) in results {
        out[qi] = ids;
    }
    out
}

/// `recall@k`: fraction of the exact top-k found in the approximate
/// result.
pub fn recall(approx: &[i64], exact: &[i64]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let truth: std::collections::HashSet<i64> = exact.iter().copied().collect();
    approx.iter().filter(|id| truth.contains(id)).count() as f64 / exact.len() as f64
}

/// Mean recall over aligned query results.
pub fn mean_recall(approx: &[Vec<i64>], exact: &[Vec<i64>]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    approx
        .iter()
        .zip(exact)
        .map(|(a, e)| recall(a, e))
        .sum::<f64>()
        / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, DatasetSpec};

    fn tiny() -> Dataset {
        generate(&DatasetSpec {
            name: "tiny",
            dim: 8,
            n_vectors: 300,
            n_queries: 12,
            metric: Metric::L2,
            clusters: 3,
            spread: 0.1,
            seed: 5,
        })
    }

    #[test]
    fn parallel_ground_truth_matches_single_query_scan() {
        let d = tiny();
        let gt = ground_truth(&d, 10, 4);
        assert_eq!(gt.len(), 12);
        for (qi, ids) in gt.iter().enumerate() {
            let direct = exact_topk(Metric::L2, d.query(qi), &d.vectors, 8, 10);
            assert_eq!(ids, &direct, "query {qi}");
            assert_eq!(ids.len(), 10);
        }
    }

    #[test]
    fn recall_math() {
        assert_eq!(recall(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(recall(&[1, 9, 8], &[1, 2, 3]), 1.0 / 3.0);
        assert_eq!(recall(&[], &[1, 2]), 0.0);
        assert_eq!(recall(&[1], &[]), 1.0);
        let m = mean_recall(&[vec![1, 2], vec![5, 6]], &[vec![1, 2], vec![7, 8]]);
        assert!((m - 0.5).abs() < 1e-12);
    }

    #[test]
    fn self_query_is_own_nearest() {
        let d = tiny();
        // Use base vectors as queries: each must rank itself first.
        for i in [0, 17, 250] {
            let ids = exact_topk(Metric::L2, d.vector(i), &d.vectors, 8, 3);
            assert_eq!(ids[0], i as i64);
        }
    }
}
