//! Property-based tests for the numerics kernels: agreement with naive
//! reference implementations, metric axioms, and heap/sort equivalence.

use proptest::prelude::*;

use micronn_linalg::{
    batch_distances, cosine_distance, dot, kernels, l2_sq, merge_all, norm, normalize,
    scalar_kernels, set_block_code, sq4_block_bytes, sq4_train, Metric, Sq4Scorer, Sq8Params,
    Sq8Scorer, TopK, SQ4_BLOCK, SQ4_LEVELS,
};

fn vec_strategy(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, dim..=dim)
}

/// Slices `rows` rows of width `dim` out of an over-provisioned flat
/// buffer — lets a plain `dim` strategy drive odd/awkward dims that
/// stress the kernels' tail loops.
fn take_rows(data: &[f32], dim: usize, rows: usize) -> &[f32] {
    &data[..dim * rows]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn kernels_agree_with_naive(
        a in vec_strategy(67),
        b in vec_strategy(67),
    ) {
        let naive_dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let naive_l2: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        // Accumulation order differs: allow relative tolerance.
        let tol = 1e-3 * (1.0 + naive_l2.abs().max(naive_dot.abs()));
        prop_assert!((dot(&a, &b) - naive_dot).abs() <= tol);
        prop_assert!((l2_sq(&a, &b) - naive_l2).abs() <= tol);
    }

    #[test]
    fn metric_axioms(a in vec_strategy(32), b in vec_strategy(32)) {
        // Symmetry and identity (within float tolerance).
        for m in [Metric::L2, Metric::Cosine] {
            let ab = m.distance(&a, &b);
            let ba = m.distance(&b, &a);
            prop_assert!((ab - ba).abs() <= 1e-3 * (1.0 + ab.abs()));
        }
        prop_assert!(l2_sq(&a, &a) == 0.0);
        prop_assert!(cosine_distance(&a, &a).abs() < 1e-4);
        // L2 is non-negative; cosine is in [0, 2] (+ epsilon).
        prop_assert!(l2_sq(&a, &b) >= 0.0);
        let c = cosine_distance(&a, &b);
        prop_assert!((-1e-4..=2.0001).contains(&c), "cosine {c}");
    }

    #[test]
    fn normalization_is_idempotent_and_unit(mut a in vec_strategy(24)) {
        normalize(&mut a);
        let n1 = norm(&a);
        prop_assert!(n1 == 0.0 || (n1 - 1.0).abs() < 1e-4);
        let before = a.clone();
        normalize(&mut a);
        for (x, y) in a.iter().zip(&before) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn batch_distances_match_pairwise(
        queries in proptest::collection::vec(vec_strategy(16), 1..5),
        rows in proptest::collection::vec(vec_strategy(16), 1..9),
    ) {
        let qf: Vec<f32> = queries.iter().flatten().copied().collect();
        let rf: Vec<f32> = rows.iter().flatten().copied().collect();
        for metric in [Metric::L2, Metric::Cosine, Metric::Dot] {
            let mut out = vec![0.0; queries.len() * rows.len()];
            batch_distances(metric, &qf, queries.len(), &rf, rows.len(), 16, &mut out);
            for (qi, q) in queries.iter().enumerate() {
                for (rj, r) in rows.iter().enumerate() {
                    let want = metric.distance(q, r);
                    let got = out[qi * rows.len() + rj];
                    let tol = 2e-2 * (1.0 + want.abs());
                    prop_assert!(
                        (got - want).abs() <= tol,
                        "{metric} ({qi},{rj}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn topk_equals_full_sort(
        items in proptest::collection::vec((0u64..10_000, -1e6f32..1e6), 0..300),
        k in 1usize..50,
    ) {
        let mut t = TopK::new(k);
        for &(id, d) in &items {
            t.push(id, d);
        }
        let got: Vec<(u64, f32)> = t.into_sorted().iter().map(|n| (n.id, n.distance)).collect();
        let mut want: Vec<(u64, f32)> = items.clone();
        // Dedup ids? TopK keeps duplicates as separate candidates, as
        // does the reference.
        want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        want.truncate(k);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sq8_round_trip_error_bounded_per_dimension(
        rows in proptest::collection::vec(vec_strategy(19), 1..40),
    ) {
        let dim = 19;
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        let params = Sq8Params::train(&flat, dim);
        for row in &rows {
            let mut codes = Vec::new();
            params.encode_into(row, &mut codes);
            prop_assert_eq!(codes.len(), dim);
            let mut back = Vec::new();
            params.decode_into(&codes, &mut back);
            for d in 0..dim {
                // In-range values reconstruct within half a
                // quantization step (plus float slack proportional to
                // the range magnitude).
                let bound = params.max_abs_error(d) + 1e-4 * (1.0 + row[d].abs());
                prop_assert!(
                    (row[d] - back[d]).abs() <= bound,
                    "d={} err={} bound={}",
                    d,
                    (row[d] - back[d]).abs(),
                    bound
                );
            }
        }
    }

    #[test]
    fn sq8_scorer_matches_decoded_distance(
        rows in proptest::collection::vec(vec_strategy(23), 1..24),
        q in vec_strategy(23),
    ) {
        let dim = 23;
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        let params = Sq8Params::train(&flat, dim);
        for metric in [Metric::L2, Metric::Cosine, Metric::Dot] {
            let scorer = Sq8Scorer::new(metric, &q, &params);
            for row in &rows {
                let mut codes = Vec::new();
                params.encode_into(row, &mut codes);
                let mut dec = Vec::new();
                params.decode_into(&codes, &mut dec);
                let want = metric.distance(&q, &dec);
                let got = scorer.score(&codes);
                let tol = 5e-3 * (1.0 + want.abs());
                prop_assert!((got - want).abs() <= tol, "{} {} vs {}", metric, got, want);
            }
        }
    }

    #[test]
    fn dispatched_f32_kernels_bit_identical_to_scalar(
        dim in 1usize..131,
        data in vec_strategy(131 * 2),
    ) {
        // The f32 SIMD backends promise *bit* equality with the scalar
        // reference (same lane structure, no FMA contraction), not
        // mere closeness — final query results must not depend on the
        // dispatcher's pick.
        let (a, b) = take_rows(&data, dim, 2).split_at(dim);
        let k = kernels();
        let s = scalar_kernels();
        prop_assert_eq!((k.dot)(a, b).to_bits(), (s.dot)(a, b).to_bits(), "dot dim {}", dim);
        prop_assert_eq!((k.l2_sq)(a, b).to_bits(), (s.l2_sq)(a, b).to_bits(), "l2 dim {}", dim);
    }

    #[test]
    fn sq8_scorer_bit_identical_across_backends(
        dim in 1usize..101,
        data in vec_strategy(101 * 9),
        q_seed in 0u8..255,
    ) {
        let (qrow, rows) = take_rows(&data, dim, 9).split_at(dim);
        let q: Vec<f32> = qrow.iter().map(|x| x + q_seed as f32 / 64.0).collect();
        let params = Sq8Params::train(rows, dim);
        let mut block = Vec::new();
        for row in rows.chunks_exact(dim) {
            params.encode_into(row, &mut block);
        }
        for metric in [Metric::L2, Metric::Cosine, Metric::Dot] {
            let fast = Sq8Scorer::new(metric, &q, &params);
            let slow = Sq8Scorer::with_kernels(metric, &q, &params, scalar_kernels());
            let mut a = Vec::new();
            let mut b = Vec::new();
            fast.score_chunk(&block, &mut a);
            slow.score_chunk(&block, &mut b);
            prop_assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} dim {} row {}", metric, dim, i);
            }
        }
    }

    #[test]
    fn sq4_scores_bit_identical_across_backends_and_within_bound(
        dim in 1usize..81,
        data in vec_strategy(81 * (SQ4_BLOCK + 1)),
    ) {
        let (qrow, rows) = take_rows(&data, dim, SQ4_BLOCK + 1).split_at(dim);
        let params = sq4_train(rows, dim);
        let enc = params.encoder(SQ4_LEVELS);
        let mut packed = vec![0u8; sq4_block_bytes(dim)];
        let mut code_rows: Vec<Vec<u8>> = Vec::new();
        for (slot, row) in rows.chunks_exact(dim).enumerate() {
            let mut codes = Vec::new();
            enc.encode_row(row, &mut codes);
            for (d, &c) in codes.iter().enumerate() {
                set_block_code(&mut packed, d, slot, c);
            }
            code_rows.push(codes);
        }
        for metric in [Metric::L2, Metric::Cosine, Metric::Dot] {
            let fast = Sq4Scorer::new(metric, qrow, &params);
            let slow = Sq4Scorer::with_kernels(metric, qrow, &params, scalar_kernels());
            let mut a = [0.0f32; SQ4_BLOCK];
            let mut b = [0.0f32; SQ4_BLOCK];
            fast.score_block(&packed, &mut a);
            slow.score_block(&packed, &mut b);
            for j in 0..SQ4_BLOCK {
                // Integer-exact LUT sums: the SQ4 path is bit-identical
                // across backends by construction, not within-ULP.
                prop_assert_eq!(a[j].to_bits(), b[j].to_bits(), "{} dim {} row {}", metric, dim, j);
            }
            // And the L2/Dot scores respect the documented LUT
            // quantization bound against the unquantized reference.
            if matches!(metric, Metric::L2 | Metric::Dot) {
                let (err, _) = fast.lut_error_bound();
                for (j, codes) in code_rows.iter().enumerate() {
                    let want = fast.reference_score(&params, qrow, codes);
                    prop_assert!(
                        (a[j] - want).abs() <= err + 1e-3 * (1.0 + want.abs()),
                        "{} dim {} row {}: {} vs {} (bound {})",
                        metric, dim, j, a[j], want, err
                    );
                }
            }
        }
    }

    #[test]
    fn merge_all_tie_heavy_is_shard_invariant(
        ids in proptest::collection::vec(0u64..50, 1..400),
        shards_a in 1usize..7,
        shards_b in 1usize..7,
        k in 1usize..20,
    ) {
        // Heavily tied input: distances drawn from three levels and
        // ids from a tiny range, so almost every comparison ties on
        // distance and falls through to the id tie-break. The merged
        // top-k (a multiset under the total order) must not depend on
        // how the items were sharded across worker heaps.
        let items: Vec<(u64, f32)> = ids.iter().map(|&id| (id, (id % 3) as f32)).collect();
        let run = |nsh: usize| {
            let mut parts: Vec<TopK> = (0..nsh).map(|_| TopK::new(k)).collect();
            for (i, &(id, d)) in items.iter().enumerate() {
                parts[i % nsh].push(id, d);
            }
            merge_all(parts, k)
        };
        let a = run(shards_a);
        prop_assert_eq!(&a, &run(shards_b));
        prop_assert_eq!(&a, &run(1));
        // And it really is the k smallest of the full multiset.
        let mut want: Vec<micronn_linalg::Neighbor> = items
            .iter()
            .map(|&(id, distance)| micronn_linalg::Neighbor { id, distance })
            .collect();
        want.sort_unstable();
        want.truncate(k);
        prop_assert_eq!(a, want);
    }

    #[test]
    fn sharded_heaps_equal_single_heap(
        items in proptest::collection::vec((0u64..10_000, -1e6f32..1e6), 0..300),
        shards in 1usize..6,
        k in 1usize..30,
    ) {
        let mut single = TopK::new(k);
        for &(id, d) in &items {
            single.push(id, d);
        }
        let mut parts: Vec<TopK> = (0..shards).map(|_| TopK::new(k)).collect();
        for (i, &(id, d)) in items.iter().enumerate() {
            parts[i % shards].push(id, d);
        }
        prop_assert_eq!(merge_all(parts, k), single.into_sorted());
    }
}
