//! SQ4 fastscan: 4-bit codes in register-interleaved blocks, scored
//! through quantized lookup tables.
//!
//! Where SQ8 stores one u8 per dimension and scores rows with
//! asymmetric f32×u8 kernels, SQ4 halves the payload again (one nibble
//! per dimension, 8× smaller than f32) and replaces float arithmetic
//! with the PQ-fastscan technique: because a dimension only has 16
//! possible codes, the per-dimension contribution of *any* metric is a
//! 16-entry table computed once per (query, partition) — scanning a
//! row is table lookups and additions. Packing 32 rows into one
//! register-interleaved block lets a single `_mm256_shuffle_epi8` /
//! `vqtbl1q_u8` resolve the lookup for all 32 rows of a dimension at
//! once (see [`crate::simd`]).
//!
//! # Block layout
//!
//! A block holds [`SQ4_BLOCK`] = 32 rows as `16·dim` bytes: for each
//! dimension `d`, bytes `d·16 .. d·16+16` hold the 32 codes of that
//! dimension — byte `j` carries row `j`'s code in its low nibble and
//! row `j+16`'s code in its high nibble. That is exactly the operand
//! shape the in-register shuffle wants, so scans run on stored bytes
//! with no transpose.
//!
//! # Quantized LUTs and exactness
//!
//! f32 table entries would force float accumulation and re-introduce
//! backend-dependent rounding. Instead each plane of tables is
//! quantized to u8 against a per-plane affine `(bias, delta)`:
//! `entry ≈ bias_d + delta·q` with one shared `delta` chosen so that
//! every possible row sum fits in a u16 (`delta ≥ ΣrangeΔ/(65535 −
//! dim)`) and no single entry exceeds 255 (`delta ≥ maxΔ/255`). The
//! kernel then sums u8 lookups into u16 — *integer-exact on every
//! backend* — and the final score is the shared scalar float
//! expression `bias + delta·sum`, so SIMD and scalar dispatch are
//! bit-identical by construction. The price is a bounded LUT
//! quantization error of at most `delta·dim/2` per plane
//! ([`Sq4Scorer::lut_error_bound`]), absorbed by the exact f32 re-rank
//! like the 4-bit quantization error itself.

use crate::distance::Metric;
use crate::simd::{self, Kernels};
use crate::sq8::Sq8Params;

/// Quantization levels per dimension (nibble codes `0..=15`).
pub const SQ4_LEVELS: u32 = 15;

/// Rows per packed block.
pub const SQ4_BLOCK: usize = 32;

/// Packed payload size of one block: 16 bytes per dimension.
pub fn sq4_block_bytes(dim: usize) -> usize {
    dim * 16
}

/// Trains per-dimension affine ranges for 4-bit codes. SQ4 reuses
/// [`Sq8Params`] as its range representation (same catalog blob
/// format); only the level count differs.
pub fn sq4_train(data: &[f32], dim: usize) -> Sq8Params {
    Sq8Params::train_with_levels(data, dim, SQ4_LEVELS)
}

/// Writes `code` (`0..=15`) for row `slot` (`0..32`), dimension `d`,
/// into a packed block buffer.
#[inline]
pub fn set_block_code(packed: &mut [u8], d: usize, slot: usize, code: u8) {
    debug_assert!(slot < SQ4_BLOCK);
    debug_assert!(code <= 15);
    let byte = &mut packed[d * 16 + (slot & 15)];
    if slot < 16 {
        *byte = (*byte & 0xF0) | (code & 0x0F);
    } else {
        *byte = (*byte & 0x0F) | (code << 4);
    }
}

/// Reads the code of row `slot`, dimension `d`, from a packed block.
#[inline]
pub fn get_block_code(packed: &[u8], d: usize, slot: usize) -> u8 {
    debug_assert!(slot < SQ4_BLOCK);
    let b = packed[d * 16 + (slot & 15)];
    if slot < 16 {
        b & 0x0F
    } else {
        b >> 4
    }
}

/// One quantized lookup-table plane: u8 entries plus the affine
/// `(bias, delta)` that maps integer row sums back to floats.
struct Plane {
    /// 16 u8 entries per dimension (`16·dim` bytes).
    lut: Vec<u8>,
    /// `Σ_d min_c entry[d][c]` — the constant part of every row sum.
    bias: f32,
    /// LUT quantization step; `0` for degenerate planes (every entry
    /// decodes to its per-dimension minimum).
    delta: f32,
}

fn quantize_plane(entries: &[f32], dim: usize) -> Plane {
    // u16 accumulation headroom assumes `dim` is far below the sum
    // budget; real vector dims are.
    debug_assert!(dim < 32_768);
    let mut mins = vec![0.0f32; dim];
    let mut bias = 0.0f32;
    let mut max_range = 0.0f32;
    let mut total_range = 0.0f32;
    let mut finite = true;
    for d in 0..dim {
        let row = &entries[d * 16..d * 16 + 16];
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in row {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        finite &= lo.is_finite() && hi.is_finite();
        mins[d] = lo;
        bias += lo;
        let r = hi - lo;
        max_range = max_range.max(r);
        total_range += r;
    }
    if dim == 0 {
        return Plane {
            lut: Vec::new(),
            bias: 0.0,
            delta: 0.0,
        };
    }
    // `delta ≥ max_range/255` keeps every entry in u8;
    // `delta ≥ total_range/(65535 − dim)` keeps every possible row sum
    // (≤ Σ_d round(range_d/delta) ≤ total/delta + dim/2) in u16 — so
    // the integer kernel can never overflow, even on corrupt codes.
    let delta = (max_range / 255.0).max(total_range / (65_535 - dim) as f32);
    if !finite || !delta.is_finite() || delta <= 0.0 {
        // Degenerate plane (constant entries, or non-finite query /
        // range products): all lookups decode to the per-dimension
        // minimum. Scores collapse to `bias`; re-rank still fixes the
        // final answer.
        return Plane {
            lut: vec![0u8; dim * 16],
            bias,
            delta: 0.0,
        };
    }
    let inv = 1.0 / delta;
    let mut lut = vec![0u8; dim * 16];
    for d in 0..dim {
        for c in 0..16 {
            let q = ((entries[d * 16 + c] - mins[d]) * inv).round();
            lut[d * 16 + c] = q.clamp(0.0, 255.0) as u8;
        }
    }
    Plane { lut, bias, delta }
}

/// A query prepared against one partition's 4-bit ranges: scores
/// packed 32-row blocks without decoding them.
#[derive(Debug)]
pub struct Sq4Scorer {
    metric: Metric,
    dim: usize,
    kernels: &'static Kernels,
    /// L2: per-dim squared residual tables. Dot/Cosine: per-dim
    /// `q_d·decode(c)` tables.
    main: Plane,
    /// Cosine only: per-dim `decode(c)²` tables (decoded squared
    /// norm).
    norm2: Option<Plane>,
    /// Cosine: `‖q‖`.
    qnorm: f32,
}

impl std::fmt::Debug for Plane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plane")
            .field("bias", &self.bias)
            .field("delta", &self.delta)
            .finish()
    }
}

impl Sq4Scorer {
    /// Prepares `query` against `params` with the runtime-dispatched
    /// kernel backend.
    pub fn new(metric: Metric, query: &[f32], params: &Sq8Params) -> Sq4Scorer {
        Sq4Scorer::with_kernels(metric, query, params, simd::kernels())
    }

    /// [`Sq4Scorer::new`] pinned to an explicit backend (bench /
    /// cross-backend test hook). All backends produce bit-identical
    /// scores regardless — the kernel is integer-exact.
    pub fn with_kernels(
        metric: Metric,
        query: &[f32],
        params: &Sq8Params,
        kernels: &'static Kernels,
    ) -> Sq4Scorer {
        let dim = params.dim();
        debug_assert_eq!(query.len(), dim);
        let decode = |d: usize, c: usize| params.min[d] + params.scale[d] * c as f32;
        let mut main = vec![0.0f32; dim * 16];
        match metric {
            Metric::L2 => {
                for d in 0..dim {
                    for c in 0..16 {
                        let r = query[d] - decode(d, c);
                        main[d * 16 + c] = r * r;
                    }
                }
            }
            Metric::Dot | Metric::Cosine => {
                for d in 0..dim {
                    for c in 0..16 {
                        main[d * 16 + c] = query[d] * decode(d, c);
                    }
                }
            }
        }
        let norm2 = match metric {
            Metric::Cosine => {
                let mut e = vec![0.0f32; dim * 16];
                for d in 0..dim {
                    for c in 0..16 {
                        let x = decode(d, c);
                        e[d * 16 + c] = x * x;
                    }
                }
                Some(quantize_plane(&e, dim))
            }
            _ => None,
        };
        Sq4Scorer {
            metric,
            dim,
            kernels,
            main: quantize_plane(&main, dim),
            norm2,
            qnorm: (kernels.dot)(query, query).sqrt(),
        }
    }

    /// Scores one packed 32-row block, writing a score per slot
    /// (lower = more similar, matching [`Metric::distance`]'s
    /// orientation). Dead slots get whatever their stale nibbles sum
    /// to; callers mask them by liveness.
    pub fn score_block(&self, packed: &[u8], out: &mut [f32; SQ4_BLOCK]) {
        debug_assert_eq!(packed.len(), sq4_block_bytes(self.dim));
        let mut sums = [0u16; SQ4_BLOCK];
        (self.kernels.sq4_accumulate)(&self.main.lut, packed, self.dim, &mut sums);
        match self.metric {
            Metric::L2 => {
                for j in 0..SQ4_BLOCK {
                    out[j] = self.main.bias + self.main.delta * sums[j] as f32;
                }
            }
            Metric::Dot => {
                for j in 0..SQ4_BLOCK {
                    out[j] = -(self.main.bias + self.main.delta * sums[j] as f32);
                }
            }
            Metric::Cosine => {
                let plane2 = self.norm2.as_ref().expect("cosine scorer has norm plane");
                let mut sums2 = [0u16; SQ4_BLOCK];
                (self.kernels.sq4_accumulate)(&plane2.lut, packed, self.dim, &mut sums2);
                for j in 0..SQ4_BLOCK {
                    let dotv = self.main.bias + self.main.delta * sums[j] as f32;
                    // Entries of the norm plane are squares, so bias
                    // and delta are non-negative: no sqrt of a
                    // negative here.
                    let n2 = plane2.bias + plane2.delta * sums2[j] as f32;
                    let denom = self.qnorm * n2.sqrt();
                    out[j] = if denom <= f32::EPSILON {
                        1.0
                    } else {
                        1.0 - dotv / denom
                    };
                }
            }
        }
    }

    /// The exact (unquantized-LUT) score for one row of nibble codes —
    /// what [`Sq4Scorer::score_block`] approximates. Equals the metric
    /// distance between the query and the decoded row (up to the usual
    /// f32 evaluation-order differences). Test/verification hook, not
    /// a scan path.
    pub fn reference_score(&self, params: &Sq8Params, query: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(codes.len(), self.dim);
        let mut dec = Vec::with_capacity(self.dim);
        params.decode_into(codes, &mut dec);
        match self.metric {
            Metric::L2 => crate::distance::l2_sq(query, &dec),
            Metric::Dot => -crate::distance::dot(query, &dec),
            Metric::Cosine => {
                let n2 = crate::distance::dot(&dec, &dec);
                let denom = self.qnorm * n2.sqrt();
                if denom <= f32::EPSILON {
                    1.0
                } else {
                    1.0 - crate::distance::dot(query, &dec) / denom
                }
            }
        }
    }

    /// Worst-case LUT quantization error of the two accumulated
    /// planes, `(main, norm²)`: each plane's row sum is within
    /// `delta·dim/2` of its exact value (half a LUT step per
    /// dimension). The second entry is 0 for non-cosine metrics.
    pub fn lut_error_bound(&self) -> (f32, f32) {
        let half = self.dim as f32 * 0.5;
        (
            self.main.delta * half,
            self.norm2.as_ref().map_or(0.0, |p| p.delta * half),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::scalar_kernels;

    fn pseudo_vec(seed: u64, dim: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..dim)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn matrix(seed: u64, n: usize, dim: usize) -> Vec<f32> {
        (0..n)
            .flat_map(|i| pseudo_vec(seed + i as u64, dim))
            .collect()
    }

    fn pack_rows(rows: &[Vec<u8>], dim: usize) -> Vec<u8> {
        assert!(rows.len() <= SQ4_BLOCK);
        let mut packed = vec![0u8; sq4_block_bytes(dim)];
        for (slot, codes) in rows.iter().enumerate() {
            for (d, &c) in codes.iter().enumerate() {
                set_block_code(&mut packed, d, slot, c);
            }
        }
        packed
    }

    #[test]
    fn block_codes_round_trip() {
        let dim = 7;
        let mut packed = vec![0u8; sq4_block_bytes(dim)];
        for slot in 0..SQ4_BLOCK {
            for d in 0..dim {
                set_block_code(&mut packed, d, slot, ((slot * 5 + d * 3) % 16) as u8);
            }
        }
        for slot in 0..SQ4_BLOCK {
            for d in 0..dim {
                assert_eq!(
                    get_block_code(&packed, d, slot),
                    ((slot * 5 + d * 3) % 16) as u8,
                    "slot {slot} d {d}"
                );
            }
        }
        // Overwriting a slot must not disturb its nibble neighbor.
        set_block_code(&mut packed, 0, 3, 9);
        set_block_code(&mut packed, 0, 19, 4);
        assert_eq!(get_block_code(&packed, 0, 3), 9);
        assert_eq!(get_block_code(&packed, 0, 19), 4);
    }

    #[test]
    fn scores_match_reference_within_documented_bound() {
        for metric in [Metric::L2, Metric::Cosine, Metric::Dot] {
            for dim in [1usize, 5, 24, 96] {
                let data = matrix(7, SQ4_BLOCK, dim);
                let p = sq4_train(&data, dim);
                let enc = p.encoder(SQ4_LEVELS);
                let rows: Vec<Vec<u8>> = data
                    .chunks_exact(dim)
                    .map(|row| {
                        let mut c = Vec::new();
                        enc.encode_row(row, &mut c);
                        c
                    })
                    .collect();
                let packed = pack_rows(&rows, dim);
                let q = pseudo_vec(4242, dim);
                let scorer = Sq4Scorer::new(metric, &q, &p);
                let (err_main, err_norm) = scorer.lut_error_bound();
                let mut out = [0.0f32; SQ4_BLOCK];
                scorer.score_block(&packed, &mut out);
                for (j, codes) in rows.iter().enumerate() {
                    let want = scorer.reference_score(&p, &q, codes);
                    let got = out[j];
                    // Propagate the per-plane sum error through the
                    // final score expression (exact for L2/Dot; for
                    // cosine bound the dot and norm errors separately
                    // against the decoded quantities).
                    let tol = match metric {
                        Metric::L2 | Metric::Dot => err_main + 1e-4 * (1.0 + want.abs()),
                        Metric::Cosine => {
                            let mut dec = Vec::new();
                            p.decode_into(codes, &mut dec);
                            let n2 = crate::distance::dot(&dec, &dec);
                            let qn = crate::distance::norm(&q);
                            let denom = (qn * n2.sqrt()).max(f32::EPSILON);
                            let dotv = crate::distance::dot(&q, &dec).abs();
                            // |Δ(dot/denom)| ≤ err_dot/denom +
                            // |dot|·|Δdenom|/denom² with |Δ√n2| ≤
                            // err_norm/√n2 (for n2 not near zero).
                            let ddenom = qn * (err_norm / n2.sqrt().max(f32::EPSILON));
                            err_main / denom
                                + dotv * ddenom / (denom * denom)
                                + 1e-3 * (1.0 + want.abs())
                        }
                    };
                    assert!(
                        (got - want).abs() <= tol,
                        "{metric} dim={dim} row {j}: {got} vs {want} (tol {tol})"
                    );
                }
            }
        }
    }

    #[test]
    fn dispatched_and_scalar_scores_are_bit_identical() {
        for metric in [Metric::L2, Metric::Cosine, Metric::Dot] {
            for dim in [3usize, 17, 64] {
                let data = matrix(31, SQ4_BLOCK, dim);
                let p = sq4_train(&data, dim);
                let enc = p.encoder(SQ4_LEVELS);
                let rows: Vec<Vec<u8>> = data
                    .chunks_exact(dim)
                    .map(|row| {
                        let mut c = Vec::new();
                        enc.encode_row(row, &mut c);
                        c
                    })
                    .collect();
                let packed = pack_rows(&rows, dim);
                let q = pseudo_vec(99, dim);
                let fast = Sq4Scorer::new(metric, &q, &p);
                let slow = Sq4Scorer::with_kernels(metric, &q, &p, scalar_kernels());
                let mut a = [0.0f32; SQ4_BLOCK];
                let mut b = [0.0f32; SQ4_BLOCK];
                fast.score_block(&packed, &mut a);
                slow.score_block(&packed, &mut b);
                for j in 0..SQ4_BLOCK {
                    assert_eq!(a[j].to_bits(), b[j].to_bits(), "{metric} dim={dim} row {j}");
                }
            }
        }
    }

    #[test]
    fn degenerate_ranges_produce_finite_scores() {
        // Constant data → zero scale everywhere → degenerate planes.
        let dim = 6;
        let data: Vec<f32> = vec![2.5; dim * 8];
        let p = sq4_train(&data, dim);
        assert!(p.scale.iter().all(|&s| s == 0.0));
        let packed = vec![0u8; sq4_block_bytes(dim)];
        let q = pseudo_vec(5, dim);
        for metric in [Metric::L2, Metric::Cosine, Metric::Dot] {
            let scorer = Sq4Scorer::new(metric, &q, &p);
            let mut out = [0.0f32; SQ4_BLOCK];
            scorer.score_block(&packed, &mut out);
            assert!(out.iter().all(|s| s.is_finite()), "{metric}");
        }
    }

    #[test]
    fn partial_blocks_score_live_slots_correctly() {
        // Only 5 of 32 slots populated; the rest stay zero-nibble.
        let dim = 12;
        let data = matrix(77, 5, dim);
        let p = sq4_train(&data, dim);
        let enc = p.encoder(SQ4_LEVELS);
        let rows: Vec<Vec<u8>> = data
            .chunks_exact(dim)
            .map(|row| {
                let mut c = Vec::new();
                enc.encode_row(row, &mut c);
                c
            })
            .collect();
        let packed = pack_rows(&rows, dim);
        let q = pseudo_vec(13, dim);
        let scorer = Sq4Scorer::new(Metric::L2, &q, &p);
        let (err, _) = scorer.lut_error_bound();
        let mut out = [0.0f32; SQ4_BLOCK];
        scorer.score_block(&packed, &mut out);
        for (j, codes) in rows.iter().enumerate() {
            let want = scorer.reference_score(&p, &q, codes);
            assert!((out[j] - want).abs() <= err + 1e-4 * (1.0 + want.abs()));
        }
    }
}
