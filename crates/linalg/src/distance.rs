//! Distance kernels.
//!
//! The paper leverages "SIMD accelerated floating point operations
//! during query processing" (§1) via a hardware linear-algebra library.
//! The public kernels here dispatch to the runtime-selected backend in
//! [`crate::simd`] — hand-written AVX2/NEON where the CPU supports it,
//! otherwise the scalar reference loops ([`crate::simd::scalar`]) that
//! LLVM autovectorizes at the target baseline. Every backend is
//! bit-identical, so callers never observe which one ran. Batched
//! variants amortize the query vector across a whole partition scan.

/// Distance metric of an index. The paper's datasets use L2 and cosine
/// (Table 2); inner product is included for completeness (MIPS-style
/// recommendation workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// Squared Euclidean distance (monotonic in L2; avoids the sqrt).
    #[default]
    L2,
    /// Cosine distance `1 - cos(a, b)`.
    Cosine,
    /// Negative inner product (smaller = more similar).
    Dot,
}

impl Metric {
    /// Distance between two vectors (lower = more similar for all
    /// metrics).
    #[inline]
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::L2 => l2_sq(a, b),
            Metric::Cosine => cosine_distance(a, b),
            Metric::Dot => -dot(a, b),
        }
    }

    /// Distance using precomputed norms (cosine fast path used by
    /// batched scans; other metrics ignore the norms).
    #[inline]
    pub fn distance_with_norms(&self, a: &[f32], b: &[f32], norm_a: f32, norm_b: f32) -> f32 {
        match self {
            Metric::L2 => l2_sq(a, b),
            Metric::Cosine => {
                let denom = norm_a * norm_b;
                if denom <= f32::EPSILON {
                    1.0
                } else {
                    1.0 - dot(a, b) / denom
                }
            }
            Metric::Dot => -dot(a, b),
        }
    }

    /// Whether batched evaluation needs per-row norms.
    #[inline]
    pub fn needs_norms(&self) -> bool {
        matches!(self, Metric::Cosine)
    }

    /// Parse from the names used in dataset descriptors ("l2",
    /// "cosine", "dot").
    pub fn parse(name: &str) -> Option<Metric> {
        Some(match name.to_ascii_lowercase().as_str() {
            "l2" | "euclidean" => Metric::L2,
            "cosine" | "angular" => Metric::Cosine,
            "dot" | "ip" | "inner" => Metric::Dot,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Metric::L2 => "L2",
            Metric::Cosine => "cosine",
            Metric::Dot => "dot",
        })
    }
}

/// Inner product `⟨a, b⟩` (runtime-dispatched, bit-identical across
/// backends).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    (crate::simd::kernels().dot)(a, b)
}

/// Squared Euclidean distance `‖a − b‖²` (runtime-dispatched,
/// bit-identical across backends).
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    (crate::simd::kernels().l2_sq)(a, b)
}

/// Euclidean norm `‖a‖`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine distance `1 − cos(a, b)`; degenerate (zero) vectors are at
/// distance 1 from everything.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let denom = norm(a) * norm(b);
    if denom <= f32::EPSILON {
        1.0
    } else {
        1.0 - dot(a, b) / denom
    }
}

/// Normalizes `v` to unit length in place (no-op for zero vectors).
pub fn normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > f32::EPSILON {
        let inv = 1.0 / n;
        for x in v {
            *x *= inv;
        }
    }
}

/// Distances from one query to every row of a row-major matrix,
/// appended to `out`. This is the batched kernel of a partition scan:
/// the query stays in registers/L1 across all rows.
pub fn distances_one_to_many(
    metric: Metric,
    query: &[f32],
    rows: &[f32],
    dim: usize,
    out: &mut Vec<f32>,
) {
    debug_assert_eq!(query.len(), dim);
    debug_assert_eq!(rows.len() % dim.max(1), 0);
    // Resolve the dispatch table once for the whole scan instead of
    // per row.
    let k = crate::simd::kernels();
    let qn = if metric.needs_norms() {
        norm(query)
    } else {
        0.0
    };
    for row in rows.chunks_exact(dim) {
        let d = match metric {
            Metric::L2 => (k.l2_sq)(query, row),
            Metric::Dot => -(k.dot)(query, row),
            Metric::Cosine => {
                let rn = (k.dot)(row, row).sqrt();
                let denom = qn * rn;
                if denom <= f32::EPSILON {
                    1.0
                } else {
                    1.0 - (k.dot)(query, row) / denom
                }
            }
        };
        out.push(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_l2(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    fn naive_dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn pseudo_vec(seed: u64, dim: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..dim)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn kernels_match_naive_for_odd_dims() {
        for dim in [1, 3, 7, 8, 9, 15, 16, 17, 96, 127, 128, 200, 784] {
            let a = pseudo_vec(1, dim);
            let b = pseudo_vec(2, dim);
            let tol = 1e-3 * dim as f32;
            assert!(
                (dot(&a, &b) - naive_dot(&a, &b)).abs() < tol,
                "dot dim={dim}"
            );
            assert!(
                (l2_sq(&a, &b) - naive_l2(&a, &b)).abs() < tol,
                "l2 dim={dim}"
            );
        }
    }

    #[test]
    fn metric_properties() {
        let a = pseudo_vec(3, 64);
        let b = pseudo_vec(4, 64);
        // L2: symmetric, zero on identity.
        assert_eq!(Metric::L2.distance(&a, &a), 0.0);
        assert!((Metric::L2.distance(&a, &b) - Metric::L2.distance(&b, &a)).abs() < 1e-5);
        // Cosine of identical vectors ~ 0, opposite ~ 2.
        let neg: Vec<f32> = a.iter().map(|x| -x).collect();
        assert!(Metric::Cosine.distance(&a, &a).abs() < 1e-5);
        assert!((Metric::Cosine.distance(&a, &neg) - 2.0).abs() < 1e-5);
        // Scaling invariance of cosine.
        let scaled: Vec<f32> = a.iter().map(|x| 3.5 * x).collect();
        assert!(Metric::Cosine.distance(&a, &scaled).abs() < 1e-4);
        // Dot: more aligned = smaller.
        assert!(Metric::Dot.distance(&a, &a) < Metric::Dot.distance(&a, &neg));
    }

    #[test]
    fn cosine_handles_zero_vectors() {
        let z = vec![0.0f32; 16];
        let a = pseudo_vec(5, 16);
        assert_eq!(Metric::Cosine.distance(&z, &a), 1.0);
        assert_eq!(Metric::Cosine.distance(&z, &z), 1.0);
    }

    #[test]
    fn normalize_unit_length() {
        let mut a = pseudo_vec(6, 50);
        normalize(&mut a);
        assert!((norm(&a) - 1.0).abs() < 1e-5);
        let mut z = vec![0.0f32; 8];
        normalize(&mut z);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn one_to_many_matches_pairwise() {
        let dim = 48;
        let q = pseudo_vec(7, dim);
        let rows: Vec<f32> = (0..10).flat_map(|i| pseudo_vec(100 + i, dim)).collect();
        for metric in [Metric::L2, Metric::Cosine, Metric::Dot] {
            let mut out = Vec::new();
            distances_one_to_many(metric, &q, &rows, dim, &mut out);
            assert_eq!(out.len(), 10);
            for (i, row) in rows.chunks_exact(dim).enumerate() {
                assert!(
                    (out[i] - metric.distance(&q, row)).abs() < 1e-4,
                    "{metric} row {i}"
                );
            }
        }
    }

    #[test]
    fn metric_parse_and_display() {
        assert_eq!(Metric::parse("L2"), Some(Metric::L2));
        assert_eq!(Metric::parse("cosine"), Some(Metric::Cosine));
        assert_eq!(Metric::parse("angular"), Some(Metric::Cosine));
        assert_eq!(Metric::parse("ip"), Some(Metric::Dot));
        assert_eq!(Metric::parse("hamming"), None);
        assert_eq!(Metric::L2.to_string(), "L2");
    }

    #[test]
    fn distance_with_norms_matches_direct() {
        let a = pseudo_vec(8, 32);
        let b = pseudo_vec(9, 32);
        let d1 = Metric::Cosine.distance(&a, &b);
        let d2 = Metric::Cosine.distance_with_norms(&a, &b, norm(&a), norm(&b));
        assert!((d1 - d2).abs() < 1e-5);
    }
}
