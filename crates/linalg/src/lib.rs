//! `micronn-linalg`: SIMD-friendly numerics for the MicroNN
//! reproduction.
//!
//! The paper offloads distance computation to a hardware-accelerated
//! linear algebra library (its "Numerics Accelerator (SIMD)" box in
//! Figure 1). This crate plays that role portably:
//!
//! * [`distance`] — scalar and one-to-many distance kernels (L2,
//!   cosine, inner product) written as multi-accumulator loops that
//!   LLVM autovectorizes;
//! * [`matrix`] — row-major matrices and the blocked `Q·Rᵀ` kernel
//!   ([`gemm_nt`] / [`batch_distances`]) behind the batch multi-query
//!   optimization of §3.4;
//! * [`topk`] — bounded per-thread top-k heaps and the parallel merge
//!   of Algorithm 2;
//! * [`simd`] — the runtime dispatch layer: hand-written AVX2 (x86_64)
//!   and NEON (aarch64) kernels selected once per process, with the
//!   scalar reference loops as the portable (and bit-identical)
//!   fallback;
//! * [`sq8`] — per-dimension scalar quantization to u8 codes and the
//!   asymmetric f32×u8 kernels behind MicroNN's compressed-domain
//!   partition scans;
//! * [`sq4`] — the 4-bit fastscan codec: register-interleaved 32-row
//!   blocks scored via in-register shuffle lookups against quantized
//!   per-(query, partition) tables.

pub mod distance;
pub mod matrix;
pub mod simd;
pub mod sq4;
pub mod sq8;
pub mod topk;

pub use distance::{cosine_distance, distances_one_to_many, dot, l2_sq, norm, normalize, Metric};
pub use matrix::{batch_distances, gemm_nt, Matrix};
pub use simd::{backend, kernels, scalar_kernels, Kernels};
pub use sq4::{
    get_block_code, set_block_code, sq4_block_bytes, sq4_train, Sq4Scorer, SQ4_BLOCK, SQ4_LEVELS,
};
pub use sq8::{dot_norm_u8, dot_u8, l2_sq_u8, Sq8Encoder, Sq8Params, Sq8Scorer, SQ8_LEVELS};
pub use topk::{merge_all, Neighbor, TopK};
