//! Portable scalar reference kernels.
//!
//! These are the fixed-width multi-accumulator loops the crate shipped
//! with before runtime dispatch existed; LLVM autovectorizes them at
//! the target baseline (SSE2 on x86_64). They remain the semantic
//! ground truth: every SIMD backend must reproduce their results
//! bit-for-bit (see the [module docs](super) for why that holds).

use crate::sq4::SQ4_BLOCK;

/// Accumulator width. Eight lanes matches one AVX2 register of f32
/// (and two NEON registers), which is what makes the vector forms
/// bit-identical: each vector lane replays exactly one scalar lane.
pub(crate) const LANES: usize = 8;

/// Inner product `Σ aᵢ·bᵢ`. Slices must have equal length.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len() - a.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for (ca, cb) in a[..n].chunks_exact(LANES).zip(b[..n].chunks_exact(LANES)) {
        for i in 0..LANES {
            acc[i] += ca[i] * cb[i];
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for i in n..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Squared Euclidean distance `Σ (aᵢ−bᵢ)²`.
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len() - a.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for (ca, cb) in a[..n].chunks_exact(LANES).zip(b[..n].chunks_exact(LANES)) {
        for i in 0..LANES {
            let d = ca[i] - cb[i];
            acc[i] += d * d;
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for i in n..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Asymmetric L2 between a prepared query (`qm = query − min`) and one
/// u8 code row: `Σ (qmᵢ − scaleᵢ·cᵢ)²`.
pub fn l2_sq_u8(qm: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(qm.len(), codes.len());
    debug_assert_eq!(scale.len(), codes.len());
    let n = qm.len() - qm.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for ((cq, cs), cc) in qm[..n]
        .chunks_exact(LANES)
        .zip(scale[..n].chunks_exact(LANES))
        .zip(codes[..n].chunks_exact(LANES))
    {
        for i in 0..LANES {
            let d = cq[i] - cs[i] * cc[i] as f32;
            acc[i] += d * d;
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for i in n..qm.len() {
        let d = qm[i] - scale[i] * codes[i] as f32;
        sum += d * d;
    }
    sum
}

/// Asymmetric inner product between a prepared query (`qs = query ·
/// scale`, element-wise) and one u8 code row: `Σ qsᵢ·cᵢ`.
pub fn dot_u8(qs: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(qs.len(), codes.len());
    let n = qs.len() - qs.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for (cq, cc) in qs[..n]
        .chunks_exact(LANES)
        .zip(codes[..n].chunks_exact(LANES))
    {
        for i in 0..LANES {
            acc[i] += cq[i] * cc[i] as f32;
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for i in n..qs.len() {
        sum += qs[i] * codes[i] as f32;
    }
    sum
}

/// Fused asymmetric inner product and decoded squared norm for cosine:
/// returns `(Σ qsᵢ·cᵢ, Σ (minᵢ + scaleᵢ·cᵢ)²)` in one pass.
pub fn dot_norm_u8(qs: &[f32], min: &[f32], scale: &[f32], codes: &[u8]) -> (f32, f32) {
    debug_assert_eq!(qs.len(), codes.len());
    let n = qs.len() - qs.len() % LANES;
    let mut acc_dot = [0.0f32; LANES];
    let mut acc_norm = [0.0f32; LANES];
    for (((cq, cm), cs), cc) in qs[..n]
        .chunks_exact(LANES)
        .zip(min[..n].chunks_exact(LANES))
        .zip(scale[..n].chunks_exact(LANES))
        .zip(codes[..n].chunks_exact(LANES))
    {
        for i in 0..LANES {
            let x = cm[i] + cs[i] * cc[i] as f32;
            acc_dot[i] += cq[i] * cc[i] as f32;
            acc_norm[i] += x * x;
        }
    }
    let mut sum_dot: f32 = acc_dot.iter().sum();
    let mut sum_norm: f32 = acc_norm.iter().sum();
    for i in n..qs.len() {
        let x = min[i] + scale[i] * codes[i] as f32;
        sum_dot += qs[i] * codes[i] as f32;
        sum_norm += x * x;
    }
    (sum_dot, sum_norm)
}

/// SQ4 fastscan reference: per-row u16 LUT sums over one packed block.
///
/// `lut` holds 16 u8 entries per dimension (`16·dim` bytes), `packed`
/// is the register-interleaved block from [`crate::sq4`]: for each
/// dimension `d`, byte `d·16 + j` carries row `j`'s code in its low
/// nibble and row `j+16`'s code in its high nibble. `out[j]` is
/// overwritten with `Σ_d lut[d·16 + code(j, d)]`.
///
/// Plain (non-wrapping) u16 additions: [`crate::sq4`] picks the LUT
/// quantization step so that `Σ_d max_c lut[d][c] ≤ 65535`, which
/// bounds the sum for *any* code row, valid or corrupt.
pub fn sq4_accumulate(lut: &[u8], packed: &[u8], dim: usize, out: &mut [u16; SQ4_BLOCK]) {
    debug_assert_eq!(lut.len(), dim * 16);
    debug_assert_eq!(packed.len(), dim * 16);
    *out = [0u16; SQ4_BLOCK];
    for d in 0..dim {
        let l = &lut[d * 16..d * 16 + 16];
        let p = &packed[d * 16..d * 16 + 16];
        for j in 0..16 {
            let b = p[j];
            out[j] += l[(b & 0x0F) as usize] as u16;
            out[j + 16] += l[(b >> 4) as usize] as u16;
        }
    }
}
