//! Runtime-dispatched SIMD kernels.
//!
//! The paper credits much of MicroNN's scan throughput to "SIMD
//! accelerated floating point operations during query processing" (§1).
//! This module supplies that acceleration portably: every hot kernel
//! exists in a scalar reference form ([`scalar`]) and, where the build
//! target supports it, a hand-written `std::arch` form (AVX2 on
//! x86_64, NEON on aarch64). One [`Kernels`] table of function
//! pointers is selected at first use — via
//! `is_x86_feature_detected!("avx2")` on x86_64, unconditionally on
//! aarch64 (NEON is baseline there) — and cached in a `OnceLock`.
//!
//! # Bit-identity contract
//!
//! The SIMD f32 and SQ8 kernels are **bit-identical** to the scalar
//! reference, not merely close: the scalar loops already accumulate in
//! eight independent lanes (`LANES = 8`), and the vector forms perform
//! the same per-lane multiply-then-add sequence (no FMA contraction),
//! reduce the eight partial sums in the same left-to-right order, and
//! share the same scalar tail loop. The SQ4 kernel is integer-only
//! (u8 lookups summed into u16), so it is exact on every backend by
//! construction. Consequently query results do not depend on which
//! backend the dispatcher picked — the proptests in
//! `tests/proptest_linalg.rs` assert `f32::to_bits` equality across
//! backends.
//!
//! # Forcing a backend
//!
//! Set `MICRONN_KERNELS=scalar` in the environment before first use to
//! pin the portable reference path (CI runs the whole suite once per
//! arm; benches use [`scalar_kernels`] directly for in-process A/B).

pub mod scalar;

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

use crate::sq4::SQ4_BLOCK;
use std::sync::OnceLock;

/// Signature of the fused SQ8 dot + decoded-norm kernel:
/// `(qs, min, scale, codes) -> (dot, decoded ‖v‖²)`.
pub type DotNormU8Fn = fn(&[f32], &[f32], &[f32], &[u8]) -> (f32, f32);

/// Dispatch table of hot kernels, selected once per process.
///
/// All entries obey the bit-identity contract described in the
/// [module docs](self): calling any entry through [`kernels`] or
/// [`scalar_kernels`] yields the same bits.
pub struct Kernels {
    /// Name of the backend: `"avx2"`, `"neon"`, or `"scalar"`.
    pub backend: &'static str,
    /// Inner product `Σ aᵢ·bᵢ` (slices must have equal length).
    pub dot: fn(&[f32], &[f32]) -> f32,
    /// Squared Euclidean distance `Σ (aᵢ−bᵢ)²`.
    pub l2_sq: fn(&[f32], &[f32]) -> f32,
    /// Asymmetric SQ8 L2: `Σ (qmᵢ − scaleᵢ·cᵢ)²` against u8 codes.
    pub l2_sq_u8: fn(&[f32], &[f32], &[u8]) -> f32,
    /// Asymmetric SQ8 inner product `Σ qsᵢ·cᵢ` against u8 codes.
    pub dot_u8: fn(&[f32], &[u8]) -> f32,
    /// Fused SQ8 dot + decoded squared norm (cosine support).
    pub dot_norm_u8: DotNormU8Fn,
    /// SQ4 fastscan: per-row u16 LUT sums over one packed 32-row block.
    ///
    /// `(lut, packed, dim, out)` — `lut` holds 16 u8 entries per
    /// dimension, `packed` is the register-interleaved nibble block
    /// (`16·dim` bytes), and `out[j]` receives `Σ_d lut[d][code(j,d)]`
    /// for each of the 32 rows. Integer-exact on every backend; LUT
    /// construction (`crate::sq4`) guarantees the sums fit in u16.
    pub sq4_accumulate: fn(&[u8], &[u8], usize, &mut [u16; SQ4_BLOCK]),
}

impl std::fmt::Debug for Kernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernels")
            .field("backend", &self.backend)
            .finish()
    }
}

static SCALAR: Kernels = Kernels {
    backend: "scalar",
    dot: scalar::dot,
    l2_sq: scalar::l2_sq,
    l2_sq_u8: scalar::l2_sq_u8,
    dot_u8: scalar::dot_u8,
    dot_norm_u8: scalar::dot_norm_u8,
    sq4_accumulate: scalar::sq4_accumulate,
};

/// The portable scalar reference table (always available).
pub fn scalar_kernels() -> &'static Kernels {
    &SCALAR
}

/// The process-wide kernel table, detected once on first call.
///
/// Honors `MICRONN_KERNELS=scalar` (checked only on the first call;
/// later changes to the environment have no effect).
pub fn kernels() -> &'static Kernels {
    static SELECTED: OnceLock<&'static Kernels> = OnceLock::new();
    SELECTED.get_or_init(select)
}

/// Name of the backend the dispatcher selected (`"avx2"`, `"neon"`,
/// or `"scalar"`); benches print this in their headers.
pub fn backend() -> &'static str {
    kernels().backend
}

fn select() -> &'static Kernels {
    if let Ok(v) = std::env::var("MICRONN_KERNELS") {
        if v.eq_ignore_ascii_case("scalar") {
            return &SCALAR;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return &x86::AVX2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is mandatory on aarch64; no runtime probe needed.
        return &neon::NEON;
    }
    #[allow(unreachable_code)]
    &SCALAR
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_vec(seed: u64, dim: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..dim)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn dispatched_f32_kernels_are_bit_identical_to_scalar() {
        let k = kernels();
        let s = scalar_kernels();
        for dim in [1usize, 3, 7, 8, 9, 16, 31, 64, 127, 768] {
            let a = pseudo_vec(dim as u64 + 1, dim);
            let b = pseudo_vec(dim as u64 + 2, dim);
            assert_eq!(
                (k.dot)(&a, &b).to_bits(),
                (s.dot)(&a, &b).to_bits(),
                "dot dim {dim} backend {}",
                k.backend
            );
            assert_eq!(
                (k.l2_sq)(&a, &b).to_bits(),
                (s.l2_sq)(&a, &b).to_bits(),
                "l2_sq dim {dim} backend {}",
                k.backend
            );
        }
    }

    #[test]
    fn dispatched_sq8_kernels_are_bit_identical_to_scalar() {
        let k = kernels();
        let s = scalar_kernels();
        for dim in [1usize, 5, 8, 13, 32, 96, 129] {
            let qm = pseudo_vec(dim as u64 + 3, dim);
            let sc = pseudo_vec(dim as u64 + 4, dim);
            let mn = pseudo_vec(dim as u64 + 5, dim);
            let codes: Vec<u8> = (0..dim).map(|i| (i * 37 % 256) as u8).collect();
            assert_eq!(
                (k.l2_sq_u8)(&qm, &sc, &codes).to_bits(),
                (s.l2_sq_u8)(&qm, &sc, &codes).to_bits(),
                "l2_sq_u8 dim {dim}"
            );
            assert_eq!(
                (k.dot_u8)(&qm, &codes).to_bits(),
                (s.dot_u8)(&qm, &codes).to_bits(),
                "dot_u8 dim {dim}"
            );
            let (d0, n0) = (k.dot_norm_u8)(&qm, &mn, &sc, &codes);
            let (d1, n1) = (s.dot_norm_u8)(&qm, &mn, &sc, &codes);
            assert_eq!(d0.to_bits(), d1.to_bits(), "dot_norm_u8 dot dim {dim}");
            assert_eq!(n0.to_bits(), n1.to_bits(), "dot_norm_u8 norm dim {dim}");
        }
    }

    #[test]
    fn dispatched_sq4_sums_match_scalar_exactly() {
        let k = kernels();
        let s = scalar_kernels();
        for dim in [1usize, 2, 7, 24, 96, 128] {
            let lut: Vec<u8> = (0..dim * 16).map(|i| (i * 131 % 251) as u8).collect();
            let packed: Vec<u8> = (0..dim * 16).map(|i| (i * 57 % 256) as u8).collect();
            let mut a = [0u16; SQ4_BLOCK];
            let mut b = [0u16; SQ4_BLOCK];
            (k.sq4_accumulate)(&lut, &packed, dim, &mut a);
            (s.sq4_accumulate)(&lut, &packed, dim, &mut b);
            assert_eq!(a, b, "sq4 dim {dim} backend {}", k.backend);
        }
    }

    #[test]
    fn backend_name_is_reported() {
        assert!(["avx2", "neon", "scalar"].contains(&backend()));
    }
}
