//! AVX2 kernels (x86_64).
//!
//! Installed by the dispatcher only after
//! `is_x86_feature_detected!("avx2")` succeeds. Each kernel mirrors
//! the scalar reference lane-for-lane: the eight f32 accumulator lanes
//! of one `__m256` replay the eight scalar `acc[i]` lanes with the same
//! multiply-then-add sequence (deliberately *not* `_mm256_fmadd_ps` —
//! FMA skips the intermediate rounding the scalar loop performs and
//! would break bit-identity), the horizontal reduction spills to
//! `[f32; 8]` and sums left-to-right like `acc.iter().sum()`, and the
//! tail loop is the same scalar code. u8→f32 widening uses
//! `_mm256_cvtepu8_epi32` + `_mm256_cvtepi32_ps`, both exact.
//!
//! The SQ4 kernel is the fastscan shuffle: 16 packed code bytes hold
//! one dimension of all 32 rows (low nibbles = rows 0..16, high
//! nibbles = rows 16..32); `_mm256_shuffle_epi8` looks up all 32
//! 4-bit codes in the broadcast 16-entry LUT at once, and the u8
//! values widen into two u16×16 accumulators. Integer math — exact by
//! construction, no rounding concerns.

#![allow(unsafe_code)]

use super::Kernels;
use crate::sq4::SQ4_BLOCK;
use core::arch::x86_64::*;

pub(super) static AVX2: Kernels = Kernels {
    backend: "avx2",
    dot,
    l2_sq,
    l2_sq_u8,
    dot_u8,
    dot_norm_u8,
    sq4_accumulate,
};

fn dot(a: &[f32], b: &[f32]) -> f32 {
    // SAFETY: this table is only installed after AVX2 detection.
    unsafe { dot_impl(a, b) }
}

fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    // SAFETY: as above.
    unsafe { l2_sq_impl(a, b) }
}

fn l2_sq_u8(qm: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
    // SAFETY: as above.
    unsafe { l2_sq_u8_impl(qm, scale, codes) }
}

fn dot_u8(qs: &[f32], codes: &[u8]) -> f32 {
    // SAFETY: as above.
    unsafe { dot_u8_impl(qs, codes) }
}

fn dot_norm_u8(qs: &[f32], min: &[f32], scale: &[f32], codes: &[u8]) -> (f32, f32) {
    // SAFETY: as above.
    unsafe { dot_norm_u8_impl(qs, min, scale, codes) }
}

fn sq4_accumulate(lut: &[u8], packed: &[u8], dim: usize, out: &mut [u16; SQ4_BLOCK]) {
    // SAFETY: as above.
    unsafe { sq4_accumulate_impl(lut, packed, dim, out) }
}

/// Spills an 8-lane accumulator and reduces it in scalar lane order.
#[target_feature(enable = "avx2")]
unsafe fn hsum(acc: __m256) -> f32 {
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    lanes.iter().sum()
}

/// Widens 8 u8 codes (loaded from `p`) to f32 exactly.
#[target_feature(enable = "avx2")]
unsafe fn load_codes8(p: *const u8) -> __m256 {
    let bytes = _mm_loadl_epi64(p as *const __m128i);
    _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes))
}

#[target_feature(enable = "avx2")]
unsafe fn dot_impl(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len() - a.len() % 8;
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i < n {
        let va = _mm256_loadu_ps(a.as_ptr().add(i));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
        i += 8;
    }
    let mut sum = hsum(acc);
    for j in n..a.len() {
        sum += a[j] * b[j];
    }
    sum
}

#[target_feature(enable = "avx2")]
unsafe fn l2_sq_impl(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len() - a.len() % 8;
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i < n {
        let va = _mm256_loadu_ps(a.as_ptr().add(i));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i));
        let d = _mm256_sub_ps(va, vb);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
        i += 8;
    }
    let mut sum = hsum(acc);
    for j in n..a.len() {
        let d = a[j] - b[j];
        sum += d * d;
    }
    sum
}

#[target_feature(enable = "avx2")]
unsafe fn l2_sq_u8_impl(qm: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(qm.len(), codes.len());
    debug_assert_eq!(scale.len(), codes.len());
    let n = qm.len() - qm.len() % 8;
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i < n {
        let vq = _mm256_loadu_ps(qm.as_ptr().add(i));
        let vs = _mm256_loadu_ps(scale.as_ptr().add(i));
        let vc = load_codes8(codes.as_ptr().add(i));
        let d = _mm256_sub_ps(vq, _mm256_mul_ps(vs, vc));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
        i += 8;
    }
    let mut sum = hsum(acc);
    for j in n..qm.len() {
        let d = qm[j] - scale[j] * codes[j] as f32;
        sum += d * d;
    }
    sum
}

#[target_feature(enable = "avx2")]
unsafe fn dot_u8_impl(qs: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(qs.len(), codes.len());
    let n = qs.len() - qs.len() % 8;
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i < n {
        let vq = _mm256_loadu_ps(qs.as_ptr().add(i));
        let vc = load_codes8(codes.as_ptr().add(i));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(vq, vc));
        i += 8;
    }
    let mut sum = hsum(acc);
    for j in n..qs.len() {
        sum += qs[j] * codes[j] as f32;
    }
    sum
}

#[target_feature(enable = "avx2")]
unsafe fn dot_norm_u8_impl(qs: &[f32], min: &[f32], scale: &[f32], codes: &[u8]) -> (f32, f32) {
    debug_assert_eq!(qs.len(), codes.len());
    let n = qs.len() - qs.len() % 8;
    let mut acc_dot = _mm256_setzero_ps();
    let mut acc_norm = _mm256_setzero_ps();
    let mut i = 0;
    while i < n {
        let vq = _mm256_loadu_ps(qs.as_ptr().add(i));
        let vm = _mm256_loadu_ps(min.as_ptr().add(i));
        let vs = _mm256_loadu_ps(scale.as_ptr().add(i));
        let vc = load_codes8(codes.as_ptr().add(i));
        let x = _mm256_add_ps(vm, _mm256_mul_ps(vs, vc));
        acc_dot = _mm256_add_ps(acc_dot, _mm256_mul_ps(vq, vc));
        acc_norm = _mm256_add_ps(acc_norm, _mm256_mul_ps(x, x));
        i += 8;
    }
    let mut sum_dot = hsum(acc_dot);
    let mut sum_norm = hsum(acc_norm);
    for j in n..qs.len() {
        let x = min[j] + scale[j] * codes[j] as f32;
        sum_dot += qs[j] * codes[j] as f32;
        sum_norm += x * x;
    }
    (sum_dot, sum_norm)
}

#[target_feature(enable = "avx2")]
unsafe fn sq4_accumulate_impl(lut: &[u8], packed: &[u8], dim: usize, out: &mut [u16; SQ4_BLOCK]) {
    debug_assert_eq!(lut.len(), dim * 16);
    debug_assert_eq!(packed.len(), dim * 16);
    let low_mask = _mm256_set1_epi8(0x0F);
    let zero = _mm256_setzero_si256();
    let mut acc_lo = zero;
    let mut acc_hi = zero;
    for d in 0..dim {
        let code_bytes = _mm_loadu_si128(packed.as_ptr().add(d * 16) as *const __m128i);
        let lut_row = _mm_loadu_si128(lut.as_ptr().add(d * 16) as *const __m128i);
        let lut2 = _mm256_broadcastsi128_si256(lut_row);
        // Lane 0 = low nibbles (rows 0..16), lane 1 = high nibbles
        // (rows 16..32); mask after combining so one AND serves both.
        let hi = _mm_srli_epi16(code_bytes, 4);
        let idx = _mm256_and_si256(_mm256_set_m128i(hi, code_bytes), low_mask);
        let vals = _mm256_shuffle_epi8(lut2, idx);
        // unpack{lo,hi}_epi8 interleave within each 128-bit lane, so
        // acc_lo carries rows 0..8 | 16..24 and acc_hi rows 8..16 |
        // 24..32 as u16; the spill below undoes that mapping.
        acc_lo = _mm256_add_epi16(acc_lo, _mm256_unpacklo_epi8(vals, zero));
        acc_hi = _mm256_add_epi16(acc_hi, _mm256_unpackhi_epi8(vals, zero));
    }
    let mut lo16 = [0u16; 16];
    let mut hi16 = [0u16; 16];
    _mm256_storeu_si256(lo16.as_mut_ptr() as *mut __m256i, acc_lo);
    _mm256_storeu_si256(hi16.as_mut_ptr() as *mut __m256i, acc_hi);
    out[..8].copy_from_slice(&lo16[..8]);
    out[8..16].copy_from_slice(&hi16[..8]);
    out[16..24].copy_from_slice(&lo16[8..]);
    out[24..32].copy_from_slice(&hi16[8..]);
}
