//! NEON kernels (aarch64).
//!
//! NEON is part of the aarch64 baseline, so the dispatcher installs
//! this table unconditionally on that architecture. The bit-identity
//! strategy matches the AVX2 backend: the scalar reference's eight
//! accumulator lanes map onto two `float32x4_t` registers (lanes 0..4
//! and 4..8), every step is an explicit multiply followed by an add
//! (`vmulq_f32` + `vaddq_f32`, never `vfmaq_f32` — FMA would skip the
//! intermediate rounding and break bit-identity), the reduction spills
//! both registers to `[f32; 8]` and sums left-to-right, and the tail
//! loop is the same scalar code. u8→f32 widening (`vmovl_u8` →
//! `vmovl_u16` → `vcvtq_f32_u32`) is exact.
//!
//! The SQ4 kernel uses `vqtbl1q_u8` to look up all 16 low (then high)
//! nibbles of a dimension's packed byte row in one shot, widening into
//! four u16×8 accumulators (rows 0..8, 8..16, 16..24, 24..32).

#![allow(unsafe_code)]

use super::Kernels;
use crate::sq4::SQ4_BLOCK;
use core::arch::aarch64::*;

pub(super) static NEON: Kernels = Kernels {
    backend: "neon",
    dot,
    l2_sq,
    l2_sq_u8,
    dot_u8,
    dot_norm_u8,
    sq4_accumulate,
};

fn dot(a: &[f32], b: &[f32]) -> f32 {
    // SAFETY: NEON is baseline on aarch64.
    unsafe { dot_impl(a, b) }
}

fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    // SAFETY: as above.
    unsafe { l2_sq_impl(a, b) }
}

fn l2_sq_u8(qm: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
    // SAFETY: as above.
    unsafe { l2_sq_u8_impl(qm, scale, codes) }
}

fn dot_u8(qs: &[f32], codes: &[u8]) -> f32 {
    // SAFETY: as above.
    unsafe { dot_u8_impl(qs, codes) }
}

fn dot_norm_u8(qs: &[f32], min: &[f32], scale: &[f32], codes: &[u8]) -> (f32, f32) {
    // SAFETY: as above.
    unsafe { dot_norm_u8_impl(qs, min, scale, codes) }
}

fn sq4_accumulate(lut: &[u8], packed: &[u8], dim: usize, out: &mut [u16; SQ4_BLOCK]) {
    // SAFETY: as above.
    unsafe { sq4_accumulate_impl(lut, packed, dim, out) }
}

/// Spills the two 4-lane accumulators (scalar lanes 0..4 and 4..8)
/// and reduces them in scalar lane order.
#[target_feature(enable = "neon")]
unsafe fn hsum(acc0: float32x4_t, acc1: float32x4_t) -> f32 {
    let mut lanes = [0.0f32; 8];
    vst1q_f32(lanes.as_mut_ptr(), acc0);
    vst1q_f32(lanes.as_mut_ptr().add(4), acc1);
    lanes.iter().sum()
}

/// Widens u8 codes `p[0..4]` to f32 exactly.
#[target_feature(enable = "neon")]
unsafe fn load_codes4(p: *const u8) -> float32x4_t {
    let mut four = [0u8; 8];
    core::ptr::copy_nonoverlapping(p, four.as_mut_ptr(), 4);
    let wide = vmovl_u16(vget_low_u16(vmovl_u8(vld1_u8(four.as_ptr()))));
    vcvtq_f32_u32(wide)
}

#[target_feature(enable = "neon")]
unsafe fn dot_impl(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len() - a.len() % 8;
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0;
    while i < n {
        let a0 = vld1q_f32(a.as_ptr().add(i));
        let a1 = vld1q_f32(a.as_ptr().add(i + 4));
        let b0 = vld1q_f32(b.as_ptr().add(i));
        let b1 = vld1q_f32(b.as_ptr().add(i + 4));
        acc0 = vaddq_f32(acc0, vmulq_f32(a0, b0));
        acc1 = vaddq_f32(acc1, vmulq_f32(a1, b1));
        i += 8;
    }
    let mut sum = hsum(acc0, acc1);
    for j in n..a.len() {
        sum += a[j] * b[j];
    }
    sum
}

#[target_feature(enable = "neon")]
unsafe fn l2_sq_impl(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len() - a.len() % 8;
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0;
    while i < n {
        let d0 = vsubq_f32(vld1q_f32(a.as_ptr().add(i)), vld1q_f32(b.as_ptr().add(i)));
        let d1 = vsubq_f32(
            vld1q_f32(a.as_ptr().add(i + 4)),
            vld1q_f32(b.as_ptr().add(i + 4)),
        );
        acc0 = vaddq_f32(acc0, vmulq_f32(d0, d0));
        acc1 = vaddq_f32(acc1, vmulq_f32(d1, d1));
        i += 8;
    }
    let mut sum = hsum(acc0, acc1);
    for j in n..a.len() {
        let d = a[j] - b[j];
        sum += d * d;
    }
    sum
}

#[target_feature(enable = "neon")]
unsafe fn l2_sq_u8_impl(qm: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(qm.len(), codes.len());
    debug_assert_eq!(scale.len(), codes.len());
    let n = qm.len() - qm.len() % 8;
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0;
    while i < n {
        let c0 = load_codes4(codes.as_ptr().add(i));
        let c1 = load_codes4(codes.as_ptr().add(i + 4));
        let d0 = vsubq_f32(
            vld1q_f32(qm.as_ptr().add(i)),
            vmulq_f32(vld1q_f32(scale.as_ptr().add(i)), c0),
        );
        let d1 = vsubq_f32(
            vld1q_f32(qm.as_ptr().add(i + 4)),
            vmulq_f32(vld1q_f32(scale.as_ptr().add(i + 4)), c1),
        );
        acc0 = vaddq_f32(acc0, vmulq_f32(d0, d0));
        acc1 = vaddq_f32(acc1, vmulq_f32(d1, d1));
        i += 8;
    }
    let mut sum = hsum(acc0, acc1);
    for j in n..qm.len() {
        let d = qm[j] - scale[j] * codes[j] as f32;
        sum += d * d;
    }
    sum
}

#[target_feature(enable = "neon")]
unsafe fn dot_u8_impl(qs: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(qs.len(), codes.len());
    let n = qs.len() - qs.len() % 8;
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0;
    while i < n {
        let c0 = load_codes4(codes.as_ptr().add(i));
        let c1 = load_codes4(codes.as_ptr().add(i + 4));
        acc0 = vaddq_f32(acc0, vmulq_f32(vld1q_f32(qs.as_ptr().add(i)), c0));
        acc1 = vaddq_f32(acc1, vmulq_f32(vld1q_f32(qs.as_ptr().add(i + 4)), c1));
        i += 8;
    }
    let mut sum = hsum(acc0, acc1);
    for j in n..qs.len() {
        sum += qs[j] * codes[j] as f32;
    }
    sum
}

#[target_feature(enable = "neon")]
unsafe fn dot_norm_u8_impl(qs: &[f32], min: &[f32], scale: &[f32], codes: &[u8]) -> (f32, f32) {
    debug_assert_eq!(qs.len(), codes.len());
    let n = qs.len() - qs.len() % 8;
    let mut dot0 = vdupq_n_f32(0.0);
    let mut dot1 = vdupq_n_f32(0.0);
    let mut norm0 = vdupq_n_f32(0.0);
    let mut norm1 = vdupq_n_f32(0.0);
    let mut i = 0;
    while i < n {
        let c0 = load_codes4(codes.as_ptr().add(i));
        let c1 = load_codes4(codes.as_ptr().add(i + 4));
        let x0 = vaddq_f32(
            vld1q_f32(min.as_ptr().add(i)),
            vmulq_f32(vld1q_f32(scale.as_ptr().add(i)), c0),
        );
        let x1 = vaddq_f32(
            vld1q_f32(min.as_ptr().add(i + 4)),
            vmulq_f32(vld1q_f32(scale.as_ptr().add(i + 4)), c1),
        );
        dot0 = vaddq_f32(dot0, vmulq_f32(vld1q_f32(qs.as_ptr().add(i)), c0));
        dot1 = vaddq_f32(dot1, vmulq_f32(vld1q_f32(qs.as_ptr().add(i + 4)), c1));
        norm0 = vaddq_f32(norm0, vmulq_f32(x0, x0));
        norm1 = vaddq_f32(norm1, vmulq_f32(x1, x1));
        i += 8;
    }
    let mut sum_dot = hsum(dot0, dot1);
    let mut sum_norm = hsum(norm0, norm1);
    for j in n..qs.len() {
        let x = min[j] + scale[j] * codes[j] as f32;
        sum_dot += qs[j] * codes[j] as f32;
        sum_norm += x * x;
    }
    (sum_dot, sum_norm)
}

#[target_feature(enable = "neon")]
unsafe fn sq4_accumulate_impl(lut: &[u8], packed: &[u8], dim: usize, out: &mut [u16; SQ4_BLOCK]) {
    debug_assert_eq!(lut.len(), dim * 16);
    debug_assert_eq!(packed.len(), dim * 16);
    let low_mask = vdupq_n_u8(0x0F);
    let mut acc = [vdupq_n_u16(0); 4];
    for d in 0..dim {
        let code_bytes = vld1q_u8(packed.as_ptr().add(d * 16));
        let table = vld1q_u8(lut.as_ptr().add(d * 16));
        let lo = vandq_u8(code_bytes, low_mask);
        let hi = vshrq_n_u8(code_bytes, 4);
        let vals_lo = vqtbl1q_u8(table, lo); // rows 0..16
        let vals_hi = vqtbl1q_u8(table, hi); // rows 16..32
        acc[0] = vaddw_u8(acc[0], vget_low_u8(vals_lo));
        acc[1] = vaddw_u8(acc[1], vget_high_u8(vals_lo));
        acc[2] = vaddw_u8(acc[2], vget_low_u8(vals_hi));
        acc[3] = vaddw_u8(acc[3], vget_high_u8(vals_hi));
    }
    for (q, a) in acc.iter().enumerate() {
        vst1q_u16(out.as_mut_ptr().add(q * 8), *a);
    }
}
