//! SQ8 scalar quantization: per-dimension affine u8 codes and the
//! asymmetric distance kernels that score them.
//!
//! A vector `x` is encoded against per-dimension ranges `[min_d,
//! min_d + 255·scale_d]` as `c_d = round((x_d − min_d)/scale_d)`,
//! clamped to `0..=255` — 4× fewer bytes than f32. Queries stay in
//! full precision: the *asymmetric* kernels compare an f32 query
//! against u8 codes by folding the affine decode `min_d + scale_d·c_d`
//! into per-dimension coefficients prepared once per (query,
//! partition), so the inner loop over codes is a fixed-width
//! multi-accumulator sum served by the runtime-dispatched kernels in
//! [`crate::simd`] (AVX2/NEON with u8 → f32 widening, or the scalar
//! reference — all backends produce bit-identical results).
//!
//! Quantized distances are approximations; callers keep an enlarged
//! candidate pool and re-rank the survivors against the exact f32
//! vectors.

use crate::distance::Metric;
use crate::simd::{self, Kernels};

/// Quantization levels per dimension (u8 codes).
pub const SQ8_LEVELS: u32 = 255;

/// Per-dimension affine quantization ranges for one partition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8Params {
    /// Per-dimension lower bound of the trained range.
    pub min: Vec<f32>,
    /// Per-dimension step `(max − min)/255`; `0` for constant
    /// dimensions (every code decodes to `min`).
    pub scale: Vec<f32>,
}

impl Sq8Params {
    /// Trains ranges over a row-major matrix of vectors (`data.len()`
    /// must be a multiple of `dim`). An empty matrix yields the
    /// degenerate all-zero range.
    pub fn train(data: &[f32], dim: usize) -> Sq8Params {
        Sq8Params::train_with_levels(data, dim, SQ8_LEVELS)
    }

    /// [`Sq8Params::train`] generalized over the number of code levels
    /// (255 for SQ8, 15 for the SQ4 codec in [`crate::sq4`]): a single
    /// fused min/max pass over the data, then one pass over dimensions
    /// to derive steps.
    pub fn train_with_levels(data: &[f32], dim: usize, levels: u32) -> Sq8Params {
        debug_assert_eq!(data.len() % dim.max(1), 0);
        debug_assert!(levels > 0);
        let mut min = vec![f32::INFINITY; dim];
        let mut max = vec![f32::NEG_INFINITY; dim];
        for row in data.chunks_exact(dim) {
            for d in 0..dim {
                min[d] = min[d].min(row[d]);
                max[d] = max[d].max(row[d]);
            }
        }
        let mut scale = vec![0.0f32; dim];
        for d in 0..dim {
            if !min[d].is_finite() || !max[d].is_finite() {
                // Non-finite coordinates (empty input, or a NaN/inf
                // value in some row) admit no range: neutralize the
                // dimension so it cannot poison every row's score —
                // codes decode to 0 here and the exact re-rank pass
                // absorbs the per-row error.
                min[d] = 0.0;
                max[d] = 0.0;
            }
            // Divide before subtracting: `max − min` itself can
            // overflow to infinity for extreme finite ranges.
            let step = max[d] / levels as f32 - min[d] / levels as f32;
            scale[d] = if step > 0.0 && step.is_finite() {
                step
            } else {
                0.0
            };
        }
        Sq8Params { min, scale }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Encodes `v` into codes appended to `out`. Values outside the
    /// trained range clamp to the nearest representable code (the
    /// exact re-rank pass absorbs the resulting error).
    ///
    /// Canonical quantization formula: `((x − min) · (1/scale))
    /// .round()`, clamped — multiply by the reciprocal, exactly like
    /// the bulk [`Sq8Encoder`], so that both paths produce identical
    /// codes (reciprocal-multiply and division round differently in
    /// f32; fsck's bit-exact re-encode check relies on there being
    /// only one formula).
    pub fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) {
        debug_assert_eq!(v.len(), self.dim());
        out.reserve(v.len());
        for ((&x, &min), &scale) in v.iter().zip(&self.min).zip(&self.scale) {
            let c = if scale > 0.0 {
                ((x - min) * (1.0 / scale)).round()
            } else {
                0.0
            };
            out.push(c.clamp(0.0, SQ8_LEVELS as f32) as u8);
        }
    }

    /// Builds a bulk encoder with the per-dimension reciprocals
    /// hoisted out of the row loop (`levels` = 255 for SQ8, 15 for
    /// SQ4). Produces codes bit-identical to
    /// [`Sq8Params::encode_into`] (for `levels = 255`).
    pub fn encoder(&self, levels: u32) -> Sq8Encoder {
        Sq8Encoder {
            min: self.min.clone(),
            inv: self
                .scale
                .iter()
                .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
                .collect(),
            levels: levels as f32,
        }
    }

    /// Decodes codes back to f32 values appended to `out`.
    pub fn decode_into(&self, codes: &[u8], out: &mut Vec<f32>) {
        debug_assert_eq!(codes.len(), self.dim());
        out.reserve(codes.len());
        for (d, &c) in codes.iter().enumerate() {
            out.push(self.min[d] + self.scale[d] * c as f32);
        }
    }

    /// The worst-case per-dimension reconstruction error for in-range
    /// values: half a quantization step.
    pub fn max_abs_error(&self, d: usize) -> f32 {
        self.scale[d] * 0.5
    }
}

/// Bulk row encoder with precomputed per-dimension reciprocals.
///
/// Encoding a partition divides by `scale` once per element in the
/// naive form; flush/rebuild profiles show that division. This form
/// multiplies by a hoisted `1/scale` instead — the *same* reciprocal
/// multiply [`Sq8Params::encode_into`] performs per element, so both
/// produce bit-identical codes. It also reports whether any dimension
/// clamped, which feeds the maintainer's quantizer range-drift
/// detection.
#[derive(Debug, Clone)]
pub struct Sq8Encoder {
    min: Vec<f32>,
    /// `1/scale` per dimension; `0` for constant dimensions.
    inv: Vec<f32>,
    /// Highest representable code (255 for SQ8, 15 for SQ4).
    levels: f32,
}

impl Sq8Encoder {
    /// Encodes one row, appending `dim` codes to `out`. Returns `true`
    /// if any dimension fell outside the trained range and clamped
    /// (out-of-range against a zero-width range counts too).
    pub fn encode_row(&self, v: &[f32], out: &mut Vec<u8>) -> bool {
        debug_assert_eq!(v.len(), self.min.len());
        out.reserve(v.len());
        let mut clamped = false;
        for ((&x, &min), &inv) in v.iter().zip(&self.min).zip(&self.inv) {
            let c = if inv > 0.0 {
                let c = ((x - min) * inv).round();
                clamped |= c < 0.0 || c > self.levels;
                c
            } else {
                clamped |= x != min;
                0.0
            };
            out.push(c.clamp(0.0, self.levels) as u8);
        }
        clamped
    }
}

/// Asymmetric squared-L2 between a prepared query and u8 codes:
/// `Σ_d (qm_d − scale_d·c_d)²` where `qm_d = q_d − min_d`. Folding the
/// partition's `min` into the query keeps the decode out of the inner
/// loop. Dispatches to the runtime-selected backend ([`crate::simd`]);
/// all backends are bit-identical.
#[inline]
pub fn l2_sq_u8(qm: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
    (simd::kernels().l2_sq_u8)(qm, scale, codes)
}

/// Asymmetric inner-product partial `Σ_d qs_d·c_d` where `qs_d =
/// q_d·scale_d`; the caller adds the constant `⟨q, min⟩` term.
/// Runtime-dispatched like [`l2_sq_u8`].
#[inline]
pub fn dot_u8(qs: &[f32], codes: &[u8]) -> f32 {
    (simd::kernels().dot_u8)(qs, codes)
}

/// One pass computing both `Σ_d qs_d·c_d` (the variable part of
/// `⟨q, decode(c)⟩`) and `Σ_d (min_d + scale_d·c_d)²` (the decoded
/// vector's squared norm) — the two ingredients of cosine distance.
/// Runtime-dispatched like [`l2_sq_u8`].
#[inline]
pub fn dot_norm_u8(qs: &[f32], min: &[f32], scale: &[f32], codes: &[u8]) -> (f32, f32) {
    (simd::kernels().dot_norm_u8)(qs, min, scale, codes)
}

/// A query prepared against one partition's quantization ranges:
/// scores raw u8 code rows under any [`Metric`] without decoding them.
#[derive(Debug, Clone)]
pub struct Sq8Scorer {
    metric: Metric,
    /// L2: `q − min`. Dot/Cosine: `q·scale` (element-wise).
    a: Vec<f32>,
    /// L2: `scale`. Cosine: `min`.
    b: Vec<f32>,
    /// Cosine: `scale`.
    c: Vec<f32>,
    /// Dot/Cosine: the constant `⟨q, min⟩` term.
    bias: f32,
    /// Cosine: `‖q‖`.
    qnorm: f32,
    /// Kernel backend scoring this query (dispatched or pinned).
    kernels: &'static Kernels,
}

impl Sq8Scorer {
    /// Prepares `query` against `params` for repeated scoring with the
    /// runtime-dispatched kernel backend.
    pub fn new(metric: Metric, query: &[f32], params: &Sq8Params) -> Sq8Scorer {
        Sq8Scorer::with_kernels(metric, query, params, simd::kernels())
    }

    /// [`Sq8Scorer::new`] pinned to an explicit backend — benches and
    /// the cross-backend proptests use this to compare the dispatched
    /// table against [`crate::simd::scalar_kernels`] in-process.
    pub fn with_kernels(
        metric: Metric,
        query: &[f32],
        params: &Sq8Params,
        kernels: &'static Kernels,
    ) -> Sq8Scorer {
        debug_assert_eq!(query.len(), params.dim());
        match metric {
            Metric::L2 => Sq8Scorer {
                metric,
                a: query.iter().zip(&params.min).map(|(q, m)| q - m).collect(),
                b: params.scale.clone(),
                c: Vec::new(),
                bias: 0.0,
                qnorm: 0.0,
                kernels,
            },
            Metric::Dot => Sq8Scorer {
                metric,
                a: query
                    .iter()
                    .zip(&params.scale)
                    .map(|(q, s)| q * s)
                    .collect(),
                b: Vec::new(),
                c: Vec::new(),
                bias: (kernels.dot)(query, &params.min),
                qnorm: 0.0,
                kernels,
            },
            Metric::Cosine => Sq8Scorer {
                metric,
                a: query
                    .iter()
                    .zip(&params.scale)
                    .map(|(q, s)| q * s)
                    .collect(),
                b: params.min.clone(),
                c: params.scale.clone(),
                bias: (kernels.dot)(query, &params.min),
                qnorm: (kernels.dot)(query, query).sqrt(),
                kernels,
            },
        }
    }

    /// Approximate distance between the prepared query and one code
    /// row (lower = more similar, matching [`Metric::distance`]).
    #[inline]
    pub fn score(&self, codes: &[u8]) -> f32 {
        match self.metric {
            Metric::L2 => (self.kernels.l2_sq_u8)(&self.a, &self.b, codes),
            Metric::Dot => -(self.bias + (self.kernels.dot_u8)(&self.a, codes)),
            Metric::Cosine => {
                let (d, n2) = (self.kernels.dot_norm_u8)(&self.a, &self.b, &self.c, codes);
                let denom = self.qnorm * n2.sqrt();
                if denom <= f32::EPSILON {
                    1.0
                } else {
                    1.0 - (self.bias + d) / denom
                }
            }
        }
    }

    /// Scores a contiguous block of code rows (`codes.len()` must be a
    /// multiple of the dimension), appending one score per row to
    /// `out`. Bit-identical to calling [`Sq8Scorer::score`] row by
    /// row: the chunked form hoists the metric dispatch and scorer
    /// field accesses out of the per-row loop so the row kernel runs
    /// back-to-back over the block — the batched kernel behind
    /// compressed-domain partition scans, letting the SQ8 path score
    /// chunk-row blocks like the f32 path instead of row-at-a-time.
    /// (Row-interleaved variants were measured and *lose* here: the
    /// multi-accumulator row kernels already saturate the FMA ports,
    /// and extra live accumulator sets defeat the autovectorizer.)
    pub fn score_chunk(&self, codes: &[u8], out: &mut Vec<f32>) {
        let dim = self.a.len().max(1);
        debug_assert_eq!(codes.len() % dim, 0);
        out.reserve(codes.len() / dim);
        match self.metric {
            Metric::L2 => out.extend(
                codes
                    .chunks_exact(dim)
                    .map(|row| (self.kernels.l2_sq_u8)(&self.a, &self.b, row)),
            ),
            Metric::Dot => out.extend(
                codes
                    .chunks_exact(dim)
                    .map(|row| -(self.bias + (self.kernels.dot_u8)(&self.a, row))),
            ),
            Metric::Cosine => out.extend(codes.chunks_exact(dim).map(|row| {
                let (d, n2) = (self.kernels.dot_norm_u8)(&self.a, &self.b, &self.c, row);
                let denom = self.qnorm * n2.sqrt();
                if denom <= f32::EPSILON {
                    1.0
                } else {
                    1.0 - (self.bias + d) / denom
                }
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_vec(seed: u64, dim: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..dim)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn matrix(seed: u64, n: usize, dim: usize) -> Vec<f32> {
        (0..n)
            .flat_map(|i| pseudo_vec(seed + i as u64, dim))
            .collect()
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        for dim in [1, 7, 16, 33, 96] {
            let data = matrix(1, 40, dim);
            let p = Sq8Params::train(&data, dim);
            for row in data.chunks_exact(dim) {
                let mut codes = Vec::new();
                p.encode_into(row, &mut codes);
                let mut back = Vec::new();
                p.decode_into(&codes, &mut back);
                for d in 0..dim {
                    let err = (row[d] - back[d]).abs();
                    assert!(
                        err <= p.max_abs_error(d) + 1e-5,
                        "dim={dim} d={d}: err {err} > {}",
                        p.max_abs_error(d)
                    );
                }
            }
        }
    }

    #[test]
    fn constant_dimension_has_zero_scale_and_exact_decode() {
        let data = vec![3.0, 1.0, 3.0, 2.0, 3.0, -1.0]; // dim 2, col 0 constant
        let p = Sq8Params::train(&data, 2);
        assert_eq!(p.scale[0], 0.0);
        let mut codes = Vec::new();
        p.encode_into(&[3.0, 0.5], &mut codes);
        assert_eq!(codes[0], 0);
        let mut back = Vec::new();
        p.decode_into(&codes, &mut back);
        assert_eq!(back[0], 3.0);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let data = matrix(2, 20, 8);
        let p = Sq8Params::train(&data, 8);
        let far: Vec<f32> = (0..8).map(|_| 1e6).collect();
        let mut codes = Vec::new();
        p.encode_into(&far, &mut codes);
        assert!(codes.iter().all(|&c| c == 255));
        let near: Vec<f32> = (0..8).map(|_| -1e6).collect();
        codes.clear();
        p.encode_into(&near, &mut codes);
        assert!(codes.iter().all(|&c| c == 0));
    }

    #[test]
    fn empty_training_set_degenerates() {
        let p = Sq8Params::train(&[], 4);
        assert_eq!(p.min, vec![0.0; 4]);
        assert_eq!(p.scale, vec![0.0; 4]);
    }

    #[test]
    fn non_finite_coordinates_cannot_poison_a_partition() {
        // One bad row must not turn every other row's score into NaN.
        let dim = 4;
        let mut data = matrix(9, 10, dim);
        data[2] = f32::INFINITY; // row 0, dim 2
        data[dim + 1] = f32::NAN; // row 1, dim 1
        let p = Sq8Params::train(&data, dim);
        assert!(p.min.iter().all(|m| m.is_finite()));
        assert!(p.scale.iter().all(|s| s.is_finite()));
        let q = pseudo_vec(1, dim);
        let scorer = Sq8Scorer::new(Metric::L2, &q, &p);
        for row in data.chunks_exact(dim).skip(2) {
            let mut codes = Vec::new();
            p.encode_into(row, &mut codes);
            assert!(scorer.score(&codes).is_finite());
        }
        // Extreme finite ranges do not overflow the step computation.
        let wide = vec![f32::MAX, -1.0, f32::MIN, 1.0]; // dim 2
        let p = Sq8Params::train(&wide, 2);
        assert!(p.scale.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn scorer_approximates_exact_distance() {
        for metric in [Metric::L2, Metric::Cosine, Metric::Dot] {
            for dim in [5, 16, 48, 67] {
                let data = matrix(3, 64, dim);
                let p = Sq8Params::train(&data, dim);
                let q = pseudo_vec(999, dim);
                let scorer = Sq8Scorer::new(metric, &q, &p);
                for row in data.chunks_exact(dim) {
                    let mut codes = Vec::new();
                    p.encode_into(row, &mut codes);
                    let mut dec = Vec::new();
                    p.decode_into(&codes, &mut dec);
                    // The scorer must match the decoded-vector distance
                    // (the quantization error itself is absorbed by
                    // re-ranking, not by the kernel).
                    let want = metric.distance(&q, &dec);
                    let got = scorer.score(&codes);
                    let tol = 1e-3 * (1.0 + want.abs());
                    assert!(
                        (got - want).abs() <= tol,
                        "{metric} dim={dim}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn score_chunk_is_bit_identical_to_row_at_a_time() {
        for metric in [Metric::L2, Metric::Cosine, Metric::Dot] {
            // Row counts exercise the 4-row interleave and its 1–3 row
            // remainder; dims exercise the LANES tail.
            for (n, dim) in [(1, 7), (3, 16), (4, 5), (9, 48), (64, 67), (130, 96)] {
                let data = matrix(11, n, dim);
                let p = Sq8Params::train(&data, dim);
                let q = pseudo_vec(777, dim);
                let scorer = Sq8Scorer::new(metric, &q, &p);
                let mut block = Vec::with_capacity(n * dim);
                for row in data.chunks_exact(dim) {
                    let mut codes = Vec::new();
                    p.encode_into(row, &mut codes);
                    block.extend_from_slice(&codes);
                }
                let mut chunked = Vec::new();
                scorer.score_chunk(&block, &mut chunked);
                let rowwise: Vec<f32> = block.chunks_exact(dim).map(|c| scorer.score(c)).collect();
                assert_eq!(chunked.len(), n, "{metric} n={n} dim={dim}");
                for (i, (&c, &r)) in chunked.iter().zip(&rowwise).enumerate() {
                    assert_eq!(
                        c.to_bits(),
                        r.to_bits(),
                        "{metric} n={n} dim={dim} row {i}: {c} vs {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn bulk_encoder_is_bit_identical_to_encode_into_and_flags_clamps() {
        for dim in [1, 7, 16, 33, 96] {
            let data = matrix(21, 40, dim);
            let p = Sq8Params::train(&data, dim);
            let enc = p.encoder(SQ8_LEVELS);
            for row in data.chunks_exact(dim) {
                let mut a = Vec::new();
                p.encode_into(row, &mut a);
                let mut b = Vec::new();
                let clamped = enc.encode_row(row, &mut b);
                assert_eq!(a, b, "dim={dim}");
                assert!(!clamped, "in-range row reported as clamped (dim={dim})");
            }
            let far: Vec<f32> = (0..dim).map(|_| 1e7).collect();
            let mut codes = Vec::new();
            assert!(enc.encode_row(&far, &mut codes));
        }
        // Zero-scale dimensions: only values off the constant clamp.
        let p = Sq8Params::train(&[3.0, 3.0, 3.0], 1);
        let enc = p.encoder(SQ8_LEVELS);
        let mut codes = Vec::new();
        assert!(!enc.encode_row(&[3.0], &mut codes));
        assert!(enc.encode_row(&[4.0], &mut codes));
    }

    #[test]
    fn scorer_ranks_like_exact_on_separated_data() {
        // Clustered data: quantized ranking must agree with exact
        // ranking on well-separated points.
        let dim = 16;
        let mut data = Vec::new();
        for i in 0..32 {
            let c = (i % 4) as f32 * 10.0;
            let mut v = pseudo_vec(50 + i, dim);
            for x in &mut v {
                *x += c;
            }
            data.extend_from_slice(&v);
        }
        let p = Sq8Params::train(&data, dim);
        let q: Vec<f32> = vec![10.0; dim];
        let scorer = Sq8Scorer::new(Metric::L2, &q, &p);
        let mut approx: Vec<(usize, f32)> = Vec::new();
        let mut exact: Vec<(usize, f32)> = Vec::new();
        for (i, row) in data.chunks_exact(dim).enumerate() {
            let mut codes = Vec::new();
            p.encode_into(row, &mut codes);
            approx.push((i, scorer.score(&codes)));
            exact.push((i, Metric::L2.distance(&q, row)));
        }
        approx.sort_by(|a, b| a.1.total_cmp(&b.1));
        exact.sort_by(|a, b| a.1.total_cmp(&b.1));
        let a8: std::collections::HashSet<usize> = approx[..8].iter().map(|&(i, _)| i).collect();
        let e8: std::collections::HashSet<usize> = exact[..8].iter().map(|&(i, _)| i).collect();
        assert!(a8.intersection(&e8).count() >= 7, "{a8:?} vs {e8:?}");
    }
}
