//! Bounded top-k heaps and the parallel heap merge.
//!
//! Algorithm 2 of the paper keeps, per worker thread, "its own heap of
//! its current top-k vectors, and an efficient parallel heap merge is
//! performed once all threads finish processing their partitions".
//! [`TopK`] is that per-thread bounded max-heap (worst candidate on
//! top, evicted when something closer arrives); [`merge_all`] is the
//! final merge.

use std::collections::BinaryHeap;

/// One search result: a vector id and its distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    pub id: u64,
    pub distance: f32,
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order: distance first (NaN sorts greatest), then id for
        // determinism across runs and thread counts.
        self.distance
            .total_cmp(&other.distance)
            .then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded max-heap retaining the `k` smallest-distance candidates.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// A heap retaining at most `k` neighbours.
    pub fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of retained candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no candidates are retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current k-th (worst retained) distance, or `+∞` while the
    /// heap is not yet full. Scans can use this to skip candidates
    /// early.
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().map_or(f32::INFINITY, |n| n.distance)
        }
    }

    /// Offers a candidate (Algorithm 2 lines 7–10). Returns `true` if
    /// it was retained.
    #[inline]
    pub fn push(&mut self, id: u64, distance: f32) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(Neighbor { id, distance });
            return true;
        }
        let worst = self.heap.peek().expect("heap full");
        if (Neighbor { id, distance }) < *worst {
            self.heap.pop();
            self.heap.push(Neighbor { id, distance });
            true
        } else {
            false
        }
    }

    /// Absorbs another heap (the pairwise step of the parallel merge).
    pub fn merge(&mut self, other: TopK) {
        for n in other.heap {
            self.push(n.id, n.distance);
        }
    }

    /// Extracts the retained candidates sorted by ascending distance.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

/// Merges per-thread heaps into one, then sorts: the "parallel heap
/// merge" + "parallel sort" tail of the query pipeline (Figure 3).
/// Merging is pairwise-tree shaped so work is `O(t·k·log k)`.
pub fn merge_all(mut heaps: Vec<TopK>, k: usize) -> Vec<Neighbor> {
    if heaps.is_empty() {
        return Vec::new();
    }
    // Tree reduction: repeatedly merge pairs.
    while heaps.len() > 1 {
        let mut next = Vec::with_capacity(heaps.len().div_ceil(2));
        let mut it = heaps.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge(b);
            }
            next.push(a);
        }
        heaps = next;
    }
    let mut out = heaps.pop().expect("non-empty").into_sorted();
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_k_smallest() {
        let mut t = TopK::new(3);
        for (id, d) in [(1, 5.0), (2, 1.0), (3, 4.0), (4, 2.0), (5, 9.0), (6, 0.5)] {
            t.push(id, d);
        }
        let got = t.into_sorted();
        assert_eq!(
            got.iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![6, 2, 4],
            "ids of the 3 smallest distances, ascending"
        );
        assert_eq!(got[0].distance, 0.5);
    }

    #[test]
    fn threshold_tracks_kth() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f32::INFINITY);
        t.push(1, 3.0);
        assert_eq!(t.threshold(), f32::INFINITY, "not full yet");
        t.push(2, 1.0);
        assert_eq!(t.threshold(), 3.0);
        t.push(3, 2.0);
        assert_eq!(t.threshold(), 2.0);
        // Worse candidates are rejected.
        assert!(!t.push(4, 5.0));
        assert_eq!(t.threshold(), 2.0);
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        let mut state = 42u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32) / (1u32 << 31) as f32
        };
        for k in [1, 7, 100] {
            let items: Vec<(u64, f32)> = (0..500).map(|i| (i, next())).collect();
            let mut t = TopK::new(k);
            for &(id, d) in &items {
                t.push(id, d);
            }
            let got = t.into_sorted();
            let mut want: Vec<Neighbor> = items
                .iter()
                .map(|&(id, distance)| Neighbor { id, distance })
                .collect();
            want.sort_unstable();
            want.truncate(k);
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn merge_equals_single_heap() {
        let mut state = 7u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32) / (1u32 << 31) as f32
        };
        let items: Vec<(u64, f32)> = (0..1000).map(|i| (i, next())).collect();
        let k = 25;
        // One big heap.
        let mut single = TopK::new(k);
        for &(id, d) in &items {
            single.push(id, d);
        }
        // Eight per-thread heaps merged.
        let mut shards: Vec<TopK> = (0..8).map(|_| TopK::new(k)).collect();
        for (i, &(id, d)) in items.iter().enumerate() {
            shards[i % 8].push(id, d);
        }
        let merged = merge_all(shards, k);
        assert_eq!(merged, single.into_sorted());
    }

    #[test]
    fn merge_all_edge_cases() {
        assert!(merge_all(vec![], 5).is_empty());
        let empty = TopK::new(5);
        assert!(merge_all(vec![empty], 5).is_empty());
        let mut one = TopK::new(5);
        one.push(1, 1.0);
        assert_eq!(merge_all(vec![one], 5).len(), 1);
        // k = 0 retains nothing.
        let mut z = TopK::new(0);
        assert!(!z.push(1, 1.0));
        assert!(z.into_sorted().is_empty());
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let mut t = TopK::new(2);
        t.push(9, 1.0);
        t.push(3, 1.0);
        t.push(5, 1.0);
        let got: Vec<u64> = t.into_sorted().iter().map(|n| n.id).collect();
        assert_eq!(got, vec![3, 5], "equal distances keep smallest ids");
    }

    #[test]
    fn nan_distances_sort_last_and_get_evicted() {
        let mut t = TopK::new(2);
        t.push(1, f32::NAN);
        t.push(2, 1.0);
        t.push(3, 2.0);
        let got: Vec<u64> = t.into_sorted().iter().map(|n| n.id).collect();
        assert_eq!(got, vec![2, 3]);
    }
}
