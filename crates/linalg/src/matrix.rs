//! Dense row-major matrices and the blocked `A·Bᵀ` kernel behind batch
//! query processing.
//!
//! The paper's multi-query optimization computes "distances between
//! queries and the vectors in the partition … via a single matrix
//! multiplication" (§3.4). [`gemm_nt`] is that multiplication: queries
//! `Q (q×d)` against partition rows `R (n×d)` producing the `q×n` inner
//! product matrix, blocked so each partition row is loaded once for a
//! whole strip of queries.

use crate::distance::{dot, norm, Metric};

/// A dense row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { data, rows, cols }
    }

    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrowed row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Appends a row (matrix builder for streaming scans).
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols);
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Per-row Euclidean norms.
    pub fn row_norms(&self) -> Vec<f32> {
        (0..self.rows).map(|i| norm(self.row(i))).collect()
    }
}

/// Strip width: how many A-rows (queries) share one pass over B. Large
/// enough to amortize B traffic, small enough that the strip of
/// accumulators stays in cache.
const STRIP: usize = 8;

/// `out[i * b_rows + j] = ⟨a_i, b_j⟩` for row-major `a (a_rows × dim)`
/// and `b (b_rows × dim)`. `out` must have length `a_rows * b_rows`.
pub fn gemm_nt(a: &[f32], a_rows: usize, b: &[f32], b_rows: usize, dim: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), a_rows * dim);
    debug_assert_eq!(b.len(), b_rows * dim);
    debug_assert_eq!(out.len(), a_rows * b_rows);
    let mut ai = 0;
    while ai < a_rows {
        let strip = (a_rows - ai).min(STRIP);
        for (j, brow) in b.chunks_exact(dim.max(1)).enumerate() {
            for q in 0..strip {
                let arow = &a[(ai + q) * dim..(ai + q + 1) * dim];
                out[(ai + q) * b_rows + j] = dot(arow, brow);
            }
        }
        ai += strip;
    }
}

/// Batched distances: for queries `Q (q×d)` and rows `R (n×d)`, fills
/// `out (q×n)` with `metric` distances via one inner-product pass plus
/// norm corrections. This is the MQO kernel of §3.4.
pub fn batch_distances(
    metric: Metric,
    queries: &[f32],
    n_queries: usize,
    rows: &[f32],
    n_rows: usize,
    dim: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), n_queries * n_rows);
    match metric {
        Metric::Dot => {
            gemm_nt(queries, n_queries, rows, n_rows, dim, out);
            for v in out.iter_mut() {
                *v = -*v;
            }
        }
        Metric::Cosine => {
            gemm_nt(queries, n_queries, rows, n_rows, dim, out);
            let qn: Vec<f32> = queries.chunks_exact(dim).map(norm).collect();
            let rn: Vec<f32> = rows.chunks_exact(dim).map(norm).collect();
            for qi in 0..n_queries {
                for rj in 0..n_rows {
                    let denom = qn[qi] * rn[rj];
                    let v = &mut out[qi * n_rows + rj];
                    *v = if denom <= f32::EPSILON {
                        1.0
                    } else {
                        1.0 - *v / denom
                    };
                }
            }
        }
        Metric::L2 => {
            // ‖q − r‖² = ‖q‖² − 2⟨q,r⟩ + ‖r‖²: one GEMM plus two norm
            // vectors, instead of n_queries × n_rows subtractions.
            gemm_nt(queries, n_queries, rows, n_rows, dim, out);
            let qs: Vec<f32> = queries.chunks_exact(dim).map(|q| dot(q, q)).collect();
            let rs: Vec<f32> = rows.chunks_exact(dim).map(|r| dot(r, r)).collect();
            for qi in 0..n_queries {
                for rj in 0..n_rows {
                    let v = &mut out[qi * n_rows + rj];
                    *v = (qs[qi] - 2.0 * *v + rs[rj]).max(0.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_vec(seed: u64, dim: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..dim)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn matrix_basics() {
        let m = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        let mut m = Matrix::zeros(0, 3);
        m.push_row(&[1.0, 0.0, 0.0]);
        m.push_row(&[0.0, 2.0, 0.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row_norms(), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        Matrix::from_vec(vec![1.0; 5], 2, 3);
    }

    #[test]
    fn gemm_matches_pairwise_dot() {
        for (q, n, d) in [
            (1, 1, 4),
            (3, 7, 16),
            (8, 20, 33),
            (17, 5, 96),
            (2, 100, 128),
        ] {
            let a: Vec<f32> = (0..q).flat_map(|i| pseudo_vec(i as u64, d)).collect();
            let b: Vec<f32> = (0..n)
                .flat_map(|j| pseudo_vec(1000 + j as u64, d))
                .collect();
            let mut out = vec![0.0; q * n];
            gemm_nt(&a, q, &b, n, d, &mut out);
            for i in 0..q {
                for j in 0..n {
                    let want = dot(&a[i * d..(i + 1) * d], &b[j * d..(j + 1) * d]);
                    assert!(
                        (out[i * n + j] - want).abs() < 1e-3,
                        "({q},{n},{d}) at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_distances_match_scalar_kernels() {
        let (q, n, d) = (5, 13, 48);
        let a: Vec<f32> = (0..q).flat_map(|i| pseudo_vec(i as u64, d)).collect();
        let b: Vec<f32> = (0..n).flat_map(|j| pseudo_vec(500 + j as u64, d)).collect();
        for metric in [Metric::L2, Metric::Cosine, Metric::Dot] {
            let mut out = vec![0.0; q * n];
            batch_distances(metric, &a, q, &b, n, d, &mut out);
            for i in 0..q {
                for j in 0..n {
                    let want = metric.distance(&a[i * d..(i + 1) * d], &b[j * d..(j + 1) * d]);
                    assert!(
                        (out[i * n + j] - want).abs() < 1e-3,
                        "{metric} at ({i},{j}): {} vs {want}",
                        out[i * n + j]
                    );
                }
            }
        }
    }

    #[test]
    fn l2_batch_is_nonnegative_despite_cancellation() {
        // Identical vectors: the norm identity cancels to ~0 and must
        // not go negative.
        let v = pseudo_vec(3, 64);
        let mut out = vec![0.0; 1];
        batch_distances(Metric::L2, &v, 1, &v, 1, 64, &mut out);
        assert!(out[0] >= 0.0 && out[0] < 1e-3);
    }
}
