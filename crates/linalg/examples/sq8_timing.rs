//! Quick manual timing harness for `Sq8Scorer::score_chunk` vs the
//! row-at-a-time `score` loop (best-of-5 trials, wall clock).
use micronn_linalg::{Metric, Sq8Params, Sq8Scorer};

fn pseudo_vec(seed: u64, dim: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..dim)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn main() {
    let rows = 1024usize;
    for dim in [96usize, 128, 256, 512] {
        let data: Vec<f32> = (0..rows)
            .flat_map(|i| pseudo_vec(7 + i as u64, dim))
            .collect();
        let params = Sq8Params::train(&data, dim);
        let mut block: Vec<u8> = Vec::with_capacity(rows * dim);
        for row in data.chunks_exact(dim) {
            params.encode_into(row, &mut block);
        }
        let query = pseudo_vec(999, dim);
        let scorer = Sq8Scorer::new(Metric::L2, &query, &params);
        let mut out = Vec::with_capacity(rows);
        let iters = 2000;
        let mut best_row = f64::MAX;
        let mut best_chunk = f64::MAX;
        for _trial in 0..5 {
            let t = std::time::Instant::now();
            for _ in 0..iters {
                out.clear();
                for row in std::hint::black_box(&block[..]).chunks_exact(dim) {
                    out.push(scorer.score(row));
                }
                std::hint::black_box(&out);
            }
            best_row = best_row.min(t.elapsed().as_secs_f64() / iters as f64);
            let t = std::time::Instant::now();
            for _ in 0..iters {
                out.clear();
                scorer.score_chunk(std::hint::black_box(&block[..]), &mut out);
                std::hint::black_box(&out);
            }
            best_chunk = best_chunk.min(t.elapsed().as_secs_f64() / iters as f64);
        }
        println!(
            "dim {dim:4}: row {:8.2}us  chunk {:8.2}us  speedup {:.2}x",
            best_row * 1e6,
            best_chunk * 1e6,
            best_row / best_chunk
        );
    }
}
