//! Fixed-size pages: the unit of disk I/O, WAL logging, and buffer-pool
//! caching.
//!
//! Every structure in the store (B+tree nodes, overflow chains, the
//! freelist, the header) lives in a 4 KiB page, mirroring SQLite's
//! default page size, which the paper relies on for its I/O accounting.

use std::ops::{Deref, DerefMut};

/// Size of every database page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within the database file. Page `0` is the
/// header page; user data starts at page `1`.
pub type PageId = u32;

/// Page type tags stored in the first byte of every non-header page.
pub mod page_type {
    /// B+tree leaf node.
    pub const BTREE_LEAF: u8 = 1;
    /// B+tree interior node.
    pub const BTREE_INTERIOR: u8 = 2;
    /// Overflow-chain page holding a slice of a large value.
    pub const OVERFLOW: u8 = 3;
    /// Member of the free-page list.
    pub const FREE: u8 = 4;
}

/// An owned, heap-allocated page image.
///
/// Pages are shared through `Arc<PageData>`: the buffer pool hands out
/// clones, and the write transaction uses `Arc::make_mut` for
/// copy-on-write so that concurrent readers never observe in-flight
/// modifications.
#[derive(Clone, PartialEq, Eq)]
pub struct PageData(Box<[u8; PAGE_SIZE]>);

impl PageData {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        PageData(Box::new([0u8; PAGE_SIZE]))
    }

    /// Builds a page from a raw buffer of exactly [`PAGE_SIZE`] bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        debug_assert_eq!(bytes.len(), PAGE_SIZE);
        let mut p = PageData::zeroed();
        p.0.copy_from_slice(bytes);
        p
    }

    /// Page type tag (first byte).
    pub fn page_type(&self) -> u8 {
        self.0[0]
    }

    // --- little-endian scalar accessors used by all page layouts ---

    /// Reads a `u16` at `off`.
    #[inline]
    pub fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.0[off], self.0[off + 1]])
    }

    /// Writes a `u16` at `off`.
    #[inline]
    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.0[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u32` at `off`.
    #[inline]
    pub fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.0[off..off + 4].try_into().unwrap())
    }

    /// Writes a `u32` at `off`.
    #[inline]
    pub fn put_u32(&mut self, off: usize, v: u32) {
        self.0[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u64` at `off`.
    #[inline]
    pub fn get_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.0[off..off + 8].try_into().unwrap())
    }

    /// Writes a `u64` at `off`.
    #[inline]
    pub fn put_u64(&mut self, off: usize, v: u64) {
        self.0[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

impl Deref for PageData {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl DerefMut for PageData {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.0
    }
}

impl std::fmt::Debug for PageData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageData(type={})", self.page_type())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_all_zero() {
        let p = PageData::zeroed();
        assert!(p.iter().all(|&b| b == 0));
        assert_eq!(p.page_type(), 0);
    }

    #[test]
    fn scalar_roundtrips() {
        let mut p = PageData::zeroed();
        p.put_u16(10, 0xBEEF);
        p.put_u32(100, 0xDEAD_BEEF);
        p.put_u64(200, 0x0123_4567_89AB_CDEF);
        assert_eq!(p.get_u16(10), 0xBEEF);
        assert_eq!(p.get_u32(100), 0xDEAD_BEEF);
        assert_eq!(p.get_u64(200), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn from_bytes_roundtrip() {
        let mut raw = vec![0u8; PAGE_SIZE];
        raw[0] = page_type::BTREE_LEAF;
        raw[PAGE_SIZE - 1] = 0xAB;
        let p = PageData::from_bytes(&raw);
        assert_eq!(p.page_type(), page_type::BTREE_LEAF);
        assert_eq!(p[PAGE_SIZE - 1], 0xAB);
    }

    #[test]
    fn scalars_at_page_boundary() {
        let mut p = PageData::zeroed();
        p.put_u64(PAGE_SIZE - 8, u64::MAX);
        assert_eq!(p.get_u64(PAGE_SIZE - 8), u64::MAX);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = PageData::zeroed();
        a.put_u32(0, 7);
        let b = a.clone();
        a.put_u32(0, 9);
        assert_eq!(b.get_u32(0), 7);
        assert_eq!(a.get_u32(0), 9);
    }
}
