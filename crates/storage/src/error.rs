//! Error types for the storage engine.

use std::fmt;
use std::io;

/// Convenience alias used across the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors produced by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The database file is not a MicroNN store or is from an
    /// incompatible version.
    BadHeader(String),
    /// A page was read whose content does not match its expected type
    /// (e.g. a leaf where an interior node was expected). Indicates
    /// corruption or a logic bug.
    Corrupt(String),
    /// A key exceeded the B+tree's maximum key length
    /// (`MAX_KEY_LEN`).
    KeyTooLarge(usize),
    /// A page id outside the allocated file was referenced.
    PageOutOfBounds(u32),
    /// The WAL contained a frame that failed its checksum during
    /// recovery; recovery stops at the last valid commit.
    WalChecksum(u64),
    /// An operation required a committed write transaction but the
    /// transaction was already consumed.
    TxnClosed,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::BadHeader(m) => write!(f, "bad database header: {m}"),
            StorageError::Corrupt(m) => write!(f, "corruption detected: {m}"),
            StorageError::KeyTooLarge(n) => write!(f, "key of {n} bytes exceeds maximum"),
            StorageError::PageOutOfBounds(p) => write!(f, "page {p} out of bounds"),
            StorageError::WalChecksum(frame) => {
                write!(f, "wal frame {frame} failed checksum validation")
            }
            StorageError::TxnClosed => write!(f, "write transaction already closed"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StorageError::BadHeader("magic mismatch".into());
        assert!(e.to_string().contains("magic mismatch"));
        let e = StorageError::KeyTooLarge(9000);
        assert!(e.to_string().contains("9000"));
        let e = StorageError::WalChecksum(7);
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let ioe = io::Error::new(io::ErrorKind::NotFound, "nope");
        let e: StorageError = ioe.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
