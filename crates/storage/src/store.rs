//! The page store: single-writer / multi-reader transactions over a
//! paged file with a write-ahead log and a bounded buffer pool.
//!
//! This is the component the paper obtains from SQLite (§3.2): MicroNN
//! "allows concurrent clients: a single writer (performing upserts,
//! deletes, and index rebuilds) and multiple readers across threads",
//! each reader seeing a snapshot-isolated view (§2.1 requirement 2).
//!
//! ## Transaction model (MVCC)
//!
//! * [`Store::begin_read`] captures the WAL's committed sequence number
//!   as a snapshot, registering it in the reader registry *under the
//!   committed-state lock* so no commit/checkpoint pair can slip
//!   between capture and registration. Page reads resolve to the
//!   newest WAL record at or below the snapshot, else the main file.
//!   Deregistration lives in a drop guard ([`ReadTxn`]'s only
//!   non-`Copy` field), so a panic or early return can never leak a
//!   registration and pin the snapshot floor forever.
//! * [`Store::begin_write`] allocates a transaction id and takes the
//!   writer mutex (write transactions are fully serialized, as in the
//!   paper); readers never touch that mutex, so searches and
//!   maintenance never wait on each other. Mutations are copy-on-write
//!   into a private dirty set; [`WriteTxn::commit`] appends the dirty
//!   pages to the WAL as one `Begin`/`PagePut`.../`Commit` record run
//!   and returns the commit sequence number. Dropping the transaction
//!   without committing discards it (rollback).
//! * The buffer pool keys entries by `(page, version)`, so many
//!   versions of one page coexist. When the oldest registered snapshot
//!   advances (a reader guard drops), versions no current or future
//!   snapshot can resolve are garbage collected
//!   ([`crate::pool::BufferPool::gc_versions`]).
//! * A checkpoint folds committed records into the main file when no
//!   reader holds an older snapshot, bounding WAL growth.
//!
//! ## Durability
//!
//! Both files are accessed exclusively through the
//! [`crate::vfs::Vfs`] layer. Under [`SyncMode::Normal`] every
//! commit publishes its frames under the writer lock, then — with the
//! lock released — joins a **group fsync** ([`crate::wal::Wal`]'s
//! group commit) before acknowledging; a checkpoint syncs the main
//! file before truncating the log. This ordering is what the
//! crash-injection harness ([`crate::sim::SimVfs`], the
//! `failure_injection` suite, and `crates/core/tests/crash_recovery.rs`
//! above this crate) verifies by cutting power at every write and
//! fsync and dropping arbitrary subsets of unsynced writes: an
//! acknowledged commit is always durable, while a published-but-
//! unsynced commit may be lost (it was never acked).
//!
//! ## Readahead
//!
//! [`ReadTxn::prefetch_pages`] hands page ids to a background worker
//! that loads them into the buffer pool with the `Scan` admission
//! hint. The worker performs reads only — never writes or fsyncs — so
//! it cannot perturb the deterministic mutation stream the crash
//! harness depends on, and every image it caches is validated against
//! a checkpoint generation counter so a concurrent checkpoint can
//! never poison the pool with a mismatched version.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use micronn_telemetry::{SinkCell, Span};
use parking_lot::{Mutex, RwLock};

use crate::error::{Result, StorageError};
use crate::page::page_type;
use crate::page::{PageData, PageId, PAGE_SIZE};
use crate::pool::{Access, BufferPool};
use crate::stats::{IoStats, StoreStats};
use crate::vfs::{OpenMode, StdVfs, Vfs, VfsFile};
use crate::wal::Wal;

/// Magic prefix of the main database file.
const DB_MAGIC: u64 = 0x4D49_4352_4F4E_4E31; // "MICRONN1"
/// On-disk format version.
const DB_FORMAT: u32 = 1;

/// Number of named B+tree root slots in the header page. The relational
/// layer uses slot 0 for its catalog; the rest are spare.
pub const NUM_ROOTS: usize = 8;

// Header-page field offsets.
const OFF_MAGIC: usize = 0;
const OFF_FORMAT: usize = 8;
const OFF_PAGE_COUNT: usize = 12;
const OFF_FREELIST_HEAD: usize = 16;
const OFF_FREELIST_COUNT: usize = 20;
const OFF_ROOTS: usize = 24;

/// Durability level for commits and checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Never fsync. Fast; safe against process crash (the WAL is still
    /// written) but not against power loss. Used by tests and benches.
    Off,
    /// Group-fsync the WAL before acknowledging each commit, and sync
    /// the main file before WAL truncation. Survives power loss. The
    /// default.
    Normal,
    /// Like `Normal` plus an fsync of the WAL header on creation and
    /// the main file on every checkpoint write batch.
    Full,
}

/// Tunables for opening a [`Store`].
#[derive(Clone)]
pub struct StoreOptions {
    /// Buffer-pool budget in bytes. This is the paper's main memory
    /// lever: the "Small DUT" and "Large DUT" profiles differ in pool
    /// size (Figures 4, 5, 8).
    pub pool_bytes: usize,
    /// Durability mode.
    pub sync: SyncMode,
    /// Auto-checkpoint once the WAL holds at least this many frames
    /// (checked after each commit). `0` disables auto-checkpointing.
    pub checkpoint_after_frames: usize,
    /// Write transactions spill dirty pages to the WAL (unpublished,
    /// invisible to readers) once this many are held in memory, so even
    /// a full index rebuild runs in bounded memory — the same cache
    /// spill SQLite performs for transactions larger than its page
    /// cache. `0` disables spilling.
    pub spill_after_pages: usize,
    /// Upper bound on page ids queued for background readahead
    /// ([`ReadTxn::prefetch_pages`]); requests past the bound are
    /// dropped rather than queued. `0` disables the prefetch worker
    /// entirely.
    pub prefetch_queue_pages: usize,
    /// The file system every byte of store I/O goes through:
    /// [`StdVfs`] in production, [`crate::sim::SimVfs`] in the
    /// crash-injection harnesses.
    pub vfs: Arc<dyn Vfs>,
    /// Mount point for span tracing: WAL group commits and checkpoints
    /// record [`micronn_telemetry::Span`]s (duration, bytes, fsyncs)
    /// when a sink is installed. Disabled (and overhead-free) by
    /// default; the layer above typically shares one cell across the
    /// store and the query executor.
    pub trace: Arc<SinkCell>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            pool_bytes: 8 * 1024 * 1024,
            sync: SyncMode::Normal,
            checkpoint_after_frames: 2048,
            spill_after_pages: 4096,
            prefetch_queue_pages: 256,
            vfs: StdVfs::handle(),
            trace: Arc::new(SinkCell::new()),
        }
    }
}

impl std::fmt::Debug for StoreOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreOptions")
            .field("pool_bytes", &self.pool_bytes)
            .field("sync", &self.sync)
            .field("checkpoint_after_frames", &self.checkpoint_after_frames)
            .field("spill_after_pages", &self.spill_after_pages)
            .field("prefetch_queue_pages", &self.prefetch_queue_pages)
            .field("vfs", &self.vfs.name())
            .field("trace", &self.trace.enabled())
            .finish()
    }
}

/// Durable header metadata, mirrored in memory for fast access.
#[derive(Debug, Clone, Copy)]
struct Meta {
    page_count: u32,
    freelist_head: u32,
    freelist_count: u32,
    roots: [u32; NUM_ROOTS],
}

impl Meta {
    fn fresh() -> Meta {
        Meta {
            page_count: 1, // page 0 is the header
            freelist_head: 0,
            freelist_count: 0,
            roots: [0; NUM_ROOTS],
        }
    }

    fn decode(p: &PageData) -> Result<Meta> {
        if p.get_u64(OFF_MAGIC) != DB_MAGIC {
            return Err(StorageError::BadHeader("magic mismatch".into()));
        }
        if p.get_u32(OFF_FORMAT) != DB_FORMAT {
            return Err(StorageError::BadHeader(format!(
                "format {} unsupported",
                p.get_u32(OFF_FORMAT)
            )));
        }
        let mut roots = [0u32; NUM_ROOTS];
        for (i, r) in roots.iter_mut().enumerate() {
            *r = p.get_u32(OFF_ROOTS + i * 4);
        }
        Ok(Meta {
            page_count: p.get_u32(OFF_PAGE_COUNT),
            freelist_head: p.get_u32(OFF_FREELIST_HEAD),
            freelist_count: p.get_u32(OFF_FREELIST_COUNT),
            roots,
        })
    }

    fn encode(&self, p: &mut PageData) {
        p.put_u64(OFF_MAGIC, DB_MAGIC);
        p.put_u32(OFF_FORMAT, DB_FORMAT);
        p.put_u32(OFF_PAGE_COUNT, self.page_count);
        p.put_u32(OFF_FREELIST_HEAD, self.freelist_head);
        p.put_u32(OFF_FREELIST_COUNT, self.freelist_count);
        for (i, r) in self.roots.iter().enumerate() {
            p.put_u32(OFF_ROOTS + i * 4, *r);
        }
    }
}

/// Committed state published to new transactions.
struct Committed {
    seq: u64,
    meta: Meta,
}

struct StoreInner {
    main: Box<dyn VfsFile>,
    path: PathBuf,
    wal: Wal,
    pool: BufferPool,
    stats: IoStats,
    opts: StoreOptions,
    committed: RwLock<Committed>,
    /// Single-writer token; held for the lifetime of a [`WriteTxn`].
    writer: Arc<Mutex<()>>,
    /// Write-transaction id allocator; ids are process-local and only
    /// need to be unique, not dense.
    next_txid: AtomicU64,
    /// Active reader snapshots: `snapshot -> count`.
    readers: Mutex<BTreeMap<u64, usize>>,
    /// For each page copied into the main file by a checkpoint, the WAL
    /// seq of the image now in the main file. Pages absent here carry
    /// version `0` (unchanged since open).
    base_version: RwLock<HashMap<PageId, u64>>,
    /// Queue into the background readahead worker; `None` when
    /// prefetching is disabled.
    prefetch_tx: Option<crossbeam::channel::Sender<PrefetchBatch>>,
    /// Pages queued but not yet processed by the readahead worker;
    /// bounds the queue at `opts.prefetch_queue_pages`.
    prefetch_backlog: AtomicUsize,
    /// Checkpoint generation seqlock: odd while a checkpoint is
    /// rewriting the main file / resetting the WAL. The prefetch
    /// worker rejects any image whose read overlapped a checkpoint,
    /// since the image may no longer match its resolved version.
    ckpt_gen: AtomicU64,
}

/// One readahead request: page ids to warm at a reader's snapshot.
struct PrefetchBatch {
    snapshot: u64,
    pages: Vec<PageId>,
}

/// Read access to pages at some transaction's snapshot. Implemented by
/// both [`ReadTxn`] and [`WriteTxn`] so the B+tree and everything above
/// it work identically in either context.
pub trait PageRead {
    /// Fetches the page image visible to this transaction.
    fn page(&self, id: PageId) -> Result<Arc<PageData>>;
    /// Like [`PageRead::page`], but tagged as part of a bulk scan:
    /// implementations backed by a cache admit the image with the
    /// scan hint so sweeps cannot displace the hot working set.
    fn page_scan(&self, id: PageId) -> Result<Arc<PageData>> {
        self.page(id)
    }
    /// Hints that `ids` are likely to be read soon; implementations
    /// may warm a cache asynchronously. Best-effort, default no-op.
    fn prefetch_pages(&self, _ids: &[PageId]) {}
    /// Root page stored in header slot `slot`.
    fn root(&self, slot: usize) -> PageId;
    /// When this transaction's view is *exactly* the committed state at
    /// some sequence number, that number; `None` for views that may
    /// include uncommitted mutations (write transactions). Snapshot-
    /// keyed caches above the store use this to decide whether a value
    /// derived through this view may be published for other readers.
    fn committed_snapshot(&self) -> Option<u64> {
        None
    }
}

impl<R: PageRead + ?Sized> PageRead for &R {
    fn page(&self, id: PageId) -> Result<Arc<PageData>> {
        (**self).page(id)
    }
    fn page_scan(&self, id: PageId) -> Result<Arc<PageData>> {
        (**self).page_scan(id)
    }
    fn prefetch_pages(&self, ids: &[PageId]) {
        (**self).prefetch_pages(ids)
    }
    fn root(&self, slot: usize) -> PageId {
        (**self).root(slot)
    }
    fn committed_snapshot(&self) -> Option<u64> {
        (**self).committed_snapshot()
    }
}

/// An embedded, WAL-backed page store. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Store {
    inner: Arc<StoreInner>,
}

impl Store {
    /// Creates a new database at `path` (fails if it already exists).
    pub fn create(path: impl AsRef<Path>, opts: StoreOptions) -> Result<Store> {
        let path = path.as_ref().to_owned();
        let main = opts.vfs.open(&path, OpenMode::CreateNew)?;
        let meta = Meta::fresh();
        let mut header = PageData::zeroed();
        meta.encode(&mut header);
        main.write_all_at(&header[..], 0)?;
        if !matches!(opts.sync, SyncMode::Off) {
            main.sync()?;
        }
        let wal = Wal::create(
            &*opts.vfs,
            &wal_path(&path),
            matches!(opts.sync, SyncMode::Full),
        )?;
        Ok(Store::assemble(main, path, wal, meta, 0, opts))
    }

    /// Opens an existing database, running WAL crash recovery.
    pub fn open(path: impl AsRef<Path>, opts: StoreOptions) -> Result<Store> {
        let path = path.as_ref().to_owned();
        let main = opts.vfs.open(&path, OpenMode::Open)?;
        let opened = Wal::open(
            &*opts.vfs,
            &wal_path(&path),
            matches!(opts.sync, SyncMode::Full),
        )?;
        let wal = opened.wal;
        // The authoritative header is the newest committed version of
        // page 0, which may live in the WAL.
        let snapshot = wal.index().committed_seq();
        let header = match wal.index().find(0, snapshot) {
            Some(frame) => wal.read_frame(frame)?,
            None => {
                let mut p = PageData::zeroed();
                main.read_exact_at(&mut p[..], 0)?;
                p
            }
        };
        let meta = Meta::decode(&header)?;
        Ok(Store::assemble(main, path, wal, meta, snapshot, opts))
    }

    /// Opens `path`, creating it first if it does not exist.
    pub fn open_or_create(path: impl AsRef<Path>, opts: StoreOptions) -> Result<Store> {
        if opts.vfs.exists(path.as_ref()) {
            Store::open(path, opts)
        } else {
            Store::create(path, opts)
        }
    }

    fn assemble(
        main: Box<dyn VfsFile>,
        path: PathBuf,
        wal: Wal,
        meta: Meta,
        seq: u64,
        opts: StoreOptions,
    ) -> Store {
        let channel = if opts.prefetch_queue_pages > 0 {
            Some(crossbeam::channel::unbounded::<PrefetchBatch>())
        } else {
            None
        };
        let (prefetch_tx, prefetch_rx) = match channel {
            Some((tx, rx)) => (Some(tx), Some(rx)),
            None => (None, None),
        };
        // The worker holds only a Weak reference: dropping the last
        // Store handle drops the Sender inside StoreInner, which
        // disconnects the channel and lets the worker exit.
        let inner = Arc::new_cyclic(|weak: &std::sync::Weak<StoreInner>| {
            if let Some(rx) = prefetch_rx {
                let weak = weak.clone();
                // Spawn failure just leaves prefetching inert.
                let _ = std::thread::Builder::new()
                    .name("micronn-prefetch".into())
                    .spawn(move || prefetch_worker(rx, weak));
            }
            StoreInner {
                main,
                path,
                pool: BufferPool::new(opts.pool_bytes),
                stats: IoStats::default(),
                committed: RwLock::new(Committed { seq, meta }),
                writer: Arc::new(Mutex::new(())),
                next_txid: AtomicU64::new(1),
                readers: Mutex::new(BTreeMap::new()),
                base_version: RwLock::new(HashMap::new()),
                prefetch_tx,
                prefetch_backlog: AtomicUsize::new(0),
                ckpt_gen: AtomicU64::new(0),
                wal,
                opts,
            }
        });
        Store { inner }
    }

    /// Begins a snapshot-isolated read transaction. Never blocks: the
    /// snapshot is captured and registered while *holding* the
    /// committed-state read lock, so a commit + checkpoint pair cannot
    /// overwrite pages this snapshot resolves through the main file
    /// before the registration lands.
    pub fn begin_read(&self) -> ReadTxn {
        let committed = self.inner.committed.read();
        let snapshot = committed.seq;
        let meta = committed.meta;
        *self.inner.readers.lock().entry(snapshot).or_insert(0) += 1;
        drop(committed);
        IoStats::bump(&self.inner.stats.reader_pins);
        ReadTxn {
            guard: ReaderGuard {
                inner: Arc::clone(&self.inner),
                snapshot,
            },
            meta,
        }
    }

    /// Begins the (single) write transaction, blocking until any other
    /// writer finishes. Reads within the transaction see the latest
    /// committed state plus the transaction's own writes.
    pub fn begin_write(&self) -> Result<WriteTxn> {
        // Contended acquisitions are tallied: on the intended hot path
        // only writers and checkpoints ever touch this mutex, so the
        // counter staying flat proves readers never block a writer.
        let guard = match Mutex::try_lock_arc(&self.inner.writer) {
            Some(g) => g,
            None => {
                IoStats::bump(&self.inner.stats.writer_lock_waits);
                Mutex::lock_arc(&self.inner.writer)
            }
        };
        // Defensive: discard unpublished records a crashed/aborted
        // spilling transaction may have left behind.
        self.inner.wal.truncate_unpublished()?;
        let txid = self.inner.next_txid.fetch_add(1, Ordering::Relaxed);
        let committed = self.inner.committed.read();
        let snapshot = committed.seq;
        let meta = committed.meta;
        drop(committed);
        Ok(WriteTxn {
            inner: Arc::clone(&self.inner),
            _guard: guard,
            txid,
            snapshot,
            meta,
            dirty: HashMap::new(),
            spilled: HashMap::new(),
            done: false,
        })
    }

    /// Number of currently registered reader transactions. The stress
    /// suites assert this drains to zero — a leaked registration would
    /// pin the snapshot floor and block checkpoints forever.
    pub fn active_readers(&self) -> usize {
        self.inner.readers.lock().values().sum()
    }

    /// Oldest registered reader snapshot, if any reader is active.
    pub fn oldest_reader_snapshot(&self) -> Option<u64> {
        self.inner.readers.lock().keys().next().copied()
    }

    /// Latest committed sequence number (the snapshot a read
    /// transaction beginning now would pin).
    pub fn committed_seq(&self) -> u64 {
        self.inner.committed.read().seq
    }

    /// Attempts a checkpoint: folds committed WAL frames into the main
    /// file and truncates the WAL. Returns `true` if performed, `false`
    /// if skipped because a reader still needs an older snapshot or the
    /// WAL is empty. Takes the writer lock.
    pub fn checkpoint(&self) -> Result<bool> {
        let _guard = Mutex::lock_arc(&self.inner.writer);
        checkpoint_locked(&self.inner)
    }

    /// Current I/O counters. Evictions are tallied inside the pool;
    /// surface them here so stats deltas report cache pressure.
    pub fn stats(&self) -> StoreStats {
        let mut s = self.inner.stats.snapshot();
        s.pool_evictions = self.inner.pool.evictions();
        s
    }

    /// The live counter block behind [`Store::stats`], for
    /// re-registration into a [`micronn_telemetry::Registry`]
    /// (see [`IoStats::register_into`]). Note `pool_evictions` is
    /// tallied inside the pool and only folded in by [`Store::stats`].
    pub fn io(&self) -> &IoStats {
        &self.inner.stats
    }

    /// Bytes of page images resident in the buffer pool.
    pub fn resident_bytes(&self) -> usize {
        self.inner.pool.resident_bytes()
    }

    /// Drops all cached pages (the paper's ColdStart scenario).
    pub fn purge_cache(&self) {
        self.inner.pool.purge();
    }

    /// Database size in pages (latest committed).
    pub fn page_count(&self) -> u32 {
        self.inner.committed.read().meta.page_count
    }

    /// Pages sitting on the freelist (latest committed).
    pub fn freelist_len(&self) -> u32 {
        self.inner.committed.read().meta.freelist_count
    }

    /// Frames currently in the WAL.
    pub fn wal_frames(&self) -> usize {
        self.inner.wal.index().frame_count()
    }

    /// Path of the main database file.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Flushes everything to the main file and syncs (best effort if
    /// readers pin old snapshots). Call before dropping for a tidy
    /// single-file database; not required for durability.
    pub fn close(self) -> Result<()> {
        let _ = self.checkpoint()?;
        Ok(())
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("path", &self.inner.path)
            .field("pages", &self.page_count())
            .finish()
    }
}

fn wal_path(main: &Path) -> PathBuf {
    let mut os = main.as_os_str().to_owned();
    os.push("-wal");
    PathBuf::from(os)
}

/// Resolves a page image at `snapshot`, going through the buffer pool.
/// `access` is the cache-admission hint: `Scan` for bulk sweeps.
fn resolve_page(
    inner: &StoreInner,
    id: PageId,
    snapshot: u64,
    access: Access,
) -> Result<Arc<PageData>> {
    // Two attempts: when the oldest registered reader sits exactly at
    // the checkpoint watermark, a concurrent checkpoint may reset the
    // WAL between version resolution and the frame read. The second
    // attempt re-resolves against the post-reset state (the image now
    // lives in the main file).
    let mut last_err = None;
    for attempt in 0..2 {
        // Newest WAL record at or below the snapshot wins. Image offset
        // and seq come from one index lookup so a concurrent reset
        // cannot slip between them.
        let wal_hit = inner.wal.index().find_versioned(id, snapshot);
        let (version, from_wal) = match wal_hit {
            Some((offset, seq)) => (seq, Some(offset)),
            None => {
                let base = inner.base_version.read().get(&id).copied().unwrap_or(0);
                (base, None)
            }
        };
        if let Some(data) = inner.pool.get_with((id, version), access) {
            IoStats::bump(&inner.stats.pool_hits);
            return Ok(data);
        }
        if attempt == 0 {
            IoStats::bump(&inner.stats.pool_misses);
        }
        let read = match from_wal {
            Some(offset) => {
                IoStats::bump(&inner.stats.wal_reads);
                inner.wal.read_frame(offset)
            }
            None => {
                IoStats::bump(&inner.stats.main_reads);
                let mut p = PageData::zeroed();
                inner
                    .main
                    .read_exact_at(&mut p[..], id as u64 * PAGE_SIZE as u64)
                    .map_err(|e| {
                        if e.kind() == std::io::ErrorKind::UnexpectedEof {
                            StorageError::Corrupt(format!("page {id} missing from main file"))
                        } else {
                            StorageError::Io(e)
                        }
                    })
                    .map(|()| p)
            }
        };
        match read {
            Ok(p) => {
                let data = Arc::new(p);
                inner
                    .pool
                    .insert_with((id, version), Arc::clone(&data), access);
                return Ok(data);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("two attempts always record an error"))
}

/// Background readahead: drains [`PrefetchBatch`]es, loading each page
/// into the pool with the `Scan` hint. Performs reads only. Exits when
/// the channel disconnects (the last `Store` handle dropped) or the
/// store is gone.
fn prefetch_worker(
    rx: crossbeam::channel::Receiver<PrefetchBatch>,
    weak: std::sync::Weak<StoreInner>,
) {
    // Never hold a strong reference while blocked on `recv`: the
    // Sender lives inside StoreInner, so that would deadlock shutdown.
    while let Ok(batch) = rx.recv() {
        let Some(inner) = weak.upgrade() else { return };
        for &id in &batch.pages {
            prefetch_one(&inner, id, batch.snapshot);
        }
        inner
            .prefetch_backlog
            .fetch_sub(batch.pages.len(), Ordering::Relaxed);
    }
}

/// Loads one page at `snapshot` into the pool, best-effort. Validated
/// by the checkpoint-generation seqlock: resolving a version and
/// reading its image are not atomic against a checkpoint rewriting the
/// main file or resetting the WAL, so any overlap discards the image
/// instead of risking a (page, version) -> wrong-bytes cache entry.
fn prefetch_one(inner: &StoreInner, id: PageId, snapshot: u64) {
    let gen = inner.ckpt_gen.load(Ordering::Acquire);
    if gen & 1 == 1 {
        return; // checkpoint in flight
    }
    let wal_hit = inner.wal.index().find_versioned(id, snapshot);
    let (version, from_wal) = match wal_hit {
        Some((offset, seq)) => (seq, Some(offset)),
        None => {
            let base = inner.base_version.read().get(&id).copied().unwrap_or(0);
            (base, None)
        }
    };
    if inner.pool.contains((id, version)) {
        IoStats::bump(&inner.stats.prefetch_skipped);
        return;
    }
    let read = match from_wal {
        Some(offset) => inner.wal.read_frame(offset),
        None => {
            let mut p = PageData::zeroed();
            inner
                .main
                .read_exact_at(&mut p[..], id as u64 * PAGE_SIZE as u64)
                .map(|()| p)
                .map_err(StorageError::Io)
        }
    };
    let Ok(page) = read else {
        return; // best-effort: the demand read will surface real errors
    };
    if inner.ckpt_gen.load(Ordering::Acquire) != gen {
        return;
    }
    IoStats::bump(&inner.stats.prefetch_reads);
    IoStats::bump(if from_wal.is_some() {
        &inner.stats.wal_reads
    } else {
        &inner.stats.main_reads
    });
    inner
        .pool
        .insert_with((id, version), Arc::new(page), Access::Scan);
}

/// Folds WAL frames into the main file. Caller holds the writer lock.
fn checkpoint_locked(inner: &StoreInner) -> Result<bool> {
    let mx = {
        let index = inner.wal.index();
        if index.frame_count() == 0 {
            return Ok(false);
        }
        index.committed_seq()
    };
    // A reader below the watermark would observe checkpointed (newer)
    // pages through its main-file fallback; refuse until it finishes.
    {
        let readers = inner.readers.lock();
        if let Some((&oldest, _)) = readers.iter().next() {
            if oldest < mx {
                return Ok(false);
            }
        }
    }
    let trace_start = inner.opts.trace.enabled().then(std::time::Instant::now);
    let mut targets = inner.wal.index().latest_per_page(mx);
    // Ascending page order: better write locality, and — with the WAL
    // index map being unordered — a deterministic operation stream for
    // the crash-injection harness.
    targets.sort_unstable_by_key(|&(page, _, _)| page);
    // Seqlock around the mutating section (odd = in progress): the
    // prefetch worker discards any image whose read overlapped it.
    inner.ckpt_gen.fetch_add(1, Ordering::AcqRel);
    let res = checkpoint_copy(inner, &targets);
    inner.ckpt_gen.fetch_add(1, Ordering::Release);
    res?;
    if !matches!(inner.opts.sync, SyncMode::Off) {
        // Frames up to the watermark are now durable via the main
        // file; committers waiting on a group fsync for them can ack
        // without one.
        inner.wal.note_durable(mx);
    }
    IoStats::bump(&inner.stats.checkpoints);
    // Every live snapshot is at or above the watermark now, so cached
    // page versions superseded below it are unreachable: collect them.
    gc_page_versions(inner, mx);
    if let Some(t0) = trace_start {
        inner.opts.trace.record(Span {
            name: "checkpoint",
            duration: t0.elapsed(),
            bytes: targets.len() as u64 * PAGE_SIZE as u64,
            items: targets.len() as u64,
            fsyncs: if matches!(inner.opts.sync, SyncMode::Off) {
                0
            } else {
                1
            },
            detail: String::new(),
        });
    }
    Ok(true)
}

/// The mutating body of a checkpoint: copy page images into the main
/// file, sync it, then truncate the WAL. Split out so the caller can
/// wrap it in the checkpoint-generation seqlock on all exit paths.
fn checkpoint_copy(inner: &StoreInner, targets: &[(PageId, u64, u64)]) -> Result<()> {
    for &(page, offset, seq) in targets {
        // Scan access: folding frames back must not perturb which
        // entries the pool considers hot.
        let data = match inner.pool.get_with((page, seq), Access::Scan) {
            Some(d) => d,
            None => {
                IoStats::bump(&inner.stats.wal_reads);
                Arc::new(inner.wal.read_frame(offset)?)
            }
        };
        inner
            .main
            .write_all_at(&data[..], page as u64 * PAGE_SIZE as u64)?;
        IoStats::bump(&inner.stats.main_writes);
        inner.base_version.write().insert(page, seq);
    }
    // Make the file length match the committed page count even if the
    // tail pages were freed (never written back).
    let page_count = inner.committed.read().meta.page_count;
    let want_len = page_count as u64 * PAGE_SIZE as u64;
    if inner.main.len()? < want_len {
        inner.main.set_len(want_len)?;
    }
    if !matches!(inner.opts.sync, SyncMode::Off) {
        // The main file must be durable before the WAL disappears.
        inner.main.sync()?;
        IoStats::bump(&inner.stats.syncs);
    }
    inner.wal.reset(!matches!(inner.opts.sync, SyncMode::Off))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Read transactions
// ---------------------------------------------------------------------------

/// Deregistration guard for one reader-registry entry. Created *before*
/// any fallible work in [`Store::begin_read`] and dropped exactly once
/// with the [`ReadTxn`], so no error or panic path can leave a stale
/// registration pinning the snapshot floor (which would block
/// checkpoints and version GC forever).
struct ReaderGuard {
    inner: Arc<StoreInner>,
    snapshot: u64,
}

impl Drop for ReaderGuard {
    fn drop(&mut self) {
        let advanced = {
            let mut readers = self.inner.readers.lock();
            let was_oldest = readers.keys().next() == Some(&self.snapshot);
            match readers.get_mut(&self.snapshot) {
                Some(n) if *n > 1 => {
                    *n -= 1;
                    false
                }
                Some(_) => {
                    readers.remove(&self.snapshot);
                    was_oldest
                }
                None => false,
            }
        };
        // The readers lock is released before touching anything else:
        // `begin_read` acquires it while holding the committed lock,
        // so holding both here in the opposite order could deadlock.
        if advanced {
            // The oldest snapshot moved up: page versions superseded at
            // or below the new floor are unreachable by every current
            // and future reader. Epoch-style GC, driven by the registry.
            let committed = self.inner.committed.read().seq;
            let oldest = self.inner.readers.lock().keys().next().copied();
            let floor = oldest.unwrap_or(committed).min(committed);
            gc_page_versions(&self.inner, floor);
        }
    }
}

/// Drops buffer-pool page versions below `floor` that a newer cached
/// version supersedes. Safe at any floor ≤ every registered snapshot:
/// the pool is a cache, so a too-aggressive floor could only cost a
/// re-read, never correctness — but the floor passed here is exact.
fn gc_page_versions(inner: &StoreInner, floor: u64) {
    let dropped = inner.pool.gc_versions(floor);
    if dropped > 0 {
        IoStats::add(&inner.stats.version_gc_pages, dropped as u64);
    }
}

/// A snapshot-isolated read transaction. `Sync`: one transaction can be
/// shared across the worker threads of a parallel partition scan so all
/// workers observe the same snapshot (Algorithm 2).
pub struct ReadTxn {
    guard: ReaderGuard,
    meta: Meta,
}

impl ReadTxn {
    /// The WAL sequence number this transaction reads at.
    pub fn snapshot(&self) -> u64 {
        self.guard.snapshot
    }

    /// Database page count visible to this snapshot.
    pub fn page_count(&self) -> u32 {
        self.meta.page_count
    }
}

impl PageRead for ReadTxn {
    fn page(&self, id: PageId) -> Result<Arc<PageData>> {
        if id >= self.meta.page_count {
            return Err(StorageError::PageOutOfBounds(id));
        }
        resolve_page(&self.guard.inner, id, self.guard.snapshot, Access::Point)
    }

    fn page_scan(&self, id: PageId) -> Result<Arc<PageData>> {
        if id >= self.meta.page_count {
            return Err(StorageError::PageOutOfBounds(id));
        }
        resolve_page(&self.guard.inner, id, self.guard.snapshot, Access::Scan)
    }

    fn prefetch_pages(&self, ids: &[PageId]) {
        let inner = &self.guard.inner;
        let Some(tx) = &inner.prefetch_tx else {
            return;
        };
        let limit = inner.opts.prefetch_queue_pages;
        let backlog = inner.prefetch_backlog.load(Ordering::Relaxed);
        if backlog >= limit {
            return; // best-effort: drop rather than queue unboundedly
        }
        let pages: Vec<PageId> = ids
            .iter()
            .copied()
            .filter(|&id| id < self.meta.page_count)
            .take(limit - backlog)
            .collect();
        if pages.is_empty() {
            return;
        }
        inner
            .prefetch_backlog
            .fetch_add(pages.len(), Ordering::Relaxed);
        let n = pages.len();
        let batch = PrefetchBatch {
            snapshot: self.guard.snapshot,
            pages,
        };
        if tx.send(batch).is_err() {
            // Worker already gone (shutdown path): undo the accounting.
            inner.prefetch_backlog.fetch_sub(n, Ordering::Relaxed);
        }
    }

    fn root(&self, slot: usize) -> PageId {
        self.meta.roots[slot]
    }

    fn committed_snapshot(&self) -> Option<u64> {
        Some(self.guard.snapshot)
    }
}

// ---------------------------------------------------------------------------
// Write transactions
// ---------------------------------------------------------------------------

/// The exclusive write transaction. Mutations are copy-on-write into a
/// private dirty set; nothing is visible to readers until
/// [`WriteTxn::commit`] publishes the batch atomically via the WAL.
pub struct WriteTxn {
    inner: Arc<StoreInner>,
    _guard: parking_lot::ArcMutexGuard<parking_lot::RawMutex, ()>,
    /// Transaction id stamped into this transaction's WAL records.
    txid: u64,
    snapshot: u64,
    meta: Meta,
    dirty: HashMap<PageId, Arc<PageData>>,
    /// Pages spilled to unpublished WAL records: `page -> image offset`.
    spilled: HashMap<PageId, u64>,
    done: bool,
}

impl WriteTxn {
    /// The id stamped into this transaction's WAL records.
    pub fn txid(&self) -> u64 {
        self.txid
    }

    /// The committed sequence number this transaction started from.
    pub fn snapshot(&self) -> u64 {
        self.snapshot
    }

    /// Mutable access to a page, copying it into the dirty set on first
    /// touch.
    pub fn page_mut(&mut self, id: PageId) -> Result<&mut PageData> {
        if !self.dirty.contains_key(&id) {
            self.maybe_spill()?;
            if id >= self.meta.page_count {
                return Err(StorageError::PageOutOfBounds(id));
            }
            let data = self.read_page_internal(id)?;
            self.dirty.insert(id, data);
        }
        let arc = self.dirty.get_mut(&id).expect("just inserted");
        Ok(Arc::make_mut(arc))
    }

    /// Cache spill: once the in-memory dirty set exceeds the configured
    /// budget, append it to the WAL *without* a commit marker. Readers
    /// cannot see spilled frames; crash recovery discards them; commit
    /// publishes them atomically together with the final batch.
    fn maybe_spill(&mut self) -> Result<()> {
        let threshold = self.inner.opts.spill_after_pages;
        if threshold == 0 || self.dirty.len() < threshold {
            return Ok(());
        }
        let mut pages: Vec<(PageId, Arc<PageData>)> = self.dirty.drain().collect();
        pages.sort_by_key(|(id, _)| *id);
        let refs: Vec<(PageId, &PageData)> = pages.iter().map(|(id, p)| (*id, &**p)).collect();
        let placed = self.inner.wal.spill(self.txid, &refs)?;
        IoStats::add(&self.inner.stats.wal_writes, refs.len() as u64);
        for ((id, _), (offset, _seq)) in pages.iter().zip(placed) {
            self.spilled.insert(*id, offset);
        }
        Ok(())
    }

    /// Allocates a page (reusing the freelist when possible) and
    /// returns its id with a zeroed image in the dirty set.
    pub fn allocate_page(&mut self) -> Result<PageId> {
        IoStats::bump(&self.inner.stats.pages_allocated);
        self.maybe_spill()?;
        if self.meta.freelist_head != 0 {
            let id = self.meta.freelist_head;
            let head = self.read_page_internal(id)?;
            debug_assert_eq!(head.page_type(), page_type::FREE);
            self.meta.freelist_head = head.get_u32(4);
            self.meta.freelist_count -= 1;
            self.dirty.insert(id, Arc::new(PageData::zeroed()));
            return Ok(id);
        }
        let id = self.meta.page_count;
        self.meta.page_count += 1;
        self.dirty.insert(id, Arc::new(PageData::zeroed()));
        Ok(id)
    }

    /// Returns a page to the freelist.
    pub fn free_page(&mut self, id: PageId) -> Result<()> {
        debug_assert_ne!(id, 0, "header page is never freed");
        IoStats::bump(&self.inner.stats.pages_freed);
        self.maybe_spill()?;
        let next = self.meta.freelist_head;
        let mut p = PageData::zeroed();
        p[0] = page_type::FREE;
        p.put_u32(4, next);
        self.dirty.insert(id, Arc::new(p));
        self.meta.freelist_head = id;
        self.meta.freelist_count += 1;
        Ok(())
    }

    /// Stores a B+tree root id in header slot `slot`.
    pub fn set_root(&mut self, slot: usize, root: PageId) {
        self.meta.roots[slot] = root;
    }

    /// Number of dirty pages this transaction would commit.
    pub fn dirty_pages(&self) -> usize {
        self.dirty.len()
    }

    /// Database page count as seen by this transaction (including
    /// allocations it has made).
    pub fn page_count(&self) -> u32 {
        self.meta.page_count
    }

    fn read_page_internal(&self, id: PageId) -> Result<Arc<PageData>> {
        if let Some(p) = self.dirty.get(&id) {
            return Ok(Arc::clone(p));
        }
        if let Some(&offset) = self.spilled.get(&id) {
            IoStats::bump(&self.inner.stats.wal_reads);
            return Ok(Arc::new(self.inner.wal.read_unpublished_frame(offset)?));
        }
        if id >= self.meta.page_count {
            return Err(StorageError::PageOutOfBounds(id));
        }
        resolve_page(&self.inner, id, self.snapshot, Access::Point)
    }

    /// Atomically publishes all dirty pages (including any spilled
    /// earlier), then joins the group fsync (under [`SyncMode::Normal`]
    /// and up) before acknowledging. The writer lock is released before
    /// the fsync wait, so the next committer appends concurrently and
    /// shares a sync with this one instead of issuing its own.
    ///
    /// Returns the commit sequence number — the snapshot at which this
    /// transaction's effects become visible. A transaction that dirtied
    /// nothing commits as a no-op and returns its begin snapshot.
    pub fn commit(mut self) -> Result<u64> {
        if self.dirty.is_empty() && self.spilled.is_empty() {
            self.done = true;
            return Ok(self.snapshot);
        }
        let trace_start = self
            .inner
            .opts
            .trace
            .enabled()
            .then(std::time::Instant::now);
        // The header page rides along with every commit so reopen sees
        // consistent meta (page count, freelist, roots).
        let mut header = PageData::zeroed();
        self.meta.encode(&mut header);
        self.dirty.insert(0, Arc::new(header));

        let mut pages: Vec<(PageId, Arc<PageData>)> = self.dirty.drain().collect();
        pages.sort_by_key(|(id, _)| *id);
        let refs: Vec<(PageId, &PageData)> = pages.iter().map(|(id, p)| (*id, &**p)).collect();
        let (commit_seq, placed) =
            self.inner
                .wal
                .append_commit(self.txid, &refs, self.meta.page_count)?;
        let frames = refs.len() as u64;
        IoStats::add(&self.inner.stats.wal_writes, frames);
        IoStats::bump(&self.inner.stats.commits);

        // Warm the pool with the images we just wrote, keyed at each
        // record's own seq: the next reads of these pages are
        // near-certain.
        for ((id, data), (_offset, seq)) in pages.into_iter().zip(placed) {
            self.inner.pool.insert((id, seq), data);
        }

        {
            let mut committed = self.inner.committed.write();
            committed.seq = commit_seq;
            committed.meta = self.meta;
        }
        self.done = true;

        // Opportunistic auto-checkpoint while we still hold the writer
        // lock. A synced checkpoint advances the durable watermark, so
        // the group-sync wait below usually returns immediately.
        let threshold = self.inner.opts.checkpoint_after_frames;
        if threshold > 0 && self.inner.wal.index().frame_count() >= threshold {
            let _ = checkpoint_locked(&self.inner)?;
        }

        // Release the writer lock (Drop is a no-op now that `done` is
        // set), then make the commit durable before acknowledging. An
        // error here means *unacked*, not rolled back: the commit is
        // published and will survive unless power is lost.
        let inner = Arc::clone(&self.inner);
        let sync_off = matches!(inner.opts.sync, SyncMode::Off);
        drop(self);
        let mut fsyncs = 0u64;
        if !sync_off {
            let issued = inner.wal.sync_committed(commit_seq)?;
            if issued {
                IoStats::bump(&inner.stats.syncs);
                fsyncs = 1;
            }
        }
        if let Some(t0) = trace_start {
            // The span covers append + publish + group-fsync wait;
            // `fsyncs == 0` under SyncMode::Off or when a concurrent
            // leader's sync covered this commit (group commit).
            inner.opts.trace.record(Span {
                name: "wal_group_commit",
                duration: t0.elapsed(),
                bytes: frames * PAGE_SIZE as u64,
                items: frames,
                fsyncs,
                detail: String::new(),
            });
        }
        Ok(commit_seq)
    }

    /// Explicit rollback; equivalent to dropping the transaction.
    pub fn rollback(mut self) {
        self.dirty.clear();
        if !self.spilled.is_empty() {
            let _ = self.inner.wal.truncate_unpublished();
            self.spilled.clear();
        }
        self.done = true;
    }
}

impl PageRead for WriteTxn {
    fn page(&self, id: PageId) -> Result<Arc<PageData>> {
        self.read_page_internal(id)
    }

    fn root(&self, slot: usize) -> PageId {
        self.meta.roots[slot]
    }
}

impl Drop for WriteTxn {
    fn drop(&mut self) {
        // Uncommitted changes evaporate: in-memory pages are dropped
        // and spilled (unpublished) WAL frames are truncated away.
        if !self.done {
            self.dirty.clear();
            if !self.spilled.is_empty() {
                let _ = self.inner.wal.truncate_unpublished();
                self.spilled.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> StoreOptions {
        StoreOptions {
            sync: SyncMode::Off,
            ..Default::default()
        }
    }

    fn fill(txn: &mut WriteTxn, id: PageId, b: u8) {
        let p = txn.page_mut(id).unwrap();
        p[100] = b;
        p[0] = page_type::OVERFLOW; // arbitrary non-zero type for tests
    }

    #[test]
    fn create_write_reopen() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db");
        {
            let store = Store::create(&path, opts()).unwrap();
            let mut txn = store.begin_write().unwrap();
            let p = txn.allocate_page().unwrap();
            assert_eq!(p, 1);
            fill(&mut txn, p, 42);
            txn.set_root(0, p);
            txn.commit().unwrap();
        }
        let store = Store::open(&path, opts()).unwrap();
        let read = store.begin_read();
        assert_eq!(read.root(0), 1);
        assert_eq!(read.page(1).unwrap()[100], 42);
    }

    #[test]
    fn snapshot_isolation_under_concurrent_commit() {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::create(dir.path().join("db"), opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let p = txn.allocate_page().unwrap();
        fill(&mut txn, p, 1);
        txn.commit().unwrap();

        let reader = store.begin_read(); // snapshot at version 1
        let mut txn = store.begin_write().unwrap();
        fill(&mut txn, p, 2);
        txn.commit().unwrap();

        // Old reader still sees version 1; a fresh reader sees 2.
        assert_eq!(reader.page(p).unwrap()[100], 1);
        assert_eq!(store.begin_read().page(p).unwrap()[100], 2);
        // And the old reader's view is stable across repeated reads.
        assert_eq!(reader.page(p).unwrap()[100], 1);
    }

    #[test]
    fn rollback_discards_changes() {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::create(dir.path().join("db"), opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let p = txn.allocate_page().unwrap();
        fill(&mut txn, p, 9);
        txn.commit().unwrap();

        let mut txn = store.begin_write().unwrap();
        fill(&mut txn, p, 77);
        drop(txn); // rollback

        assert_eq!(store.begin_read().page(p).unwrap()[100], 9);
        // Page count also rolled back on an allocation-only txn.
        let before = store.page_count();
        let mut txn = store.begin_write().unwrap();
        txn.allocate_page().unwrap();
        txn.rollback();
        assert_eq!(store.page_count(), before);
    }

    #[test]
    fn freelist_reuses_pages() {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::create(dir.path().join("db"), opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let a = txn.allocate_page().unwrap();
        let b = txn.allocate_page().unwrap();
        fill(&mut txn, a, 1);
        fill(&mut txn, b, 2);
        txn.commit().unwrap();

        let mut txn = store.begin_write().unwrap();
        txn.free_page(a).unwrap();
        txn.commit().unwrap();
        assert_eq!(store.freelist_len(), 1);

        let mut txn = store.begin_write().unwrap();
        let c = txn.allocate_page().unwrap();
        assert_eq!(c, a, "freed page is reused");
        // Reused page starts zeroed.
        assert_eq!(txn.page(c).unwrap()[100], 0);
        fill(&mut txn, c, 3);
        txn.commit().unwrap();
        assert_eq!(store.freelist_len(), 0);
        assert_eq!(store.page_count(), 3); // header + 2
    }

    #[test]
    fn checkpoint_folds_wal_and_preserves_data() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db");
        let store = Store::create(&path, opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let p = txn.allocate_page().unwrap();
        fill(&mut txn, p, 5);
        txn.set_root(0, p);
        txn.commit().unwrap();
        assert!(store.wal_frames() > 0);
        assert!(store.checkpoint().unwrap());
        assert_eq!(store.wal_frames(), 0);
        // Data readable after checkpoint (from main file now).
        assert_eq!(store.begin_read().page(p).unwrap()[100], 5);
        // And after a full reopen with an empty WAL.
        drop(store);
        let store = Store::open(&path, opts()).unwrap();
        let r = store.begin_read();
        assert_eq!(r.root(0), p);
        assert_eq!(r.page(p).unwrap()[100], 5);
    }

    #[test]
    fn checkpoint_blocked_by_old_reader() {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::create(dir.path().join("db"), opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let p = txn.allocate_page().unwrap();
        fill(&mut txn, p, 1);
        txn.commit().unwrap();

        let old_reader = store.begin_read();
        let mut txn = store.begin_write().unwrap();
        fill(&mut txn, p, 2);
        txn.commit().unwrap();

        assert!(!store.checkpoint().unwrap(), "old reader pins the WAL");
        assert_eq!(old_reader.page(p).unwrap()[100], 1);
        drop(old_reader);
        assert!(store.checkpoint().unwrap());
        assert_eq!(store.begin_read().page(p).unwrap()[100], 2);
    }

    #[test]
    fn crash_recovery_after_commits_without_checkpoint() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db");
        {
            let store = Store::create(&path, opts()).unwrap();
            for i in 0..10u8 {
                let mut txn = store.begin_write().unwrap();
                let p = if i == 0 {
                    txn.allocate_page().unwrap()
                } else {
                    1
                };
                fill(&mut txn, p, i);
                txn.commit().unwrap();
            }
            // Dropped without checkpoint => main file is stale; the WAL
            // carries everything. Simulates a process crash.
        }
        let store = Store::open(&path, opts()).unwrap();
        assert_eq!(store.begin_read().page(1).unwrap()[100], 9);
    }

    #[test]
    fn auto_checkpoint_triggers() {
        let dir = tempfile::tempdir().unwrap();
        let mut o = opts();
        o.checkpoint_after_frames = 4;
        let store = Store::create(dir.path().join("db"), o).unwrap();
        for i in 0..6u8 {
            let mut txn = store.begin_write().unwrap();
            let p = if i == 0 {
                txn.allocate_page().unwrap()
            } else {
                1
            };
            fill(&mut txn, p, i);
            txn.commit().unwrap();
        }
        assert!(store.stats().checkpoints >= 1);
        assert_eq!(store.begin_read().page(1).unwrap()[100], 5);
    }

    #[test]
    fn out_of_bounds_page_is_an_error() {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::create(dir.path().join("db"), opts()).unwrap();
        let read = store.begin_read();
        assert!(matches!(
            read.page(99),
            Err(StorageError::PageOutOfBounds(99))
        ));
    }

    #[test]
    fn writer_reads_own_uncommitted_writes() {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::create(dir.path().join("db"), opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let p = txn.allocate_page().unwrap();
        fill(&mut txn, p, 33);
        assert_eq!(txn.page(p).unwrap()[100], 33);
        // Readers can't see it pre-commit (page doesn't even exist).
        assert!(store.begin_read().page(p).is_err());
        txn.commit().unwrap();
        assert_eq!(store.begin_read().page(p).unwrap()[100], 33);
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::create(dir.path().join("db"), opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let p = txn.allocate_page().unwrap();
        fill(&mut txn, p, 0);
        txn.commit().unwrap();

        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let r = store.begin_read();
                        let v1 = r.page(p).unwrap()[100];
                        let v2 = r.page(p).unwrap()[100];
                        assert_eq!(v1, v2, "snapshot must be stable");
                    }
                });
            }
            for i in 1..50u8 {
                let mut txn = store.begin_write().unwrap();
                fill(&mut txn, p, i);
                txn.commit().unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(store.begin_read().page(p).unwrap()[100], 49);
    }

    #[test]
    fn spilling_txn_commits_atomically() {
        let dir = tempfile::tempdir().unwrap();
        let mut o = opts();
        o.spill_after_pages = 8; // force heavy spilling
        let store = Store::create(dir.path().join("db"), o).unwrap();
        // Seed one page so a concurrent reader has something stable.
        let mut txn = store.begin_write().unwrap();
        let first = txn.allocate_page().unwrap();
        fill(&mut txn, first, 255);
        txn.commit().unwrap();

        let reader = store.begin_read();
        let mut txn = store.begin_write().unwrap();
        let mut pages = vec![];
        for i in 0..100u8 {
            let p = txn.allocate_page().unwrap();
            fill(&mut txn, p, i);
            pages.push(p);
        }
        // Also rewrite the seeded page.
        fill(&mut txn, first, 1);
        // Mid-transaction: the writer sees its own writes (spilled or
        // not), the reader sees nothing.
        assert_eq!(txn.page(pages[0]).unwrap()[100], 0);
        assert_eq!(txn.page(first).unwrap()[100], 1);
        assert_eq!(reader.page(first).unwrap()[100], 255);
        let spilled_writes = store.stats().wal_writes;
        assert!(
            spilled_writes >= 64,
            "expected spills, got {spilled_writes}"
        );
        txn.commit().unwrap();

        assert_eq!(reader.page(first).unwrap()[100], 255, "old snapshot stable");
        let r = store.begin_read();
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(r.page(p).unwrap()[100], i as u8);
        }
        assert_eq!(r.page(first).unwrap()[100], 1);
    }

    #[test]
    fn spilled_txn_rolls_back_cleanly() {
        let dir = tempfile::tempdir().unwrap();
        let mut o = opts();
        o.spill_after_pages = 4;
        let store = Store::create(dir.path().join("db"), o).unwrap();
        let mut txn = store.begin_write().unwrap();
        let p = txn.allocate_page().unwrap();
        fill(&mut txn, p, 9);
        txn.commit().unwrap();
        let frames_before = store.wal_frames();

        let mut txn = store.begin_write().unwrap();
        for i in 0..50u8 {
            let q = txn.allocate_page().unwrap();
            fill(&mut txn, q, i);
        }
        fill(&mut txn, p, 200);
        drop(txn); // rollback: spilled frames must be truncated away

        assert_eq!(store.wal_frames(), frames_before);
        assert_eq!(store.begin_read().page(p).unwrap()[100], 9);
        assert_eq!(store.page_count(), 2);
        // A subsequent transaction works normally.
        let mut txn = store.begin_write().unwrap();
        fill(&mut txn, p, 77);
        txn.commit().unwrap();
        assert_eq!(store.begin_read().page(p).unwrap()[100], 77);
    }

    #[test]
    fn crash_mid_spill_recovers_to_last_commit() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db");
        {
            let mut o = opts();
            o.spill_after_pages = 4;
            let store = Store::create(&path, o).unwrap();
            let mut txn = store.begin_write().unwrap();
            let p = txn.allocate_page().unwrap();
            fill(&mut txn, p, 42);
            txn.commit().unwrap();

            let mut txn = store.begin_write().unwrap();
            for i in 0..40u8 {
                let q = txn.allocate_page().unwrap();
                fill(&mut txn, q, i);
            }
            // Simulate a hard crash: leak the transaction so neither
            // rollback truncation nor commit runs.
            std::mem::forget(txn);
        }
        let store = Store::open(&path, opts()).unwrap();
        let r = store.begin_read();
        assert_eq!(store.page_count(), 2, "uncommitted allocations discarded");
        assert_eq!(r.page(1).unwrap()[100], 42);
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        use crate::sim::SimVfs;
        let sim = SimVfs::new();
        let o = StoreOptions {
            sync: SyncMode::Normal,
            checkpoint_after_frames: 0, // keep checkpoint syncs out of the count
            vfs: sim.handle(),
            ..Default::default()
        };
        let store = Store::create("/gc-db", o).unwrap();
        let mut txn = store.begin_write().unwrap();
        let p = txn.allocate_page().unwrap();
        fill(&mut txn, p, 0);
        txn.commit().unwrap();

        // A slow disk widens the window in which committers pile up
        // behind the in-flight leader fsync.
        sim.set_sync_delay(std::time::Duration::from_millis(2));
        let (_, syncs_before, _) = sim.recorded();
        const THREADS: usize = 8;
        const COMMITS: usize = 6;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..COMMITS {
                        let mut txn = store.begin_write().unwrap();
                        let q = txn.allocate_page().unwrap();
                        fill(&mut txn, q, (t * COMMITS + i) as u8);
                        txn.commit().unwrap();
                    }
                });
            }
        });
        let (_, syncs_after, _) = sim.recorded();
        let issued = syncs_after - syncs_before;
        let total = (THREADS * COMMITS) as u64;
        assert!(issued > 0, "durable commits must fsync");
        assert!(
            issued * 2 <= total,
            "group commit must batch: {issued} fsyncs for {total} commits"
        );
        // Every commit's allocation landed.
        assert_eq!(store.page_count(), 2 + total as u32);
    }

    #[test]
    fn stats_report_pool_evictions_under_budget_pressure() {
        let dir = tempfile::tempdir().unwrap();
        let mut o = opts();
        o.pool_bytes = 4 * PAGE_SIZE; // room for only a few pages
        let store = Store::create(dir.path().join("db"), o).unwrap();
        let before = store.stats();
        let mut txn = store.begin_write().unwrap();
        for i in 0..32u8 {
            let p = txn.allocate_page().unwrap();
            fill(&mut txn, p, i);
        }
        txn.commit().unwrap(); // warming the pool overflows the budget
        let evicted = store.stats().since(&before).pool_evictions;
        assert!(evicted > 0, "evictions must surface in StoreStats");
    }

    #[test]
    fn prefetch_warms_pool_in_background() {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::create(dir.path().join("db"), opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let mut ids = Vec::new();
        for i in 0..16u8 {
            let p = txn.allocate_page().unwrap();
            fill(&mut txn, p, i);
            ids.push(p);
        }
        txn.commit().unwrap();
        store.checkpoint().unwrap();
        store.purge_cache();

        let r = store.begin_read();
        r.prefetch_pages(&ids);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while std::time::Instant::now() < deadline {
            let s = store.stats();
            if s.prefetch_reads + s.prefetch_skipped >= ids.len() as u64 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let warm = store.stats();
        assert!(warm.prefetch_reads > 0, "worker loaded pages");
        for (i, &p) in ids.iter().enumerate() {
            assert_eq!(r.page(p).unwrap()[100], i as u8);
        }
        let after = store.stats().since(&warm);
        assert_eq!(after.disk_reads(), 0, "prefetched pages served from pool");
    }

    #[test]
    fn cold_start_purge_forces_disk_reads() {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::create(dir.path().join("db"), opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let p = txn.allocate_page().unwrap();
        fill(&mut txn, p, 7);
        txn.commit().unwrap();
        store.checkpoint().unwrap();

        let _ = store.begin_read().page(p).unwrap();
        let warm = store.stats();
        let _ = store.begin_read().page(p).unwrap();
        let warm2 = store.stats();
        assert_eq!(warm2.since(&warm).disk_reads(), 0, "warm read is cached");

        store.purge_cache();
        let _ = store.begin_read().page(p).unwrap();
        let cold = store.stats();
        assert!(cold.since(&warm2).disk_reads() >= 1, "cold read hits disk");
    }
}
